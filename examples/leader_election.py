#!/usr/bin/env python3
"""Leader election via rendezvous — the Introduction's equivalence.

Rendezvous is equivalent to leader election between the two agents:
once they meet, comparing their trajectories (sequences of port
numbers) deterministically singles one agent out.  This script runs a
rendezvous, performs the election from the recorded traces, and shows
the tie-breaking evidence.

Run:  python examples/leader_election.py
"""

from repro.baselines import elect_leader, wait_for_mommy
from repro.core import rendezvous, TUNED
from repro.graphs import path_graph, star_graph


def demo(name, graph, u, v, delta) -> None:
    result = rendezvous(graph, u, v, delta, record_traces=True)
    assert result.met
    election = elect_leader(result)
    trace = result.traces[election.leader]
    print(f"{name}: met at node {result.meeting_node} "
          f"(round {result.meeting_time})")
    print(f"  leader: agent {election.leader} "
          f"(started at node {trace.start_node}, round {trace.start_time})")
    print(f"  tie-break rule: {election.rule} at round {election.decided_at}")
    print(f"  leader's port history: {trace.port_history()[:6]} ...")

    # Close the loop: with the elected leader, 'waiting for Mommy'
    # solves rendezvous again — leader explores, non-leader waits.
    waiter = result.traces[1 - election.leader].start_node
    leader_home = trace.start_node
    mommy = wait_for_mommy(
        graph, leader_home, waiter, delta,
        TUNED.uxs(graph.n),
        leader_is_earlier=(election.leader == 0),
    )
    print(f"  re-run with roles assigned ('waiting for Mommy'): met in "
          f"{mommy.time_from_later} rounds")
    print()


def main() -> None:
    print("Rendezvous <=> leader election (both directions)\n")
    demo("Path P4, ends, delay 1", path_graph(4), 0, 3, 1)
    demo("Star, two leaves, delay 0", star_graph(3), 1, 3, 0)
    demo("Path P3, ends, delay 2", path_graph(3), 0, 2, 2)
    print("Election is deterministic and symmetric-rule based: the agents")
    print("themselves could compute it from exchanged trajectories alone.")


if __name__ == "__main__":
    main()
