#!/usr/bin/env python3
"""The price of symmetry: Theorem 4.1's hard instance, hands on.

``Q̂_h`` is a 4-regular anonymous graph in which *every* node has the
same view — an agent can learn nothing by walking around, so every
deterministic algorithm collapses to a fixed word over
{stay, N, E, S, W}.  For agents dropped at the root and at a node of
the set ``Z`` (distance ``D = 2k``), the paper proves *any* algorithm
needs at least ``2^(k-1)`` rounds.

This script builds the instance, runs the natural dedicated algorithm
(enumerate ``γγ`` excursions), and prints the measured exponential
curve next to the bound.

Run:  python examples/hard_instance.py
"""

from repro.hardness import (
    build_qhat,
    dedicated_word,
    simulate_word,
    theoretical_bound,
    worst_case_meeting_time,
    z_set,
)
from repro.symmetry import view_classes


def main() -> None:
    # A concrete instance small enough to hold in memory: k=1, h=4.
    k = 1
    graph, tree = build_qhat(4 * k)
    print(f"Q-hat_{4 * k}: {graph.n} nodes, 4-regular, "
          f"{len(set(view_classes(graph)))} view class(es) "
          "(every node looks identical)")

    members = z_set(tree, k)
    word = dedicated_word(k)
    print(f"|Z| = {len(members)}; dedicated word has {len(word)} letters\n")
    for m in members:
        out = simulate_word(graph, word, tree.root, m.node, 2 * k, 10**4)
        print(f"  v = (γγ)(r) with γ={m.gamma}: met at round "
              f"{out.meeting_time} (midpoint M(v) = node {m.midpoint})")

    print("\nScaling the initial distance D = 2k (symbolic simulation,")
    print("the k=6 graph would have ~3^24 nodes):\n")
    print("  k   D   lower bound 2^(k-1)   measured worst case")
    for k in range(1, 8):
        measured = worst_case_meeting_time(k)
        print(f"  {k:1d}  {2*k:2d}   {theoretical_bound(k):19d}   {measured:19d}")
    print("\nThe measured curve is Theta(k 2^k): rendezvous time on this")
    print("family is exponential in the initial distance, as Theorem 4.1")
    print("proves it must be for every algorithm.")


if __name__ == "__main__":
    main()
