#!/usr/bin/env python3
"""Mine rescue: two identical robots in a perfectly symmetric mine.

The paper's motivating scenario: mobile robots moving in the corridors
of a contaminated mine.  The mine here is a *symmetric tree* — a
central gallery with two port-isomorphic wings — so the two robots,
dropped at mirror positions, see literally identical surroundings
forever: no map, no labels, no landmarks.

The striking fact from Section 3: however deep in the wings the robots
start (distance 2*depth + 1 apart), ``Shrink = 1`` — a single round of
start-time difference is enough to let a deterministic algorithm bring
them together, because a common port sequence can funnel both robots
to the two ends of the central gallery.

Run:  python examples/mine_rescue.py
"""

from repro.core import rendezvous
from repro.graphs import mirror_node, symmetric_tree
from repro.symmetry import classify_stic, shrink_witness


def main() -> None:
    arity, depth = 2, 2
    mine = symmetric_tree(arity, depth)

    # Deepest leaf of the left wing and its mirror image.
    robot_a = mine.n // 2 - 1
    robot_b = mirror_node(robot_a, arity, depth)
    distance = mine.distance(robot_a, robot_b)

    print(f"Mine: symmetric tree, {mine.n} junctions, two mirrored wings")
    print(f"Robots at mirror leaves {robot_a} and {robot_b}, "
          f"{distance} corridors apart")

    value, alpha, (x, y) = shrink_witness(mine, robot_a, robot_b)
    print(f"Shrink = {value}: the common port sequence {alpha} drives the "
          f"robots to adjacent junctions {x} and {y}")
    print()

    # Delay 0: hopeless. Delay 1: rescue succeeds.
    for delta in (0, 1):
        verdict = classify_stic(mine, robot_a, robot_b, delta)
        print(f"start-time difference {delta}: "
              f"{'feasible' if verdict.feasible else 'IMPOSSIBLE'} "
              f"({verdict.reason})")
        if verdict.feasible:
            result = rendezvous(mine, robot_a, robot_b, delta)
            assert result.met
            print(f"  -> robots met at junction {result.meeting_node} after "
                  f"{result.time_from_later} rounds, despite starting "
                  f"{distance} corridors apart")
    print()
    print("Takeaway: in a fully symmetric environment, one round of delay")
    print("is worth more than any amount of distance (Shrink collapses to 1).")


if __name__ == "__main__":
    main()
