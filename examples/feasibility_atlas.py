#!/usr/bin/env python3
"""Feasibility atlas: classify AND simulate every STIC of a small graph.

Sweeps all node pairs and delays of a chosen family, prints the
Corollary 3.1 verdicts as a compact atlas, and *checks* them: every
STIC is simulated with Algorithm UniversalRV through the batched sweep
engine (:func:`repro.core.universal_feasibility_atlas`, one engine
call for the whole graph), so each cell shows what the
characterization predicts and what the algorithm actually did.

Run:  python examples/feasibility_atlas.py [ring|torus|tree|path|star]
"""

import sys

from repro.core import universal_feasibility_atlas
from repro.graphs import (
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    symmetric_tree,
)

FAMILIES = {
    "ring": lambda: oriented_ring(6),
    "torus": lambda: oriented_torus(3, 3),
    "tree": lambda: symmetric_tree(2, 1),
    "path": lambda: path_graph(5),
    "star": lambda: star_graph(4),
}

def main() -> None:
    family = sys.argv[1] if len(sys.argv) > 1 else "ring"
    if family not in FAMILIES:
        raise SystemExit(f"unknown family {family!r}; pick from {sorted(FAMILIES)}")
    graph = FAMILIES[family]()
    max_delta = 4

    # Certifies the tuned profile's shortcuts, budgets every STIC from
    # its Corollary 3.1 verdict, and runs the whole sweep in one
    # batched engine call.
    entries = universal_feasibility_atlas(graph, max_delta)

    print(f"Feasibility atlas: {family} (n = {graph.n}), delays 0..{max_delta}")
    print("(each cell: what UniversalRV actually did on that STIC,")
    print(" simulated through the batched sweep engine in one call)")
    print()
    header = "pair      sym  Shrink  " + "  ".join(f"d={d}" for d in range(max_delta + 1))
    print(header)
    print("-" * len(header))

    current = None
    row = ""
    agreements = 0
    for entry in entries:
        pair = (entry.u, entry.v)
        if pair != current:
            if current is not None:
                print(row)
            shrink_txt = "-" if entry.verdict.shrink is None else str(entry.verdict.shrink)
            row = (f"({entry.u},{entry.v})".ljust(10)
                   + ("yes" if entry.verdict.symmetric else "no ").ljust(5)
                   + shrink_txt.ljust(8))
            current = pair
        agreements += entry.consistent
        cell = " ok " if entry.result.met else " -- "
        row += cell if entry.consistent else cell.replace(" ", "!", 1)
        row += " "
    print(row)
    print()
    print(f"simulation agrees with Corollary 3.1 on {agreements}/{len(entries)} STICs")
    print()
    print("ok = UniversalRV met; -- = no meeting (impossible for any")
    print("deterministic algorithm when delta < Shrink, Lemma 3.1).")
    print("Non-symmetric pairs are feasible at every delay; symmetric")
    print("pairs from delta >= Shrink.")


if __name__ == "__main__":
    main()
