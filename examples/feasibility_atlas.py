#!/usr/bin/env python3
"""Feasibility atlas: classify every STIC of a small graph at a glance.

Sweeps all node pairs and delays of a chosen family and prints the
Corollary 3.1 verdicts as a compact atlas — the complete answer to
"who can meet whom, and how much delay does it take?".

Run:  python examples/feasibility_atlas.py [ring|torus|tree|path|star]
"""

import sys

from repro.core import enumerate_stics
from repro.graphs import (
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    symmetric_tree,
)

FAMILIES = {
    "ring": lambda: oriented_ring(6),
    "torus": lambda: oriented_torus(3, 3),
    "tree": lambda: symmetric_tree(2, 1),
    "path": lambda: path_graph(5),
    "star": lambda: star_graph(4),
}


def main() -> None:
    family = sys.argv[1] if len(sys.argv) > 1 else "ring"
    if family not in FAMILIES:
        raise SystemExit(f"unknown family {family!r}; pick from {sorted(FAMILIES)}")
    graph = FAMILIES[family]()
    max_delta = 4

    print(f"Feasibility atlas: {family} (n = {graph.n}), delays 0..{max_delta}")
    print()
    header = "pair      sym  Shrink  " + "  ".join(f"d={d}" for d in range(max_delta + 1))
    print(header)
    print("-" * len(header))

    current = None
    row = ""
    for stic, verdict in enumerate_stics(graph, max_delta):
        key = (stic.u, stic.v)
        if key != current:
            if current is not None:
                print(row)
            shrink_txt = "-" if verdict.shrink is None else str(verdict.shrink)
            row = (f"({stic.u},{stic.v})".ljust(10)
                   + ("yes" if verdict.symmetric else "no ").ljust(5)
                   + shrink_txt.ljust(8))
            current = key
        row += ("  ok " if verdict.feasible else "  -- ")
    print(row)
    print()
    print("ok = feasible (UniversalRV meets); -- = impossible for any")
    print("deterministic algorithm (Lemma 3.1).  Non-symmetric pairs are")
    print("feasible at every delay; symmetric pairs from delta >= Shrink.")


if __name__ == "__main__":
    main()
