#!/usr/bin/env python3
"""Quickstart: feasibility and universal rendezvous in 30 lines.

Two anonymous agents are dropped on an oriented ring.  Every pair of
nodes looks identical (the ring is vertex-transitive), so *space*
cannot break the symmetry between them — only the difference between
their starting times can.  This script checks when that is enough
(Corollary 3.1) and runs Algorithm UniversalRV to actually meet.

Run:  python examples/quickstart.py
"""

from repro.core import rendezvous
from repro.graphs import oriented_ring
from repro.symmetry import classify_stic, shrink

def main() -> None:
    ring = oriented_ring(6)
    u, v = 0, 3  # antipodal nodes

    print(f"Graph: oriented ring, n={ring.n}; agents at {u} and {v}")
    print(f"Shrink({u}, {v}) = {shrink(ring, u, v)}  "
          "(no common port sequence brings them closer)")
    print()

    for delta in (0, 2, 3, 5):
        verdict = classify_stic(ring, u, v, delta)
        print(f"delay {delta}: {verdict.reason}")
        if not verdict.feasible:
            continue
        result = rendezvous(ring, u, v, delta)
        assert result.met
        print(
            f"  -> UniversalRV met at node {result.meeting_node} "
            f"after {result.time_from_later} rounds "
            f"(from the later agent's start)"
        )
    print()
    print("Delays below Shrink are infeasible for ANY deterministic")
    print("algorithm (Lemma 3.1); at or above Shrink, UniversalRV meets")
    print("with no knowledge of the graph, positions, or delay (Thm 3.1).")


if __name__ == "__main__":
    main()
