#!/usr/bin/env python3
"""Torus patrol: software agents on an oriented grid overlay network.

The paper's other worked example: on an oriented torus every pair of
nodes is symmetric and ``Shrink(u, v)`` equals the *distance* between
the agents — a rigid world where no common move sequence gains ground.
Two patrol agents injected at different routers can therefore meet iff
the injection delay is at least their grid distance (Corollary 3.1).

This script prints the feasibility frontier for one agent placement
and then demonstrates a meeting right at the frontier.

Run:  python examples/torus_patrol.py
"""

from repro.core import rendezvous
from repro.graphs import oriented_torus, torus_node
from repro.symmetry import classify_stic, shrink


def main() -> None:
    rows = cols = 3
    net = oriented_torus(rows, cols)
    u = torus_node(0, 0, cols)
    v = torus_node(1, 1, cols)
    dist = net.distance(u, v)

    print(f"Overlay: oriented {rows}x{cols} torus ({net.n} routers)")
    print(f"Agents at cells (0,0) and (1,1): grid distance {dist}, "
          f"Shrink = {shrink(net, u, v)}")
    print()
    print("delay | verdict")
    print("------+--------------------------------------------")
    for delta in range(dist + 3):
        verdict = classify_stic(net, u, v, delta)
        marker = "meets" if verdict.feasible else "cannot meet (any algorithm)"
        print(f"  {delta:3d} | {marker}")
    print()

    delta = dist  # the frontier
    result = rendezvous(net, u, v, delta)
    assert result.met
    print(f"At the frontier (delay {delta}), UniversalRV met at router "
          f"{result.meeting_node} after {result.time_from_later} rounds.")
    print()
    print("On rigid topologies (tori, hypercubes, oriented rings) time must")
    print("buy the whole distance: Shrink(u, v) = dist(u, v).")


if __name__ == "__main__":
    main()
