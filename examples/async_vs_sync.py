#!/usr/bin/env python3
"""Synchronous vs asynchronous: where the paper's whole story lives.

The same algorithm, the same graph, the same symmetric starting
positions — two timing models:

* **synchronous** (the paper's model): the agents' clocks tick
  together and the delay between their starts is a fact of the world.
  With delay >= Shrink, UniversalRV meets.
* **asynchronous**: the adversary owns the clock.  It simply runs both
  agents in lockstep and nullifies their waits — the "delay" evaporates
  and the meeting never happens (the Section 5 remark).

Run:  python examples/async_vs_sync.py
"""

from repro.core import make_universal_algorithm, rendezvous, tuned_profile
from repro.graphs import oriented_ring, path_graph
from repro.sim import eager_adversary_run, mirror_adversary_run
from repro.symmetry import shrink


def main() -> None:
    ring = oriented_ring(6)
    u, v = 0, 3
    delta = shrink(ring, u, v)

    print("Same algorithm, same symmetric positions (antipodal on a 6-ring).\n")

    # Synchronous: delay breaks the symmetry.
    result = rendezvous(ring, u, v, delta)
    print(f"synchronous, delay {delta}: met = {result.met} "
          f"(node {result.meeting_node}, {result.time_from_later} rounds "
          "from the later start)")

    # Asynchronous: the mirror adversary erases time as a resource.
    profile = tuned_profile(view_mode="faithful", name="async-demo")
    algorithm = make_universal_algorithm(profile)
    out = mirror_adversary_run(ring, u, v, algorithm, max_events=5000)
    print(f"asynchronous (mirror adversary): met = {out.met} after "
          f"{out.events} traversal events — the adversary keeps the "
          "configuration symmetric forever")

    # Space still works asynchronously.
    path = path_graph(3)
    out2 = eager_adversary_run(path, 0, 2, algorithm, max_events=500_000)
    print(f"\nasynchronous but NON-symmetric (path ends): met = {out2.met} "
          f"at node {out2.meeting_node} — spatial asymmetry survives "
          "adversarial timing")
    print()
    print("Moral (Section 5): synchrony is not a convenience here — it is")
    print("the resource.  Time can substitute for spatial asymmetry only")
    print("when nobody else controls the clock.")


if __name__ == "__main__":
    main()
