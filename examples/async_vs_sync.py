#!/usr/bin/env python3
"""Synchronous vs asynchronous: where the paper's whole story lives.

The same algorithm, the same graph, the same symmetric starting
positions — two timing models:

* **synchronous** (the paper's model): the agents' clocks tick
  together and the delay between their starts is a fact of the world.
  With delay >= Shrink, UniversalRV meets.
* **asynchronous**: the adversary owns the clock.  Who moves when is
  the adversary's choice — an ``ActivationSchedule``.  The mirror
  schedule runs both agents in lockstep and nullifies their waits: the
  "delay" evaporates and the meeting never happens (the Section 5
  remark).  Any *asymmetric* schedule, though, hands the symmetry
  breaking right back.

Run:  python examples/async_vs_sync.py
"""

from collections import Counter

from repro.core import make_universal_algorithm, rendezvous, tuned_profile
from repro.graphs import oriented_ring, path_graph
from repro.sim import (
    EagerSchedule,
    FixedDelaySchedule,
    MirrorSchedule,
    RandomSchedule,
    run_schedule_adversary,
)
from repro.symmetry import async_feasibility_atlas, shrink, symmetric_pairs


def main() -> None:
    ring = oriented_ring(6)
    u, v = 0, 3
    delta = shrink(ring, u, v)

    print("Same algorithm, same symmetric positions (antipodal on a 6-ring).\n")

    # Synchronous: delay breaks the symmetry.
    result = rendezvous(ring, u, v, delta)
    print(f"synchronous, delay {delta}: met = {result.met} "
          f"(node {result.meeting_node}, {result.time_from_later} rounds "
          "from the later start)")

    # Asynchronous: the mirror adversary erases time as a resource.
    profile = tuned_profile(view_mode="faithful", name="async-demo")
    algorithm = make_universal_algorithm(profile)
    out = run_schedule_adversary(
        ring, u, v, algorithm, MirrorSchedule(), max_events=5000
    )
    print(f"asynchronous (mirror adversary): met = {out.met} after "
          f"{out.events} traversal events — the adversary keeps the "
          "configuration symmetric forever")

    # Space still works asynchronously.
    path = path_graph(3)
    out2 = run_schedule_adversary(
        path, 0, 2, algorithm, EagerSchedule(), max_events=500_000
    )
    print(f"\nasynchronous but NON-symmetric (path ends): met = {out2.met} "
          f"at node {out2.meeting_node} — spatial asymmetry survives "
          "adversarial timing")

    # The atlas view: every symmetric pair of the ring against a grid
    # of adversaries, one batched sweep.  Only the perfectly symmetric
    # schedule blocks node meetings everywhere (on the oriented ring
    # its lockstep agents co-rotate and never even cross); schedules
    # that are merely delay-skewed can still leave some pairs stuck at
    # edge meetings — crossings inside an edge, the relaxed meeting
    # notion of the asynchronous literature — while fully asymmetric
    # ones reach node meetings outright.
    schedules = [
        MirrorSchedule(),
        EagerSchedule(),
        FixedDelaySchedule(3),
        RandomSchedule(7),
    ]
    atlas = async_feasibility_atlas(
        ring, algorithm, schedules,
        max_events=3000, pairs=symmetric_pairs(ring),
    )
    print("\nasync atlas on the 6-ring (all symmetric pairs x 4 adversaries):")
    by_schedule: dict[str, Counter] = {}
    for entry in atlas:
        by_schedule.setdefault(entry.schedule.name, Counter())[
            entry.meeting_class
        ] += 1
    for name, kinds in by_schedule.items():
        summary = ", ".join(f"{count} {cls}" for cls, count in sorted(kinds.items()))
        print(f"  {name:<10} -> {summary}")

    print()
    print("Moral (Section 5): synchrony is not a convenience here — it is")
    print("the resource.  Time can substitute for spatial asymmetry only")
    print("when nobody else controls the clock.")


if __name__ == "__main__":
    main()
