#!/usr/bin/env python3
"""Anatomy of a UniversalRV run: which phase actually met?

Algorithm 3 knows nothing, so it loops over phases P = 1, 2, ...,
decoding each as an assumption triple (n, d, delta) and betting a
fixed-duration AsymmRV segment — plus, when delta >= d, a SymmRV
segment — on it.  Because every segment's duration is a closed-form
function of the phase, the whole timeline can be reconstructed without
instrumenting the agents; this script overlays a real run's meeting
time on that timeline.

Run:  python examples/phase_anatomy.py
"""

from repro.core import TUNED, phase_duration, rendezvous
from repro.core.pairing import untriple
from repro.graphs import oriented_ring
from repro.symmetry import classify_stic


def timeline(profile, phases):
    """Yield (phase, (n, d, delta), start_round, end_round)."""
    clock = 0
    for p in range(1, phases + 1):
        duration = phase_duration(profile, p)
        yield p, untriple(p), clock, clock + duration
        clock += duration


def main() -> None:
    ring = oriented_ring(4)
    u, v, delta = 0, 2, 2
    verdict = classify_stic(ring, u, v, delta)
    print(f"STIC: 4-ring, nodes ({u},{v}), delay {delta} -> {verdict.reason}\n")

    result = rendezvous(ring, u, v, delta)
    assert result.met
    met_at = result.time_from_later
    print(f"UniversalRV met after {met_at} rounds (later-agent clock).\n")

    print("phase  assumes (n,d,delta')  executed?      rounds (agent clock)")
    print("-----  --------------------  -------------  --------------------")
    shown = 0
    for p, (n, d, dc), start, end in timeline(TUNED, 40):
        if shown >= 12 and end <= met_at:
            continue
        executed = "yes" if end > start else "skip (d >= n)"
        marker = ""
        if start <= met_at < end:
            marker = f"   <-- meeting happened here"
        if end > start or p <= 8:
            print(f"{p:5d}  (n={n}, d={d}, δ'={dc - 1})".ljust(29)
                  + executed.ljust(15)
                  + f"[{start}, {end})" + marker)
            shown += 1
        if start > met_at and shown > 14:
            break
    print()
    print("Each executed phase spends 2(P(n)+δ') rounds hoping the positions")
    print("are non-symmetric, then (if δ' >= d) 2·T(n,d,δ') rounds hoping they")
    print("are symmetric with Shrink = d.  The bet whose assumptions match")
    print("reality is guaranteed to pay off — earlier accidental meetings")
    print("(like this one) are a welcome bonus.")


if __name__ == "__main__":
    main()
