"""Bit-string encodings used by the label-based rendezvous machinery.

``AsymmRV`` (our substitute for the algorithm of Czyzowicz, Kosowski &
Pelc [20]) turns each agent's truncated view into a *label* — a finite
bit string — and then schedules exploration/waiting periods from a
transformed version of that label.  The transformations here provide
the two properties the correctness argument needs:

* :func:`double_and_terminate` makes the code **prefix-free**: no
  transformed label is a prefix of another, so unequal labels disagree
  at some position even when their raw lengths differ.
* :func:`int_to_bits` / :func:`bits_to_int` are the canonical binary
  codecs used to serialize view signatures.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = [
    "int_to_bits",
    "bits_to_int",
    "double_and_terminate",
    "undouble",
    "bytes_to_bits",
]


def int_to_bits(value: int, width: int | None = None) -> tuple[int, ...]:
    """Big-endian binary expansion of a non-negative integer.

    If ``width`` is given the result is zero-padded on the left to that
    width (raising if the value does not fit).
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    bits = tuple(int(c) for c in bin(value)[2:]) if value else (0,)
    if width is not None:
        if len(bits) > width:
            raise ValueError(f"{value} does not fit in {width} bits")
        bits = (0,) * (width - len(bits)) + bits
    return bits


def bits_to_int(bits: Iterable[int]) -> int:
    """Inverse of :func:`int_to_bits` (big-endian)."""
    out = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {bit}")
        out = (out << 1) | bit
    return out


def double_and_terminate(bits: Sequence[int]) -> tuple[int, ...]:
    """Classic prefix-free transformation: double every bit, append 01.

    ``b1 b2 ... bk  ->  b1 b1 b2 b2 ... bk bk 0 1``

    The doubled body never contains the block "01" at an even offset,
    so the terminator is unambiguous and the code is prefix-free: for
    any two distinct inputs, neither output is a prefix of the other.
    """
    out: list[int] = []
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {bit}")
        out.append(bit)
        out.append(bit)
    out.extend((0, 1))
    return tuple(out)


def undouble(code: Sequence[int]) -> tuple[int, ...]:
    """Inverse of :func:`double_and_terminate`; validates the format."""
    if len(code) < 2 or len(code) % 2 != 0:
        raise ValueError("malformed doubled code: bad length")
    if tuple(code[-2:]) != (0, 1):
        raise ValueError("malformed doubled code: missing 01 terminator")
    body = code[:-2]
    bits: list[int] = []
    for i in range(0, len(body), 2):
        pair = (body[i], body[i + 1])
        if pair == (0, 0):
            bits.append(0)
        elif pair == (1, 1):
            bits.append(1)
        else:
            raise ValueError(f"malformed doubled code: pair {pair} at {i}")
    return tuple(bits)


def bytes_to_bits(data: bytes) -> tuple[int, ...]:
    """Expand bytes into a big-endian bit tuple (8 bits per byte)."""
    out: list[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            out.append((byte >> shift) & 1)
    return tuple(out)
