"""Deterministic encodings: canonical JSON and rendezvous bit strings.

Two unrelated-looking codec families live here because they share one
contract — **byte-stable encodings** that every layer of the system can
rely on being identical across processes, machines, and re-runs:

* :func:`canonical_json` / :func:`json_roundtrip` are the canonical
  JSON codec behind the content-addressed result store, the run
  journal, the campaign replay artifacts, and every byte-identity
  check in CI (the REPRO104 lint rule enforces routing through them —
  see docs/static_analysis.md).  They used to live in
  :mod:`repro.experiments.store`, which still re-exports them.
* the bit-string transforms are used by ``AsymmRV`` (our substitute
  for the algorithm of Czyzowicz, Kosowski & Pelc [20]), which turns
  each agent's truncated view into a *label* — a finite bit string —
  and schedules exploration/waiting periods from a transformed version
  of that label.  :func:`double_and_terminate` makes the code
  **prefix-free**: no transformed label is a prefix of another, so
  unequal labels disagree at some position even when their raw lengths
  differ.  :func:`int_to_bits` / :func:`bits_to_int` are the canonical
  binary codecs used to serialize view signatures.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from typing import Any

__all__ = [
    "canonical_json",
    "json_roundtrip",
    "int_to_bits",
    "bits_to_int",
    "double_and_terminate",
    "undouble",
    "bytes_to_bits",
]


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace).

    The single canonical serializer: cache keys are SHA-256 digests of
    this text, journal lines are this text, and CI asserts cold==warm
    byte-identity over outputs derived from it.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def json_roundtrip(obj: Any) -> Any:
    """Normalize a payload to what a store read would return.

    The orchestrator passes every shard result through this even when
    caching is off, so merged records are bit-identical between cold,
    warm, and cache-disabled runs.
    """
    return json.loads(canonical_json(obj))


def int_to_bits(value: int, width: int | None = None) -> tuple[int, ...]:
    """Big-endian binary expansion of a non-negative integer.

    If ``width`` is given the result is zero-padded on the left to that
    width (raising if the value does not fit).
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    bits = tuple(int(c) for c in bin(value)[2:]) if value else (0,)
    if width is not None:
        if len(bits) > width:
            raise ValueError(f"{value} does not fit in {width} bits")
        bits = (0,) * (width - len(bits)) + bits
    return bits


def bits_to_int(bits: Iterable[int]) -> int:
    """Inverse of :func:`int_to_bits` (big-endian)."""
    out = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {bit}")
        out = (out << 1) | bit
    return out


def double_and_terminate(bits: Sequence[int]) -> tuple[int, ...]:
    """Classic prefix-free transformation: double every bit, append 01.

    ``b1 b2 ... bk  ->  b1 b1 b2 b2 ... bk bk 0 1``

    The doubled body never contains the block "01" at an even offset,
    so the terminator is unambiguous and the code is prefix-free: for
    any two distinct inputs, neither output is a prefix of the other.
    """
    out: list[int] = []
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {bit}")
        out.append(bit)
        out.append(bit)
    out.extend((0, 1))
    return tuple(out)


def undouble(code: Sequence[int]) -> tuple[int, ...]:
    """Inverse of :func:`double_and_terminate`; validates the format."""
    if len(code) < 2 or len(code) % 2 != 0:
        raise ValueError("malformed doubled code: bad length")
    if tuple(code[-2:]) != (0, 1):
        raise ValueError("malformed doubled code: missing 01 terminator")
    body = code[:-2]
    bits: list[int] = []
    for i in range(0, len(body), 2):
        pair = (body[i], body[i + 1])
        if pair == (0, 0):
            bits.append(0)
        elif pair == (1, 1):
            bits.append(1)
        else:
            raise ValueError(f"malformed doubled code: pair {pair} at {i}")
    return tuple(bits)


def bytes_to_bits(data: bytes) -> tuple[int, ...]:
    """Expand bytes into a big-endian bit tuple (8 bits per byte)."""
    out: list[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            out.append((byte >> shift) & 1)
    return tuple(out)
