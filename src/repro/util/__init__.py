"""Shared utilities: deterministic RNG, canonical JSON, bit encodings."""

from repro.util.encoding import (
    bits_to_int,
    bytes_to_bits,
    canonical_json,
    double_and_terminate,
    int_to_bits,
    json_roundtrip,
    undouble,
)
from repro.util.lcg import SplitMix64, derive_seed

__all__ = [
    "SplitMix64",
    "derive_seed",
    "canonical_json",
    "json_roundtrip",
    "int_to_bits",
    "bits_to_int",
    "double_and_terminate",
    "undouble",
    "bytes_to_bits",
]
