"""Shared utilities: deterministic RNG and bit-string encodings."""

from repro.util.encoding import (
    bits_to_int,
    bytes_to_bits,
    double_and_terminate,
    int_to_bits,
    undouble,
)
from repro.util.lcg import SplitMix64, derive_seed

__all__ = [
    "SplitMix64",
    "derive_seed",
    "int_to_bits",
    "bits_to_int",
    "double_and_terminate",
    "undouble",
    "bytes_to_bits",
]
