"""Deterministic, portable pseudo-random number generation.

The paper's algorithms are deterministic: both agents must derive *the
same* exploration sequence from the same public parameter (the assumed
graph size ``n``).  Python's :mod:`random` is stable across platforms,
but we want an explicitly specified generator so that sequences are
reproducible byte-for-byte forever, independent of the standard
library.  We use the classic 64-bit SplitMix64 generator, which has a
one-word state, passes BigCrush, and is trivially portable.
"""

from __future__ import annotations

__all__ = ["SplitMix64", "derive_seed"]

_MASK64 = (1 << 64) - 1


class SplitMix64:
    """SplitMix64 PRNG (Steele, Lea & Flood 2014).

    Deterministic function of its seed; used wherever the library needs
    a "public coin" shared by both agents (e.g. certified exploration
    sequences keyed by the assumed graph size).

    >>> g = SplitMix64(42)
    >>> g.next_u64() == SplitMix64(42).next_u64()
    True
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned integer of the stream."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def randrange(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)``.

        Uses rejection sampling so the distribution is exactly uniform
        (important for the coverage certifier's expected-length
        analysis, and for honest random-walk baselines).
        """
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        # Largest multiple of `bound` that fits in 64 bits.
        limit = (1 << 64) - ((1 << 64) % bound)
        while True:
            value = self.next_u64()
            if value < limit:
                return value % bound

    def random(self) -> float:
        """Return a float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))


def derive_seed(*parts: int | str) -> int:
    """Derive a stable 64-bit seed from a tuple of ints/strings.

    Uses an FNV-1a fold over the textual representation, so
    ``derive_seed("uxs", n)`` is a pure function of ``n`` and is
    identical for both agents of a rendezvous instance.  Each part is
    folded via its ``repr`` with a terminator byte, so parts keep
    their type and position: ``("ab", "c")`` and ``("a", "bc")``
    differ, as do the int 4 and the string ``"4"``.  Campaign cells
    rely on this axis separation for independent per-cell streams
    (property-tested in tests/util/test_seed_separation.py).

    The values are pinned forever — these exact constants are part of
    the replay-artifact contract:

    >>> derive_seed("uxs", 4)
    4510507241103289587
    >>> derive_seed("uxs", "4")
    914211383304949347
    >>> derive_seed("uxs", 4) == derive_seed("uxs", 4)
    True
    """
    acc = 0xCBF29CE484222325
    for part in parts:
        for byte in f"{part!r}".encode():
            acc ^= byte
            acc = (acc * 0x100000001B3) & _MASK64
        acc ^= 0xFF
        acc = (acc * 0x100000001B3) & _MASK64
    return acc
