"""Space-time initial configurations (STICs) — the paper's central object.

A STIC ``[(u, v), delta]`` pins down everything the adversary chooses:
the two starting nodes and the difference between the starting rounds.
This module provides the value type plus enumeration helpers used by
experiments and property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.graphs.port_graph import PortLabeledGraph
from repro.symmetry.context import symmetry_context
from repro.symmetry.feasibility import (
    FeasibilityVerdict,
    classify_from_symmetry,
    classify_stic,
)

__all__ = ["STIC", "enumerate_stics", "feasible_stics", "infeasible_stics"]


@dataclass(frozen=True)
class STIC:
    """A space-time initial configuration ``[(u, v), delta]``."""

    u: int
    v: int
    delta: int

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise ValueError(f"delay must be non-negative, got {self.delta}")
        if self.u == self.v:
            raise ValueError("the model requires distinct initial nodes")

    def classify(self, graph: PortLabeledGraph) -> FeasibilityVerdict:
        """Feasibility verdict per Corollary 3.1."""
        return classify_stic(graph, self.u, self.v, self.delta)


def enumerate_stics(
    graph: PortLabeledGraph, max_delta: int
) -> Iterator[tuple[STIC, FeasibilityVerdict]]:
    """All STICs of a graph with delay up to ``max_delta``, classified.

    Symmetry data comes from the per-graph kernel: view colors and
    all-pairs ``Shrink`` are computed once per graph (not per pair),
    keeping full enumeration cheap for test sweeps.
    """
    context = symmetry_context(graph)
    colors = context.colors
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            symmetric = bool(colors[u] == colors[v])
            s = context.shrink_value(u, v) if symmetric else None
            for delta in range(max_delta + 1):
                yield STIC(u, v, delta), classify_from_symmetry(
                    symmetric, s, delta
                )


def feasible_stics(graph: PortLabeledGraph, max_delta: int) -> list[STIC]:
    """All feasible STICs with delay up to ``max_delta``."""
    return [s for s, verdict in enumerate_stics(graph, max_delta) if verdict.feasible]


def infeasible_stics(graph: PortLabeledGraph, max_delta: int) -> list[STIC]:
    """All infeasible STICs with delay up to ``max_delta``."""
    return [
        s for s, verdict in enumerate_stics(graph, max_delta) if not verdict.feasible
    ]
