"""Space-time initial configurations (STICs) — the paper's central object.

A STIC ``[(u, v), delta]`` pins down everything the adversary chooses:
the two starting nodes and the difference between the starting rounds.
This module provides the value type plus enumeration helpers used by
experiments and property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from repro.graphs.port_graph import PortLabeledGraph
from repro.symmetry.context import symmetry_context
from repro.symmetry.feasibility import (
    FeasibilityVerdict,
    classify_from_symmetry,
    classify_stic,
)

__all__ = ["STIC", "enumerate_stics", "feasible_stics", "infeasible_stics"]


@dataclass(frozen=True)
class STIC:
    """A space-time initial configuration ``[(u, v), delta]``."""

    u: int
    v: int
    delta: int

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise ValueError(f"delay must be non-negative, got {self.delta}")
        if self.u == self.v:
            raise ValueError("the model requires distinct initial nodes")

    def classify(self, graph: PortLabeledGraph) -> FeasibilityVerdict:
        """Feasibility verdict per Corollary 3.1."""
        return classify_stic(graph, self.u, self.v, self.delta)


def enumerate_stics(
    graph: PortLabeledGraph, max_delta: int, *, block_size: int | None = None
) -> Iterator[tuple[STIC, FeasibilityVerdict]]:
    """All STICs of a graph with delay up to ``max_delta``, classified.

    Symmetry data comes from the per-graph kernel: view colors and
    all-pairs ``Shrink`` are computed once per graph (not per pair),
    keeping full enumeration cheap for test sweeps.

    With ``block_size`` the sweep streams: ``u`` runs in blocks of that
    many rows and the ``Shrink`` values of the block's symmetric pairs
    come from the kernel's batched per-pair BFS
    (:meth:`~repro.symmetry.context.SymmetryContext.shrink_pairs`), so
    nothing dense beyond one ``block x n`` slab is held — the scale
    path for huge graphs.  The (STIC, verdict) stream is identical
    either way.
    """
    context = symmetry_context(graph)
    colors = context.colors
    n = graph.n
    if block_size is None:
        for u in range(n):
            for v in range(u + 1, n):
                symmetric = bool(colors[u] == colors[v])
                s = context.shrink_value(u, v) if symmetric else None
                for delta in range(max_delta + 1):
                    yield STIC(u, v, delta), classify_from_symmetry(
                        symmetric, s, delta
                    )
        return
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block_rows = np.arange(start, stop, dtype=np.int64)
        same = colors[block_rows][:, None] == colors[None, :]
        upper = np.arange(n, dtype=np.int64)[None, :] > block_rows[:, None]
        row_index, vs = np.nonzero(same & upper)
        us = block_rows[row_index]
        shrinks = context.shrink_pairs(us, vs) if us.size else us
        cursor = 0
        pairs = us.size
        for u in range(start, stop):
            for v in range(u + 1, n):
                if cursor < pairs and us[cursor] == u and vs[cursor] == v:
                    symmetric = True
                    s: int | None = int(shrinks[cursor])
                    cursor += 1
                else:
                    symmetric = False
                    s = None
                for delta in range(max_delta + 1):
                    yield STIC(u, v, delta), classify_from_symmetry(
                        symmetric, s, delta
                    )


def feasible_stics(graph: PortLabeledGraph, max_delta: int) -> list[STIC]:
    """All feasible STICs with delay up to ``max_delta``."""
    return [s for s, verdict in enumerate_stics(graph, max_delta) if verdict.feasible]


def infeasible_stics(graph: PortLabeledGraph, max_delta: int) -> list[STIC]:
    """All infeasible STICs with delay up to ``max_delta``."""
    return [
        s for s, verdict in enumerate_stics(graph, max_delta) if not verdict.feasible
    ]
