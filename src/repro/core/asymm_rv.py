"""``AsymmRV(n)`` — rendezvous from non-symmetric positions ([20]).

Substitution (DESIGN.md §2.2): instead of the log-space machinery of
Czyzowicz–Kosowski–Pelc we implement the classical label +
time-multiplexing scheme, which provides the same *guarantee*
(Proposition 3.1: from non-symmetric positions in a graph of size
``n``, rendezvous within a computable bound for **any** delay):

1. **Label acquisition** (fixed ``2 * view_budget`` rounds): the agent
   derives a label from its own truncated view — physically
   reconstructing it by walking (``faithful`` mode), or receiving the
   view-determined value from the harness while waiting in place
   (``oracle`` mode; charged the same budget).  Non-symmetric nodes
   have different views at depth ``n - 1``, hence different labels.
2. **Scheduling**: the label is turned into a periodic activity word
   (:mod:`repro.core.schedules`); in active slots the agent traverses
   the whole graph along the UXS and returns home, in passive slots it
   waits at home.  Distinct labels guarantee a slot where one agent
   explores while the other sits still — a meeting.

Every round count in this procedure is a function of the *parameters*
only (never of the graph or position), which is what UniversalRV's
phase bookkeeping requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Generator, Sequence
from typing import TYPE_CHECKING

from repro.core.combinators import backtrack
from repro.core.labels import (
    encode_view_tree,
    hash_bits,
    max_label_bits,
    pad_bits,
    reconstruct_view,
)
from repro.core.schedules import good_window_bound, schedule_word
from repro.sim.actions import Action, Move, Perception, WaitBlock
from repro.sim.agent import AgentScript, wait_rounds

if TYPE_CHECKING:  # circular at runtime: universal imports asymm_rv
    from repro.core.universal import UniversalOracle

__all__ = [
    "AsymmParams",
    "asymm_rv",
    "make_asymm_algorithm",
    "uxs_traverse_and_return",
    "finalize_label",
    "slot_rounds",
    "word_slots",
    "asymm_meeting_bound",
]


@dataclass(frozen=True)
class AsymmParams:
    """Public parameters of one AsymmRV execution (shared by both agents).

    Attributes
    ----------
    n:
        Assumed graph size.
    depth:
        Truncated-view depth used for labels (reference: ``n - 1``).
    uxs:
        The exploration sequence used in active slots (must cover the
        graph from every node for the guarantee to hold).
    view_budget:
        Round budget for label acquisition; must dominate the faithful
        reconstruction cost on the assumed graph class.
    label_mode:
        ``"padded"`` (injective, reference) or ``"hash16"`` /
        ``"hash32"`` (fixed small width; harnesses certify per run
        that the two agents' labels differ).
    """

    n: int
    depth: int
    uxs: tuple[int, ...]
    view_budget: int
    label_mode: str = "padded"


def slot_rounds(params: AsymmParams) -> int:
    """Rounds per schedule slot: full UXS walk out and back."""
    return 2 * (len(params.uxs) + 1)


def label_width(params: AsymmParams) -> int:
    """Bit width of finalized labels under these parameters."""
    if params.label_mode == "padded":
        return max_label_bits(params.n, params.depth)
    if params.label_mode == "hash16":
        return 16
    if params.label_mode == "hash32":
        return 32
    raise ValueError(f"unknown label mode {params.label_mode!r}")


def word_slots(params: AsymmParams) -> int:
    """Length of the periodic schedule word (marker + 4 slots per bit)."""
    return 6 + 4 * label_width(params)


def finalize_label(raw_bits: Sequence[int], params: AsymmParams) -> tuple[int, ...]:
    """Map a raw view encoding to the fixed-width label actually used."""
    if params.label_mode == "padded":
        return pad_bits(raw_bits, label_width(params))
    return hash_bits(raw_bits, label_width(params))


def asymm_meeting_bound(params: AsymmParams) -> int:
    """Rounds (from the later agent's start) within which rendezvous is
    guaranteed for non-symmetric positions — our concrete ``P(n)``.

    Acquisition takes ``2 * view_budget``; afterwards a good window
    occurs within :func:`good_window_bound` slots (labels have equal
    width, so both words have length :func:`word_slots`); one extra
    slot absorbs partial-slot alignment.
    """
    w = word_slots(params)
    return 2 * params.view_budget + (good_window_bound(w, w) + 2) * slot_rounds(params)


def uxs_traverse_and_return(percept: Perception, uxs: Sequence[int]) -> AgentScript:
    """One *active slot*: apply the UXS from home, then walk back.

    Takes exactly ``2 * (len(uxs) + 1)`` rounds on any graph.
    """
    trail: list[int] = []
    percept = yield Move(0)
    assert percept.entry_port is not None
    q = percept.entry_port
    trail.append(q)
    for a in uxs:
        p = (q + a) % percept.degree
        percept = yield Move(p)
        assert percept.entry_port is not None
        q = percept.entry_port
        trail.append(q)
    percept = yield from backtrack(percept, trail)
    return percept


def _acquire_label_faithful(
    percept: Perception, params: AsymmParams
) -> Generator[Action, Perception, tuple[Perception, tuple[int, ...]]]:
    """Reconstruct the view within ``2 * view_budget`` rounds.

    If the budget is exhausted mid-walk (possible only when the actual
    graph exceeds the assumed size, i.e. in phases whose assumptions
    are wrong and whose outcome does not matter), the walk is undone
    and a constant fallback label is used.  Either way the acquisition
    takes exactly ``2 * view_budget`` rounds and ends at home.
    """
    budget = params.view_budget
    inner = reconstruct_view(percept, params.depth)
    trail: list[int] = []
    used = 0
    tree = None
    try:
        action = next(inner)
    except StopIteration as stop:  # depth 0: immediate return
        percept, tree = stop.value
        action = None
    while action is not None:
        if used >= budget:
            inner.close()
            break
        if isinstance(action, Move):
            percept = yield action
            assert percept.entry_port is not None
            trail.append(percept.entry_port)
            used += 1
        elif isinstance(action, WaitBlock):
            span = min(action.rounds, budget - used)
            if span:
                percept = yield WaitBlock(span)
            used += span
        else:
            percept = yield action
            used += 1
        try:
            action = inner.send(percept)
        except StopIteration as stop:
            percept, tree = stop.value
            trail.clear()  # reconstruction ends back at home
            action = None
    if tree is not None:
        raw = encode_view_tree(tree)
    else:
        raw = (0,)  # fallback: wrong-phase truncation
    percept = yield from backtrack(percept, trail)
    percept = yield from wait_rounds(percept, 2 * budget - used - len(trail))
    return percept, finalize_label(raw, params)


def asymm_rv(
    percept: Perception,
    params: AsymmParams,
    oracle_label: Sequence[int] | None = None,
) -> AgentScript:
    """Agent subroutine for AsymmRV; runs forever (callers truncate).

    ``oracle_label`` supplies the *raw* view encoding in oracle mode
    (``None`` selects faithful physical reconstruction).  The raw
    encoding must equal ``encode_graph_view(graph, home, depth)`` —
    i.e. be a function of the agent's own view only.
    """
    if oracle_label is not None:
        bits = finalize_label(oracle_label, params)
        percept = yield from wait_rounds(percept, 2 * params.view_budget)
    else:
        percept, bits = yield from _acquire_label_faithful(percept, params)

    word = schedule_word(bits)
    rounds_per_slot = slot_rounds(params)
    slot = 0
    while True:
        if word[slot % len(word)]:
            percept = yield from uxs_traverse_and_return(percept, params.uxs)
        else:
            percept = yield from wait_rounds(percept, rounds_per_slot)
        slot += 1


def make_asymm_algorithm(
    params: AsymmParams, *, use_oracle: bool
) -> Callable[..., AgentScript]:
    """Algorithm factory: dedicated ``AsymmRV`` with known parameters.

    With ``use_oracle=True`` the scheduler must supply per-agent
    oracles exposing ``raw_label(n)`` (see
    :class:`repro.core.universal.UniversalOracle`); otherwise agents
    reconstruct their views physically.
    """

    def algorithm(
        percept: Perception, oracle: UniversalOracle | None = None
    ) -> AgentScript:
        raw: Sequence[int] | None = None
        if use_oracle:
            assert oracle is not None, "oracle mode needs a scheduler oracle"
            raw = oracle.raw_label(params.n)
        yield from asymm_rv(percept, params, raw)
        raise AssertionError("asymm_rv never returns")

    return algorithm
