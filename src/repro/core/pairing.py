"""The pairing bijections f and g of Section 3.2.

``f(x, y) = x + (x + y - 1)(x + y - 2) / 2`` is the Cantor pairing
bijection from N x N to N (N = positive integers), and
``g(x, y, z) = f(f(x, y), z)`` is the induced bijection from
N x N x N to N.  Algorithm UniversalRV enumerates phases
``P = 1, 2, ...`` and decodes each as ``(n, d, delta) = g^-1(P)``.
"""

from __future__ import annotations

from math import isqrt

__all__ = ["pair", "unpair", "triple", "untriple"]


def pair(x: int, y: int) -> int:
    """Cantor pairing ``f(x, y)`` on positive integers."""
    if x < 1 or y < 1:
        raise ValueError(f"f is defined on positive integers, got ({x}, {y})")
    s = x + y
    return x + (s - 1) * (s - 2) // 2


def unpair(p: int) -> tuple[int, int]:
    """Inverse ``f^-1(p)``; returns ``(x, y)`` with ``pair(x, y) == p``."""
    if p < 1:
        raise ValueError(f"f^-1 is defined on positive integers, got {p}")
    # Find the diagonal s = x + y: the largest s with (s-1)(s-2)/2 < p.
    # (s-1)(s-2)/2 < p  <=>  s^2 - 3s + 2 - 2p < 0, so s is near
    # (3 + sqrt(1 + 8p)) / 2; adjust by a couple of steps to be exact.
    s = (3 + isqrt(1 + 8 * p)) // 2
    while (s - 1) * (s - 2) // 2 >= p:
        s -= 1
    while s * (s - 1) // 2 < p:
        s += 1
    x = p - (s - 1) * (s - 2) // 2
    y = s - x
    return x, y


def triple(x: int, y: int, z: int) -> int:
    """``g(x, y, z) = f(f(x, y), z)`` — bijection N^3 -> N."""
    return pair(pair(x, y), z)


def untriple(p: int) -> tuple[int, int, int]:
    """Inverse ``g^-1(p)``; returns ``(x, y, z)``."""
    w, z = unpair(p)
    x, y = unpair(w)
    return x, y, z
