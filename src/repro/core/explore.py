"""Procedure ``Explore(u, d, delta)`` — Algorithm 2 of the paper.

The agent enumerates *all* walks of length ``d`` starting at its
current node, in lexicographic order of their outgoing-port sequences.
For each walk it: traverses the walk (``d`` rounds), traverses the
reverse walk back (``d`` rounds), then waits ``delta - d`` rounds.
Each iteration therefore takes exactly ``d + delta`` rounds, the
quantity Lemma 3.2's alignment argument relies on.

The agent does not know the graph; it discovers the degree profile of
each walk while walking and advances an *odometer* over port sequences
(increment the deepest digit that has room, reset the suffix to 0).
Two agents at symmetric nodes see identical degree profiles, so they
enumerate walks in lockstep — the heart of the paper's symmetry
argument.
"""

from __future__ import annotations

from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.actions import Move, Perception
from repro.sim.agent import AgentScript, wait_rounds

__all__ = ["explore", "explore_round_count", "count_walks"]


def explore(percept: Perception, d: int, delta: int) -> AgentScript:
    """Agent subroutine implementing ``Explore(u, d, delta)``.

    Requires ``1 <= d <= delta`` (as in the paper's usage).  Starts and
    ends at the same node; returns the final perception.
    """
    if d < 1:
        raise ValueError(f"Explore needs d >= 1, got d={d}")
    if delta < d:
        raise ValueError(f"Explore needs delta >= d, got d={d}, delta={delta}")

    # Odometer state: the next port sequence to traverse, plus the
    # degree profile observed along the previous traversal.
    # degrees[i] = degree of the node *before* step i of the walk.
    ports = [0] * d
    while True:
        degrees = [0] * d
        entry_ports = [0] * d
        # Forward traversal.
        for i in range(d):
            degrees[i] = percept.degree
            # A port chosen by the odometer is always valid: position i
            # was either visited before with this prefix (so its degree
            # bound was already accounted) or the digit is 0.
            percept = yield Move(ports[i])
            entry_ports[i] = percept.entry_port  # type: ignore[assignment]
        # Reverse traversal (the paper's \bar{pi}).
        for i in range(d - 1, -1, -1):
            percept = yield Move(entry_ports[i])
        # Wait the remaining delta - d rounds at the origin.
        percept = yield from wait_rounds(percept, delta - d)
        # Advance the odometer in lexicographic order.
        level = d - 1
        while level >= 0 and ports[level] + 1 >= degrees[level]:
            level -= 1
        if level < 0:
            return percept
        ports[level] += 1
        for i in range(level + 1, d):
            ports[i] = 0


def count_walks(graph: PortLabeledGraph, u: int, d: int) -> int:
    """Number of walks of length ``d`` starting at ``u``.

    Computed by dynamic programming over walk endpoints; this is the
    number of odometer iterations ``explore`` performs.
    """
    counts = {u: 1}
    for _ in range(d):
        nxt: dict[int, int] = {}
        for node, c in counts.items():
            for p in range(graph.degree(node)):
                w = graph.succ(node, p)
                nxt[w] = nxt.get(w, 0) + c
        counts = nxt
    return sum(counts.values())


def explore_round_count(graph: PortLabeledGraph, u: int, d: int, delta: int) -> int:
    """Exact number of rounds ``explore`` spends when run at ``u``."""
    return count_walks(graph, u, d) * (d + delta)
