"""View-based labels for AsymmRV (substitute for [20]; see DESIGN.md §2.2).

Non-symmetric nodes of an ``n``-node graph have different views
truncated at depth ``n - 1`` (Norris' theorem).  Each agent therefore
derives a *label* from its own truncated view; distinct views yield
distinct labels, and the time-multiplexing scheduler of
:mod:`repro.core.schedules` turns any label difference into a
guaranteed meeting.

The encoding is the canonical *minimized view DAG*: truncated views
are exponentially large as trees but have at most ``n * (depth + 1)``
distinct subtrees, so hash-consing them bottom-up (in deterministic
postorder) gives a polynomial-size canonical form.  Two computation
paths produce bit-identical encodings:

* :func:`encode_graph_view` — "oracle" mode: walks the graph data
  structure directly (polynomial time; the agent is charged a fixed
  round budget while waiting in place).
* :func:`encode_view_tree` — "faithful" mode: encodes a view tree that
  the agent physically reconstructed by walking all paths of the given
  depth (see :func:`reconstruct_view`), exponential but
  perception-only.

Labels are padded to the fixed width :func:`max_label_bits` (reference
mode) or hashed to a small fixed width (tuned mode; collisions would
void the guarantee, so harnesses certify label distinctness per run).
"""

from __future__ import annotations

from collections.abc import Generator, Sequence

from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.actions import Action, Move, Perception
from repro.util.lcg import SplitMix64, derive_seed

__all__ = [
    "encode_graph_view",
    "encode_view_tree",
    "reconstruct_view",
    "view_reconstruction_budget",
    "max_label_bits",
    "pad_bits",
    "unpad_bits",
    "hash_bits",
]

_FIELD = 16  # fixed field width; all quantities here are < 2^16


def _emit_row(bits: list[int], degree: int, children: tuple | None) -> None:
    bits.append(0 if children is None else 1)
    bits.extend(_field(degree))
    if children is not None:
        for entry, child_id in children:
            bits.extend(_field(entry))
            bits.extend(_field(child_id))


def _field(value: int) -> tuple[int, ...]:
    if not (0 <= value < (1 << _FIELD)):
        raise ValueError(f"field value {value} out of range")
    return tuple((value >> shift) & 1 for shift in range(_FIELD - 1, -1, -1))


def _encode_rows(rows: list[tuple[int, tuple | None]], root_id: int) -> tuple[int, ...]:
    bits: list[int] = []
    bits.extend(_field(len(rows)))
    for degree, children in rows:
        _emit_row(bits, degree, children)
    bits.extend(_field(root_id))
    return tuple(bits)


def encode_graph_view(graph: PortLabeledGraph, v: int, depth: int) -> tuple[int, ...]:
    """Canonical bit encoding of the depth-``depth`` view from ``v``.

    Polynomial time and size: memoized on ``(node, remaining_depth)``,
    with canonical ids assigned at first postorder appearance of each
    distinct sub-view signature.
    """
    ids: dict[object, int] = {}
    rows: list[tuple[int, tuple | None]] = []
    memo: dict[tuple[int, int], int] = {}

    def visit(node: int, remaining: int) -> int:
        key = (node, remaining)
        if key in memo:
            return memo[key]
        degree = graph.degree(node)
        if remaining == 0:
            sig: object = ("leaf", degree)
            children = None
        else:
            child_ids = tuple(
                (
                    graph.entry_port(node, p),
                    visit(graph.succ(node, p), remaining - 1),
                )
                for p in range(degree)
            )
            sig = ("node", degree, child_ids)
            children = child_ids
        if sig not in ids:
            ids[sig] = len(rows)
            rows.append((degree, children))
        memo[key] = ids[sig]
        return ids[sig]

    root = visit(v, depth)
    return _encode_rows(rows, root)


def encode_view_tree(tree: tuple) -> tuple[int, ...]:
    """Canonical bit encoding of a materialized truncated view tree.

    ``tree`` uses the :func:`repro.symmetry.views.truncated_view`
    format: ``(degree, None)`` at the cutoff, else
    ``(degree, ((port, entry, subtree), ...))`` with ports in order.
    Produces bit-identical output to :func:`encode_graph_view` on the
    same view.
    """
    ids: dict[object, int] = {}
    rows: list[tuple[int, tuple | None]] = []

    def visit(node: tuple) -> int:
        degree, children = node
        if children is None:
            sig: object = ("leaf", degree)
            encoded = None
        else:
            child_ids = tuple(
                (entry, visit(sub)) for _port, entry, sub in children
            )
            sig = ("node", degree, child_ids)
            encoded = child_ids
        if sig not in ids:
            ids[sig] = len(rows)
            rows.append((degree, encoded))
        return ids[sig]

    root = visit(tree)
    return _encode_rows(rows, root)


def reconstruct_view(
    percept: Perception, depth: int
) -> Generator[Action, Perception, tuple[Perception, tuple]]:
    """Agent subroutine: physically reconstruct the truncated view.

    Enumerates all walks of length ``depth`` from the current node in
    lexicographic order (odometer, as in ``Explore``), recording the
    degree and entry port at each step, and assembles the view tree in
    :func:`repro.symmetry.views.truncated_view` format.

    Returns ``(final_perception, view_tree)``; starts and ends at the
    same node.  Cost is bounded by :func:`view_reconstruction_budget`.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    root_degree = percept.degree
    if depth == 0 or root_degree == 0:
        return percept, (root_degree, None)

    # children[path] accumulates the discovered tree as nested dicts:
    # {"deg": int, "kids": {port: [entry, subdict]}}.
    root: dict = {"deg": root_degree, "kids": {}}
    ports = [0] * depth
    while True:
        degrees = [0] * depth
        entries = [0] * depth
        cursor = root
        for i in range(depth):
            degrees[i] = percept.degree
            percept = yield Move(ports[i])
            entries[i] = percept.entry_port
            nxt = cursor["kids"].get(ports[i])
            if nxt is None:
                nxt = [entries[i], {"deg": percept.degree, "kids": {}}]
                cursor["kids"][ports[i]] = nxt
            else:
                nxt[1]["deg"] = percept.degree
            cursor = nxt[1]
        for i in range(depth - 1, -1, -1):
            percept = yield Move(entries[i])
        level = depth - 1
        while level >= 0 and ports[level] + 1 >= degrees[level]:
            level -= 1
        if level < 0:
            break
        ports[level] += 1
        for i in range(level + 1, depth):
            ports[i] = 0

    def freeze(node: dict, remaining: int) -> tuple:
        if remaining == 0:
            return (node["deg"], None)
        children = tuple(
            (port, node["kids"][port][0], freeze(node["kids"][port][1], remaining - 1))
            for port in sorted(node["kids"])
        )
        return (node["deg"], children)

    return percept, freeze(root, depth)


def view_reconstruction_budget(n: int, depth: int) -> int:
    """Upper bound on the rounds :func:`reconstruct_view` can take on
    any graph of size ``<= n`` (at most ``(n - 1)^depth`` walks, each
    costing ``2 * depth`` rounds)."""
    if depth == 0:
        return 0
    return 2 * depth * max(n - 1, 1) ** depth


def max_label_bits(n: int, depth: int) -> int:
    """Width every label for assumed size ``n`` is padded to.

    Row count is at most ``n * (depth + 1)`` (distinct sub-views per
    remaining-depth level); each row costs ``1 + 16`` bits plus
    ``32`` per port; plus the row-count and root-id fields and one
    bit for the self-delimiting pad marker.
    """
    max_rows = n * (depth + 1)
    row_bits = 1 + _FIELD + (max(n - 1, 1)) * 2 * _FIELD
    return 2 * _FIELD + max_rows * row_bits + 1


def pad_bits(bits: Sequence[int], width: int) -> tuple[int, ...]:
    """Pad to ``width`` with the self-delimiting ``1 0...0`` suffix.

    Injective for inputs of length ``< width``: the original is
    recovered by stripping trailing zeros and one final 1.
    """
    if len(bits) >= width:
        raise ValueError(f"label of {len(bits)} bits does not fit width {width}")
    return tuple(bits) + (1,) + (0,) * (width - len(bits) - 1)


def unpad_bits(padded: Sequence[int]) -> tuple[int, ...]:
    """Inverse of :func:`pad_bits`."""
    i = len(padded) - 1
    while i >= 0 and padded[i] == 0:
        i -= 1
    if i < 0 or padded[i] != 1:
        raise ValueError("malformed padding: no 1 marker found")
    return tuple(padded[:i])


def hash_bits(bits: Sequence[int], width: int) -> tuple[int, ...]:
    """Deterministic ``width``-bit digest of a bit string (tuned mode).

    Not injective in general — harnesses that use hashed labels must
    certify that the two agents' labels actually differ.
    """
    acc = derive_seed("label", len(bits))
    value = 0
    for i, bit in enumerate(bits):
        if bit:
            value ^= SplitMix64(acc ^ i).next_u64()
    rng = SplitMix64(value)
    return tuple(rng.randrange(2) for _ in range(width))
