"""The paper's algorithms: UXS, Explore, SymmRV, AsymmRV, UniversalRV."""

from repro.core.asymm_rv import (
    make_asymm_algorithm,
    AsymmParams,
    asymm_meeting_bound,
    asymm_rv,
    finalize_label,
    slot_rounds,
    uxs_traverse_and_return,
    word_slots,
)
from repro.core.bounds import (
    symm_rv_time_bound,
    universal_time_envelope,
    walk_count_bound,
)
from repro.core.combinators import backtrack, bounded_run, run_segment
from repro.core.dedicated import (
    DedicatedPlan,
    InfeasibleSTIC,
    dedicated_rendezvous,
    plan_dedicated,
)
from repro.core.explore import count_walks, explore, explore_round_count
from repro.core.labels import (
    encode_graph_view,
    encode_view_tree,
    hash_bits,
    max_label_bits,
    pad_bits,
    reconstruct_view,
    unpad_bits,
    view_reconstruction_budget,
)
from repro.core.pairing import pair, triple, unpair, untriple
from repro.core.profile import REFERENCE, TUNED, Profile, tuned_profile
from repro.core.schedules import (
    first_good_window,
    good_window_bound,
    schedule_word,
    verify_schedule_pair,
)
from repro.core.stic import STIC, enumerate_stics, feasible_stics, infeasible_stics
from repro.core.symm_rv import make_symm_rv_algorithm, symm_rv
from repro.core.universal import (
    CertificationError,
    UniversalOracle,
    certify_instance,
    make_universal_algorithm,
    phase_duration,
    rendezvous,
    universal_round_budget,
    universal_rv,
)
from repro.core.uxs import (
    apply_uxs,
    minimal_verified_uxs,
    apply_uxs_ports,
    covers_from,
    is_uxs_for_graph,
    uxs_for_size,
    uxs_length,
)

__all__ = [
    "pair",
    "unpair",
    "triple",
    "untriple",
    "apply_uxs",
    "apply_uxs_ports",
    "uxs_for_size",
    "uxs_length",
    "covers_from",
    "is_uxs_for_graph",
    "minimal_verified_uxs",
    "explore",
    "count_walks",
    "explore_round_count",
    "symm_rv",
    "make_symm_rv_algorithm",
    "symm_rv_time_bound",
    "walk_count_bound",
    "universal_time_envelope",
    "bounded_run",
    "backtrack",
    "run_segment",
    "encode_graph_view",
    "encode_view_tree",
    "reconstruct_view",
    "view_reconstruction_budget",
    "max_label_bits",
    "pad_bits",
    "unpad_bits",
    "hash_bits",
    "schedule_word",
    "verify_schedule_pair",
    "good_window_bound",
    "first_good_window",
    "AsymmParams",
    "asymm_rv",
    "make_asymm_algorithm",
    "asymm_meeting_bound",
    "finalize_label",
    "slot_rounds",
    "word_slots",
    "uxs_traverse_and_return",
    "Profile",
    "REFERENCE",
    "TUNED",
    "tuned_profile",
    "STIC",
    "enumerate_stics",
    "feasible_stics",
    "infeasible_stics",
    "universal_rv",
    "UniversalOracle",
    "make_universal_algorithm",
    "phase_duration",
    "universal_round_budget",
    "CertificationError",
    "certify_instance",
    "rendezvous",
    "DedicatedPlan",
    "InfeasibleSTIC",
    "plan_dedicated",
    "dedicated_rendezvous",
]
