"""Execution profiles: reference (paper-faithful) vs tuned (laptop-scale).

Algorithm UniversalRV's guarantees are insensitive to the *constants*
inside its sub-procedures — any shared UXS that covers the graph, any
injective labeling, any budget formula dominating the actual costs
yields the same feasibility behaviour, only with different absolute
round counts.  The reference constants (exponential view
reconstruction, ``THETA(n^3 log n)`` UXS, padded labels) make even tiny
instances astronomically slow to simulate round-by-round, so the
experiments run a *tuned* profile with small certified constants:

* short UXS, coverage **certified per run** on the actual graph;
* 16-bit hashed labels, distinctness **certified per run**;
* oracle-mode view acquisition (pure waiting, fast-forwarded).

Tests cross-validate the two profiles on the smallest instances.  See
DESIGN.md §2 for the substitution argument.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.asymm_rv import AsymmParams, asymm_meeting_bound
from repro.core.bounds import symm_rv_time_bound
from repro.core.labels import view_reconstruction_budget
from repro.core.uxs import uxs_for_size
from repro.util.lcg import SplitMix64, derive_seed

__all__ = ["Profile", "REFERENCE", "TUNED", "tuned_profile"]


class Profile:
    """Bundle of parameter schedules shared by both agents.

    All methods are pure functions of their arguments and the profile's
    constructor parameters, so two agents constructing the same profile
    derive identical parameters — the determinism the model requires.
    """

    def __init__(
        self,
        name: str,
        *,
        label_mode: str,
        view_mode: str,
        uxs_scale: int | None,
        view_depth_cap: int | None = None,
    ) -> None:
        if label_mode not in ("padded", "hash16", "hash32"):
            raise ValueError(f"unknown label mode {label_mode!r}")
        if view_mode not in ("oracle", "faithful"):
            raise ValueError(f"unknown view mode {view_mode!r}")
        self.name = name
        self.label_mode = label_mode
        self.view_mode = view_mode
        self.uxs_scale = uxs_scale  # None = reference Y(n)
        self.view_depth_cap = view_depth_cap

    # -- parameter schedules ------------------------------------------------
    def view_depth(self, n: int) -> int:
        """Label view depth for assumed size ``n`` (reference: n - 1)."""
        depth = max(n - 1, 1)
        if self.view_depth_cap is not None:
            depth = min(depth, self.view_depth_cap)
        return depth

    def uxs(self, n: int) -> tuple[int, ...]:
        """The exploration sequence both agents use for size ``n``."""
        if self.uxs_scale is None:
            return uxs_for_size(n)
        return _tuned_uxs(n, self.uxs_scale)

    def view_budget(self, n: int) -> int:
        return view_reconstruction_budget(n, self.view_depth(n))

    def asymm_params(self, n: int) -> AsymmParams:
        return AsymmParams(
            n=n,
            depth=self.view_depth(n),
            uxs=self.uxs(n),
            view_budget=self.view_budget(n),
            label_mode=self.label_mode,
        )

    # -- segment budgets ----------------------------------------------------
    def asymm_bound(self, n: int) -> int:
        """Our ``P(n)``: meeting bound of AsymmRV under this profile."""
        return asymm_meeting_bound(self.asymm_params(n))

    def symm_bound(self, n: int, d: int, delta: int) -> int:
        """``T(n, d, delta)`` of Lemma 3.3 under this profile's UXS."""
        return symm_rv_time_bound(n, d, delta, len(self.uxs(n)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Profile({self.name!r})"


@lru_cache(maxsize=256)
def _tuned_uxs(n: int, scale: int) -> tuple[int, ...]:
    """Short deterministic sequence: length ``scale * n^2`` (certified
    per run by the harness via ``is_uxs_for_graph``)."""
    if n == 1:
        return (0,)
    rng = SplitMix64(derive_seed("uxs-tuned", n, scale))
    return tuple(rng.randrange(max(2 * n, 2)) for _ in range(scale * n * n))


#: Paper-faithful constants; only tractable on the tiniest instances.
REFERENCE = Profile(
    "reference", label_mode="padded", view_mode="faithful", uxs_scale=None
)

#: Laptop-scale constants with per-run certification (see module doc).
TUNED = Profile("tuned", label_mode="hash16", view_mode="oracle", uxs_scale=12)


def tuned_profile(
    *,
    label_mode: str = "hash16",
    view_mode: str = "oracle",
    uxs_scale: int = 12,
    view_depth_cap: int | None = None,
    name: str = "custom",
) -> Profile:
    """Build a custom profile (experiments tune scale per workload)."""
    return Profile(
        name,
        label_mode=label_mode,
        view_mode=view_mode,
        uxs_scale=uxs_scale,
        view_depth_cap=view_depth_cap,
    )
