"""Closed-form time bounds quoted by the paper (Lemma 3.3, Prop. 4.1).

These formulas are used three ways: as the *padding targets* inside
Algorithm UniversalRV (both agents pad each phase segment to the same
formula-determined duration), as assertions in tests (measured run
time never exceeds the bound), and as the "paper" column of
EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.core.pairing import untriple

__all__ = [
    "symm_rv_time_bound",
    "walk_count_bound",
    "universal_time_envelope",
    "phases_until",
]


def walk_count_bound(n: int, d: int) -> int:
    """The paper's bound ``(n - 1)^d`` on walks of length ``d``."""
    return max(n - 1, 1) ** d


def symm_rv_time_bound(n: int, d: int, delta: int, uxs_length: int) -> int:
    """``T(n, d, delta)`` of Lemma 3.3.

    ``[(d + delta) * (n - 1)^d] * (M + 2) + 2 * (M + 1)`` where ``M``
    is the length of the UXS used for size ``n``.  This is an upper
    bound on the running time of ``SymmRV(n, d, delta)`` on any graph
    of size at most ``n``.
    """
    m = uxs_length
    return (d + delta) * walk_count_bound(n, d) * (m + 2) + 2 * (m + 1)


def universal_time_envelope(n: int, delta: int) -> int:
    """The ``O(n + delta)^O(n + delta)`` envelope of Proposition 4.1.

    We instantiate the constants as ``(n + delta + 2)^(2 * (n + delta + 2))``
    — a concrete member of the asymptotic class, used only for plotting
    the measured universal-algorithm times against the paper's shape.
    """
    base = n + delta + 2
    return base ** (2 * base)


def phases_until(n: int, d: int, delta: int) -> int:
    """Number of phases UniversalRV executes through phase ``g(n, d, delta)``.

    By Proposition 4.1's counting argument this is ``O(n^4 + delta^2)``.
    """
    from repro.core.pairing import triple

    return triple(n, d, delta)


def decode_phase(p: int) -> tuple[int, int, int]:
    """``(n, d, delta) = g^-1(P)`` — the assumption triple of phase ``P``."""
    return untriple(p)
