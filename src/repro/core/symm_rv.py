"""Procedure ``SymmRV(n, d, delta)`` — Algorithm 1 of the paper.

Follow the application ``R(u)`` of the UXS ``Y(n)`` at the agent's
initial node, executing ``Explore(u_i, d, delta)`` at every node
``u_i`` of ``R(u)``, then backtrack to the origin along the reverse of
``R(u)``.

Lemma 3.2: if the two agents start at symmetric nodes ``u, v`` of a
graph of size ``n`` with delay ``delta >= d = Shrink(u, v)``, running
this procedure (with correct parameters) guarantees rendezvous: at the
first UXS index ``j`` where ``u_j`` / ``v_j`` realize the Shrink
witness, the earlier agent walks the witness path of length ``d``
while the later agent is inside its ``delta - d``-round wait.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.explore import explore
from repro.core.uxs import uxs_for_size
from repro.sim.actions import Move, Perception
from repro.sim.agent import AgentScript, wait_forever

__all__ = ["symm_rv", "make_symm_rv_algorithm"]


def symm_rv(
    percept: Perception,
    n: int,
    d: int,
    delta: int,
    *,
    uxs: Sequence[int] | None = None,
) -> AgentScript:
    """Agent subroutine implementing ``SymmRV(n, d, delta)``.

    Parameters mirror the paper: assumed graph size ``n``, assumed
    ``d = Shrink`` value (``1 <= d < n``), assumed delay
    ``delta >= d``.  ``uxs`` overrides ``Y(n)`` (tests use short
    sequences to keep runs tiny); both agents must use the same value.

    Starts and ends at the agent's current node; returns the final
    perception there.
    """
    if not (1 <= d < n):
        raise ValueError(f"need 1 <= d < n, got d={d}, n={n}")
    if delta < d:
        raise ValueError(f"need delta >= d, got delta={delta}, d={d}")
    seq = tuple(uxs) if uxs is not None else uxs_for_size(n)

    # Entry ports of the walk R(u), for the final backtrack.
    back_ports: list[int] = []

    # u_0 = u.
    percept = yield from explore(percept, d, delta)
    # u_1 = succ(u_0, 0).
    percept = yield Move(0)
    q = percept.entry_port
    assert q is not None
    back_ports.append(q)
    percept = yield from explore(percept, d, delta)
    # u_{i+1} = succ(u_i, (q + a_i) mod d(u_i)) for i = 1..M.
    for a in seq:
        port = (q + a) % percept.degree
        percept = yield Move(port)
        q = percept.entry_port
        assert q is not None
        back_ports.append(q)
        percept = yield from explore(percept, d, delta)
    # Go back to u_0 along the reverse of R(u).
    for port in reversed(back_ports):
        percept = yield Move(port)
    return percept


def make_symm_rv_algorithm(
    n: int, d: int, delta: int, *, uxs: Sequence[int] | None = None
) -> Callable[[Perception], AgentScript]:
    """Algorithm factory: dedicated ``SymmRV`` with known parameters.

    This is the Section 3.1 setting (Lemma 3.2): the size, the Shrink
    value, and the delay are known to both agents.  The agent runs the
    procedure once and then waits in place (the procedure's guarantee
    is that the meeting happens *during* the run).
    """

    def algorithm(percept: Perception) -> AgentScript:
        percept = yield from symm_rv(percept, n, d, delta, uxs=uxs)
        yield from wait_forever(percept)

    return algorithm
