"""Algorithm ``UniversalRV`` — Algorithm 3 of the paper.

The agent enumerates phases ``P = 1, 2, ...``; phase ``P`` decodes the
assumption triple ``(n, d, delta) = g^-1(P)`` and, when ``d < n``:

1. runs ``AsymmRV(n)`` for ``P(n) + delta`` rounds, backtracks, and
   waits until ``2 (P(n) + delta)`` rounds from the segment start
   (hoping the positions are non-symmetric);
2. if ``delta >= d``, runs ``SymmRV(n, d, delta)`` under a
   ``T(n, d, delta)`` round cap, backtracks, and waits until
   ``2 T(n, d, delta)`` (hoping the positions are symmetric with
   ``Shrink = d`` and delay ``delta``).

Every segment has a duration that depends only on the *phase triple*
and the shared profile, never on the graph or the agent's position, so
the two agents enter every phase with their original delay — the
invariant Theorem 3.1's proof rests on.  (Deviation from the paper's
pseudocode: we cap SymmRV at ``T`` and pad to ``2T`` instead of
running it to completion and padding to ``T``; in the decisive phase
SymmRV completes within ``T`` by Lemma 3.3, and in wrong phases only
the equal duration matters.  See DESIGN.md §2.)

By Theorem 3.1 rendezvous is achieved for every feasible STIC with no
a priori knowledge; by Lemma 3.1 infeasible STICs admit no algorithm
at all.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.asymm_rv import asymm_rv
from repro.core.combinators import run_segment
from repro.core.labels import encode_graph_view
from repro.core.pairing import triple, untriple
from repro.core.profile import TUNED, Profile
from repro.core.symm_rv import symm_rv
from repro.core.uxs import is_uxs_for_graph
from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.actions import Perception
from repro.sim.agent import AgentScript
from repro.sim.scheduler import RendezvousResult, run_rendezvous
from repro.symmetry.feasibility import (
    AtlasEntry,
    FeasibilityVerdict,
    classify_stic,
)

__all__ = [
    "universal_rv",
    "UniversalOracle",
    "make_universal_algorithm",
    "phase_duration",
    "universal_round_budget",
    "universal_stic_budget",
    "CertificationError",
    "certify_graph",
    "certify_instance",
    "certify_labels",
    "certify_all_labels",
    "rendezvous",
    "universal_feasibility_atlas",
]


class CertificationError(RuntimeError):
    """A tuned-profile shortcut failed its per-run validity check."""


class UniversalOracle:
    """Harness-side label oracle for one agent (oracle view mode).

    Supplies, per assumed size ``n``, the canonical encoding of the
    view from the agent's *own* starting node at the profile's depth —
    exactly the value faithful reconstruction would compute, so using
    it changes only simulation cost, not behaviour (tests cross-check
    the two modes).
    """

    def __init__(self, graph: PortLabeledGraph, home: int, profile: Profile) -> None:
        self._graph = graph
        self._home = home
        self._profile = profile
        self._cache: dict[int, tuple[int, ...]] = {}

    def raw_label(self, n: int) -> tuple[int, ...]:
        depth = self._profile.view_depth(n)
        if depth not in self._cache:
            self._cache[depth] = encode_graph_view(self._graph, self._home, depth)
        return self._cache[depth]


def universal_rv(
    percept: Perception,
    profile: Profile = TUNED,
    oracle: UniversalOracle | None = None,
) -> AgentScript:
    """Agent script for Algorithm UniversalRV (runs until rendezvous)."""
    if profile.view_mode == "oracle" and oracle is None:
        raise ValueError("profile uses oracle view mode but no oracle was given")
    phase = 1
    while True:
        # g is a bijection on positive integers; delays are non-negative,
        # so the third component encodes delta + 1.
        n, d, delta_code = untriple(phase)
        delta = delta_code - 1
        if d < n:
            raw = oracle.raw_label(n) if profile.view_mode == "oracle" else None
            asymm_budget = profile.asymm_bound(n) + delta
            percept = yield from run_segment(
                percept,
                asymm_rv(percept, profile.asymm_params(n), raw),
                asymm_budget,
            )
            if delta >= d:
                symm_budget = profile.symm_bound(n, d, delta)
                percept = yield from run_segment(
                    percept,
                    symm_rv(percept, n, d, delta, uxs=profile.uxs(n)),
                    symm_budget,
                )
        phase += 1


def make_universal_algorithm(
    profile: Profile = TUNED,
) -> Callable[..., AgentScript]:
    """Algorithm factory for :func:`repro.sim.scheduler.run_rendezvous`.

    With an oracle-mode profile the scheduler must be given per-agent
    oracles (see :func:`rendezvous`, which wires everything up).
    """

    def algorithm(
        percept: Perception, oracle: UniversalOracle | None = None
    ) -> AgentScript:
        return universal_rv(percept, profile, oracle)

    return algorithm


def phase_duration(profile: Profile, phase: int) -> int:
    """Exact duration in rounds of phase ``phase`` (0 when skipped)."""
    n, d, delta_code = untriple(phase)
    delta = delta_code - 1
    if d >= n:
        return 0
    total = 2 * (profile.asymm_bound(n) + delta)
    if delta >= d:
        total += 2 * profile.symm_bound(n, d, delta)
    return total


def universal_round_budget(profile: Profile, n: int, d: int, delta: int) -> int:
    """Rounds (from the later agent's start) by which UniversalRV must
    have met, for a STIC whose decisive triple is ``(n, d, delta)``.

    For non-symmetric positions the decisive triple is
    ``(n, 1, actual delta)`` at worst (the first phase with the right
    ``n`` and an assumed delay ``>= delta`` meets inside its AsymmRV
    segment); for symmetric positions it is ``(n, Shrink, delta)``.
    """
    last = triple(n, d, delta + 1)
    return sum(phase_duration(profile, p) for p in range(1, last + 1))


def universal_stic_budget(
    profile: Profile,
    n: int,
    verdict: FeasibilityVerdict,
    delta: int,
    *,
    infeasible_horizon: int = 512,
) -> int:
    """Global-round budget for simulating UniversalRV on one STIC,
    sized from its feasibility verdict — the formula shared by
    :func:`rendezvous` and the batched sweeps.

    Feasible STICs get the Theorem 3.1 meeting bound for the decisive
    ``d`` (``Shrink`` when symmetric, else 1) plus one round of slack.
    Infeasible STICs get ``delta + infeasible_horizon`` rounds to
    observe the non-meeting — by Lemma 3.1 no horizon could change the
    outcome, so sweeps keep it small.  (:func:`rendezvous` instead
    grants them a full wrong-phase budget; pass that explicitly if the
    front door's generosity is wanted.)
    """
    if verdict.feasible:
        d = verdict.shrink if verdict.symmetric else 1
        return delta + universal_round_budget(profile, n, d, delta) + 1
    return delta + infeasible_horizon


def certify_graph(graph: PortLabeledGraph, profile: Profile) -> None:
    """Validate the profile's *graph-level* shortcut: its UXS for the
    actual size must cover the graph from every node (needed by both
    SymmRV and the active slots of AsymmRV in the decisive phase).

    This is the expensive half of :func:`certify_instance` and is
    independent of the starting pair — sweeps over many pairs of one
    graph should call it once plus one :func:`certify_all_labels`.
    Coverage runs through the vectorized multi-start walk of
    :func:`repro.core.uxs.is_uxs_for_graph` (early exit on coverage),
    so certification is cheap even for the reference ``Y(n)``.

    Raises :class:`CertificationError` with remediation advice.
    """
    n = graph.n
    if not is_uxs_for_graph(graph, profile.uxs(n)):
        raise CertificationError(
            f"profile {profile.name!r}: exploration sequence for n={n} does "
            "not cover this graph from every start; increase uxs_scale"
        )


def _raw_node_label(
    graph: PortLabeledGraph, node: int, profile: Profile
) -> tuple[int, ...]:
    """The canonical view encoding AsymmRV labels ``node`` with."""
    return encode_graph_view(graph, node, profile.view_depth(graph.n))


def certify_labels(
    graph: PortLabeledGraph, u: int, v: int, profile: Profile
) -> None:
    """Validate the profile's *pair-level* shortcut: with hashed
    labels, non-symmetric starting positions must hash to different
    labels (a collision would void Proposition 3.1).

    Raises :class:`CertificationError` with remediation advice.
    """
    n = graph.n
    if profile.label_mode != "padded":
        from repro.core.asymm_rv import finalize_label

        params = profile.asymm_params(n)
        label_u = _raw_node_label(graph, u, profile)
        label_v = _raw_node_label(graph, v, profile)
        if label_u != label_v and finalize_label(
            label_u, params
        ) == finalize_label(label_v, params):
            raise CertificationError(
                f"profile {profile.name!r}: hashed labels collide for "
                "non-symmetric positions; use label_mode='hash32' or 'padded'"
            )


def certify_all_labels(graph: PortLabeledGraph, profile: Profile) -> None:
    """Validate the pair-level shortcut for *every* pair of the graph.

    Encodes each node's raw view label once (``n`` encodings of the
    depth-``view_depth(n)`` view, instead of ``n (n - 1)`` when calling
    :func:`certify_labels` per pair), hashes each once, and compares
    all pairs on the cached values.

    Raises :class:`CertificationError` on the first colliding pair.
    """
    if profile.label_mode == "padded":
        return
    from repro.core.asymm_rv import finalize_label

    n = graph.n
    params = profile.asymm_params(n)
    raw = [_raw_node_label(graph, v, profile) for v in range(n)]
    finalized = [finalize_label(label, params) for label in raw]
    for u in range(n):
        for v in range(u + 1, n):
            if raw[u] != raw[v] and finalized[u] == finalized[v]:
                raise CertificationError(
                    f"profile {profile.name!r}: hashed labels collide for "
                    "non-symmetric positions; use label_mode='hash32' or "
                    "'padded'"
                )


def certify_instance(
    graph: PortLabeledGraph, u: int, v: int, profile: Profile
) -> None:
    """Validate tuned-profile shortcuts on this instance: UXS coverage
    (:func:`certify_graph`) plus hashed-label distinctness
    (:func:`certify_labels`)."""
    certify_graph(graph, profile)
    certify_labels(graph, u, v, profile)


def universal_feasibility_atlas(
    graph: PortLabeledGraph,
    max_delta: int,
    *,
    profile: Profile = TUNED,
    infeasible_horizon: int = 512,
) -> list[AtlasEntry]:
    """The canonical UniversalRV atlas: certify the profile on the
    graph (coverage once, per-node labels encoded once and compared
    across all pairs), budget each STIC from its verdict via
    :func:`universal_stic_budget`, and simulate every STIC with delay
    up to ``max_delta`` through
    :func:`repro.symmetry.empirical_feasibility_atlas` in one batched
    sweep.  Returns the list of atlas entries.
    """
    from repro.symmetry.feasibility import empirical_feasibility_atlas

    certify_graph(graph, profile)
    certify_all_labels(graph, profile)

    def budget(u: int, v: int, delta: int, verdict: FeasibilityVerdict) -> int:
        return universal_stic_budget(
            profile, graph.n, verdict, delta,
            infeasible_horizon=infeasible_horizon,
        )

    oracle_factory = None
    if profile.view_mode == "oracle":
        oracle_factory = lambda start: UniversalOracle(graph, start, profile)
    return empirical_feasibility_atlas(
        graph,
        make_universal_algorithm(profile),
        max_delta,
        max_rounds=budget,
        oracle_factory=oracle_factory,
    )


@dataclass(frozen=True)
class _Prediction:
    feasible: bool
    decisive_d: int | None


def rendezvous(
    graph: PortLabeledGraph,
    u: int,
    v: int,
    delta: int,
    *,
    profile: Profile = TUNED,
    max_rounds: int | None = None,
    record_traces: bool = False,
) -> RendezvousResult:
    """Run Algorithm UniversalRV on STIC ``[(u, v), delta]`` — the
    library's front door.

    Certifies the profile's shortcuts on the instance, sizes the round
    budget from the feasibility characterization when ``max_rounds`` is
    not given (infeasible STICs get a generous fixed horizon so the
    caller can observe the non-meeting), and simulates both agents.
    """
    certify_instance(graph, u, v, profile)
    verdict = classify_stic(graph, u, v, delta)
    if max_rounds is None:
        if verdict.feasible:
            max_rounds = universal_stic_budget(profile, graph.n, verdict, delta)
        else:
            # The front door is generous with infeasible STICs: a full
            # wrong-phase budget, so the non-meeting is unambiguous.
            max_rounds = delta + universal_round_budget(profile, graph.n, 1, delta)

    algorithm = make_universal_algorithm(profile)
    oracles = None
    if profile.view_mode == "oracle":
        oracles = (
            UniversalOracle(graph, u, profile),
            UniversalOracle(graph, v, profile),
        )
    return run_rendezvous(
        graph,
        u,
        v,
        delta,
        algorithm,
        max_rounds=max_rounds,
        record_traces=record_traces,
        oracles=oracles,
    )
