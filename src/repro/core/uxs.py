"""Universal exploration sequences (Section 2, [32]/[41]).

A sequence ``Y(n) = (a_1, ..., a_M)`` of integers is *applied* at a
start node ``u`` as follows (the paper's definition): ``u_0 = u``,
``u_1 = succ(u_0, 0)``, and for ``1 <= i <= M``,
``u_{i+1} = succ(u_i, (p + a_i) mod d(u_i))`` where ``p`` is the port
by which the walk entered ``u_i``.  ``Y(n)`` is a UXS for the class of
graphs of size ``n`` when every application in every such graph visits
all nodes.

Substitution (see DESIGN.md §2.1): instead of Reingold's explicit
construction we emit a deterministic pseudorandom sequence keyed only
by ``n`` — identical for both agents, which is the sole property the
symmetry argument of Lemma 3.2 requires — of length
:func:`uxs_length`, chosen so that coverage holds with overwhelming
margin (random offset walks cover an ``n``-node graph in ``O(n^3)``
expected steps; we budget ``THETA(n^3 log n)``).  Tests certify
coverage with :func:`is_uxs_for_graph` on every graph the experiments
touch, and exhaustively over *all* port-labeled graphs of size
``<= 4``.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from collections.abc import Sequence

from repro.graphs.port_graph import PortLabeledGraph
from repro.util.lcg import SplitMix64, derive_seed

__all__ = [
    "apply_uxs",
    "minimal_verified_uxs",
    "apply_uxs_ports",
    "uxs_length",
    "uxs_for_size",
    "covers_from",
    "is_uxs_for_graph",
]


def uxs_length(n: int) -> int:
    """Length ``M`` of our ``Y(n)``: ``48 * n^3 * ceil(log2(n + 1))``.

    For ``n = 1`` the sequence is trivial.  The constant was sized so
    the exhaustive small-``n`` certification and every family in the
    test suite pass with a wide margin.
    """
    if n < 1:
        raise ValueError(f"graph size must be positive, got {n}")
    if n == 1:
        return 1
    return 48 * n**3 * max(1, (n + 1).bit_length())


# ``Y(n)`` memo bounded by *total retained elements*, not entry count:
# a single sequence is 48·n³·⌈log₂(n+1)⌉ terms (~36M at n = 50), so an
# entry-counting LRU could pin gigabytes.  Oversized sequences are
# returned uncached; smaller ones are kept LRU-evicted under the budget.
_UXS_CACHE: OrderedDict[int, tuple[int, ...]] = OrderedDict()
_UXS_CACHE_BUDGET = 8_000_000  # total cached terms across all sizes
_uxs_cache_total = 0


def uxs_for_size(n: int) -> tuple[int, ...]:
    """Our ``Y(n)``: deterministic, shared-by-construction, keyed by ``n``."""
    global _uxs_cache_total
    cached = _UXS_CACHE.get(n)
    if cached is not None:
        _UXS_CACHE.move_to_end(n)
        return cached
    rng = SplitMix64(derive_seed("uxs", n))
    # Offsets in a modest fixed range; they are reduced mod d(u_i) at
    # application time, so any range >= max degree keeps the walk rich.
    seq = tuple(rng.randrange(max(2 * n, 2)) for _ in range(uxs_length(n)))
    if len(seq) <= _UXS_CACHE_BUDGET:
        _UXS_CACHE[n] = seq
        _uxs_cache_total += len(seq)
        while _uxs_cache_total > _UXS_CACHE_BUDGET:
            _, evicted = _UXS_CACHE.popitem(last=False)
            _uxs_cache_total -= len(evicted)
    return seq


def apply_uxs(
    graph: PortLabeledGraph, start: int, seq: Sequence[int]
) -> list[int]:
    """The application ``R(u) = (u_0, ..., u_{M+1})`` of ``seq`` at ``start``."""
    nodes = [start]
    ports = apply_uxs_ports(graph, start, seq)
    node = start
    for p in ports:
        node = graph.succ(node, p)
        nodes.append(node)
    return nodes


def apply_uxs_ports(
    graph: PortLabeledGraph, start: int, seq: Sequence[int]
) -> list[int]:
    """Outgoing ports taken by the application of ``seq`` at ``start``.

    This is what an *agent* can precompute knowing only its
    perceptions: the port choices depend only on entry ports and
    degrees along the walk.  Length is ``len(seq) + 1`` (the initial
    ``succ(u_0, 0)`` step plus one step per term).
    """
    if graph.degree(start) == 0:  # pragma: no cover - impossible when connected, n>1
        return []
    ports = [0]
    node = graph.succ(start, 0)
    entry = graph.entry_port(start, 0)
    for a in seq:
        d = graph.degree(node)
        p = (entry + a) % d
        ports.append(p)
        entry = graph.entry_port(node, p)
        node = graph.succ(node, p)
    return ports


def covers_from(graph: PortLabeledGraph, start: int, seq: Sequence[int]) -> bool:
    """True when the application of ``seq`` at ``start`` visits all nodes."""
    return len(set(apply_uxs(graph, start, seq))) == graph.n


def is_uxs_for_graph(graph: PortLabeledGraph, seq: Sequence[int]) -> bool:
    """Certify ``seq`` on one graph: coverage from *every* start node."""
    if graph.n == 1:
        return True
    return all(covers_from(graph, start, seq) for start in range(graph.n))


@lru_cache(maxsize=8)
def minimal_verified_uxs(n: int) -> tuple[int, ...]:
    """Shortest verified prefix tier for tiny ``n`` (exhaustive search).

    Scans prefixes of the deterministic stream keyed by ``n`` in
    growing-length steps and returns the first that covers *every*
    connected port-labeled graph on ``n`` named nodes from *every*
    start node — a genuinely certified UXS for the class, far shorter
    than the safety-margin default.  Only tractable for ``n <= 4``
    (the class has 2568 members at ``n = 4``).
    """
    if n < 1:
        raise ValueError(f"graph size must be positive, got {n}")
    if n == 1:
        return ()
    if n > 4:
        raise ValueError("exhaustive verification is only tractable for n <= 4")
    from repro.graphs.enumeration import enumerate_port_labeled_graphs

    graphs = list(enumerate_port_labeled_graphs(n))
    rng = SplitMix64(derive_seed("uxs", n))
    stream: list[int] = []
    step = max(n, 2)
    for _ in range(512):
        stream.extend(rng.randrange(max(2 * n, 2)) for _ in range(step))
        candidate = tuple(stream)
        if all(is_uxs_for_graph(g, candidate) for g in graphs):
            return candidate
    raise AssertionError("no verified prefix found within the search budget")
