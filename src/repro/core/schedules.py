"""Active/passive slot schedules for label-based rendezvous.

The classical way to rendezvous with *distinct labels* under arbitrary
delay (Dessmark et al.; used here as the engine of our AsymmRV
substitute): time is cut into fixed-length *slots*; in an **active**
slot the agent performs a full exploration of the graph and returns
home; in a **passive** slot it waits at home.  If at some point one
agent is active during a slot that lies entirely inside a passive
stretch of the other, the active agent's traversal visits the waiting
agent's node and they meet.

Because the delay is not a multiple of the slot length, one agent's
slot can straddle *two* of the other's, so the sufficient condition is
"one agent active while the other is passive for two consecutive
slots".  :func:`schedule_word` maps a label to a periodic binary word
(1 = active) such that for any two *distinct* labels and any slot
shift, that condition occurs; :func:`verify_schedule_pair` checks the
property exhaustively and is exercised over all small label pairs in
the test suite (our construction is verified rather than proven — see
DESIGN.md §2.2).

Construction: a marker block ``111000`` followed by one block per
label bit: ``1100`` for a one-bit, ``0011`` for a zero-bit.  The
marker skews the word so that no nontrivial cyclic shift maps the
word family onto itself; the meeting property itself is established
*exhaustively* by :func:`verify_schedule_pair` over all small label
pairs in the test suite rather than by a structural proof.
"""

from __future__ import annotations

from math import gcd
from collections.abc import Sequence

__all__ = [
    "schedule_word",
    "verify_schedule_pair",
    "good_window_bound",
    "first_good_window",
]

_MARKER = (1, 1, 1, 0, 0, 0)
_ONE_BLOCK = (1, 1, 0, 0)
_ZERO_BLOCK = (0, 0, 1, 1)


def schedule_word(label_bits: Sequence[int]) -> tuple[int, ...]:
    """Periodic activity word for a label (1 = active slot)."""
    word: list[int] = list(_MARKER)
    for bit in label_bits:
        if bit not in (0, 1):
            raise ValueError(f"label bits must be 0/1, got {bit}")
        word.extend(_ONE_BLOCK if bit else _ZERO_BLOCK)
    return tuple(word)


def _window_at(
    w_active: Sequence[int], w_passive: Sequence[int], i: int, shift: int
) -> bool:
    """Active agent's slot ``i`` sits over two passive slots of the other."""
    la, lb = len(w_active), len(w_passive)
    return (
        w_active[i % la] == 1
        and w_passive[(i - shift - 1) % lb] == 0
        and w_passive[(i - shift) % lb] == 0
    )


def first_good_window(
    word_a: Sequence[int], word_b: Sequence[int], shift: int
) -> tuple[str, int] | None:
    """First slot index realizing the meeting condition at ``shift``.

    Agent A's slot grid leads agent B's by ``shift`` slots (B's slot
    ``j`` overlaps A's slots ``j + shift`` and ``j + shift + 1``).
    Returns ``("a", i)`` if A is active in its slot ``i`` while B is
    passive in both overlapped slots, ``("b", j)`` for the symmetric
    case, or ``None`` if no window exists within one full period.
    """
    la, lb = len(word_a), len(word_b)
    period = la * lb // gcd(la, lb)
    for t in range(period + max(la, lb) + 2):
        if _window_at(word_a, word_b, t, shift):
            return ("a", t)
        # B active in its slot t; A's overlapped slots are t+shift, t+shift+1.
        if (
            word_b[t % lb] == 1
            and word_a[(t + shift) % la] == 0
            and word_a[(t + shift + 1) % la] == 0
        ):
            return ("b", t)
    return None


def verify_schedule_pair(word_a: Sequence[int], word_b: Sequence[int]) -> bool:
    """Exhaustively check the meeting condition for every slot shift."""
    la, lb = len(word_a), len(word_b)
    period = la * lb // gcd(la, lb)
    return all(
        first_good_window(word_a, word_b, shift) is not None
        for shift in range(period)
    )


def good_window_bound(len_a: int, len_b: int) -> int:
    """Slots within which a good window is guaranteed (when one exists
    for every shift): one full joint period plus slack."""
    period = len_a * len_b // gcd(len_a, len_b)
    return period + max(len_a, len_b) + 2
