"""Vectorized UXS engine: a thin frontend over the execution core.

The implementation lives in :mod:`repro.exec.uxs` (shared with the
rendezvous engines' trace replay — see docs/execution_core.md): stream
generation evaluates SplitMix64 in closed form over whole index
ranges, and certification walks the sequence from every start node at
once as gathers through a precompiled dart-transition table, over the
pluggable array backend of :mod:`repro.exec.backend`.

This module keeps the historical import surface —
``repro.core.uxs_engine`` remains the name the scalar reference
implementations in :mod:`repro.core.uxs` and the differential suites
(``tests/core/test_uxs_vectorized.py``) compare against.
"""

from __future__ import annotations

from repro.exec.uxs import (
    DartWalkTable,
    apply_uxs_all,
    covered_counts,
    generate_offset_stream,
    is_uxs_for_graph_vectorized,
    splitmix64_block,
)

__all__ = [
    "splitmix64_block",
    "generate_offset_stream",
    "DartWalkTable",
    "apply_uxs_all",
    "covered_counts",
    "is_uxs_for_graph_vectorized",
]
