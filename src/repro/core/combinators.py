"""Combinators for composing agent subroutines under round budgets.

Algorithm UniversalRV runs each sub-procedure for a *fixed* number of
rounds (so that two agents — possibly desynchronized or at different
positions — always spend identical time per phase segment), then
backtracks whatever path was traversed and pads with waiting.  These
combinators implement that pattern generically:

* :func:`bounded_run` drives an inner script for exactly ``budget``
  rounds (finishing early means waiting out the remainder), recording
  the entry ports of every move so the caller can undo the walk;
* :func:`backtrack` replays those entry ports in reverse, returning
  the agent to where the inner script started.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.sim.actions import Action, Move, Perception, Wait, WaitBlock
from repro.sim.agent import AgentScript, wait_rounds

__all__ = ["bounded_run", "backtrack", "run_segment"]


def bounded_run(
    percept: Perception, script: AgentScript, budget: int
) -> Generator[Action, Perception, tuple[Perception, list[int]]]:
    """Run ``script`` for exactly ``budget`` rounds.

    Yields the script's actions (splitting a wait block that would
    overshoot), records the entry port of every move, and abandons the
    script when the budget is exhausted.  If the script finishes early
    the remaining rounds are spent waiting in place.

    Returns ``(percept, trail)`` where ``trail`` lists the entry ports
    of the moves performed, in order (empty if the script only waited
    or ended where it started *and* the caller does not need to undo —
    callers that need to return home should :func:`backtrack` it).
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    trail: list[int] = []
    used = 0
    if budget == 0:
        script.close()
        return percept, trail
    try:
        action = next(script)
    except StopIteration:
        percept = yield from wait_rounds(percept, budget)
        return percept, trail
    while True:
        if isinstance(action, Move):
            percept = yield action
            assert percept.entry_port is not None
            trail.append(percept.entry_port)
            used += 1
        elif isinstance(action, Wait):
            percept = yield action
            used += 1
        elif isinstance(action, WaitBlock):
            span = min(action.rounds, budget - used)
            if span > 0:
                percept = yield WaitBlock(span)
            used += span
            if span < action.rounds:
                break
        else:
            raise TypeError(f"inner script yielded {action!r}")
        if used >= budget:
            break
        try:
            action = script.send(percept)
        except StopIteration:
            percept = yield from wait_rounds(percept, budget - used)
            used = budget
            break
    script.close()
    return percept, trail


def backtrack(percept: Perception, trail: list[int]) -> AgentScript:
    """Undo a recorded walk: replay entry ports in reverse order."""
    for port in reversed(trail):
        percept = yield Move(port)
    return percept


def run_segment(percept: Perception, script: AgentScript, budget: int) -> AgentScript:
    """Run ``script`` for ``budget`` rounds, undo the walk, pad waiting.

    The whole segment takes exactly ``2 * budget`` rounds and ends at
    the node where it started — the building block of UniversalRV's
    phase structure (the paper's "execute for X rounds, backtrack,
    wait until 2X rounds from the start").
    """
    percept, trail = yield from bounded_run(percept, script, budget)
    percept = yield from backtrack(percept, trail)
    percept = yield from wait_rounds(percept, budget - len(trail))
    return percept
