"""Dedicated (instance-aware) rendezvous — the feasibility definition,
made constructive.

The paper defines feasibility existentially: "a STIC is feasible if
there exists a deterministic algorithm, *even dedicated to this
particular STIC*, which accomplishes rendezvous for it."  This module
produces that witness: given a concrete STIC it returns the cheapest
procedure of Section 3 with the right parameters baked in —
``SymmRV(n, Shrink, delta)`` for symmetric positions,
label-multiplexed ``AsymmRV`` for non-symmetric ones — or raises for
infeasible STICs.  Dedicated algorithms are orders of magnitude
cheaper than the knowledge-free UniversalRV, which is exactly the
price Algorithm 3 pays for universality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.asymm_rv import asymm_meeting_bound, make_asymm_algorithm
from repro.core.bounds import symm_rv_time_bound
from repro.core.profile import TUNED, Profile
from repro.core.symm_rv import make_symm_rv_algorithm
from repro.core.universal import UniversalOracle, certify_instance
from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.scheduler import RendezvousResult, run_rendezvous
from repro.symmetry.feasibility import classify_stic

__all__ = ["InfeasibleSTIC", "DedicatedPlan", "plan_dedicated", "dedicated_rendezvous"]


class InfeasibleSTIC(ValueError):
    """No deterministic algorithm exists for this STIC (Lemma 3.1)."""


@dataclass(frozen=True)
class DedicatedPlan:
    """A dedicated algorithm with its guarantee.

    Attributes
    ----------
    kind:
        ``"symm"`` (Procedure SymmRV) or ``"asymm"`` (label-based
        AsymmRV).
    algorithm:
        Scheduler-ready callable (pass ``oracles`` when
        ``needs_oracles``).
    bound:
        Guaranteed meeting time from the later agent's start
        (Lemma 3.3's ``T`` or our ``P(n)``).
    needs_oracles:
        Whether the scheduler must supply per-agent view oracles.
    """

    kind: str
    algorithm: object
    bound: int
    needs_oracles: bool


def plan_dedicated(
    graph: PortLabeledGraph,
    u: int,
    v: int,
    delta: int,
    *,
    profile: Profile = TUNED,
) -> DedicatedPlan:
    """Build the dedicated witness algorithm for ``[(u, v), delta]``.

    Raises :class:`InfeasibleSTIC` when the characterization says no
    algorithm exists.
    """
    certify_instance(graph, u, v, profile)
    verdict = classify_stic(graph, u, v, delta)
    if not verdict.feasible:
        raise InfeasibleSTIC(verdict.reason)
    n = graph.n
    uxs = profile.uxs(n)
    if verdict.symmetric:
        d = verdict.shrink
        assert d is not None
        return DedicatedPlan(
            kind="symm",
            algorithm=make_symm_rv_algorithm(n, d, delta, uxs=uxs),
            bound=symm_rv_time_bound(n, d, delta, len(uxs)),
            needs_oracles=False,
        )
    params = profile.asymm_params(n)
    use_oracle = profile.view_mode == "oracle"
    return DedicatedPlan(
        kind="asymm",
        algorithm=make_asymm_algorithm(params, use_oracle=use_oracle),
        bound=asymm_meeting_bound(params),
        needs_oracles=use_oracle,
    )


def dedicated_rendezvous(
    graph: PortLabeledGraph,
    u: int,
    v: int,
    delta: int,
    *,
    profile: Profile = TUNED,
    record_traces: bool = False,
) -> RendezvousResult:
    """Plan and run the dedicated algorithm on the STIC."""
    plan = plan_dedicated(graph, u, v, delta, profile=profile)
    oracles = None
    if plan.needs_oracles:
        oracles = (
            UniversalOracle(graph, u, profile),
            UniversalOracle(graph, v, profile),
        )
    return run_rendezvous(
        graph,
        u,
        v,
        delta,
        plan.algorithm,
        max_rounds=plan.bound + delta + 5,
        record_traces=record_traces,
        oracles=oracles,
    )
