"""repro — reproduction of "Using Time to Break Symmetry: Universal
Deterministic Anonymous Rendezvous" (Pelc & Yadav, SPAA 2019).

Quickstart::

    from repro.graphs import oriented_ring
    from repro.core import rendezvous
    from repro.symmetry import classify_stic

    g = oriented_ring(6)
    print(classify_stic(g, 0, 3, delta=3))   # symmetric, Shrink=3, feasible
    result = rendezvous(g, 0, 3, delta=3)
    print(result.met, result.time_from_later)

Subpackages
-----------
``repro.graphs``
    Port-labeled anonymous graphs and the structured families the
    paper's examples use.
``repro.symmetry``
    Views, node symmetry, ``Shrink`` (Definition 3.1), and STIC
    feasibility (Corollary 3.1).
``repro.sim``
    The synchronous two-agent scheduler with adversarial delay.
``repro.core``
    The paper's procedures: UXS, ``Explore``, ``SymmRV``, ``AsymmRV``,
    and ``UniversalRV``.
``repro.hardness``
    The Section 4 lower-bound construction (Q_h, Q-hat_h, the set Z).
``repro.baselines``
    Random-walk rendezvous, wait-for-Mommy, the asymmetric-only
    variant, and the leader-election reduction.
``repro.experiments``
    Drivers regenerating every figure/claim of the paper.
"""

from repro.core import rendezvous
from repro.core.stic import STIC
from repro.graphs import PortLabeledGraph
from repro.symmetry import classify_stic, shrink

__version__ = "1.0.0"

__all__ = [
    "rendezvous",
    "STIC",
    "PortLabeledGraph",
    "classify_stic",
    "shrink",
    "__version__",
]
