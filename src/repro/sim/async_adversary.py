"""The asynchronous counterpoint (Section 5 / conclusion of the paper).

"In the asynchronous version of our problem, time cannot be used to
break symmetry, as the speed of the agents and the delay between them
is controlled by the adversary.  Hence in the asynchronous scenario,
only space can be used to break symmetry between anonymous agents."

This module makes that remark executable.  In the asynchronous model
an agent only chooses *which edge to traverse next*; the adversary
decides when each traversal happens.  Two adversary policies are
provided:

* :func:`mirror_adversary_run` — the symmetry-preserving adversary:
  it nullifies waits (it owns the clock, so an agent cannot insist on
  waiting) and advances both agents' traversals in perfect lockstep.
  Against *symmetric* starting positions this keeps the configuration
  symmetric forever, so no algorithm — including every delay-exploiting
  algorithm of this library — ever achieves a node meeting.  Edge
  *crossings* still happen; the asynchronous literature ([31] etc.)
  relaxes rendezvous to edge meetings for exactly this reason, and the
  run records them.
* :func:`eager_adversary_run` — a benign scheduler that alternates
  single steps (agent 0, then agent 1), under which *non-symmetric*
  positions still lead to meetings: space keeps working when time does
  not.

Agents are the ordinary synchronous scripts of :mod:`repro.sim.agent`;
the adversary reinterprets their timing, which is precisely the
asynchronous model's prerogative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.actions import Move, Perception, Wait, WaitBlock
from repro.sim.agent import AgentScript

__all__ = ["AsyncOutcome", "mirror_adversary_run", "eager_adversary_run"]


@dataclass(frozen=True)
class AsyncOutcome:
    """Result of an adversarially-scheduled asynchronous run.

    ``met`` refers to a *node* meeting; ``edge_meetings`` counts events
    where the agents traversed the same edge in opposite directions
    (a meeting under the relaxed asynchronous definition).
    """

    met: bool
    meeting_node: int | None
    events: int
    edge_meetings: int


class _AsyncAgent:
    """Drives a synchronous script, exposing only its next *move*.

    Waits are consumed silently: in the asynchronous model the
    adversary owns the clock, so "wait k rounds" is an instruction the
    environment is free to collapse to nothing.
    """

    def __init__(self, graph: PortLabeledGraph, node: int, algorithm) -> None:
        self.graph = graph
        self.node = node
        self.entry_port: int | None = None
        self.clock = 0
        self.script: AgentScript = algorithm(self._percept())
        self.started = False
        self.done = False

    def _percept(self) -> Perception:
        return Perception(
            degree=self.graph.degree(self.node),
            entry_port=self.entry_port,
            clock=self.clock,
        )

    def next_move(self, fuel: int = 1 << 16) -> Move | None:
        """Advance the script past waits to its next move (or end)."""
        if self.done:
            return None
        for _ in range(fuel):
            try:
                if not self.started:
                    self.started = True
                    action = next(self.script)
                else:
                    action = self.script.send(self._percept())
            except StopIteration:
                self.done = True
                return None
            if isinstance(action, Move):
                return action
            if isinstance(action, (Wait, WaitBlock)):
                # The adversary collapses waiting to zero real time but
                # still advances the agent's private clock so that
                # clock-driven algorithms keep making progress.
                self.clock += action.rounds if isinstance(action, WaitBlock) else 1
                continue
            raise TypeError(f"agent yielded {action!r}")
        raise RuntimeError("agent produced no move within the fuel limit")

    def apply(self, move: Move) -> None:
        if move.port >= self.graph.degree(self.node):
            raise ValueError(f"invalid port {move.port} at node {self.node}")
        self.entry_port = self.graph.entry_port(self.node, move.port)
        self.node = self.graph.succ(self.node, move.port)
        self.clock += 1


def mirror_adversary_run(
    graph: PortLabeledGraph,
    u: int,
    v: int,
    algorithm: Callable[[Perception], AgentScript],
    *,
    max_events: int,
) -> AsyncOutcome:
    """Run under the symmetry-preserving lockstep adversary.

    Both agents' next traversals are executed simultaneously at every
    event.  Starting from symmetric positions the configuration stays
    symmetric (the agents receive identical perception streams), so a
    node meeting is impossible — the executable form of the paper's
    Section 5 impossibility remark.
    """
    a = _AsyncAgent(graph, u, algorithm)
    b = _AsyncAgent(graph, v, algorithm)
    edge_meetings = 0
    for event in range(max_events):
        if a.node == b.node:
            return AsyncOutcome(True, a.node, event, edge_meetings)
        move_a = a.next_move()
        move_b = b.next_move()
        if move_a is None and move_b is None:
            break
        from_a, from_b = a.node, b.node
        if move_a is not None:
            a.apply(move_a)
        if move_b is not None:
            b.apply(move_b)
        if (
            move_a is not None
            and move_b is not None
            and a.node == from_b
            and b.node == from_a
            and from_a != from_b
        ):
            edge_meetings += 1
    met = a.node == b.node
    return AsyncOutcome(met, a.node if met else None, max_events, edge_meetings)


def eager_adversary_run(
    graph: PortLabeledGraph,
    u: int,
    v: int,
    algorithm: Callable[[Perception], AgentScript],
    *,
    max_events: int,
) -> AsyncOutcome:
    """Run under a benign alternating scheduler (one step each, in turn).

    Used to show the complementary half of the remark: spatial
    asymmetry still yields meetings without any timing guarantees.
    """
    agents = (_AsyncAgent(graph, u, algorithm), _AsyncAgent(graph, v, algorithm))
    for event in range(max_events):
        if agents[0].node == agents[1].node:
            return AsyncOutcome(True, agents[0].node, event, 0)
        mover = agents[event % 2]
        move = mover.next_move()
        if move is not None:
            mover.apply(move)
        elif agents[1 - event % 2].done:
            break
    met = agents[0].node == agents[1].node
    return AsyncOutcome(met, agents[0].node if met else None, max_events, 0)
