"""The asynchronous counterpoint (Section 5 / conclusion of the paper).

"In the asynchronous version of our problem, time cannot be used to
break symmetry, as the speed of the agents and the delay between them
is controlled by the adversary.  Hence in the asynchronous scenario,
only space can be used to break symmetry between anonymous agents."

This module makes that remark executable through the two named
adversaries of the experiments, kept as thin scalar wrappers over the
general schedule subsystem (:mod:`repro.sim.schedule_adversary`, where
*who moves when* is data rather than control flow):

* :func:`mirror_adversary_run` — the symmetry-preserving adversary
  (:class:`~repro.sim.schedule_adversary.MirrorSchedule`): it
  nullifies waits (it owns the clock, so an agent cannot insist on
  waiting) and advances both agents' traversals in perfect lockstep.
  Against *symmetric* starting positions this keeps the configuration
  symmetric forever, so no algorithm — including every delay-exploiting
  algorithm of this library — ever achieves a node meeting.  Edge
  *crossings* still happen; the asynchronous literature ([31] etc.)
  relaxes rendezvous to edge meetings for exactly this reason, and the
  run records them.
* :func:`eager_adversary_run` — a benign scheduler
  (:class:`~repro.sim.schedule_adversary.EagerSchedule`) that
  alternates single steps (agent 0, then agent 1), under which
  *non-symmetric* positions still lead to meetings: space keeps
  working when time does not.

Agents are the ordinary synchronous scripts of :mod:`repro.sim.agent`;
the adversary reinterprets their timing, which is precisely the
asynchronous model's prerogative.  Batched sweeps over many pairs and
many schedules go through
:func:`repro.sim.schedule_adversary.run_schedule_sweep`.
"""

from __future__ import annotations

from typing import Callable

from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.actions import Perception
from repro.sim.agent import AgentScript
from repro.sim.schedule_adversary import (
    AsyncOutcome,
    EagerSchedule,
    MirrorSchedule,
    run_schedule_adversary,
)

__all__ = ["AsyncOutcome", "mirror_adversary_run", "eager_adversary_run"]


def mirror_adversary_run(
    graph: PortLabeledGraph,
    u: int,
    v: int,
    algorithm: Callable[[Perception], AgentScript],
    *,
    max_events: int,
) -> AsyncOutcome:
    """Run under the symmetry-preserving lockstep adversary.

    Both agents' next traversals are executed simultaneously at every
    event.  Starting from symmetric positions the configuration stays
    symmetric (the agents receive identical perception streams), so a
    node meeting is impossible — the executable form of the paper's
    Section 5 impossibility remark.
    """
    return run_schedule_adversary(
        graph, u, v, algorithm, MirrorSchedule(), max_events=max_events
    )


def eager_adversary_run(
    graph: PortLabeledGraph,
    u: int,
    v: int,
    algorithm: Callable[[Perception], AgentScript],
    *,
    max_events: int,
) -> AsyncOutcome:
    """Run under a benign alternating scheduler (one step each, in turn).

    Used to show the complementary half of the remark: spatial
    asymmetry still yields meetings without any timing guarantees.
    """
    return run_schedule_adversary(
        graph, u, v, algorithm, EagerSchedule(), max_events=max_events
    )
