"""The synchronous two-agent scheduler (the model of Section 1).

Both agents run *the same deterministic algorithm*; the adversary
chooses the starting nodes and the delay.  Time advances in global
rounds ``t = 0, 1, 2, ...``; the earlier agent appears at round 0, the
later at round ``delta``.  Rendezvous occurs when both agents occupy
the same node at the same round; agents crossing inside an edge do
*not* meet (crossings are recorded for diagnostics only).

Rounds in which *both* agents sit inside declared wait blocks are
fast-forwarded in O(1): positions are static, so no meeting can occur
before the next action or the later agent's wake-up.  This keeps the
enormous deterministic padding waits of Algorithm UniversalRV
simulable while preserving exact round accounting.

The reported ``time_from_later`` follows the paper's cost convention:
the number of rounds between the appearance of the later agent and the
meeting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.actions import Move, Perception, Wait, WaitBlock
from repro.sim.agent import AgentScript
from repro.sim.trace import AgentTrace, TraceEntry

__all__ = ["RendezvousResult", "run_rendezvous", "run_single_agent", "SimulationLimit"]



class SimulationLimit(Exception):
    """Raised when a run exceeds its round budget (with ``raise_on_limit``)."""


@dataclass(frozen=True)
class RendezvousResult:
    """Outcome of a two-agent simulation.

    Attributes
    ----------
    met:
        Whether the agents were ever at the same node in the same round.
    meeting_node / meeting_time:
        Where and at which global round the first meeting happened
        (``None`` when they never met within the budget).
    time_from_later:
        Rounds between the later agent's start and the meeting — the
        paper's measure of rendezvous time.
    rounds_executed:
        Global rounds simulated (equals ``meeting_time`` on success).
    crossings:
        Global rounds at which the agents swapped endpoints of one edge
        (crossed without noticing).
    traces:
        Per-agent trajectories when tracing was enabled, else ``None``.
    """

    met: bool
    meeting_node: int | None
    meeting_time: int | None
    time_from_later: int | None
    rounds_executed: int
    crossings: tuple[int, ...]
    traces: tuple[AgentTrace, AgentTrace] | None


class _AgentState:
    __slots__ = (
        "start_node",
        "start_time",
        "node",
        "script",
        "started",
        "done",
        "pending_wait",
        "entry_port",
        "trace",
    )

    def __init__(self, node: int, start_time: int, trace: AgentTrace | None) -> None:
        self.start_node = node
        self.start_time = start_time
        self.node = node
        self.script: AgentScript | None = None
        self.started = False
        self.done = False
        self.pending_wait = 0
        self.entry_port: int | None = None
        self.trace = trace

    def active(self, time: int) -> bool:
        return time >= self.start_time

    def percept(self, time: int, degree: int) -> Perception:
        return Perception(
            degree=degree, entry_port=self.entry_port, clock=time - self.start_time
        )


def run_rendezvous(
    graph: PortLabeledGraph,
    u: int,
    v: int,
    delta: int,
    algorithm: Callable[[Perception], AgentScript],
    *,
    max_rounds: int,
    record_traces: bool = False,
    raise_on_limit: bool = False,
    oracles: tuple | None = None,
) -> RendezvousResult:
    """Simulate two copies of ``algorithm`` from STIC ``[(u, v), delta]``.

    Agent 0 starts at ``u`` in global round 0; agent 1 starts at ``v``
    in global round ``delta``.  The simulation stops at the first
    meeting or after ``max_rounds`` global rounds.

    ``oracles`` optionally supplies one harness-side helper object per
    agent, passed as a second argument to ``algorithm``; by convention
    an oracle may expose only functions of that agent's own view (the
    information the model lets an agent compute itself), keeping the
    anonymity semantics intact.
    """
    if delta < 0:
        raise ValueError(f"delay must be non-negative, got {delta}")
    if max_rounds < 0:
        raise ValueError("max_rounds must be non-negative")

    agents = (
        _AgentState(u, 0, AgentTrace(u, 0) if record_traces else None),
        _AgentState(v, delta, AgentTrace(v, delta) if record_traces else None),
    )
    crossings: list[int] = []

    def finish(time: int, met: bool) -> RendezvousResult:
        node = agents[0].node if met else None
        return RendezvousResult(
            met=met,
            meeting_node=node,
            meeting_time=time if met else None,
            time_from_later=(time - delta) if met else None,
            rounds_executed=time,
            crossings=tuple(crossings),
            traces=(agents[0].trace, agents[1].trace) if record_traces else None,
        )

    def pull(agent: _AgentState, time: int) -> Move | None:
        """Ensure the agent has a decision for this round.

        Returns the move if the agent moves this round, else ``None``
        (it waits; ``pending_wait`` has been charged).
        """
        if agent.done:
            return None
        if agent.pending_wait > 0:
            return None
        assert agent.script is not None
        try:
            if not agent.started:
                agent.started = True
                action = next(agent.script)
            else:
                action = agent.script.send(
                    agent.percept(time, graph.degree(agent.node))
                )
        except StopIteration:
            agent.done = True
            return None
        if agent.trace is not None:
            entry = (
                graph.entry_port(agent.node, action.port)
                if isinstance(action, Move)
                else None
            )
            agent.trace.entries.append(TraceEntry(time, agent.node, action, entry))
        if isinstance(action, Move):
            if action.port >= graph.degree(agent.node):
                raise ValueError(
                    f"agent chose port {action.port} at a node of degree "
                    f"{graph.degree(agent.node)} (round {time})"
                )
            return action
        if isinstance(action, Wait):
            agent.pending_wait = 1
            return None
        if isinstance(action, WaitBlock):
            agent.pending_wait = action.rounds
            return None
        raise TypeError(f"agent yielded {action!r}; expected Move/Wait/WaitBlock")

    def meeting(time: int) -> bool:
        return time >= delta and agents[0].node == agents[1].node

    def instantiate(idx: int) -> AgentScript:
        wake_percept = Perception(
            degree=graph.degree(agents[idx].node), entry_port=None, clock=0
        )
        if oracles is None:
            return algorithm(wake_percept)
        return algorithm(wake_percept, oracles[idx])

    # Wake agent 0 (and agent 1 when delta == 0).
    for idx, agent in enumerate(agents):
        if agent.start_time == 0:
            agent.script = instantiate(idx)
    if meeting(0):
        return finish(0, True)

    time = 0
    while time < max_rounds:
        moves: list[Move | None] = [None, None]
        for idx, agent in enumerate(agents):
            if agent.active(time):
                moves[idx] = pull(agent, time)

        if moves[0] is None and moves[1] is None:
            # Pure waiting: fast-forward to the next event.
            horizon = max_rounds - time
            for agent in agents:
                if agent.active(time) and not agent.done:
                    horizon = min(horizon, agent.pending_wait)
                elif not agent.active(time):
                    horizon = min(horizon, agent.start_time - time)
            skip = max(1, horizon)
            for agent in agents:
                if agent.active(time) and not agent.done:
                    agent.pending_wait -= skip
                    if agent.pending_wait < 0:  # pragma: no cover - defensive
                        raise AssertionError("wait accounting underflow")
            time += skip
        else:
            # A real round: apply moves simultaneously.
            a_move, b_move = moves
            if a_move is not None and b_move is not None:
                a_to = graph.succ(agents[0].node, a_move.port)
                b_to = graph.succ(agents[1].node, b_move.port)
                if (
                    a_to == agents[1].node
                    and b_to == agents[0].node
                    and agents[0].node != agents[1].node
                ):
                    crossings.append(time)
            for idx, agent in enumerate(agents):
                if not agent.active(time):
                    continue
                move = moves[idx]
                if move is not None:
                    entry = graph.entry_port(agent.node, move.port)
                    agent.node = graph.succ(agent.node, move.port)
                    agent.entry_port = entry
                elif not agent.done:
                    agent.pending_wait -= 1
            time += 1

        if not agents[1].started and agents[1].script is None and time >= delta:
            # The later agent appears (exactly at `delta`; fast-forward
            # never jumps past it because of the horizon clamp).
            assert time == delta, "scheduler overshot the later agent's wake-up"
            agents[1].script = instantiate(1)
        if meeting(time):
            return finish(time, True)

    if raise_on_limit:
        raise SimulationLimit(f"no rendezvous within {max_rounds} rounds")
    return finish(max_rounds, False)


def run_single_agent(
    graph: PortLabeledGraph,
    start: int,
    algorithm: Callable[[Perception], AgentScript],
    *,
    max_rounds: int,
) -> tuple[list[int], int]:
    """Run one agent alone; returns (positions per round, final node).

    Used by tests to validate procedures in isolation (e.g. that
    ``Explore`` backtracks home, or that a UXS application covers the
    graph).  The positions list has one entry per round boundary,
    starting with ``start``; wait blocks contribute one (repeated)
    entry per round, truncated at ``max_rounds``.
    """
    percept = Perception(degree=graph.degree(start), entry_port=None, clock=0)
    script = algorithm(percept)
    node = start
    entry: int | None = None
    visited = [node]
    clock = 0
    try:
        action = next(script)
    except StopIteration:
        return visited, node
    while clock < max_rounds:
        if isinstance(action, Move):
            if action.port >= graph.degree(node):
                raise ValueError(
                    f"agent chose port {action.port} at degree {graph.degree(node)}"
                )
            entry = graph.entry_port(node, action.port)
            node = graph.succ(node, action.port)
            visited.append(node)
            clock += 1
        elif isinstance(action, (Wait, WaitBlock)):
            span = 1 if isinstance(action, Wait) else action.rounds
            span = min(span, max_rounds - clock)
            visited.extend([node] * span)
            clock += span
        else:
            raise TypeError(f"agent yielded {action!r}; expected Move/Wait/WaitBlock")
        percept = Perception(degree=graph.degree(node), entry_port=entry, clock=clock)
        try:
            action = script.send(percept)
        except StopIteration:
            break
    return visited, node
