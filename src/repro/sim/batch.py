"""Batched multi-STIC rendezvous: a thin frontend over the execution core.

The experiments are dominated by sweeping one deterministic algorithm
over many STICs ``[(u, v), delta]`` of a single graph.  Running
:func:`repro.sim.scheduler.run_rendezvous` in a loop re-executes the
agent generator once per agent per STIC, although a deterministic
agent's choices are a pure function of its *perception stream*.  The
machinery that exploits this lives in :mod:`repro.exec` (shared with
the schedule-adversary sweep — see docs/execution_core.md):

1. **Port-trace compiler** (:class:`repro.exec.trace.TraceCompiler`):
   agent behavior is compiled once into :class:`~repro.exec.trace.
   PortTrace` step-function arrays, interned in a decision trie.
2. **Meeting solver** (:func:`repro.exec.meeting.resolve_sync_cell`):
   for a STIC the meeting time is the earliest global round ``t`` in
   ``[delta, max_rounds]`` with ``trace_u(t) == trace_v(t - delta)`` —
   found by merging the two traces' O(#moves) breakpoints, never by
   stepping rounds.
3. **Adaptive deepening** (:func:`repro.exec.deepen.resolve_adaptive`):
   compile shallow, solve, deepen geometrically — STICs that meet
   early never pay for the deepest STIC's horizon.

Atlas-style sweeps pair this engine with the per-graph symmetry
kernel (:mod:`repro.symmetry.context`): the kernel classifies every
STIC (view colors + all-pairs Shrink, computed once per graph) and
sizes the budgets; this engine simulates them.

:func:`run_rendezvous_batch` returns per-STIC
:class:`~repro.sim.scheduler.RendezvousResult` objects whose ``met``,
``meeting_node``, ``meeting_time``, ``time_from_later`` and
``rounds_executed`` are identical to the scalar scheduler's (property
tested).  Crossings and traces are not recorded in batch mode
(``crossings == ()``, ``traces is None``).

Requirements and caveats:

* the algorithm must be *deterministic* — identical perception streams
  must yield identical action streams (the model's own assumption);
* with ``oracle_factory`` set, each start node gets a private decision
  trie (an oracle may depend on the start), so only cross-STIC trace
  reuse remains;
* an exception raised by agent code is re-raised only for STICs whose
  scalar simulation would actually reach the offending round before
  meeting or running out of budget, mirroring the scheduler.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.exec.backend import ArrayBackend
from repro.exec.deepen import resolve_adaptive
from repro.exec.meeting import (
    PENDING as _PENDING,
)
from repro.exec.meeting import (
    resolve_sync_cell,
    solve_sync_meeting,
)
from repro.exec.trace import (
    BadPortChoice as _BadPortChoice,
)
from repro.exec.trace import (
    PortTrace,
    TraceCompiler,
)
from repro.exec.trace import (
    raise_for_stic as _raise_for_stic,
)
from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.scheduler import RendezvousResult, SimulationLimit

__all__ = ["PortTrace", "TraceCompiler", "run_rendezvous_batch"]

# Module-level solver seam: mutation tests (and instrumented runs)
# monkeypatch this name to inject bugs; the sweep below looks it up at
# call time so the patch takes effect.
_solve_meeting = solve_sync_meeting


def _try_solve(
    u: int,
    v: int,
    delta: int,
    max_rounds: int,
    trace_u: PortTrace,
    trace_v: PortTrace,
    raise_on_limit: bool,
    backend: ArrayBackend | None = None,
):  # RendezvousResult, or the _PENDING sentinel
    """Resolve one STIC from (possibly truncated) traces, routing the
    meeting solver through the module-level :data:`_solve_meeting`."""
    if backend is None:
        solver = _solve_meeting
    else:
        # The seam's solver signature is fixed at four arguments (the
        # mutation tests substitute plain ``(a, b, delta, limit)``
        # functions), so a plugged backend is bound here instead.
        def solver(a, b, d, lim):  # pragma: no branch
            return _solve_meeting(a, b, d, lim, backend)

    return resolve_sync_cell(
        u,
        v,
        delta,
        max_rounds,
        trace_u,
        trace_v,
        raise_on_limit,
        backend=backend,
        solver=solver,
    )


def run_rendezvous_batch(
    graph: PortLabeledGraph,
    stics: Iterable,
    algorithm: Callable,
    *,
    max_rounds: int | Callable[[int, int, int], int],
    oracle_factory: Callable[[int], object] | None = None,
    raise_on_limit: bool = False,
    compiler: TraceCompiler | None = None,
    initial_horizon: int = 1024,
    backend: ArrayBackend | None = None,
) -> list[RendezvousResult]:
    """Simulate one deterministic ``algorithm`` over many STICs at once.

    Parameters
    ----------
    stics:
        Iterable of ``(u, v, delta)`` tuples or objects with ``u``,
        ``v``, ``delta`` attributes (e.g. :class:`repro.core.stic.STIC`).
    max_rounds:
        Round budget — a single int shared by all STICs, or a callable
        ``(u, v, delta) -> int`` for per-STIC budgets.
    oracle_factory:
        Optional ``start node -> oracle`` constructor; the algorithm is
        then called as ``algorithm(percept, oracle)``, matching the
        scheduler's ``oracles`` convention.
    compiler:
        Reuse a :class:`TraceCompiler` across calls sharing the same
        ``(graph, algorithm, oracle_factory)``.
    initial_horizon:
        First compile depth; quadrupled until every STIC is decided
        (meetings far below the budget never pay for the full horizon).
    backend:
        Array backend for compiled traces (default: the process-wide
        numpy backend; see :mod:`repro.exec.backend`).

    Returns one result per STIC, in input order, with ``met`` /
    ``meeting_node`` / ``meeting_time`` / ``time_from_later`` /
    ``rounds_executed`` identical to scalar :func:`run_rendezvous`.
    """
    items: list[tuple[int, int, int]] = []
    for s in stics:
        if isinstance(s, tuple):
            u, v, delta = s
        else:
            u, v, delta = s.u, s.v, s.delta
        if delta < 0:
            raise ValueError(f"delay must be non-negative, got {delta}")
        items.append((int(u), int(v), int(delta)))
    budgets: list[int] = []
    for u, v, delta in items:
        m = max_rounds(u, v, delta) if callable(max_rounds) else max_rounds
        if m < 0:
            raise ValueError("max_rounds must be non-negative")
        budgets.append(int(m))
    if compiler is None:
        compiler = TraceCompiler(
            graph, algorithm, oracle_factory=oracle_factory, backend=backend
        )

    # Local-clock horizons each trace must eventually reach.
    need: dict[int, int] = {}
    for (u, v, delta), m in zip(items, budgets):
        need[u] = max(need.get(u, 0), m)
        if m - delta >= 0:
            need[v] = max(need.get(v, 0), m - delta)

    def step(pending: Sequence[int], horizon: int) -> Mapping[int, RendezvousResult]:
        starts = set()
        for i in pending:
            u, v, delta = items[i]
            starts.update((u, v))
        traces = compiler.traces(
            {s: min(horizon, need[s]) for s in starts if s in need}
        )
        decided: dict[int, RendezvousResult] = {}
        for i in pending:
            u, v, delta = items[i]
            if delta > budgets[i]:
                # The later agent never appears within the budget, but
                # the scalar scheduler still drives agent 0 every round
                # (its script may raise before the budget expires).
                tu = traces[u]
                if tu.error is not None and tu.limit < budgets[i]:
                    _raise_for_stic(tu.error, 0)
                if not tu.complete and tu.valid_through < budgets[i]:
                    continue
                if raise_on_limit:
                    raise SimulationLimit(
                        f"no rendezvous within {budgets[i]} rounds"
                    )
                decided[i] = RendezvousResult(
                    met=False,
                    meeting_node=None,
                    meeting_time=None,
                    time_from_later=None,
                    rounds_executed=budgets[i],
                    crossings=(),
                    traces=None,
                )
                continue
            outcome = _try_solve(
                u,
                v,
                delta,
                budgets[i],
                traces[u],
                traces[v],
                raise_on_limit,
                backend=backend,
            )
            if outcome is not _PENDING:
                decided[i] = outcome
        return decided

    return resolve_adaptive(
        len(items),
        step,
        initial_horizon=initial_horizon,
        cap=max(need.values(), default=0),
    )
