"""Execution traces: per-round records of agent positions and actions.

Traces serve three purposes: debugging, the leader-election reduction
of the introduction (agents compare *trajectories coded as sequences
of encountered port numbers*), and experiment reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.actions import Action, Move

__all__ = ["TraceEntry", "AgentTrace"]


@dataclass(frozen=True)
class TraceEntry:
    """One round of one agent's life.

    ``time`` is the global round index; ``node`` the position at the
    *start* of the round; ``action`` what the agent did during the
    round; ``entry_port`` the port by which the action's move entered
    its destination (``None`` for waits).
    """

    time: int
    node: int
    action: Action
    entry_port: int | None


@dataclass
class AgentTrace:
    """Complete trajectory of one agent."""

    start_node: int
    start_time: int
    entries: list[TraceEntry] = field(default_factory=list)

    def port_history(self) -> list[tuple[int, int]]:
        """The trajectory coded as ``(out_port, in_port)`` pairs.

        This is the introduction's "trajectory coded as sequences of
        encountered port numbers", the input of the leader-election
        reduction.  Waits are skipped (they carry no port information).
        """
        return [
            (entry.action.port, entry.entry_port)  # type: ignore[union-attr]
            for entry in self.entries
            if isinstance(entry.action, Move)
        ]

    def nodes_visited(self) -> list[int]:
        """Positions at the start of each recorded round."""
        return [entry.node for entry in self.entries]
