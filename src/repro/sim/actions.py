"""Actions and perceptions exchanged between agents and the scheduler.

The model (Section 1): in each round an agent either stays at its
current node or moves through a chosen port; on arrival it perceives
the degree of the node and the port by which it entered.  Agents never
see node identities — :class:`Perception` is deliberately the *only*
information channel from the simulator into agent code.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Move", "Wait", "WaitBlock", "Action", "Perception"]


@dataclass(frozen=True)
class Move:
    """Leave the current node through ``port`` this round."""

    port: int

    def __post_init__(self) -> None:
        if self.port < 0:
            raise ValueError(f"port must be non-negative, got {self.port}")


@dataclass(frozen=True)
class Wait:
    """Stay at the current node this round."""


@dataclass(frozen=True)
class WaitBlock:
    """Stay at the current node for ``rounds`` consecutive rounds.

    Semantically identical to yielding :class:`Wait` ``rounds`` times;
    the scheduler fast-forwards stretches in which *both* agents are
    inside wait blocks (their positions are static, so no meeting can
    occur), which is what makes the long deterministic padding waits of
    Algorithm UniversalRV simulable.
    """

    rounds: int

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"WaitBlock needs rounds >= 1, got {self.rounds}")


Action = Move | Wait | WaitBlock


@dataclass(frozen=True)
class Perception:
    """What an agent knows about its current position.

    Attributes
    ----------
    degree:
        Degree of the current node.
    entry_port:
        Port by which the agent entered the current node on its most
        recent move; ``None`` if it has not moved yet.  (Sticky across
        waits: waiting does not erase the last entry port.)
    clock:
        Rounds elapsed since this agent's own starting round (the
        agent's synchronized local clock; agents have no global clock).
    """

    degree: int
    entry_port: int | None
    clock: int
