"""Adversary activation schedules: *who moves when*, as data (Section 5).

"In the asynchronous version of our problem, time cannot be used to
break symmetry ... in the asynchronous scenario, only space can be
used to break symmetry between anonymous agents."

In the asynchronous model an agent only chooses *which edge to
traverse next*; the adversary decides when each traversal happens.
This module makes the adversary itself a first-class value: an
:class:`ActivationSchedule` maps each event ``k = 0, 1, 2, ...`` to
the subset of the two agents that execute their next pending traversal
at that event.  The model's semantics are:

* waits are collapsed — the adversary owns the clock, so "wait k
  rounds" is an instruction the environment is free to nullify (the
  agent's private clock still advances, keeping clock-driven
  algorithms honest);
* a *node meeting* occurs when the agents occupy the same node between
  events;
* an *edge meeting* (crossing) occurs when one event sends both agents
  through the same edge in opposite directions — the relaxed meeting
  notion of the asynchronous literature ([31] etc.), recorded as a
  first-class outcome.

Built-in schedules cover the spectrum of adversaries the experiments
probe: the symmetry-preserving lockstep :class:`MirrorSchedule`, the
benign alternating :class:`EagerSchedule`, the synchronous-model
analogue :class:`FixedDelaySchedule`, periodic :class:`RateSkewSchedule`
and arbitrary cyclic :class:`WordSchedule` patterns, and the seeded
:class:`RandomSchedule`.  Any activation pattern expressible as a
boolean mask per event is admissible.

Two engines share these semantics bit-for-bit:

* :func:`run_schedule_adversary` — the scalar reference: two live
  generators driven event by event.
* :func:`run_schedule_sweep` — the batched engine: per-start port
  traces compiled once by :class:`repro.sim.batch.TraceCompiler`
  (waits contribute nothing to the async node sequence, so a trace's
  ``nodes`` array *is* the agent's traversal sequence), then each cell
  of a (start pair × schedule) grid solved with numpy gathers over the
  schedule's cumulative activation counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.exec.backend import ArrayBackend
from repro.exec.deepen import resolve_adaptive
from repro.exec.meeting import (
    PENDING as _PENDING,
)
from repro.exec.meeting import (
    resolve_async_cell as _try_solve_cell,
)
from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.actions import Move, Perception, Wait, WaitBlock
from repro.sim.agent import AgentScript
from repro.sim.batch import PortTrace, TraceCompiler
from repro.util.lcg import SplitMix64, derive_seed

__all__ = [
    "ActivationSchedule",
    "MirrorSchedule",
    "EagerSchedule",
    "FixedDelaySchedule",
    "RateSkewSchedule",
    "WordSchedule",
    "RandomSchedule",
    "AsyncOutcome",
    "run_schedule_adversary",
    "run_schedule_sweep",
]


@dataclass(frozen=True)
class AsyncOutcome:
    """Result of an adversarially-scheduled asynchronous run.

    ``met`` refers to a *node* meeting; ``edge_meetings`` counts events
    where the agents traversed the same edge in opposite directions
    (a meeting under the relaxed asynchronous definition).  ``events``
    is the event index of the first node meeting, or the full budget
    when none occurred.
    """

    met: bool
    meeting_node: int | None
    events: int
    edge_meetings: int


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------


class ActivationSchedule:
    """Base class: an adversary's activation pattern as data.

    Subclasses implement :meth:`active` (scalar, one event) and may
    override :meth:`mask` with a vectorized construction; the default
    builds the mask by iterating :meth:`active`, so the two views are
    consistent by definition.  An event may activate any subset of the
    two agents, including neither (the adversary idles).
    """

    name: str = "schedule"

    def active(self, event: int) -> tuple[bool, bool]:
        """Whether (agent 0, agent 1) execute a traversal at ``event``."""
        raise NotImplementedError

    def mask(self, horizon: int) -> np.ndarray:
        """Boolean activation matrix of shape ``(horizon, 2)``."""
        out = np.empty((horizon, 2), dtype=bool)
        for k in range(horizon):
            a, b = self.active(k)
            out[k, 0] = a
            out[k, 1] = b
        return out

    def cumulative_moves(self, horizon: int) -> np.ndarray:
        """``(horizon + 1, 2)`` int64 array: traversals *requested* of
        each agent before event ``k`` (row 0 is zeros)."""
        counts = np.zeros((horizon + 1, 2), dtype=np.int64)
        np.cumsum(self.mask(horizon), axis=0, out=counts[1:])
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class MirrorSchedule(ActivationSchedule):
    """Lockstep: both agents traverse at every event.

    The symmetry-preserving adversary — from symmetric starts both
    agents receive identical perception streams forever, so no
    deterministic algorithm achieves a node meeting (the paper's
    Section 5 impossibility remark, executable)."""

    name = "mirror"

    def active(self, event: int) -> tuple[bool, bool]:
        return (True, True)

    def mask(self, horizon: int) -> np.ndarray:
        return np.ones((horizon, 2), dtype=bool)


class EagerSchedule(ActivationSchedule):
    """Strict alternation: agent ``first`` moves at even events, the
    other at odd events.  A benign scheduler under which spatial
    asymmetry still yields meetings — space works when time does not."""

    def __init__(self, first: int = 0) -> None:
        if first not in (0, 1):
            raise ValueError(f"first must be 0 or 1, got {first}")
        self.first = first
        self.name = "eager" if first == 0 else "eager[1]"

    def active(self, event: int) -> tuple[bool, bool]:
        turn = event % 2
        return (turn == self.first, turn != self.first)

    def mask(self, horizon: int) -> np.ndarray:
        out = np.empty((horizon, 2), dtype=bool)
        parity = np.arange(horizon) % 2
        out[:, self.first] = parity == 0
        out[:, 1 - self.first] = parity == 1
        return out


class FixedDelaySchedule(ActivationSchedule):
    """The synchronous model transplanted to event space: agent 0
    traverses alone for the first ``delay`` events, then both advance
    in lockstep — the async rendering of a STIC's start delay."""

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay
        self.name = f"delay[{delay}]"

    def active(self, event: int) -> tuple[bool, bool]:
        return (True, event >= self.delay)

    def mask(self, horizon: int) -> np.ndarray:
        out = np.ones((horizon, 2), dtype=bool)
        out[: min(self.delay, horizon), 1] = False
        return out


class RateSkewSchedule(ActivationSchedule):
    """Periodic rate skew: agent 0 traverses every ``period_a``-th
    event, agent 1 every ``period_b``-th (phase 0).  Events hitting
    neither period are adversarial idling."""

    def __init__(self, period_a: int = 1, period_b: int = 2) -> None:
        if period_a < 1 or period_b < 1:
            raise ValueError("periods must be >= 1")
        self.period_a = period_a
        self.period_b = period_b
        self.name = f"rate[{period_a}:{period_b}]"

    def active(self, event: int) -> tuple[bool, bool]:
        return (event % self.period_a == 0, event % self.period_b == 0)

    def mask(self, horizon: int) -> np.ndarray:
        ks = np.arange(horizon)
        return np.stack(
            [ks % self.period_a == 0, ks % self.period_b == 0], axis=1
        )


_WORD_SYMBOLS = {
    "a": (True, False),
    "b": (False, True),
    "ab": (True, True),
    "-": (False, False),
}


class WordSchedule(ActivationSchedule):
    """An arbitrary activation pattern, cycled: ``word`` is a sequence
    (tuple/list, *not* a bare string) of symbols from
    ``{"a", "b", "ab", "-"}`` (``-`` idles both agents).  This is
    the fully general finite-description adversary — every periodic
    schedule is a :class:`WordSchedule`."""

    def __init__(self, word: Sequence[str]) -> None:
        if isinstance(word, str):
            # "ab" would silently iterate as ("a", "b") — alternation,
            # not lockstep — so bare strings are ambiguous and refused.
            raise TypeError(
                "word must be a sequence of symbols, not a bare string: "
                'use WordSchedule(("ab",)) rather than WordSchedule("ab")'
            )
        if not word:
            raise ValueError("word must be non-empty")
        try:
            self._steps = tuple(_WORD_SYMBOLS[sym] for sym in word)
        except KeyError as exc:
            raise ValueError(
                f"unknown schedule symbol {exc.args[0]!r}; "
                f"expected one of {sorted(_WORD_SYMBOLS)}"
            ) from None
        self.word = tuple(word)
        self.name = "word[" + "|".join(word) + "]"

    def active(self, event: int) -> tuple[bool, bool]:
        return self._steps[event % len(self._steps)]

    def mask(self, horizon: int) -> np.ndarray:
        period = np.array(self._steps, dtype=bool)
        reps = -(-horizon // len(self._steps))
        return np.tile(period, (reps, 1))[:horizon]


class RandomSchedule(ActivationSchedule):
    """A seeded random adversary: each event draws one of {agent 0,
    agent 1, both} with the given integer ``weights`` from a
    :class:`~repro.util.lcg.SplitMix64` stream, so the schedule is a
    pure function of ``seed`` (reproducible run-to-run and identical
    between the scalar and batched engines)."""

    _CODES = ((True, False), (False, True), (True, True))

    def __init__(self, seed: int, weights: tuple[int, int, int] = (1, 1, 2)) -> None:
        if len(weights) != 3 or any(w < 0 for w in weights) or sum(weights) == 0:
            raise ValueError("weights must be three non-negative ints, not all zero")
        self.seed = seed
        self.weights = tuple(weights)
        self.name = f"rand[{seed}]"
        self._rng = SplitMix64(derive_seed("activation-schedule", seed))
        self._cache: list[int] = []

    def _extend(self, length: int) -> None:
        wa, wb, _ = self.weights
        total = sum(self.weights)
        while len(self._cache) < length:
            roll = self._rng.randrange(total)
            self._cache.append(0 if roll < wa else 1 if roll < wa + wb else 2)

    def active(self, event: int) -> tuple[bool, bool]:
        self._extend(event + 1)
        return self._CODES[self._cache[event]]

    def mask(self, horizon: int) -> np.ndarray:
        self._extend(horizon)
        codes = np.asarray(self._cache[:horizon], dtype=np.int64)
        return np.array(self._CODES, dtype=bool)[codes]


# ---------------------------------------------------------------------------
# Scalar reference engine
# ---------------------------------------------------------------------------


class _AsyncAgent:
    """Drives a synchronous script, exposing only its next *move*.

    Waits are consumed silently: in the asynchronous model the
    adversary owns the clock, so "wait k rounds" is an instruction the
    environment is free to collapse to nothing.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        node: int,
        algorithm: Callable[[Perception], AgentScript],
    ) -> None:
        self.graph = graph
        self.node = node
        self.entry_port: int | None = None
        self.clock = 0
        self.script: AgentScript = algorithm(self._percept())
        self.started = False
        self.done = False

    def _percept(self) -> Perception:
        return Perception(
            degree=self.graph.degree(self.node),
            entry_port=self.entry_port,
            clock=self.clock,
        )

    def next_move(self, fuel: int = 1 << 16) -> Move | None:
        """Advance the script past waits to its next move (or end)."""
        if self.done:
            return None
        for _ in range(fuel):
            try:
                if not self.started:
                    self.started = True
                    action = next(self.script)
                else:
                    action = self.script.send(self._percept())
            except StopIteration:
                self.done = True
                return None
            if isinstance(action, Move):
                return action
            if isinstance(action, (Wait, WaitBlock)):
                # The adversary collapses waiting to zero real time but
                # still advances the agent's private clock so that
                # clock-driven algorithms keep making progress.
                self.clock += action.rounds if isinstance(action, WaitBlock) else 1
                continue
            raise TypeError(f"agent yielded {action!r}")
        raise RuntimeError("agent produced no move within the fuel limit")

    def apply(self, move: Move) -> None:
        if move.port >= self.graph.degree(self.node):
            raise ValueError(f"invalid port {move.port} at node {self.node}")
        self.entry_port = self.graph.entry_port(self.node, move.port)
        self.node = self.graph.succ(self.node, move.port)
        self.clock += 1


def run_schedule_adversary(
    graph: PortLabeledGraph,
    u: int,
    v: int,
    algorithm: Callable[[Perception], AgentScript],
    schedule: ActivationSchedule,
    *,
    max_events: int,
    fuel: int = 1 << 16,
) -> AsyncOutcome:
    """Scalar reference: run one pair under an arbitrary schedule.

    At each event the scheduled agents' next traversals are executed
    simultaneously; node meetings are checked between events, edge
    crossings within them.  ``fuel`` bounds the wait actions consumed
    per pull (an agent that waits forever cannot stall the adversary).
    :func:`run_schedule_sweep` is bit-identical to this function on
    ``met`` / ``meeting_node`` / ``events`` / ``edge_meetings``
    (differentially fuzz-tested); the one divergence is the fuel guard
    itself, whose batch rendering can be more lenient mid-trace (see
    docs/batch_engine.md).
    """
    a = _AsyncAgent(graph, u, algorithm)
    b = _AsyncAgent(graph, v, algorithm)
    edge_meetings = 0
    for event in range(max_events):
        if a.node == b.node:
            return AsyncOutcome(True, a.node, event, edge_meetings)
        act_a, act_b = schedule.active(event)
        move_a = a.next_move(fuel) if act_a else None
        move_b = b.next_move(fuel) if act_b else None
        if a.done and b.done:
            break
        from_a, from_b = a.node, b.node
        if move_a is not None:
            a.apply(move_a)
        if move_b is not None:
            b.apply(move_b)
        if (
            move_a is not None
            and move_b is not None
            and a.node == from_b
            and b.node == from_a
            and from_a != from_b
        ):
            edge_meetings += 1
    met = a.node == b.node
    return AsyncOutcome(met, a.node if met else None, max_events, edge_meetings)


# ---------------------------------------------------------------------------
# Batched sweep engine
# ---------------------------------------------------------------------------


def run_schedule_sweep(
    graph: PortLabeledGraph,
    cells: Iterable,
    algorithm: Callable[[Perception], AgentScript],
    *,
    max_events: int | Callable[[int, int, ActivationSchedule], int],
    compiler: TraceCompiler | None = None,
    fuel: int = 1 << 16,
    initial_horizon: int = 1024,
    backend: ArrayBackend | None = None,
) -> list[AsyncOutcome]:
    """Run one deterministic ``algorithm`` over a (pair × schedule) grid.

    Parameters
    ----------
    cells:
        Iterable of ``(u, v, schedule)`` triples or objects with ``u``,
        ``v``, ``schedule`` attributes.
    max_events:
        Event budget — a single int shared by all cells, or a callable
        ``(u, v, schedule) -> int``.
    compiler:
        Reuse a :class:`TraceCompiler` across calls sharing the same
        ``(graph, algorithm)`` — including with the synchronous
        :func:`repro.sim.batch.run_rendezvous_batch`, whose traces are
        the same objects.
    fuel:
        Consecutive wait actions tolerated without a move before the
        run is declared move-starved (mirrors the scalar engine's
        per-pull fuel limit; measured in *actions*, so arbitrarily long
        ``WaitBlock`` paddings never trip it).
    backend:
        Array backend for compiled traces and cell resolution (default:
        the process-wide numpy backend; see :mod:`repro.exec.backend`).

    Returns one :class:`AsyncOutcome` per cell, in input order,
    bit-identical to :func:`run_schedule_adversary` (at matching
    ``fuel``) on every field; only the fuel guard itself may diverge,
    and only toward leniency mid-trace (see docs/batch_engine.md).

    The engine exploits that in the asynchronous model an agent's node
    sequence is independent of the schedule: waits are collapsed, so
    traversal ``i`` always lands on the ``i``-th entry of the agent's
    compiled port trace.  One trace per start node therefore serves
    every schedule of the grid, and each cell reduces to numpy gathers
    of the two traces through the schedule's cumulative activation
    counts.
    """
    items: list[tuple[int, int, ActivationSchedule]] = []
    for cell in cells:
        if isinstance(cell, tuple):
            u, v, schedule = cell
        else:
            u, v, schedule = cell.u, cell.v, cell.schedule
        if not isinstance(schedule, ActivationSchedule):
            raise TypeError(f"expected an ActivationSchedule, got {schedule!r}")
        items.append((int(u), int(v), schedule))
    budgets: list[int] = []
    for u, v, schedule in items:
        m = max_events(u, v, schedule) if callable(max_events) else max_events
        if m < 0:
            raise ValueError("max_events must be non-negative")
        budgets.append(int(m))
    if compiler is None:
        compiler = TraceCompiler(graph, algorithm, backend=backend)

    # Cumulative activation counts, one per distinct (schedule, budget).
    cums: dict[tuple[int, int], np.ndarray] = {}
    for (u, v, schedule), budget in zip(items, budgets):
        key = (id(schedule), budget)
        if key not in cums:
            cums[key] = schedule.cumulative_moves(budget)

    # Compile shallow, solve, deepen: cells that meet early never pay
    # for their full event budgets (the synchronous engine's strategy,
    # shared via repro.exec.deepen.resolve_adaptive).  The compiler's
    # horizons are local clocks, which waits inflate, so traces are
    # deepened geometrically (``cap=None``: unbounded) until each has
    # the traversals its pending cells ask about, terminated, errored,
    # or spent ``fuel`` consecutive wait actions without moving — the
    # batch rendering of the scalar engine's per-pull fuel limit.  Move
    # needs are re-derived from the *still-pending* cells every round,
    # so a straggler cell never deepens (or fuel-faults) traces that
    # only already-resolved cells asked about.
    traces: dict[int, PortTrace] = {}

    def step(pending: Sequence[int], horizon: int) -> Mapping[int, AsyncOutcome]:
        need_moves: dict[int, int] = {}
        for i in pending:
            u, v, schedule = items[i]
            cum = cums[(id(schedule), budgets[i])]
            need_moves[u] = max(need_moves.get(u, 0), int(cum[budgets[i], 0]))
            need_moves[v] = max(need_moves.get(v, 0), int(cum[budgets[i], 1]))
        growing = {
            s
            for s, n in need_moves.items()
            if s not in traces
            or not (
                traces[s].complete
                or traces[s].error is not None
                or traces[s].moves >= n
            )
        }
        if growing:
            traces.update(compiler.traces({s: horizon for s in growing}))
            for s in growing:
                trace = traces[s]
                if (
                    not trace.complete
                    and trace.error is None
                    and trace.moves < need_moves[s]
                    and trace.tail_waits >= fuel
                ):
                    raise RuntimeError(
                        "agent produced no move within the fuel limit"
                    )
        decided: dict[int, AsyncOutcome] = {}
        for i in pending:
            u, v, schedule = items[i]
            outcome = _try_solve_cell(
                cums[(id(schedule), budgets[i])],
                budgets[i],
                traces[u],
                traces[v],
                backend=backend,
            )
            if outcome is not _PENDING:
                decided[i] = outcome
        return decided

    return resolve_adaptive(len(items), step, initial_horizon=initial_horizon)
