"""Agent-program protocol and reusable movement subroutines.

An *agent script* is a generator-valued function::

    def my_algorithm(percept: Perception) -> AgentScript:
        ...
        percept = yield Move(0)      # move, receive new perception
        percept = yield Wait()       # wait one round
        ...

The wake-up perception is the function argument; every ``yield`` of an
:class:`~repro.sim.actions.Action` returns the perception of the next
round.  Subroutines compose with ``yield from`` and *return* their
final perception, so callers can keep reasoning about where they are::

    percept = yield from wait_rounds(percept, 5)

Because the only values flowing in are :class:`Perception` instances,
agent code physically cannot depend on node identities — the anonymity
of the model is enforced by construction.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence
from typing import TypeAlias

from repro.sim.actions import Action, Move, Perception, WaitBlock

__all__ = [
    "AgentScript",
    "Algorithm",
    "wait_rounds",
    "wait_forever",
    "follow_ports",
    "move_once",
]

AgentScript: TypeAlias = Generator[Action, Perception, Perception]
#: An algorithm maps the wake-up perception to a script.  Both agents
#: of an instance run *the same* algorithm (the deterministic model).
Algorithm: TypeAlias = "callable"


def wait_rounds(percept: Perception, rounds: int) -> AgentScript:
    """Wait in place for ``rounds`` rounds; returns the final perception.

    Emits a single :class:`WaitBlock` so the scheduler can fast-forward
    the stretch when the other agent is also waiting.
    """
    if rounds < 0:
        raise ValueError(f"cannot wait a negative number of rounds: {rounds}")
    if rounds > 0:
        percept = yield WaitBlock(rounds)
    return percept


def wait_forever(percept: Perception) -> AgentScript:
    """Wait in place forever (used once a procedure is complete)."""
    while True:
        percept = yield WaitBlock(1 << 30)


def move_once(percept: Perception, port: int) -> AgentScript:
    """Move through ``port``; raises inside the agent if invalid."""
    if port >= percept.degree:
        raise ValueError(
            f"agent chose port {port} at a node of degree {percept.degree}"
        )
    percept = yield Move(port)
    return percept


def follow_ports(percept: Perception, ports: Sequence[int]) -> AgentScript:
    """Traverse the outgoing-port sequence ``ports``, one move per round."""
    for port in ports:
        percept = yield from move_once(percept, port)
    return percept
