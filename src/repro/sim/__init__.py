"""Synchronous anonymous-agent simulator (model of Section 1)."""

from repro.sim.async_adversary import (
    AsyncOutcome,
    eager_adversary_run,
    mirror_adversary_run,
)
from repro.sim.actions import Action, Move, Perception, Wait, WaitBlock
from repro.sim.batch import PortTrace, TraceCompiler, run_rendezvous_batch
from repro.sim.schedule_adversary import (
    ActivationSchedule,
    EagerSchedule,
    FixedDelaySchedule,
    MirrorSchedule,
    RandomSchedule,
    RateSkewSchedule,
    WordSchedule,
    run_schedule_adversary,
    run_schedule_sweep,
)
from repro.sim.agent import (
    AgentScript,
    follow_ports,
    move_once,
    wait_forever,
    wait_rounds,
)
from repro.sim.scheduler import (
    RendezvousResult,
    SimulationLimit,
    run_rendezvous,
    run_single_agent,
)
from repro.sim.trace import AgentTrace, TraceEntry

__all__ = [
    "Action",
    "Move",
    "Wait",
    "WaitBlock",
    "Perception",
    "AgentScript",
    "wait_rounds",
    "wait_forever",
    "move_once",
    "follow_ports",
    "RendezvousResult",
    "SimulationLimit",
    "run_rendezvous",
    "run_rendezvous_batch",
    "PortTrace",
    "TraceCompiler",
    "run_single_agent",
    "AgentTrace",
    "TraceEntry",
    "AsyncOutcome",
    "mirror_adversary_run",
    "eager_adversary_run",
    "ActivationSchedule",
    "MirrorSchedule",
    "EagerSchedule",
    "FixedDelaySchedule",
    "RateSkewSchedule",
    "WordSchedule",
    "RandomSchedule",
    "run_schedule_adversary",
    "run_schedule_sweep",
]
