"""The campaign check library: pluggable per-cell correctness oracles.

Each check is a pure function of ``(graph_spec, seed, knobs)`` — the
graph is rebuilt from its declarative JSON spec, every random choice
derives from the cell seed, and the ``knobs`` dict bounds the sampling
— so a failing cell replays bit-for-bit from its replay artifact.
Three kinds of oracle cover the guarantees the paper states for *all*
port-labeled graphs:

**differential** — a batched engine against its retained scalar
reference, on the same seeded instance:

* ``differential/stic-sweep`` — :func:`repro.sim.batch.run_rendezvous_batch`
  vs scalar :func:`repro.sim.scheduler.run_rendezvous` over random
  STICs of a seeded agent program;
* ``differential/schedule-sweep`` — :func:`run_schedule_sweep` vs
  scalar :func:`run_schedule_adversary` over (pair x adversary) grids;
* ``differential/symmetry-kernel`` — the array symmetry kernel
  (:func:`view_classes`, :func:`shrink_witness`) vs the retained
  scalar refinement/BFS references, plus witness validity;
* ``differential/uxs-cover`` — the vectorized multi-start UXS
  certifier vs the scalar per-start walks, on growing prefixes.

**metamorphic** — invariance properties no reference implementation
is needed for:

* ``metamorphic/node-relabel`` — a seeded node permutation is a
  port-preserving isomorphism: view partition, Shrink matrix, and
  feasibility verdicts must map through it unchanged;
* ``metamorphic/port-relabel`` — permuting port labels preserves the
  underlying graph: distances and degrees are invariant, ``Shrink <=
  dist`` still holds, and verdicts stay coherent with Corollary 3.1.

**statistical** — ``statistical/meeting-time`` sweeps seeded agents
over random STICs and validates meeting-time summaries against hard
kinematic bounds (two unit-speed agents cannot close distance ``D``
with delay ``delta`` before round ``(D + delta) / 2``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.uxs import apply_uxs, is_uxs_for_graph_scalar
from repro.core.uxs_engine import (
    covered_counts,
    generate_offset_stream,
    is_uxs_for_graph_vectorized,
)
from repro.experiments.scenarios import build_graph
from repro.graphs.builders import relabel_ports
from repro.graphs.port_graph import PortLabeledGraph
from repro.graphs.random_graphs import random_port_permutation
from repro.sim.actions import Move, Wait, WaitBlock
from repro.sim.batch import run_rendezvous_batch
from repro.sim.schedule_adversary import (
    EagerSchedule,
    FixedDelaySchedule,
    MirrorSchedule,
    RandomSchedule,
    RateSkewSchedule,
    WordSchedule,
    run_schedule_adversary,
    run_schedule_sweep,
)
from repro.sim.scheduler import run_rendezvous
from repro.symmetry.context import SymmetryContext
from repro.symmetry.shrink import shrink_witness_reference
from repro.symmetry.views import view_classes_reference
from repro.util.lcg import SplitMix64, derive_seed

__all__ = [
    "CHECKS",
    "CHECK_KINDS",
    "CampaignCheck",
    "CheckResult",
    "run_check",
    "seeded_agent",
    "default_knobs",
]

#: Default sampling bounds; campaigns override per tier via their
#: ``knobs`` param (and replay artifacts persist the override).
_DEFAULT_KNOBS = {"max_pairs": 6, "max_events": 48, "max_deltas": 2}


def default_knobs() -> dict:
    return dict(_DEFAULT_KNOBS)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one check on one graph instance.

    ``ok`` is the verdict; ``comparisons`` counts the individual
    oracle comparisons that backed it (so a vacuous pass is visible);
    ``detail`` pinpoints the first divergence; ``summary`` carries the
    check's plain-JSON measurement payload (meeting-time statistics,
    coverage counts, ...).
    """

    ok: bool
    comparisons: int
    detail: str | None = None
    summary: dict | None = None

    def to_json_dict(self) -> dict:
        return {
            "ok": self.ok,
            "comparisons": self.comparisons,
            "detail": self.detail,
            "summary": self.summary or {},
        }


@dataclass(frozen=True)
class CampaignCheck:
    """A registered check: id, kind, and the oracle function."""

    check_id: str
    kind: str
    doc: str
    run: Callable[[dict, int, dict], CheckResult]


def seeded_agent(seed: int):
    """A pseudo-random deterministic agent program.

    Mixes moves, waits, wait blocks, and clock-dependent port choices
    — the idiom of the engine differential suites — so one seed axis
    sweeps a broad slice of agent behaviors through both engines.
    """

    def algorithm(percept):
        rng = SplitMix64(derive_seed("campaign-agent", seed))
        while True:
            roll = rng.randrange(10)
            if roll < 5:
                percept = yield Move(rng.randrange(percept.degree))
            elif roll < 7:
                percept = yield Wait()
            elif roll < 9:
                percept = yield WaitBlock(rng.randrange(5) + 1)
            else:
                percept = yield Move(percept.clock % percept.degree)

    return algorithm


def _sample_pairs(
    n: int, rng: SplitMix64, count: int, *, distinct: bool = False
) -> list[tuple[int, int]]:
    """Deterministically sample ``count`` (u, v) start pairs."""
    pairs = []
    for _ in range(count):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if distinct and n > 1:
            while v == u:
                v = rng.randrange(n)
        pairs.append((u, v))
    return pairs


def _fresh_context(graph: PortLabeledGraph) -> SymmetryContext:
    """A private kernel context (bypasses the per-graph LRU memo).

    Metamorphic checks build several same-``n`` graphs per cell; going
    through :func:`symmetry_context` would be correct but would also
    churn the global memo for no benefit.
    """
    return SymmetryContext(graph)


def _verdict_fields(ctx: SymmetryContext, u: int, v: int, delta: int) -> tuple:
    verdict = ctx.verdict(u, v, delta)
    return (verdict.feasible, verdict.symmetric, verdict.shrink)


# ---------------------------------------------------------------------------
# Differential checks
# ---------------------------------------------------------------------------


def _check_stic_sweep(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "stic-sweep", seed))
    budget = 8 * n + 24
    stics = [
        (u, v, rng.randrange(n + 3))
        for u, v in _sample_pairs(n, rng, int(knobs["max_pairs"]))
    ]
    algorithm = seeded_agent(seed)
    batch = run_rendezvous_batch(graph, stics, algorithm, max_rounds=budget)
    met = 0
    times = []
    for (u, v, delta), got in zip(stics, batch):
        want = run_rendezvous(graph, u, v, delta, algorithm, max_rounds=budget)
        for field in (
            "met",
            "meeting_node",
            "meeting_time",
            "time_from_later",
            "rounds_executed",
        ):
            if getattr(got, field) != getattr(want, field):
                return CheckResult(
                    ok=False,
                    comparisons=len(stics),
                    detail=(
                        f"STIC [({u},{v}),{delta}]: batch {field}="
                        f"{getattr(got, field)!r} != scalar "
                        f"{getattr(want, field)!r}"
                    ),
                )
        if got.met:
            met += 1
            times.append(got.meeting_time)
    return CheckResult(
        ok=True,
        comparisons=len(stics),
        summary={
            "stics": len(stics),
            "met": met,
            "max_meeting_time": max(times) if times else None,
        },
    )


def _schedule_pool(rng: SplitMix64, max_events: int) -> list:
    word = tuple(
        ("a", "b", "ab", "-")[rng.randrange(4)]
        for _ in range(rng.randrange(5) + 2)
    )
    if all(sym == "-" for sym in word):
        word = word + ("ab",)
    return [
        MirrorSchedule(),
        EagerSchedule(first=rng.randrange(2)),
        FixedDelaySchedule(rng.randrange(max_events // 2 + 1)),
        RateSkewSchedule(rng.randrange(3) + 1, rng.randrange(3) + 1),
        WordSchedule(word),
        RandomSchedule(rng.randrange(1 << 16)),
    ]


def _check_schedule_sweep(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "schedule-sweep", seed))
    max_events = int(knobs["max_events"])
    schedules = _schedule_pool(rng, max_events)
    cells = [
        (u, v, schedules[rng.randrange(len(schedules))])
        for u, v in _sample_pairs(n, rng, int(knobs["max_pairs"]))
    ]
    algorithm = seeded_agent(seed)
    batch = run_schedule_sweep(graph, cells, algorithm, max_events=max_events)
    node_meetings = edge_meetings = 0
    for (u, v, schedule), got in zip(cells, batch):
        want = run_schedule_adversary(
            graph, u, v, algorithm, schedule, max_events=max_events
        )
        for field in ("met", "meeting_node", "events", "edge_meetings"):
            if getattr(got, field) != getattr(want, field):
                return CheckResult(
                    ok=False,
                    comparisons=len(cells),
                    detail=(
                        f"cell ({u},{v},{schedule.name}): sweep {field}="
                        f"{getattr(got, field)!r} != scalar "
                        f"{getattr(want, field)!r}"
                    ),
                )
        node_meetings += got.met
        edge_meetings += got.edge_meetings
    return CheckResult(
        ok=True,
        comparisons=len(cells),
        summary={
            "cells": len(cells),
            "node_meetings": node_meetings,
            "edge_meetings": edge_meetings,
        },
    )


def _check_symmetry_kernel(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "symmetry-kernel", seed))
    ctx = _fresh_context(graph)
    comparisons = 1
    if ctx.color_list() != view_classes_reference(graph):
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail="kernel view partition != scalar refinement partition",
        )
    dist = ctx.distances
    for u, v in _sample_pairs(n, rng, int(knobs["max_pairs"])):
        comparisons += 1
        value, alpha, (x, y) = ctx.shrink_witness(u, v)
        ref_value, _ref_alpha, _ref_pair = shrink_witness_reference(graph, u, v)
        if value != ref_value:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"Shrink({u},{v}): kernel {value} != reference {ref_value}"
                ),
            )
        # Witness validity: alpha must actually drive (u, v) to (x, y)
        # and the final pair must realize the claimed distance.
        a, b = u, v
        for port in alpha:
            if port >= graph.degree(a) or port >= graph.degree(b):
                return CheckResult(
                    ok=False,
                    comparisons=comparisons,
                    detail=f"Shrink({u},{v}): witness port {port} invalid",
                )
            a, b = graph.succ(a, port), graph.succ(b, port)
        if (a, b) != (x, y) or int(dist[x, y]) != value:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"Shrink({u},{v}): witness lands on ({a},{b}) at "
                    f"distance {int(dist[a, b])}, claimed ({x},{y}) "
                    f"at {value}"
                ),
            )
    return CheckResult(
        ok=True,
        comparisons=comparisons,
        summary={"classes": len(set(ctx.color_list())), "n": n},
    )


def _check_uxs_cover(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    stream = generate_offset_stream(
        derive_seed("campaign-check", "uxs-cover", seed),
        max(2 * n, 2),
        max(64 * n, 8),
    )
    seq = tuple(int(a) for a in stream)
    comparisons = 0
    verdicts = []
    for length in (n, 4 * n, 16 * n, 64 * n):
        prefix = seq[:length]
        fast = is_uxs_for_graph_vectorized(graph, prefix)
        slow = is_uxs_for_graph_scalar(graph, prefix)
        comparisons += 1
        if fast != slow:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"prefix length {length}: vectorized certifier says "
                    f"{fast}, scalar says {slow}"
                ),
            )
        verdicts.append(fast)
    # Strongest form on the full stream: per-start coverage counts.
    counts = covered_counts(graph, seq)
    for start in range(n):
        comparisons += 1
        scalar = len(set(apply_uxs(graph, start, seq)))
        if int(counts[start]) != scalar:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"start {start}: vectorized coverage {int(counts[start])}"
                    f" != scalar {scalar}"
                ),
            )
    return CheckResult(
        ok=True,
        comparisons=comparisons,
        summary={"prefix_verdicts": verdicts, "full_cover": all(
            int(c) == n for c in counts
        )},
    )


# ---------------------------------------------------------------------------
# Metamorphic checks
# ---------------------------------------------------------------------------


def _permuted_graph(
    graph: PortLabeledGraph, perm: list[int]
) -> PortLabeledGraph:
    return PortLabeledGraph(
        graph.n,
        [(perm[a], pa, perm[b], pb) for a, pa, b, pb in graph.edges],
    )


def _check_node_relabel(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "node-relabel", seed))
    perm = random_port_permutation(n, rng)
    image = _permuted_graph(graph, perm)
    ctx, ctx2 = _fresh_context(graph), _fresh_context(image)
    p = np.asarray(perm)
    comparisons = 2
    same = ctx.colors[:, None] == ctx.colors[None, :]
    same2 = ctx2.colors[:, None] == ctx2.colors[None, :]
    if not np.array_equal(same, same2[np.ix_(p, p)]):
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail="view partition is not invariant under node relabeling",
        )
    if not np.array_equal(ctx.shrink_all, ctx2.shrink_all[np.ix_(p, p)]):
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail="Shrink matrix is not invariant under node relabeling",
        )
    for u, v in _sample_pairs(n, rng, int(knobs["max_pairs"]), distinct=True):
        for delta in range(int(knobs["max_deltas"]) + 1):
            comparisons += 1
            if _verdict_fields(ctx, u, v, delta) != _verdict_fields(
                ctx2, perm[u], perm[v], delta
            ):
                return CheckResult(
                    ok=False,
                    comparisons=comparisons,
                    detail=(
                        f"verdict of [({u},{v}),{delta}] changed under "
                        "node relabeling"
                    ),
                )
    return CheckResult(ok=True, comparisons=comparisons, summary={"n": n})


def _check_port_relabel(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "port-relabel", seed))
    permutations = {
        v: dict(enumerate(random_port_permutation(graph.degree(v), rng)))
        for v in range(n)
    }
    image = relabel_ports(graph, permutations)
    ctx, ctx2 = _fresh_context(graph), _fresh_context(image)
    comparisons = 2
    if not np.array_equal(graph.degrees, image.degrees):
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail="degree sequence changed under port relabeling",
        )
    if not np.array_equal(ctx.distances, ctx2.distances):
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail="distance matrix changed under port relabeling",
        )
    dist = ctx.distances
    for u, v in _sample_pairs(n, rng, int(knobs["max_pairs"]), distinct=True):
        comparisons += 1
        s = int(ctx2.shrink_all[u, v])
        if s > int(dist[u, v]):
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"Shrink({u},{v})={s} exceeds distance "
                    f"{int(dist[u, v])} after port relabeling"
                ),
            )
        for delta in range(int(knobs["max_deltas"]) + 1):
            comparisons += 1
            feasible, symmetric, shrink = _verdict_fields(ctx2, u, v, delta)
            coherent = feasible == ((not symmetric) or delta >= shrink)
            if not coherent:
                return CheckResult(
                    ok=False,
                    comparisons=comparisons,
                    detail=(
                        f"verdict of [({u},{v}),{delta}] is incoherent "
                        "with Corollary 3.1 after port relabeling"
                    ),
                )
    return CheckResult(ok=True, comparisons=comparisons, summary={"n": n})


# ---------------------------------------------------------------------------
# Statistical check
# ---------------------------------------------------------------------------


def _check_meeting_time(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "meeting-time", seed))
    budget = 8 * n + 24
    stics = [
        (u, v, rng.randrange(n + 3))
        for u, v in _sample_pairs(n, rng, int(knobs["max_pairs"]))
    ]
    ctx = _fresh_context(graph)
    dist = ctx.distances
    results = run_rendezvous_batch(
        graph, stics, seeded_agent(seed), max_rounds=budget
    )
    times = []
    comparisons = 0
    for (u, v, delta), r in zip(stics, results):
        comparisons += 1
        if not r.met:
            if r.rounds_executed != budget:
                return CheckResult(
                    ok=False,
                    comparisons=comparisons,
                    detail=(
                        f"STIC [({u},{v}),{delta}]: unmet run executed "
                        f"{r.rounds_executed} rounds, budget {budget}"
                    ),
                )
            continue
        floor = max(delta, math.ceil((int(dist[u, v]) + delta) / 2))
        if not floor <= r.meeting_time <= budget:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"STIC [({u},{v}),{delta}]: meeting time "
                    f"{r.meeting_time} outside kinematic range "
                    f"[{floor}, {budget}]"
                ),
            )
        if r.rounds_executed != r.meeting_time:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"STIC [({u},{v}),{delta}]: rounds_executed "
                    f"{r.rounds_executed} != meeting time {r.meeting_time}"
                ),
            )
        times.append(int(r.meeting_time))
    summary = {
        "stics": len(stics),
        "met": len(times),
        "met_rate": round(len(times) / max(len(stics), 1), 4),
        "mean_meeting_time": (
            round(sum(times) / len(times), 3) if times else None
        ),
        "max_meeting_time": max(times) if times else None,
    }
    return CheckResult(ok=True, comparisons=comparisons, summary=summary)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_CHECKS = [
    CampaignCheck(
        "differential/stic-sweep",
        "differential",
        "batched STIC rendezvous engine vs scalar scheduler",
        _check_stic_sweep,
    ),
    CampaignCheck(
        "differential/schedule-sweep",
        "differential",
        "batched adversary-schedule engine vs scalar reference",
        _check_schedule_sweep,
    ),
    CampaignCheck(
        "differential/symmetry-kernel",
        "differential",
        "array symmetry kernel vs scalar refinement/BFS references",
        _check_symmetry_kernel,
    ),
    CampaignCheck(
        "differential/uxs-cover",
        "differential",
        "vectorized UXS certifier vs scalar per-start walks",
        _check_uxs_cover,
    ),
    CampaignCheck(
        "metamorphic/node-relabel",
        "metamorphic",
        "verdicts/Shrink invariant under port-preserving node permutation",
        _check_node_relabel,
    ),
    CampaignCheck(
        "metamorphic/port-relabel",
        "metamorphic",
        "distances/coherence invariant under per-node port permutation",
        _check_port_relabel,
    ),
    CampaignCheck(
        "statistical/meeting-time",
        "statistical",
        "meeting-time summaries within hard kinematic bounds",
        _check_meeting_time,
    ),
]

#: Check id -> :class:`CampaignCheck`; the campaign vocabulary.
CHECKS: dict[str, CampaignCheck] = {c.check_id: c for c in _CHECKS}

#: The distinct check kinds, in registry order.
CHECK_KINDS: tuple[str, ...] = tuple(
    dict.fromkeys(c.kind for c in _CHECKS)
)


def run_check(check_id: str, graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    """Execute one registered check on one seeded graph instance.

    An unknown ``check_id`` raises (a campaign-config error, validated
    before any shard runs).  An exception *inside* the check body —
    an engine crashing instead of returning a wrong answer, a builder
    rejecting its parameters — is itself a failing verdict: it is
    converted to a ``CheckResult`` so the cell still shrinks to a
    replay artifact and the rest of the grid keeps running, and since
    the check is deterministic the replay re-raises identically.
    """
    if check_id not in CHECKS:
        raise KeyError(
            f"unknown check {check_id!r}; known: {sorted(CHECKS)}"
        )
    merged = {**_DEFAULT_KNOBS, **(knobs or {})}
    try:
        return CHECKS[check_id].run(graph_spec, seed, merged)
    except Exception as exc:
        return CheckResult(
            ok=False,
            comparisons=0,
            detail=f"check raised {type(exc).__name__}: {exc}",
            summary={"raised": True},
        )
