"""The campaign check library: pluggable per-cell correctness oracles.

Each check is a pure function of ``(graph_spec, seed, knobs)`` — the
graph is rebuilt from its declarative JSON spec, every random choice
derives from the cell seed, and the ``knobs`` dict bounds the sampling
— so a failing cell replays bit-for-bit from its replay artifact.
Three kinds of oracle cover the guarantees the paper states for *all*
port-labeled graphs:

**differential** — a batched engine against its retained scalar
reference, on the same seeded instance:

* ``differential/stic-sweep`` — :func:`repro.sim.batch.run_rendezvous_batch`
  vs scalar :func:`repro.sim.scheduler.run_rendezvous` over random
  STICs of a seeded agent program;
* ``differential/schedule-sweep`` — :func:`run_schedule_sweep` vs
  scalar :func:`run_schedule_adversary` over (pair x adversary) grids;
* ``differential/symmetry-kernel`` — the array symmetry kernel
  (:func:`view_classes`, :func:`shrink_witness`) vs the retained
  scalar refinement/BFS references, plus witness validity;
* ``differential/uxs-cover`` — the vectorized multi-start UXS
  certifier vs the scalar per-start walks, on growing prefixes;
* ``differential/hardness-word`` — :func:`repro.hardness.batch.
  simulate_word_batch` vs the scalar :func:`simulate_word` reference,
  over seeded oblivious words (STAY included) and all later starts;
* ``differential/baselines`` — the baseline family against its scalar
  references: the asymm-only variant batch-vs-scalar at a shared
  budget, ``wait_for_mommy`` vs a rescan of the vectorized all-starts
  walk matrix, leader-election coherence on traced runs, and the
  random-walk sweep aggregate vs per-trial recomputation.

**metamorphic** — invariance properties no reference implementation
is needed for:

* ``metamorphic/node-relabel`` — a seeded node permutation is a
  port-preserving isomorphism: view partition, Shrink matrix, and
  feasibility verdicts must map through it unchanged;
* ``metamorphic/port-relabel`` — permuting port labels preserves the
  underlying graph: distances and degrees are invariant, ``Shrink <=
  dist`` still holds, and verdicts stay coherent with Corollary 3.1;
* ``metamorphic/uxs-relabel`` — UXS coverage counts are equivariant
  under node permutation for arbitrary streams, and a sequence
  certified universal for the whole class of tiny-``n`` graphs keeps
  its verdict on every port-relabeled image.

**statistical** — ``statistical/meeting-time`` sweeps seeded agents
over random STICs and validates meeting-time summaries against hard
kinematic bounds (two unit-speed agents cannot close distance ``D``
with delay ``delta`` before round ``(D + delta) / 2``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines import (
    elect_leader,
    make_asymm_only_algorithm,
    mean_meeting_time,
    random_walk_rendezvous,
    wait_for_mommy,
)
from repro.core.profile import TUNED
from repro.core.universal import UniversalOracle
from repro.core.uxs import (
    apply_uxs,
    is_uxs_for_graph_scalar,
    minimal_verified_uxs,
)
from repro.core.uxs_engine import (
    apply_uxs_all,
    covered_counts,
    generate_offset_stream,
    is_uxs_for_graph_vectorized,
)
from repro.experiments.scenarios import build_graph
from repro.graphs.builders import relabel_ports
from repro.graphs.port_graph import PortLabeledGraph
from repro.graphs.random_graphs import random_port_permutation
from repro.hardness.batch import simulate_word_batch
from repro.hardness.lower_bound import STAY, simulate_word
from repro.sim.actions import Move, Wait, WaitBlock
from repro.sim.batch import run_rendezvous_batch
from repro.sim.schedule_adversary import (
    EagerSchedule,
    FixedDelaySchedule,
    MirrorSchedule,
    RandomSchedule,
    RateSkewSchedule,
    WordSchedule,
    run_schedule_adversary,
    run_schedule_sweep,
)
from repro.sim.scheduler import run_rendezvous
from repro.symmetry.context import SymmetryContext
from repro.symmetry.shrink import shrink_witness_reference
from repro.symmetry.views import view_classes_reference
from repro.util.lcg import SplitMix64, derive_seed

__all__ = [
    "CHECKS",
    "CHECK_KINDS",
    "CampaignCheck",
    "CheckResult",
    "run_check",
    "seeded_agent",
    "default_knobs",
]

#: Default sampling bounds; campaigns override per tier via their
#: ``knobs`` param (and replay artifacts persist the override).
_DEFAULT_KNOBS = {"max_pairs": 6, "max_events": 48, "max_deltas": 2}


def default_knobs() -> dict:
    return dict(_DEFAULT_KNOBS)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one check on one graph instance.

    ``ok`` is the verdict; ``comparisons`` counts the individual
    oracle comparisons that backed it (so a vacuous pass is visible);
    ``detail`` pinpoints the first divergence; ``summary`` carries the
    check's plain-JSON measurement payload (meeting-time statistics,
    coverage counts, ...).
    """

    ok: bool
    comparisons: int
    detail: str | None = None
    summary: dict | None = None

    def to_json_dict(self) -> dict:
        return {
            "ok": self.ok,
            "comparisons": self.comparisons,
            "detail": self.detail,
            "summary": self.summary or {},
        }


@dataclass(frozen=True)
class CampaignCheck:
    """A registered check: id, kind, and the oracle function."""

    check_id: str
    kind: str
    doc: str
    run: Callable[[dict, int, dict], CheckResult]


def seeded_agent(seed: int):
    """A pseudo-random deterministic agent program.

    Mixes moves, waits, wait blocks, and clock-dependent port choices
    — the idiom of the engine differential suites — so one seed axis
    sweeps a broad slice of agent behaviors through both engines.
    """

    def algorithm(percept):
        rng = SplitMix64(derive_seed("campaign-agent", seed))
        while True:
            roll = rng.randrange(10)
            if roll < 5:
                percept = yield Move(rng.randrange(percept.degree))
            elif roll < 7:
                percept = yield Wait()
            elif roll < 9:
                percept = yield WaitBlock(rng.randrange(5) + 1)
            else:
                percept = yield Move(percept.clock % percept.degree)

    return algorithm


def _sample_pairs(
    n: int, rng: SplitMix64, count: int, *, distinct: bool = False
) -> list[tuple[int, int]]:
    """Deterministically sample ``count`` (u, v) start pairs."""
    pairs = []
    for _ in range(count):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if distinct and n > 1:
            while v == u:
                v = rng.randrange(n)
        pairs.append((u, v))
    return pairs


def _fresh_context(graph: PortLabeledGraph) -> SymmetryContext:
    """A private kernel context (bypasses the per-graph LRU memo).

    Metamorphic checks build several same-``n`` graphs per cell; going
    through :func:`symmetry_context` would be correct but would also
    churn the global memo for no benefit.
    """
    return SymmetryContext(graph)


def _verdict_fields(ctx: SymmetryContext, u: int, v: int, delta: int) -> tuple:
    verdict = ctx.verdict(u, v, delta)
    return (verdict.feasible, verdict.symmetric, verdict.shrink)


# ---------------------------------------------------------------------------
# Differential checks
# ---------------------------------------------------------------------------


def _check_stic_sweep(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "stic-sweep", seed))
    budget = 8 * n + 24
    stics = [
        (u, v, rng.randrange(n + 3))
        for u, v in _sample_pairs(n, rng, int(knobs["max_pairs"]))
    ]
    algorithm = seeded_agent(seed)
    batch = run_rendezvous_batch(graph, stics, algorithm, max_rounds=budget)
    met = 0
    times = []
    for (u, v, delta), got in zip(stics, batch):
        want = run_rendezvous(graph, u, v, delta, algorithm, max_rounds=budget)
        for field in (
            "met",
            "meeting_node",
            "meeting_time",
            "time_from_later",
            "rounds_executed",
        ):
            if getattr(got, field) != getattr(want, field):
                return CheckResult(
                    ok=False,
                    comparisons=len(stics),
                    detail=(
                        f"STIC [({u},{v}),{delta}]: batch {field}="
                        f"{getattr(got, field)!r} != scalar "
                        f"{getattr(want, field)!r}"
                    ),
                )
        if got.met:
            met += 1
            times.append(got.meeting_time)
    return CheckResult(
        ok=True,
        comparisons=len(stics),
        summary={
            "stics": len(stics),
            "met": met,
            "max_meeting_time": max(times) if times else None,
        },
    )


def _schedule_pool(rng: SplitMix64, max_events: int) -> list:
    word = tuple(
        ("a", "b", "ab", "-")[rng.randrange(4)]
        for _ in range(rng.randrange(5) + 2)
    )
    if all(sym == "-" for sym in word):
        word = word + ("ab",)
    return [
        MirrorSchedule(),
        EagerSchedule(first=rng.randrange(2)),
        FixedDelaySchedule(rng.randrange(max_events // 2 + 1)),
        RateSkewSchedule(rng.randrange(3) + 1, rng.randrange(3) + 1),
        WordSchedule(word),
        RandomSchedule(rng.randrange(1 << 16)),
    ]


def _check_schedule_sweep(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "schedule-sweep", seed))
    max_events = int(knobs["max_events"])
    schedules = _schedule_pool(rng, max_events)
    cells = [
        (u, v, schedules[rng.randrange(len(schedules))])
        for u, v in _sample_pairs(n, rng, int(knobs["max_pairs"]))
    ]
    algorithm = seeded_agent(seed)
    batch = run_schedule_sweep(graph, cells, algorithm, max_events=max_events)
    node_meetings = edge_meetings = 0
    for (u, v, schedule), got in zip(cells, batch):
        want = run_schedule_adversary(
            graph, u, v, algorithm, schedule, max_events=max_events
        )
        for field in ("met", "meeting_node", "events", "edge_meetings"):
            if getattr(got, field) != getattr(want, field):
                return CheckResult(
                    ok=False,
                    comparisons=len(cells),
                    detail=(
                        f"cell ({u},{v},{schedule.name}): sweep {field}="
                        f"{getattr(got, field)!r} != scalar "
                        f"{getattr(want, field)!r}"
                    ),
                )
        node_meetings += got.met
        edge_meetings += got.edge_meetings
    return CheckResult(
        ok=True,
        comparisons=len(cells),
        summary={
            "cells": len(cells),
            "node_meetings": node_meetings,
            "edge_meetings": edge_meetings,
        },
    )


def _check_symmetry_kernel(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "symmetry-kernel", seed))
    ctx = _fresh_context(graph)
    comparisons = 1
    if ctx.color_list() != view_classes_reference(graph):
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail="kernel view partition != scalar refinement partition",
        )
    dist = ctx.distances
    for u, v in _sample_pairs(n, rng, int(knobs["max_pairs"])):
        comparisons += 1
        value, alpha, (x, y) = ctx.shrink_witness(u, v)
        ref_value, _ref_alpha, _ref_pair = shrink_witness_reference(graph, u, v)
        if value != ref_value:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"Shrink({u},{v}): kernel {value} != reference {ref_value}"
                ),
            )
        # Witness validity: alpha must actually drive (u, v) to (x, y)
        # and the final pair must realize the claimed distance.
        a, b = u, v
        for port in alpha:
            if port >= graph.degree(a) or port >= graph.degree(b):
                return CheckResult(
                    ok=False,
                    comparisons=comparisons,
                    detail=f"Shrink({u},{v}): witness port {port} invalid",
                )
            a, b = graph.succ(a, port), graph.succ(b, port)
        if (a, b) != (x, y) or int(dist[x, y]) != value:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"Shrink({u},{v}): witness lands on ({a},{b}) at "
                    f"distance {int(dist[a, b])}, claimed ({x},{y}) "
                    f"at {value}"
                ),
            )
    return CheckResult(
        ok=True,
        comparisons=comparisons,
        summary={"classes": len(set(ctx.color_list())), "n": n},
    )


def _check_sparse_symmetry(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    """The sparse/blocked symmetry paths vs the retained scalar references.

    Exercises exactly the engines the dense kernel no longer goes
    through for huge graphs: the frontier-compressed multi-source BFS
    (:meth:`SymmetryContext.distances_block`), the batched per-pair
    product BFS (:meth:`SymmetryContext.shrink_pairs`), the blocked
    worklist value iteration (:meth:`SymmetryContext.shrink_all_into`),
    and the color-bucketed symmetric-pair arrays — each against the
    scalar BFS / product-BFS / refinement references, on fresh contexts
    so nothing is served from a dense cache.
    """
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "sparse-symmetry", seed))
    ctx = _fresh_context(graph)
    comparisons = 0

    rows = [rng.randrange(n) for _ in range(min(n, int(knobs["max_pairs"])))]
    block = ctx.distances_block(rows)
    for slot, source in enumerate(rows):
        comparisons += 1
        if not np.array_equal(block[slot], graph.distances_from_reference(source)):
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"distances_block row {source}: blocked BFS != "
                    f"scalar reference BFS"
                ),
            )

    pairs = _sample_pairs(n, rng, int(knobs["max_pairs"]))
    us = np.asarray([u for u, _ in pairs], dtype=np.int64)
    vs = np.asarray([v for _, v in pairs], dtype=np.int64)
    values = ctx.shrink_pairs(us, vs, pair_chunk=3)
    for (u, v), value in zip(pairs, values.tolist()):
        comparisons += 1
        ref_value, _ref_alpha, _ref_pair = shrink_witness_reference(graph, u, v)
        if value != ref_value:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"shrink_pairs({u},{v}): batched product BFS {value}"
                    f" != scalar reference {ref_value}"
                ),
            )

    blocked = _fresh_context(graph).shrink_all_into(block_size=max(1, n // 3))
    comparisons += 1
    if not np.array_equal(blocked, blocked.T) or (np.diagonal(blocked) != 0).any():
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail="blocked shrink_all_into: not symmetric with zero diagonal",
        )
    for (u, v), value in zip(pairs, values.tolist()):
        comparisons += 1
        if int(blocked[u, v]) != value:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"blocked shrink_all_into[{u},{v}]="
                    f"{int(blocked[u, v])} != per-pair BFS {value}"
                ),
            )

    colors = view_classes_reference(graph)
    expected = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if colors[u] == colors[v]
    ]
    comparisons += 1
    if ctx.symmetric_pairs() != expected:
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail=(
                "color-bucketed symmetric_pairs() != pairs of the scalar "
                "view partition"
            ),
        )
    return CheckResult(
        ok=True,
        comparisons=comparisons,
        summary={
            "n": n,
            "sampled_pairs": len(pairs),
            "max_shrink_sampled": max(values.tolist()) if pairs else None,
        },
    )


def _check_uxs_cover(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    stream = generate_offset_stream(
        derive_seed("campaign-check", "uxs-cover", seed),
        max(2 * n, 2),
        max(64 * n, 8),
    )
    seq = tuple(int(a) for a in stream)
    comparisons = 0
    verdicts = []
    for length in (n, 4 * n, 16 * n, 64 * n):
        prefix = seq[:length]
        fast = is_uxs_for_graph_vectorized(graph, prefix)
        slow = is_uxs_for_graph_scalar(graph, prefix)
        comparisons += 1
        if fast != slow:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"prefix length {length}: vectorized certifier says "
                    f"{fast}, scalar says {slow}"
                ),
            )
        verdicts.append(fast)
    # Strongest form on the full stream: per-start coverage counts.
    counts = covered_counts(graph, seq)
    for start in range(n):
        comparisons += 1
        scalar = len(set(apply_uxs(graph, start, seq)))
        if int(counts[start]) != scalar:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"start {start}: vectorized coverage {int(counts[start])}"
                    f" != scalar {scalar}"
                ),
            )
    return CheckResult(
        ok=True,
        comparisons=comparisons,
        summary={"prefix_verdicts": verdicts, "full_cover": all(
            int(c) == n for c in counts
        )},
    )


def _check_hardness_word(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "hardness-word", seed))
    # Letters valid at every node: ports below the minimum degree, plus
    # the explicit STAY symbol of the oblivious-word model.
    letters = list(range(int(graph.degrees.min()))) + [STAY]
    word = tuple(
        letters[rng.randrange(len(letters))] for _ in range(rng.randrange(6) + 3)
    )
    u = rng.randrange(n)
    starts = list(range(n))
    comparisons = 0
    met = 0
    for delta in range(int(knobs["max_deltas"]) + 1):
        budget = 4 * n + 2 * len(word) + delta
        batch = simulate_word_batch(graph, word, u, starts, delta, budget)
        for v, got in zip(starts, batch):
            want = simulate_word(graph, word, u, v, delta, budget).meeting_time
            comparisons += 1
            if got != want:
                return CheckResult(
                    ok=False,
                    comparisons=comparisons,
                    detail=(
                        f"word {word} from ({u},{v}) delta={delta}: batch "
                        f"meeting {got!r} != scalar {want!r}"
                    ),
                )
            met += got is not None
    return CheckResult(
        ok=True,
        comparisons=comparisons,
        summary={"word_len": len(word), "starts": len(starts), "met": met},
    )


def _mommy_from_walk(walk, waiter: int, delta: int) -> tuple:
    """Recompute a :func:`wait_for_mommy` outcome from a leader walk
    (the scan of the scalar baseline, fed a vectorized walk row)."""
    for step, node in enumerate(walk):
        t = step  # leader is earlier: its start round is 0
        if int(node) == waiter and t >= delta:
            return (True, t, t - delta, step)
    if int(walk[-1]) == waiter:
        t = max(len(walk) - 1, delta)
        return (True, t, t - delta, len(walk) - 1)
    return (False, None, None, None)


def _check_baselines(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "baselines", seed))
    comparisons = 0
    budget = 8 * n + 32
    pairs = _sample_pairs(n, rng, int(knobs["max_pairs"]), distinct=True)

    # 1. Asymm-only variant: batched engine vs scalar scheduler at a
    # shared truncating budget (oracle view mode on both paths).
    algorithm = make_asymm_only_algorithm(TUNED)
    oracle_factory = lambda start: UniversalOracle(graph, start, TUNED)  # noqa: E731
    stics = [(u, v, rng.randrange(3)) for u, v in pairs]
    batch = run_rendezvous_batch(
        graph,
        stics,
        algorithm,
        max_rounds=budget,
        oracle_factory=oracle_factory,
    )
    for (u, v, delta), got in zip(stics, batch):
        want = run_rendezvous(
            graph,
            u,
            v,
            delta,
            algorithm,
            max_rounds=budget,
            oracles=(oracle_factory(u), oracle_factory(v)),
        )
        comparisons += 1
        for field in ("met", "meeting_node", "meeting_time", "time_from_later"):
            if getattr(got, field) != getattr(want, field):
                return CheckResult(
                    ok=False,
                    comparisons=comparisons,
                    detail=(
                        f"asymm-only STIC [({u},{v}),{delta}]: batch "
                        f"{field}={getattr(got, field)!r} != scalar "
                        f"{getattr(want, field)!r}"
                    ),
                )

    # 2. Wait-for-Mommy: the scalar baseline vs a rescan of the
    # vectorized all-starts walk matrix row.
    stream = [
        int(a)
        for a in generate_offset_stream(
            derive_seed("campaign-baseline-walk", seed), max(2 * n, 2), 48 * n
        )
    ]
    walks = apply_uxs_all(graph, stream)
    for leader, waiter in pairs:
        delta = rng.randrange(3)
        got = wait_for_mommy(graph, leader, waiter, delta, stream)
        want = _mommy_from_walk(walks[leader], waiter, delta)
        comparisons += 1
        if (got.met, got.meeting_time, got.time_from_later, got.leader_steps) != want:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"wait-for-mommy ({leader}->{waiter}, delta={delta}): "
                    f"scalar {got!r} != vectorized-walk rescan {want!r}"
                ),
            )

    # 3. Leader election: the reduction must be deterministic and
    # decide strictly before the meeting it is derived from.
    elections = 0
    for u, v in pairs:
        result = run_rendezvous(
            graph,
            u,
            v,
            rng.randrange(3),
            seeded_agent(seed),
            max_rounds=budget,
            record_traces=True,
        )
        if not result.met:
            continue
        comparisons += 1
        election = elect_leader(result)
        elections += 1
        if not (
            election.leader in (0, 1)
            and 0 <= election.decided_at < result.meeting_time
            and election == elect_leader(result)
        ):
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=f"leader election incoherent for ({u},{v}): {election!r}",
            )

    # 4. Random-walk baseline: the sweep aggregate vs a per-trial
    # recomputation from the same derived seeds.
    u, v = pairs[0]
    delta = rng.randrange(3)
    trials = 5
    horizon = 16 * n + delta
    mean, failures = mean_meeting_time(
        graph, u, v, delta, trials=trials, seed=seed, max_rounds=horizon
    )
    times = []
    for trial in range(trials):
        outcome = random_walk_rendezvous(
            graph, u, v, delta, seed=derive_seed(seed, trial), max_rounds=horizon
        )
        if outcome.met:
            times.append(outcome.time_from_later)
    want_mean = sum(times) / len(times) if times else float("inf")
    want_failures = trials - len(times)
    comparisons += 1
    if (mean, failures) != (want_mean, want_failures):
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail=(
                f"random-walk mean ({u},{v},{delta}): sweep "
                f"({mean}, {failures}) != recomputed "
                f"({want_mean}, {want_failures})"
            ),
        )
    return CheckResult(
        ok=True,
        comparisons=comparisons,
        summary={
            "asymm_stics": len(stics),
            "elections": elections,
            "rw_mean": mean if math.isfinite(mean) else None,
        },
    )


# ---------------------------------------------------------------------------
# Metamorphic checks
# ---------------------------------------------------------------------------


def _permuted_graph(
    graph: PortLabeledGraph, perm: list[int]
) -> PortLabeledGraph:
    return PortLabeledGraph(
        graph.n,
        [(perm[a], pa, perm[b], pb) for a, pa, b, pb in graph.edges],
    )


def _check_node_relabel(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "node-relabel", seed))
    perm = random_port_permutation(n, rng)
    image = _permuted_graph(graph, perm)
    ctx, ctx2 = _fresh_context(graph), _fresh_context(image)
    p = np.asarray(perm)
    comparisons = 2
    same = ctx.colors[:, None] == ctx.colors[None, :]
    same2 = ctx2.colors[:, None] == ctx2.colors[None, :]
    if not np.array_equal(same, same2[np.ix_(p, p)]):
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail="view partition is not invariant under node relabeling",
        )
    if not np.array_equal(ctx.shrink_all, ctx2.shrink_all[np.ix_(p, p)]):
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail="Shrink matrix is not invariant under node relabeling",
        )
    for u, v in _sample_pairs(n, rng, int(knobs["max_pairs"]), distinct=True):
        for delta in range(int(knobs["max_deltas"]) + 1):
            comparisons += 1
            if _verdict_fields(ctx, u, v, delta) != _verdict_fields(
                ctx2, perm[u], perm[v], delta
            ):
                return CheckResult(
                    ok=False,
                    comparisons=comparisons,
                    detail=(
                        f"verdict of [({u},{v}),{delta}] changed under "
                        "node relabeling"
                    ),
                )
    return CheckResult(ok=True, comparisons=comparisons, summary={"n": n})


def _check_port_relabel(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "port-relabel", seed))
    permutations = {
        v: dict(enumerate(random_port_permutation(graph.degree(v), rng)))
        for v in range(n)
    }
    image = relabel_ports(graph, permutations)
    ctx, ctx2 = _fresh_context(graph), _fresh_context(image)
    comparisons = 2
    if not np.array_equal(graph.degrees, image.degrees):
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail="degree sequence changed under port relabeling",
        )
    if not np.array_equal(ctx.distances, ctx2.distances):
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail="distance matrix changed under port relabeling",
        )
    dist = ctx.distances
    for u, v in _sample_pairs(n, rng, int(knobs["max_pairs"]), distinct=True):
        comparisons += 1
        s = int(ctx2.shrink_all[u, v])
        if s > int(dist[u, v]):
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"Shrink({u},{v})={s} exceeds distance "
                    f"{int(dist[u, v])} after port relabeling"
                ),
            )
        for delta in range(int(knobs["max_deltas"]) + 1):
            comparisons += 1
            feasible, symmetric, shrink = _verdict_fields(ctx2, u, v, delta)
            coherent = feasible == ((not symmetric) or delta >= shrink)
            if not coherent:
                return CheckResult(
                    ok=False,
                    comparisons=comparisons,
                    detail=(
                        f"verdict of [({u},{v}),{delta}] is incoherent "
                        "with Corollary 3.1 after port relabeling"
                    ),
                )
    return CheckResult(ok=True, comparisons=comparisons, summary={"n": n})


def _check_uxs_relabel(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "uxs-relabel", seed))
    stream = tuple(
        int(a)
        for a in generate_offset_stream(
            derive_seed("campaign-uxs-relabel", seed), max(2 * n, 2), 48 * n
        )
    )
    comparisons = 0

    # Node relabeling is a port-preserving isomorphism: any offset
    # stream's coverage counts must map through the permutation
    # unchanged, start by start (equivariance, not mere invariance).
    perm = random_port_permutation(n, rng)
    image = _permuted_graph(graph, perm)
    counts = covered_counts(graph, stream)
    counts2 = covered_counts(image, stream)
    for u in range(n):
        comparisons += 1
        if int(counts[u]) != int(counts2[perm[u]]):
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"coverage from start {u} changed under node "
                    f"relabeling: {int(counts[u])} != "
                    f"{int(counts2[perm[u]])} from {perm[u]}"
                ),
            )
    comparisons += 1
    if is_uxs_for_graph_vectorized(graph, stream) != is_uxs_for_graph_vectorized(
        image, stream
    ):
        return CheckResult(
            ok=False,
            comparisons=comparisons,
            detail="UXS verdict changed under node relabeling",
        )

    # Port relabeling changes the walks, so per-stream coverage may
    # legitimately change — but a sequence certified universal for the
    # *class* of n-node graphs (exhaustively, so only for tiny n) must
    # keep its verdict on every relabeled image.
    certified_n = None
    max_uxs_n = min(int(knobs.get("max_uxs_n", 4)), 4)
    if 1 < n <= max_uxs_n:
        certified = minimal_verified_uxs(n)
        permutations = {
            v: dict(enumerate(random_port_permutation(graph.degree(v), rng)))
            for v in range(n)
        }
        for target in (graph, image, relabel_ports(graph, permutations)):
            comparisons += 1
            if not is_uxs_for_graph_vectorized(target, certified):
                return CheckResult(
                    ok=False,
                    comparisons=comparisons,
                    detail=(
                        f"certified UXS for n={n} lost universality "
                        "under relabeling"
                    ),
                )
        certified_n = n
    return CheckResult(
        ok=True,
        comparisons=comparisons,
        summary={
            "n": n,
            "stream_len": len(stream),
            "certified_n": certified_n,
        },
    )


# ---------------------------------------------------------------------------
# Statistical check
# ---------------------------------------------------------------------------


def _check_meeting_time(graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    graph = build_graph(graph_spec)
    n = graph.n
    rng = SplitMix64(derive_seed("campaign-check", "meeting-time", seed))
    budget = 8 * n + 24
    stics = [
        (u, v, rng.randrange(n + 3))
        for u, v in _sample_pairs(n, rng, int(knobs["max_pairs"]))
    ]
    ctx = _fresh_context(graph)
    dist = ctx.distances
    results = run_rendezvous_batch(
        graph, stics, seeded_agent(seed), max_rounds=budget
    )
    times = []
    comparisons = 0
    for (u, v, delta), r in zip(stics, results):
        comparisons += 1
        if not r.met:
            if r.rounds_executed != budget:
                return CheckResult(
                    ok=False,
                    comparisons=comparisons,
                    detail=(
                        f"STIC [({u},{v}),{delta}]: unmet run executed "
                        f"{r.rounds_executed} rounds, budget {budget}"
                    ),
                )
            continue
        floor = max(delta, math.ceil((int(dist[u, v]) + delta) / 2))
        if not floor <= r.meeting_time <= budget:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"STIC [({u},{v}),{delta}]: meeting time "
                    f"{r.meeting_time} outside kinematic range "
                    f"[{floor}, {budget}]"
                ),
            )
        if r.rounds_executed != r.meeting_time:
            return CheckResult(
                ok=False,
                comparisons=comparisons,
                detail=(
                    f"STIC [({u},{v}),{delta}]: rounds_executed "
                    f"{r.rounds_executed} != meeting time {r.meeting_time}"
                ),
            )
        times.append(int(r.meeting_time))
    summary = {
        "stics": len(stics),
        "met": len(times),
        "met_rate": round(len(times) / max(len(stics), 1), 4),
        "mean_meeting_time": (
            round(sum(times) / len(times), 3) if times else None
        ),
        "max_meeting_time": max(times) if times else None,
    }
    return CheckResult(ok=True, comparisons=comparisons, summary=summary)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_CHECKS = [
    CampaignCheck(
        "differential/stic-sweep",
        "differential",
        "batched STIC rendezvous engine vs scalar scheduler",
        _check_stic_sweep,
    ),
    CampaignCheck(
        "differential/schedule-sweep",
        "differential",
        "batched adversary-schedule engine vs scalar reference",
        _check_schedule_sweep,
    ),
    CampaignCheck(
        "differential/symmetry-kernel",
        "differential",
        "array symmetry kernel vs scalar refinement/BFS references",
        _check_symmetry_kernel,
    ),
    CampaignCheck(
        "differential/sparse-symmetry",
        "differential",
        "blocked BFS / batched Shrink / worklist iteration vs scalar "
        "references",
        _check_sparse_symmetry,
    ),
    CampaignCheck(
        "differential/uxs-cover",
        "differential",
        "vectorized UXS certifier vs scalar per-start walks",
        _check_uxs_cover,
    ),
    CampaignCheck(
        "differential/hardness-word",
        "differential",
        "batched oblivious-word simulator vs scalar lower-bound reference",
        _check_hardness_word,
    ),
    CampaignCheck(
        "differential/baselines",
        "differential",
        "baseline family (asymm-only, mommy, election, random walk) vs "
        "scalar references",
        _check_baselines,
    ),
    CampaignCheck(
        "metamorphic/node-relabel",
        "metamorphic",
        "verdicts/Shrink invariant under port-preserving node permutation",
        _check_node_relabel,
    ),
    CampaignCheck(
        "metamorphic/port-relabel",
        "metamorphic",
        "distances/coherence invariant under per-node port permutation",
        _check_port_relabel,
    ),
    CampaignCheck(
        "metamorphic/uxs-relabel",
        "metamorphic",
        "UXS coverage equivariant under node permutation; certified "
        "universality survives port relabeling",
        _check_uxs_relabel,
    ),
    CampaignCheck(
        "statistical/meeting-time",
        "statistical",
        "meeting-time summaries within hard kinematic bounds",
        _check_meeting_time,
    ),
]

#: Check id -> :class:`CampaignCheck`; the campaign vocabulary.
CHECKS: dict[str, CampaignCheck] = {c.check_id: c for c in _CHECKS}

#: The distinct check kinds, in registry order.
CHECK_KINDS: tuple[str, ...] = tuple(
    dict.fromkeys(c.kind for c in _CHECKS)
)


def run_check(check_id: str, graph_spec: dict, seed: int, knobs: dict) -> CheckResult:
    """Execute one registered check on one seeded graph instance.

    An unknown ``check_id`` raises (a campaign-config error, validated
    before any shard runs).  An exception *inside* the check body —
    an engine crashing instead of returning a wrong answer, a builder
    rejecting its parameters — is itself a failing verdict: it is
    converted to a ``CheckResult`` so the cell still shrinks to a
    replay artifact and the rest of the grid keeps running, and since
    the check is deterministic the replay re-raises identically.
    """
    if check_id not in CHECKS:
        raise KeyError(
            f"unknown check {check_id!r}; known: {sorted(CHECKS)}"
        )
    merged = {**_DEFAULT_KNOBS, **(knobs or {})}
    try:
        return CHECKS[check_id].run(graph_spec, seed, merged)
    except Exception as exc:
        return CheckResult(
            ok=False,
            comparisons=0,
            detail=f"check raised {type(exc).__name__}: {exc}",
            summary={"raised": True},
        )
