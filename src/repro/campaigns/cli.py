"""``repro campaign`` — run, list, and replay randomized campaigns.

Subcommands::

    repro campaign run [NAME ...] [--tier T] [--jobs N] [--seed S]
                       [--cache-dir PATH | --no-cache]
                       [--artifacts DIR] [--resume [RUN_ID]]
                       [--max-retries N] [--shard-timeout S]
    repro campaign list
    repro campaign status RUN_ID [--cache-dir PATH]
    repro campaign replay ARTIFACT.json

``run`` executes the selected campaigns (default: all) through the
sharded orchestrator — ``--jobs`` and the content-addressed cache
behave exactly as for ``python -m repro`` — and writes one replay
artifact per failing cell.  Each cached run is journaled;
``--resume`` re-attaches to a killed run and recomputes nothing it
completed, and ``status`` shows a run's completed/leased/quarantined
ledger (live or post-mortem).  ``replay`` re-executes a failure from
its artifact alone; exit status 1 means the failure still reproduces,
0 means the underlying bug no longer manifests.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.campaigns.artifacts import (
    DEFAULT_ARTIFACT_DIR,
    load_artifact,
    replay_artifact,
    write_artifact,
)
from repro.campaigns.checks import CHECKS
from repro.campaigns.registry import CAMPAIGNS, get_campaign
from repro.experiments.journal import list_runs
from repro.experiments.orchestrator import journal_status, run_suite
from repro.experiments.queue import DEFAULT_MAX_RETRIES
from repro.experiments.scenarios import TIERS
from repro.experiments.store import DEFAULT_CACHE_DIR, ResultStore

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.campaigns import driver

    print(f"{'campaign':<18} {'cells (smoke/fast/full/stress)':<32} checks")
    for name, spec in CAMPAIGNS.items():
        counts = "/".join(
            str(len(driver.make_shards(spec.config(tier)))) for tier in TIERS
        )
        checks = sorted({c for t in spec.tiers.values() for c in t["checks"]})
        kinds = sorted({CHECKS[c].kind for c in checks})
        print(
            f"{name:<18} {counts:<32} "
            f"{len(checks)} checks ({', '.join(kinds)})"
        )
    print()
    print("checks:")
    for check_id, check in CHECKS.items():
        print(f"  {check_id:<30} {check.doc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        specs = [get_campaign(name) for name in (args.campaigns or CAMPAIGNS)]
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.resume is not None and args.no_cache:
        print("--resume needs the journal; drop --no-cache", file=sys.stderr)
        return 2
    store = None if args.no_cache else ResultStore(args.cache_dir)
    started = time.perf_counter()
    runs = run_suite(
        specs,
        tier=args.tier,
        seed=args.seed,
        jobs=args.jobs,
        store=store,
        max_retries=args.max_retries,
        shard_timeout=args.shard_timeout,
        run_id=args.resume or None,
        resume=args.resume is not None,
    )
    elapsed = time.perf_counter() - started
    failures = 0
    for run in runs:
        print(run.record.to_text())
        for outcome in run.shards:
            for artifact in (outcome.result or {}).get("failures", []):
                failures += 1
                path = write_artifact(artifact, args.artifacts)
                print(
                    f"FAILED cell {artifact['check']} on "
                    f"{artifact['graph_spec']} -> {path}"
                )
        print(
            f"({run.seconds:.1f}s, cells {run.shards_cached}/"
            f"{len(run.shards)} cached)\n"
        )
    total = sum(len(run.shards) for run in runs)
    computed = sum(run.shards_computed for run in runs)
    quarantined = sum(run.shards_quarantined for run in runs)
    rate = total / elapsed if elapsed > 0 else float("inf")
    print(
        f"cells: total={total} recomputed={computed} "
        f"cached={total - computed - quarantined} failures={failures} "
        f"({elapsed:.1f}s, {rate:.1f} cells/s, tier={args.tier}, "
        f"jobs={args.jobs})"
    )
    if runs and runs[0].run_id:
        print(
            f"run id: {runs[0].run_id} "
            f"(status/resume with `repro campaign status {runs[0].run_id}` "
            "/ `repro campaign run --resume ...`)"
        )
    if quarantined:
        print(
            f"WARNING: {quarantined} quarantined cell(s); replay with "
            "`python -m repro --replay-shard "
            f"{args.cache_dir}/runs/<run-id>/quarantine/shard-*.json`"
        )
    if failures:
        print(
            f"{failures} failing cell(s); replay with "
            f"`repro campaign replay {args.artifacts}/replay-*.json`"
        )
    return 1 if failures or quarantined else 0


def _cmd_status(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache_dir)
    try:
        state, rows = journal_status(store, args.run_id)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        runs = list_runs(store.root)
        if runs:
            print(f"known runs: {', '.join(runs)}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"corrupt journal: {exc}", file=sys.stderr)
        return 2
    totals = state.counts()
    print(
        f"run {state.run_id} tier={state.tier} seed={state.seed} "
        f"resumes={state.resumes}"
        + (" [truncated tail dropped]" if state.truncated_tail else "")
    )
    header = (
        f"{'experiment':<18} {'completed':>9} {'cached':>7} {'leased':>7} "
        f"{'quarantined':>11} {'pending':>8}"
    )
    print(header)
    for exp_id, counts in rows:
        print(
            f"{exp_id:<18} "
            f"{counts['completed']:>4}/{counts['planned']:<4} "
            f"{counts['cached']:>7} {counts['leased']:>7} "
            f"{counts['quarantined']:>11} {counts['pending']:>8}"
        )
    print(
        f"TOTAL: {totals['completed']}/{totals['planned']} completed, "
        f"{totals['leased']} leased, {totals['quarantined']} quarantined, "
        f"{totals['pending']} pending"
    )
    return 0 if totals["quarantined"] == 0 else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        artifact = load_artifact(args.artifact)
    except (OSError, ValueError) as exc:
        print(f"cannot load artifact: {exc}", file=sys.stderr)
        return 2
    print(
        f"replaying {artifact['check']} on {artifact['graph_spec']} "
        f"(seed {artifact['seed']})"
    )
    if artifact.get("detail"):
        print(f"recorded failure: {artifact['detail']}")
    result = replay_artifact(artifact)
    if result.ok:
        print(
            f"check PASSED ({result.comparisons} comparisons) — the "
            "recorded failure no longer reproduces"
        )
        return 0
    print(f"check FAILED (reproduced): {result.detail}")
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro campaign", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="execute campaigns through the sharded orchestrator"
    )
    run_parser.add_argument(
        "campaigns", nargs="*", help=f"campaign names (default all: {sorted(CAMPAIGNS)})"
    )
    run_parser.add_argument(
        "--tier", choices=TIERS, default="smoke",
        help="scale tier (default smoke)",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for cell execution (default 1 = serial)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None,
        help="override the campaign base seed (new grid, fresh cache keys)",
    )
    run_parser.add_argument(
        "--cache-dir", metavar="PATH", default=DEFAULT_CACHE_DIR,
        help=f"result-store location (default {DEFAULT_CACHE_DIR})",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result store (recompute every cell)",
    )
    run_parser.add_argument(
        "--artifacts", metavar="DIR", default=DEFAULT_ARTIFACT_DIR,
        help=f"replay-artifact directory (default {DEFAULT_ARTIFACT_DIR})",
    )
    run_parser.add_argument(
        "--resume", nargs="?", const="", default=None, metavar="RUN_ID",
        help="re-attach to a journaled run (default: the run id this "
        "same invocation derives) and recompute nothing it completed",
    )
    run_parser.add_argument(
        "--max-retries", type=int, default=DEFAULT_MAX_RETRIES, metavar="N",
        help="re-lease a failing cell N times before quarantining it "
        f"(default {DEFAULT_MAX_RETRIES})",
    )
    run_parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="expire a cell lease after SECONDS and re-lease it "
        "(default: no hard deadline; heartbeat liveness still applies)",
    )
    run_parser.set_defaults(func=_cmd_run)

    list_parser = sub.add_parser(
        "list", help="list campaigns, grid sizes, and the check registry"
    )
    list_parser.set_defaults(func=_cmd_list)

    status_parser = sub.add_parser(
        "status", help="show a journaled run's shard ledger"
    )
    status_parser.add_argument("run_id", help="run id (printed by `run`)")
    status_parser.add_argument(
        "--cache-dir", metavar="PATH", default=DEFAULT_CACHE_DIR,
        help=f"result-store location (default {DEFAULT_CACHE_DIR})",
    )
    status_parser.set_defaults(func=_cmd_status)

    replay_parser = sub.add_parser(
        "replay", help="re-execute one failure from its replay artifact"
    )
    replay_parser.add_argument("artifact", help="path to a replay-*.json file")
    replay_parser.set_defaults(func=_cmd_replay)

    args = parser.parse_args(argv)
    if args.command == "run" and args.jobs < 1:
        run_parser.error("--jobs must be >= 1")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
