"""Replay artifacts: minimal, self-contained failure reproductions.

A replay artifact is the JSON the shrinker distills a campaign
failure down to — the resolved graph spec (seed included for random
families), the cell's instance seed, the check id, and the sampling
knobs in force.  That tuple is everything :func:`run_check` consumed,
so ``replay_artifact`` re-executes the exact failing computation with
no campaign machinery in the loop; provenance fields (campaign id,
tier, rung, shrink origin) ride along for the human reading the file.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.campaigns.checks import CheckResult, run_check
from repro.util.encoding import canonical_json

__all__ = [
    "DEFAULT_ARTIFACT_DIR",
    "artifact_name",
    "write_artifact",
    "load_artifact",
    "replay_artifact",
]

#: Where ``repro campaign run`` drops replay files by default.
DEFAULT_ARTIFACT_DIR = "campaign-artifacts"

#: Fields replay needs; ``load_artifact`` rejects files missing any.
_REQUIRED = ("check", "graph_spec", "seed")


def artifact_name(artifact: dict) -> str:
    """Stable filename for an artifact (content-addressed)."""
    digest = hashlib.sha256(canonical_json(artifact).encode()).hexdigest()
    kind = artifact["check"].replace("/", "-")
    return f"replay-{kind}-{digest[:12]}.json"


def write_artifact(artifact: dict, directory: str | os.PathLike) -> Path:
    """Atomically persist one artifact; returns its path."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    path = root / artifact_name(artifact)
    fd, tmp = tempfile.mkstemp(dir=root, prefix=".replay-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_artifact(path: str | os.PathLike) -> dict:
    """Read and validate a replay artifact file."""
    with open(path) as fh:
        artifact = json.load(fh)
    if not isinstance(artifact, dict):
        raise ValueError(f"{path}: replay artifact must be a JSON object")
    missing = [field for field in _REQUIRED if field not in artifact]
    if missing:
        raise ValueError(
            f"{path}: replay artifact is missing {missing}; "
            f"required fields: {list(_REQUIRED)}"
        )
    return artifact


def replay_artifact(artifact: dict) -> CheckResult:
    """Re-execute the failing cell an artifact describes."""
    return run_check(
        artifact["check"],
        artifact["graph_spec"],
        artifact["seed"],
        artifact.get("knobs") or {},
    )
