"""Built-in campaigns and the ``make_campaign`` spec factory.

Campaigns are plain :class:`ScenarioSpec` objects (module =
``repro.campaigns.driver``) living *off* the experiment registry —
``python -m repro`` keeps running only the paper's experiments, while
``repro campaign run`` feeds these specs straight into the same
orchestrator.  Two ship by default:

* ``core`` — the wide fuzz grid: every check kind over structured,
  Cayley, and random families, tiered from a seconds-long CI smoke
  round to an overnight ``stress`` soak;
* ``random`` — random distributions only, with deeper seed blocks per
  cell (the paper's guarantees quantify over *all* graphs; unstructured
  inputs are where the engines have historically disagreed first).
"""

from __future__ import annotations

from repro.campaigns.checks import CHECKS
from repro.experiments.scenarios import ScenarioSpec

__all__ = ["CAMPAIGNS", "get_campaign", "make_campaign"]

#: Cache salt for campaign shards; bump when check semantics change.
CAMPAIGN_CODE_VERSION = 1

_ALL_CHECKS = list(CHECKS)
_DIFFERENTIAL = [c for c in CHECKS if c.startswith("differential/")]


def make_campaign(
    name: str,
    *,
    title: str,
    tiers: dict[str, dict],
    seed: int = 0,
    code_version: int = CAMPAIGN_CODE_VERSION,
) -> ScenarioSpec:
    """Build a campaign spec the orchestrator can run directly."""
    return ScenarioSpec(
        exp_id=f"CAMPAIGN/{name}",
        title=title,
        module="repro.campaigns.driver",
        shard_axis="(graph family, size rung, check) grid cell",
        tiers=tiers,
        seed=seed,
        code_version=code_version,
    )


def _tier(
    families: list[dict],
    checks: list[str],
    seeds_per_cell: int,
    knobs: dict | None = None,
) -> dict:
    return {
        "families": families,
        "checks": checks,
        "seeds_per_cell": seeds_per_cell,
        "knobs": knobs or {},
    }


# Size ladders per family: rung 0 is the shrink target, later rungs
# scale the same distribution up.  Seeded families omit "seed" — the
# driver injects per-cell seeds.
_STRUCTURED = {
    "oriented_ring": [{"n": 5}, {"n": 8}, {"n": 12}, {"n": 24}],
    "hypercube": [{"dim": 2}, {"dim": 3}, {"dim": 4}],
    "symmetric_tree": [
        {"arity": 2, "depth": 1},
        {"arity": 2, "depth": 2},
        {"arity": 2, "depth": 3},
    ],
    "complete": [{"n": 4}, {"n": 5}, {"n": 7}, {"n": 9}],
    "circulant": [
        {"n": 6, "steps": [1]},
        {"n": 8, "steps": [1, 3]},
        {"n": 12, "steps": [1, 4]},
        {"n": 16, "steps": [1, 3, 8]},
    ],
    "cayley_abelian": [
        {"moduli": [3, 3], "generators": [[1, 0], [0, 1]]},
        {"moduli": [4, 3], "generators": [[1, 0], [0, 1]]},
        {"moduli": [4, 4], "generators": [[1, 0], [0, 1], [2, 2]]},
    ],
}

_RANDOM = {
    "random_tree": [{"n": 5}, {"n": 8}, {"n": 12}, {"n": 20}],
    "random_connected": [
        {"n": 5, "extra_edges": 2},
        {"n": 8, "extra_edges": 4},
        {"n": 12, "extra_edges": 8},
        {"n": 16, "extra_edges": 20},
    ],
    "random_regular": [
        {"n": 6, "degree": 3},
        {"n": 8, "degree": 3},
        {"n": 12, "degree": 4},
        {"n": 16, "degree": 4},
    ],
}


def _grid(ladders: dict[str, list[dict]], rungs: int) -> list[dict]:
    return [
        {"family": family, "rungs": ladder[:rungs]}
        for family, ladder in ladders.items()
    ]


_CORE_LADDERS = {**_STRUCTURED, **_RANDOM}

CAMPAIGNS: dict[str, ScenarioSpec] = {
    "core": make_campaign(
        "core",
        title="differential + metamorphic + statistical fuzz grid",
        tiers={
            "smoke": _tier(_grid(_CORE_LADDERS, 1), _ALL_CHECKS, 2),
            "fast": _tier(_grid(_CORE_LADDERS, 2), _ALL_CHECKS, 3),
            "full": _tier(_grid(_CORE_LADDERS, 3), _ALL_CHECKS, 4),
            "stress": _tier(
                _grid(_CORE_LADDERS, 4),
                _ALL_CHECKS,
                6,
                {"max_pairs": 10, "max_events": 96, "max_deltas": 3},
            ),
        },
    ),
    "random": make_campaign(
        "random",
        title="deep seed blocks over random graph distributions",
        tiers={
            "smoke": _tier(_grid(_RANDOM, 1), _DIFFERENTIAL, 3),
            "fast": _tier(_grid(_RANDOM, 2), _ALL_CHECKS, 6),
            "full": _tier(_grid(_RANDOM, 3), _ALL_CHECKS, 10),
            "stress": _tier(
                _grid(_RANDOM, 4),
                _ALL_CHECKS,
                16,
                {"max_pairs": 10, "max_events": 96, "max_deltas": 3},
            ),
        },
    ),
}


def get_campaign(name: str) -> ScenarioSpec:
    """Resolve a campaign name, accepting the ``CAMPAIGN/`` prefix."""
    key = name.removeprefix("CAMPAIGN/")
    if key not in CAMPAIGNS:
        raise KeyError(
            f"unknown campaign {name!r}; known: {sorted(CAMPAIGNS)}"
        )
    return CAMPAIGNS[key]
