"""Randomized campaigns: fuzz every batched engine against its oracle.

The paper's guarantees quantify over *all* port-labeled graphs; this
package turns that into an executable regression net.  A campaign is
a declarative (graph-distribution x size-rung x seed-block) grid —
run through the sharded/cached experiment orchestrator — where each
cell executes a pluggable check: differential (batched engine vs
retained scalar reference), metamorphic (relabeling invariance), or
statistical (meeting-time summaries against kinematic bounds).
Failures shrink to minimal replay artifacts that ``repro campaign
replay`` reproduces exactly.  See docs/campaigns.md.
"""

from repro.campaigns.artifacts import (
    DEFAULT_ARTIFACT_DIR,
    load_artifact,
    replay_artifact,
    write_artifact,
)
from repro.campaigns.checks import (
    CHECK_KINDS,
    CHECKS,
    CampaignCheck,
    CheckResult,
    run_check,
    seeded_agent,
)
from repro.campaigns.registry import CAMPAIGNS, get_campaign, make_campaign

__all__ = [
    "CAMPAIGNS",
    "CHECKS",
    "CHECK_KINDS",
    "CampaignCheck",
    "CheckResult",
    "DEFAULT_ARTIFACT_DIR",
    "get_campaign",
    "load_artifact",
    "make_campaign",
    "replay_artifact",
    "run_check",
    "seeded_agent",
    "write_artifact",
]
