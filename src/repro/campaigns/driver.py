"""Campaign driver: the scenario protocol over a randomized check grid.

A campaign is an off-registry :class:`ScenarioSpec` whose ``module``
points here, so the PR 4 orchestrator — ``--jobs`` sharding, the
content-addressed result store, byte-identical merges — executes it
unchanged.  Tier params describe the grid declaratively::

    {
      "families": [{"family": <name>, "rungs": [<kwargs>, ...]}, ...],
      "checks": [<check id>, ...],
      "seeds_per_cell": <int>,
      "knobs": {<check sampling bounds>},
    }

``make_shards`` emits one shard per (family, size rung, check) cell;
``run_shard`` executes the cell's seed block, derives every instance
seed from ``(campaign, family, rung, config seed, index)`` through
:func:`derive_seed` (axis-separated — property-tested in
tests/util), and on the first failure *shrinks* it: candidate cells
over smaller rungs and earlier seeds are replayed in ascending size
order, and the smallest that still fails becomes the replay artifact
(family spec + seed + check id + knobs) that ``repro campaign
replay`` reproduces exactly.
"""

from __future__ import annotations

from repro.campaigns.checks import CHECKS, CheckResult, default_knobs, run_check
from repro.experiments.records import ExperimentRecord
from repro.experiments.scenarios import GRAPH_FAMILIES, RunConfig
from repro.util.encoding import canonical_json
from repro.util.lcg import derive_seed

__all__ = [
    "cell_seed",
    "resolve_graph_spec",
    "make_shards",
    "run_shard",
    "merge",
    "SHRINK_BUDGET",
]

#: Maximum check re-executions a shrink pass may spend; the original
#: failure always remains available as the fallback artifact.
SHRINK_BUDGET = 32


def cell_seed(
    campaign: str, family: str, rung: dict, config_seed: int, index: int
) -> int:
    """Instance seed of one campaign cell; every axis separates.

    The rung enters through its canonical JSON, so two rungs differing
    in any kwarg (not just ``n``) get independent streams.
    """
    return derive_seed(
        "campaign-cell", campaign, family, canonical_json(rung), config_seed, index
    )


def resolve_graph_spec(family: str, rung: dict, instance_seed: int) -> dict:
    """The concrete ``build_graph`` spec of one cell instance.

    Seeded families (graph *distributions*) get the instance seed
    injected; structured families take the rung verbatim — their
    instances differ only through the check's own seeded sampling.
    """
    entry = GRAPH_FAMILIES[family]
    spec = {"family": family, **rung}
    if entry.seeded:
        if "seed" in rung:
            raise ValueError(
                f"campaign rung for {family!r} must not pin 'seed'; "
                "the campaign injects per-cell seeds"
            )
        spec["seed"] = instance_seed
    return spec


def _validate_params(params: dict) -> None:
    for fam in params["families"]:
        if fam["family"] not in GRAPH_FAMILIES:
            raise KeyError(
                f"campaign references unknown graph family {fam['family']!r}; "
                f"known: {sorted(GRAPH_FAMILIES)}"
            )
    for check_id in params["checks"]:
        if check_id not in CHECKS:
            raise KeyError(
                f"campaign references unknown check {check_id!r}; "
                f"known: {sorted(CHECKS)}"
            )


def make_shards(config: RunConfig) -> list[dict]:
    """One shard per (family, rung, check) grid cell, in grid order."""
    _validate_params(config.params)
    return [
        {
            "family": fam["family"],
            "rung_index": index,
            "rung": rung,
            "check": check_id,
        }
        for fam in config.params["families"]
        for index, rung in enumerate(fam["rungs"])
        for check_id in config.params["checks"]
    ]


def _run_cell(
    config: RunConfig, family: str, rung: dict, check_id: str, index: int
) -> tuple[int, dict, CheckResult]:
    knobs = config.params.get("knobs") or {}
    seed = cell_seed(config.exp_id, family, rung, config.seed, index)
    spec = resolve_graph_spec(family, rung, seed)
    return seed, spec, run_check(check_id, spec, seed, knobs)


def _artifact(
    config: RunConfig,
    check_id: str,
    family: str,
    rung: dict,
    index: int,
    seed: int,
    spec: dict,
    result: CheckResult,
) -> dict:
    return {
        "campaign": config.exp_id,
        "tier": config.tier,
        "config_seed": config.seed,
        "check": check_id,
        "family": family,
        "rung": rung,
        "seed_index": index,
        "graph_spec": spec,
        "seed": seed,
        "knobs": {**default_knobs(), **(config.params.get("knobs") or {})},
        "detail": result.detail,
    }


def _shrink_failure(
    config: RunConfig, shard: dict, first_failure: dict
) -> dict:
    """Replay smaller cells; the smallest still-failing one wins.

    Candidates run in ascending (rung, seed index) order over the
    failing family's ladder up to the failing rung, so the first
    reproduction *is* the minimum.  The pass is bounded by
    :data:`SHRINK_BUDGET` executions and falls back to the original
    failing cell when nothing smaller reproduces.
    """
    family, check_id = shard["family"], shard["check"]
    ladder = next(
        fam["rungs"]
        for fam in config.params["families"]
        if fam["family"] == family
    )
    seeds = int(config.params.get("seeds_per_cell", 1))
    executed = 0
    for rung_index in range(shard["rung_index"] + 1):
        rung = ladder[rung_index]
        for index in range(seeds):
            if rung_index == first_failure["rung_index"]:
                if index < first_failure["seed_index"]:
                    continue  # already passed during the shard run
                # Reached the original cell: nothing smaller failed.
                return first_failure["artifact"]
            if executed >= SHRINK_BUDGET:
                return first_failure["artifact"]
            executed += 1
            seed, spec, result = _run_cell(
                config, family, rung, check_id, index
            )
            if not result.ok:
                artifact = _artifact(
                    config, check_id, family, rung, index, seed, spec, result
                )
                artifact["shrunk_from"] = {
                    "rung_index": first_failure["rung_index"],
                    "seed_index": first_failure["seed_index"],
                }
                return artifact
    return first_failure["artifact"]


def run_shard(config: RunConfig, shard: dict) -> dict:
    """Execute one grid cell's seed block; shrink the first failure."""
    family, check_id = shard["family"], shard["check"]
    rung = shard["rung"]
    instances = comparisons = 0
    summary: dict = {}
    failure: dict | None = None
    for index in range(int(config.params.get("seeds_per_cell", 1))):
        seed, spec, result = _run_cell(config, family, rung, check_id, index)
        instances += 1
        comparisons += result.comparisons
        if result.ok:
            summary = result.summary or {}
            continue
        failure = {
            "rung_index": shard["rung_index"],
            "seed_index": index,
            "artifact": _artifact(
                config, check_id, family, rung, index, seed, spec, result
            ),
        }
        break
    failures = [_shrink_failure(config, shard, failure)] if failure else []
    return {
        "family": family,
        "check": check_id,
        "rung_index": shard["rung_index"],
        "ok": not failures,
        "instances": instances,
        "comparisons": comparisons,
        "summary": summary,
        "failures": failures,
    }


def merge(config: RunConfig, shard_results: list[dict]) -> ExperimentRecord:
    """Aggregate cells into the campaign's record (shard order)."""
    rows = []
    failures = 0
    kinds = set()
    for result in shard_results:
        kinds.add(CHECKS[result["check"]].kind)
        failures += len(result["failures"])
        rows.append(
            {
                "family": result["family"],
                "rung": result["rung_index"],
                "check": result["check"],
                "instances": result["instances"],
                "comparisons": result["comparisons"],
                "verdict": "ok" if result["ok"] else "FAIL",
            }
        )
    families = len({r["family"] for r in rows})
    record = ExperimentRecord(
        exp_id=config.exp_id,
        title=f"randomized campaign ({config.tier} tier)",
        paper_claim=(
            "feasibility verdicts, Shrink, UXS coverage, and both "
            "rendezvous engines obey the paper's guarantees on every "
            "port-labeled graph, not just the structured examples"
        ),
        columns=["family", "rung", "check", "instances", "comparisons", "verdict"],
        measured_summary=(
            f"{len(rows)} cells over {families} families, "
            f"{sum(r['instances'] for r in rows)} instances, "
            f"{sum(r['comparisons'] for r in rows)} comparisons, "
            f"{failures} failing"
        ),
        passed=failures == 0,
        notes=f"check kinds: {', '.join(sorted(kinds))}",
    )
    record.rows = rows
    return record
