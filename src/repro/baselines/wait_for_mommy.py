"""The "waiting for Mommy" baseline (Introduction).

If leader election is already solved — roles assigned out of band —
rendezvous reduces to exploration: the non-leader waits at its initial
node and the leader explores the graph until it finds it.  This is the
upper baseline every symmetric algorithm is compared against: it shows
how cheap rendezvous becomes once symmetry is broken *for free*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.uxs import apply_uxs
from repro.graphs.port_graph import PortLabeledGraph

__all__ = ["MommyOutcome", "wait_for_mommy"]


@dataclass(frozen=True)
class MommyOutcome:
    """Result of the leader-explores / non-leader-waits run."""

    met: bool
    meeting_time: int | None  # global round
    time_from_later: int | None
    leader_steps: int | None


def wait_for_mommy(
    graph: PortLabeledGraph,
    leader: int,
    waiter: int,
    delta: int,
    uxs,
    *,
    leader_is_earlier: bool = True,
) -> MommyOutcome:
    """Leader walks the UXS application from its node; waiter stays put.

    ``delta`` delays the later of the two (per ``leader_is_earlier``).
    The meeting time is exact: the first round at which the leader's
    walk stands on the waiter's node while both agents are present.
    """
    walk = apply_uxs(graph, leader, uxs)
    leader_start = 0 if leader_is_earlier else delta
    waiter_start = delta if leader_is_earlier else 0
    later_start = max(leader_start, waiter_start)
    for step, node in enumerate(walk):
        t = leader_start + step
        if node == waiter and t >= waiter_start and t >= later_start:
            return MommyOutcome(True, t, t - later_start, step)
    # The leader idles at the walk's end; if it ended on the waiter's
    # node before the waiter appeared, they meet at the wake-up round.
    if walk[-1] == waiter:
        t = max(leader_start + len(walk) - 1, waiter_start)
        return MommyOutcome(True, t, t - later_start, len(walk) - 1)
    return MommyOutcome(False, None, None, None)
