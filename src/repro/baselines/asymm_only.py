"""The asymmetric-only universal variant (Section 4's remark).

"A simplified algorithm working only for STICs with asymmetric nodes,
which can be obtained from Algorithm UniversalRV by deleting the
Procedure SymmRV in each phase, would indeed be polynomial in n and
delta."

Same phase skeleton as :func:`repro.core.universal.universal_rv`, with
the SymmRV segment removed.  It meets for every non-symmetric STIC and
runs forever on symmetric ones — the experiments use it to show where
the exponential cost of UniversalRV actually comes from.
"""

from __future__ import annotations

from repro.core.asymm_rv import asymm_rv
from repro.core.combinators import run_segment
from repro.core.pairing import pair, unpair
from repro.core.profile import TUNED, Profile
from repro.core.universal import UniversalOracle
from repro.sim.actions import Perception
from repro.sim.agent import AgentScript

__all__ = ["asymm_only_rv", "make_asymm_only_algorithm", "asymm_only_round_budget"]


def asymm_only_rv(
    percept: Perception,
    profile: Profile = TUNED,
    oracle: UniversalOracle | None = None,
) -> AgentScript:
    """UniversalRV without SymmRV; phases decode pairs ``(n, delta)``.

    Phase ``P`` assumes ``(n, delta_code) = f^-1(P)`` (the third
    coordinate of the triple is unnecessary once ``d`` is gone) and
    runs AsymmRV(n) for ``P(n) + delta`` rounds, backtracks, and pads
    to ``2 (P(n) + delta)`` — exactly the asymmetric half of a
    UniversalRV phase.
    """
    if profile.view_mode == "oracle" and oracle is None:
        raise ValueError("profile uses oracle view mode but no oracle was given")
    phase = 1
    while True:
        n, delta_code = unpair(phase)
        delta = delta_code - 1
        raw = oracle.raw_label(n) if profile.view_mode == "oracle" else None
        budget = profile.asymm_bound(n) + delta
        percept = yield from run_segment(
            percept, asymm_rv(percept, profile.asymm_params(n), raw), budget
        )
        phase += 1


def make_asymm_only_algorithm(profile: Profile = TUNED):
    """Algorithm factory for the scheduler (mirrors UniversalRV's)."""

    def algorithm(percept: Perception, oracle: UniversalOracle | None = None):
        return asymm_only_rv(percept, profile, oracle)

    return algorithm


def asymm_only_round_budget(profile: Profile, n: int, delta: int) -> int:
    """Rounds (from the later start) by which the variant must meet for
    non-symmetric positions — polynomial in ``n`` and ``delta`` under
    the tuned profile, which is the Section 4 observation."""
    last = pair(n, delta + 1)
    total = 0
    for p in range(1, last + 1):
        n_p, code_p = unpair(p)
        total += 2 * (profile.asymm_bound(n_p) + (code_p - 1))
    return total
