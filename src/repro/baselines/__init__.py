"""Baselines and reductions the paper positions itself against."""

from repro.baselines.asymm_only import (
    asymm_only_round_budget,
    asymm_only_rv,
    make_asymm_only_algorithm,
)
from repro.baselines.leader_election import Election, elect_leader
from repro.baselines.random_walk import (
    RandomWalkOutcome,
    mean_meeting_time,
    random_walk_rendezvous,
)
from repro.baselines.wait_for_mommy import MommyOutcome, wait_for_mommy

__all__ = [
    "random_walk_rendezvous",
    "mean_meeting_time",
    "RandomWalkOutcome",
    "wait_for_mommy",
    "MommyOutcome",
    "asymm_only_rv",
    "make_asymm_only_algorithm",
    "asymm_only_round_budget",
    "elect_leader",
    "Election",
]
