"""Randomized rendezvous baseline (Section 5's closing remark).

"The synchronous randomized counterpart of our problem is
straightforward ... two random walks meet with high probability in
time polynomial in the size of the graph [39]."

We implement *lazy* independent random walks (stay with probability
1/2, else a uniform port) — laziness removes the parity obstruction on
bipartite graphs, where two non-lazy walks started at even distance
with zero delay would never collide.  The walk loop is vectorized-free
but tight (array lookups only), since benchmarks sweep many trials.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.port_graph import PortLabeledGraph
from repro.util.lcg import SplitMix64, derive_seed

__all__ = ["RandomWalkOutcome", "random_walk_rendezvous", "mean_meeting_time"]


@dataclass(frozen=True)
class RandomWalkOutcome:
    """One randomized trial."""

    met: bool
    meeting_time: int | None  # global round
    time_from_later: int | None


def random_walk_rendezvous(
    graph: PortLabeledGraph,
    u: int,
    v: int,
    delta: int,
    *,
    seed: int,
    max_rounds: int,
    laziness: float = 0.5,
) -> RandomWalkOutcome:
    """Two independent lazy random walks from STIC ``[(u, v), delta]``.

    Unlike the deterministic model, the two agents draw from
    *independent* coin streams (derived from ``seed``) — this is
    exactly the symmetry-breaking resource randomization buys.
    """
    if not (0.0 <= laziness < 1.0):
        raise ValueError("laziness must be in [0, 1)")
    rng_a = SplitMix64(derive_seed("rw-a", seed))
    rng_b = SplitMix64(derive_seed("rw-b", seed))
    succ = graph.succ_node_array
    degrees = graph.degrees
    pos_a, pos_b = u, v
    for t in range(max_rounds):
        if t >= delta and pos_a == pos_b:
            return RandomWalkOutcome(True, t, t - delta)
        if rng_a.random() >= laziness:
            pos_a = int(succ[pos_a, rng_a.randrange(int(degrees[pos_a]))])
        if t >= delta and rng_b.random() >= laziness:
            pos_b = int(succ[pos_b, rng_b.randrange(int(degrees[pos_b]))])
    if max_rounds >= delta and pos_a == pos_b:
        return RandomWalkOutcome(True, max_rounds, max_rounds - delta)
    return RandomWalkOutcome(False, None, None)


def mean_meeting_time(
    graph: PortLabeledGraph,
    u: int,
    v: int,
    delta: int,
    *,
    trials: int,
    seed: int,
    max_rounds: int | None = None,
) -> tuple[float, int]:
    """Average ``time_from_later`` over ``trials`` runs.

    ``seed`` is required: every trial's coin streams derive from it via
    :func:`repro.util.lcg.derive_seed`, so a sweep is a pure function
    of its arguments — run-to-run reproducible byte for byte.

    Returns ``(mean, failures)``; failed trials (no meeting within the
    horizon, default ``64 * n^3``) are excluded from the mean and
    counted separately.
    """
    horizon = max_rounds if max_rounds is not None else 64 * graph.n**3 + delta
    total = 0
    met = 0
    failures = 0
    for trial in range(trials):
        outcome = random_walk_rendezvous(
            graph, u, v, delta, seed=derive_seed(seed, trial), max_rounds=horizon
        )
        if outcome.met:
            total += outcome.time_from_later  # type: ignore[operator]
            met += 1
        else:
            failures += 1
    return (total / met if met else float("inf")), failures
