"""Leader election from rendezvous — the Introduction's equivalence.

Once two agents have met they can exchange their trajectories (the
sequences of outgoing/incoming port numbers and waits).  The paper's
argument: since the agents started at different nodes and are now
together, walking the two trajectories backwards from the meeting node
must reach a round where the agents' entries into the (still common)
node differ — at the latest when one agent's trajectory runs out.  The
first backward difference breaks the tie deterministically:

* both moved in, by different ports  ->  larger entry port leads;
* one moved in, one waited           ->  the mover leads;
* one trajectory exhausted           ->  the earlier agent leads.

If no difference is ever found the trajectories are identical *and*
started at the same time — impossible for distinct starting nodes that
met, which is exactly the paper's "there must be some node to which
the agents entered by different ports".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.actions import Move
from repro.sim.scheduler import RendezvousResult
from repro.sim.trace import AgentTrace

__all__ = ["Election", "elect_leader"]


@dataclass(frozen=True)
class Election:
    """Outcome of the reduction.

    ``leader`` is the agent index (0 = earlier agent, 1 = later);
    ``decided_at`` the global round whose backward comparison broke
    the tie; ``rule`` which tie-break fired.
    """

    leader: int
    decided_at: int
    rule: str


def _move_index(trace: AgentTrace) -> dict[int, int]:
    """Map global round -> entry port, for the trace's move rounds."""
    return {
        entry.time: entry.entry_port  # type: ignore[misc]
        for entry in trace.entries
        if isinstance(entry.action, Move)
    }


def _entry_at(
    moves: dict[int, int], start_time: int, time: int
) -> tuple[str, int | None]:
    """What the agent did during global round ``time``.

    Returns ``("move", entry_port)``, ``("wait", None)``, or
    ``("absent", None)`` when the agent had not started yet.  Wait
    blocks are expanded implicitly: a round not covered by any move
    entry after the agent's start is a wait.
    """
    if time < start_time:
        return ("absent", None)
    if time in moves:
        return ("move", moves[time])
    return ("wait", None)


def elect_leader(result: RendezvousResult) -> Election:
    """Apply the reduction to a successful traced rendezvous run."""
    if not result.met:
        raise ValueError("leader election requires a successful rendezvous")
    if result.traces is None:
        raise ValueError("run the simulation with record_traces=True")
    trace_a, trace_b = result.traces
    assert result.meeting_time is not None
    moves_a, moves_b = _move_index(trace_a), _move_index(trace_b)
    for time in range(result.meeting_time - 1, -1, -1):
        kind_a, port_a = _entry_at(moves_a, trace_a.start_time, time)
        kind_b, port_b = _entry_at(moves_b, trace_b.start_time, time)
        if kind_b == "absent":
            # The later agent's trajectory is exhausted: the earlier
            # agent has strictly more history and leads.
            return Election(leader=0, decided_at=time, rule="earlier-start")
        if kind_a == "move" and kind_b == "move":
            if port_a != port_b:
                leader = 0 if port_a > port_b else 1  # type: ignore[operator]
                return Election(leader=leader, decided_at=time, rule="larger-port")
        elif kind_a == "move" or kind_b == "move":
            leader = 0 if kind_a == "move" else 1
            return Election(leader=leader, decided_at=time, rule="mover")
    raise AssertionError(
        "identical trajectories with identical starts met at a node: "
        "impossible for distinct starting nodes"
    )
