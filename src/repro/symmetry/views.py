"""Views V(v, G) and node symmetry (Section 2; Yamashita & Kameda).

The *view* from ``v`` is the infinite tree of all paths starting at
``v``, coded as sequences of port numbers (outgoing and incoming).
Two nodes are *symmetric* when their views are equal.

Two complementary implementations:

* :func:`truncated_view` materializes the view tree to a finite depth
  — exponential in the depth, used by agents that physically
  reconstruct their surroundings and by small-case tests.
* :func:`view_classes` computes the partition of nodes into
  view-equivalence classes by iterated partition refinement (degree +
  port-annotated neighbor colors), which stabilizes within ``n - 1``
  rounds (Norris' theorem: views equal to depth ``n - 1`` are equal at
  all depths).  This is the polynomial-time oracle used by the
  simulator, ``Shrink``, and feasibility checks.

:func:`view_classes` and its derivatives are thin wrappers over the
per-graph kernel (:mod:`repro.symmetry.context`), which runs the same
refinement as one ``np.unique`` per round and memoizes the result per
graph.  The original tuple-dict refinement loop is retained as
:func:`view_classes_reference` for the differential suite and the
benchmarks.
"""

from __future__ import annotations

from repro.graphs.port_graph import PortLabeledGraph
from repro.symmetry.context import symmetry_context

__all__ = [
    "truncated_view",
    "view_classes",
    "view_classes_reference",
    "view_class_of",
    "are_symmetric",
    "symmetric_pairs",
    "view_signature",
]

#: A truncated view: ``(degree, ((out_port, in_port, subview), ...))``.
#: ``subview`` is ``None`` at the depth cutoff.
View = tuple


def truncated_view(graph: PortLabeledGraph, v: int, depth: int) -> View:
    """The view from ``v`` truncated at ``depth`` edges.

    The node at the end of each length-``depth`` path is represented by
    its degree with children ``None`` (cut off), so two truncated views
    compare equal exactly when the corresponding view trees agree on
    all paths of length at most ``depth``.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")

    def build(node: int, remaining: int) -> View:
        d = graph.degree(node)
        if remaining == 0:
            return (d, None)
        children = tuple(
            (p, graph.entry_port(node, p), build(graph.succ(node, p), remaining - 1))
            for p in range(d)
        )
        return (d, children)

    return build(v, depth)


def view_classes(graph: PortLabeledGraph) -> list[int]:
    """Partition nodes by view equality; returns a color per node.

    Colors are canonical: two nodes have the same color iff their
    (infinite) views are equal, renumbered by first occurrence so the
    output is deterministic.  Served by the memoized array kernel
    (:func:`repro.symmetry.context.symmetry_context`); bit-identical
    to :func:`view_classes_reference`.
    """
    return symmetry_context(graph).color_list()


def view_classes_reference(graph: PortLabeledGraph) -> list[int]:
    """The retained scalar refinement loop (pre-kernel reference).

    Runs iterated refinement until the partition stabilizes — at most
    ``n - 1`` iterations by Norris' theorem.  Kept as the differential
    baseline for the kernel's array-based refinement; production
    callers use :func:`view_classes`.
    """
    n = graph.n
    colors = [graph.degree(v) for v in range(n)]
    colors = _canonicalize(colors)
    for _ in range(max(n - 1, 1)):
        signatures = []
        for v in range(n):
            sig = (
                colors[v],
                tuple(
                    (p, graph.entry_port(v, p), colors[graph.succ(v, p)])
                    for p in range(graph.degree(v))
                ),
            )
            signatures.append(sig)
        new_colors = _canonicalize_signatures(signatures)
        if new_colors == colors:
            break
        colors = new_colors
    return colors


def _canonicalize(values: list[int]) -> list[int]:
    mapping: dict[int, int] = {}
    out = []
    for value in values:
        if value not in mapping:
            mapping[value] = len(mapping)
        out.append(mapping[value])
    return out


def _canonicalize_signatures(signatures: list) -> list[int]:
    mapping: dict = {}
    out = []
    for sig in signatures:
        if sig not in mapping:
            mapping[sig] = len(mapping)
        out.append(mapping[sig])
    return out


def view_class_of(graph: PortLabeledGraph, v: int) -> int:
    """Color of ``v`` in the canonical view partition."""
    return int(symmetry_context(graph).colors[v])


def are_symmetric(graph: PortLabeledGraph, u: int, v: int) -> bool:
    """True iff ``u`` and ``v`` have equal views (are *symmetric*)."""
    return symmetry_context(graph).are_symmetric(u, v)


def symmetric_pairs(graph: PortLabeledGraph) -> list[tuple[int, int]]:
    """All unordered pairs ``u < v`` of distinct symmetric nodes."""
    return symmetry_context(graph).symmetric_pairs()


def view_signature(graph: PortLabeledGraph, v: int, depth: int) -> bytes:
    """Canonical byte serialization of the depth-``depth`` view from ``v``.

    Two nodes (possibly of *different graphs*) get equal signatures iff
    their truncated views are equal.  This is the label source for
    AsymmRV: non-symmetric nodes of an ``n``-node graph have different
    signatures at ``depth = n - 1``.
    """
    out = bytearray()

    def emit(node: int, remaining: int) -> None:
        out.append(0x01)
        out.extend(graph.degree(node).to_bytes(4, "big"))
        if remaining == 0:
            out.append(0x02)
            return
        for p in range(graph.degree(node)):
            out.append(0x03)
            out.extend(p.to_bytes(2, "big"))
            out.extend(graph.entry_port(node, p).to_bytes(2, "big"))
            emit(graph.succ(node, p), remaining - 1)
        out.append(0x04)

    emit(v, depth)
    return bytes(out)
