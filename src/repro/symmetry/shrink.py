"""Shrink(u, v) — Definition 3.1 — via breadth-first search on the
pair (product) graph.

``Shrink(u, v)`` is the smallest distance between ``alpha(u)`` and
``alpha(v)`` over all port sequences ``alpha`` applicable at both
nodes.  The set of pairs ``(alpha(u), alpha(v))`` reachable by a
common sequence is exactly the set of states reachable from ``(u, v)``
in the product graph whose transitions apply one port number to both
components simultaneously, so a BFS over at most ``n^2`` states
computes ``Shrink`` exactly, together with a witness sequence.

For symmetric pairs the two components always have equal degrees
(views are equal along the way); the implementation nevertheless
handles arbitrary pairs by restricting to ports valid at both nodes,
which coincides with the paper's definition on its domain.

The per-pair entry points are thin wrappers over the per-graph kernel
(:mod:`repro.symmetry.context`), which solves *all* pairs at once by
value iteration on the product graph and memoizes the result; repeated
queries against one graph therefore cost one kernel run, not one BFS
each.  The original Python-dict BFS is retained as
:func:`shrink_witness_reference` for the differential suite and the
benchmarks.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.port_graph import PortLabeledGraph
from repro.symmetry.context import symmetry_context

__all__ = [
    "shrink",
    "shrink_witness",
    "shrink_witness_reference",
    "all_pairs_distances",
]


def all_pairs_distances(graph: PortLabeledGraph) -> np.ndarray:
    """All-pairs shortest path distances (``n x n`` int matrix).

    Returns a fresh, caller-writable copy of the kernel's cached
    matrix — same contract as the original per-source BFS stack.
    """
    return symmetry_context(graph).distances.copy()


def shrink_witness(
    graph: PortLabeledGraph, u: int, v: int
) -> tuple[int, tuple[int, ...], tuple[int, int]]:
    """Compute ``Shrink(u, v)`` with a witness.

    Returns ``(value, alpha, (x, y))`` where ``alpha`` is a shortest
    port sequence such that ``x = alpha(u)`` and ``y = alpha(v)`` are
    at distance ``value``, and no common sequence achieves a smaller
    distance.
    """
    return symmetry_context(graph).shrink_witness(u, v)


def shrink_witness_reference(
    graph: PortLabeledGraph, u: int, v: int
) -> tuple[int, tuple[int, ...], tuple[int, int]]:
    """The retained per-pair BFS (pre-kernel reference).

    One Python-dict BFS over the product graph, recomputing all-pairs
    distances on every call — exactly what the seed shipped.  Kept as
    the differential baseline and the scalar side of the all-pairs
    benchmarks; production callers use :func:`shrink_witness`.
    """
    if u == v:
        return 0, (), (u, v)
    dist = np.stack([graph.distances_from(w) for w in range(graph.n)])
    succ = graph.succ_node_array
    degrees = graph.degrees

    start = (u, v)
    parent: dict[tuple[int, int], tuple[tuple[int, int], int] | None] = {start: None}
    best_pair = start
    best = int(dist[u, v])
    queue: deque[tuple[int, int]] = deque([start])
    while queue:
        x, y = queue.popleft()
        limit = int(min(degrees[x], degrees[y]))
        for p in range(limit):
            nxt = (int(succ[x, p]), int(succ[y, p]))
            if nxt in parent:
                continue
            parent[nxt] = ((x, y), p)
            d = int(dist[nxt[0], nxt[1]])
            if d < best:
                best = d
                best_pair = nxt
                if best == 0:
                    queue.clear()
                    break
            queue.append(nxt)

    alpha: list[int] = []
    cursor: tuple[int, int] | None = best_pair
    while parent[cursor] is not None:  # type: ignore[index]
        prev, port = parent[cursor]  # type: ignore[misc, index]
        alpha.append(port)
        cursor = prev
    alpha.reverse()
    return best, tuple(alpha), best_pair


def shrink(graph: PortLabeledGraph, u: int, v: int) -> int:
    """``Shrink(u, v)`` of Definition 3.1 (0 when ``u == v``)."""
    return symmetry_context(graph).shrink_value(u, v)
