"""Feasibility of space-time initial configurations (Corollary 3.1).

A STIC ``[(u, v), delta]`` is feasible iff

* ``u`` and ``v`` are non-symmetric (any delay works), or
* ``u`` and ``v`` are symmetric and ``delta >= Shrink(u, v)``.

(The degenerate ``u == v`` case is excluded by the model: agents start
at *different* nodes.)

Besides the per-STIC characterization, :func:`empirical_feasibility_atlas`
sweeps *every* STIC of a graph up to a delay cap and simulates a given
algorithm on each — in one call to the batched sweep engine
(:func:`repro.sim.batch.run_rendezvous_batch`), so symmetry data and
agent traces are computed once per graph, not once per STIC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.batch import run_rendezvous_batch
from repro.sim.scheduler import RendezvousResult
from repro.symmetry.shrink import shrink
from repro.symmetry.views import are_symmetric

__all__ = [
    "FeasibilityVerdict",
    "classify_from_symmetry",
    "classify_stic",
    "is_feasible",
    "AtlasEntry",
    "empirical_feasibility_atlas",
]


@dataclass(frozen=True)
class FeasibilityVerdict:
    """Outcome of the feasibility characterization for one STIC.

    Attributes
    ----------
    feasible:
        Whether a (possibly dedicated) deterministic algorithm can
        achieve rendezvous for this STIC.
    symmetric:
        Whether the initial positions have equal views.
    shrink:
        ``Shrink(u, v)`` when the positions are symmetric, else ``None``
        (the quantity only enters the characterization in the symmetric
        case).
    reason:
        Human-readable justification quoting the relevant result.
    """

    feasible: bool
    symmetric: bool
    shrink: int | None
    reason: str


def classify_from_symmetry(
    symmetric: bool, s: int | None, delta: int
) -> FeasibilityVerdict:
    """Corollary 3.1 verdict from precomputed symmetry data.

    Sweeps that already hold view colors and ``Shrink`` values (e.g.
    :func:`repro.core.stic.enumerate_stics`) build their verdicts here
    instead of re-deriving the symmetry per STIC via
    :func:`classify_stic`.
    """
    if not symmetric:
        return FeasibilityVerdict(
            feasible=True,
            symmetric=False,
            shrink=None,
            reason="non-symmetric initial positions: feasible for every "
            "delay (Proposition 3.1 / [20])",
        )
    assert s is not None
    if delta >= s:
        return FeasibilityVerdict(
            feasible=True,
            symmetric=True,
            shrink=s,
            reason=f"symmetric positions with delta={delta} >= "
            f"Shrink={s}: feasible (Lemma 3.2)",
        )
    return FeasibilityVerdict(
        feasible=False,
        symmetric=True,
        shrink=s,
        reason=f"symmetric positions with delta={delta} < Shrink={s}: "
        "infeasible (Lemma 3.1)",
    )


def classify_stic(
    graph: PortLabeledGraph, u: int, v: int, delta: int
) -> FeasibilityVerdict:
    """Apply the characterization of Corollary 3.1 to ``[(u, v), delta]``."""
    if delta < 0:
        raise ValueError(f"delay must be non-negative, got {delta}")
    if u == v:
        raise ValueError("the model requires distinct initial nodes")
    if not are_symmetric(graph, u, v):
        return classify_from_symmetry(False, None, delta)
    return classify_from_symmetry(True, shrink(graph, u, v), delta)


def is_feasible(graph: PortLabeledGraph, u: int, v: int, delta: int) -> bool:
    """Shorthand for ``classify_stic(...).feasible``."""
    return classify_stic(graph, u, v, delta).feasible


@dataclass(frozen=True)
class AtlasEntry:
    """One STIC of an empirical atlas: the Corollary 3.1 verdict next
    to what a concrete algorithm actually did on that STIC."""

    u: int
    v: int
    delta: int
    verdict: FeasibilityVerdict
    result: RendezvousResult

    @property
    def consistent(self) -> bool:
        """Simulation agrees with the characterization: feasible STICs
        met (given an adequate budget), infeasible STICs did not."""
        return self.result.met == self.verdict.feasible


def empirical_feasibility_atlas(
    graph: PortLabeledGraph,
    algorithm: Callable,
    max_delta: int,
    *,
    max_rounds: int | Callable[[int, int, int, FeasibilityVerdict], int],
    oracle_factory: Callable[[int], object] | None = None,
) -> list[AtlasEntry]:
    """Classify and *simulate* every STIC with delay up to ``max_delta``.

    The sweep is :func:`repro.core.stic.enumerate_stics` (symmetry
    colors computed once per graph, ``Shrink`` once per symmetric
    pair); all ``n(n-1)/2 * (max_delta+1)`` STICs then run through one
    batched sweep.  A callable ``max_rounds`` receives
    ``(u, v, delta, verdict)`` — the precomputed verdict spares
    callers re-deriving the symmetry data per STIC; feasible STICs
    should get their algorithm's meeting budget, infeasible ones any
    observation horizon.
    """
    # Local import: repro.core.stic imports this module at load time.
    from repro.core.stic import enumerate_stics

    stics: list[tuple[int, int, int]] = []
    verdicts: list[FeasibilityVerdict] = []
    for stic, verdict in enumerate_stics(graph, max_delta):
        stics.append((stic.u, stic.v, stic.delta))
        verdicts.append(verdict)
    budget: int | Callable[[int, int, int], int]
    if callable(max_rounds):
        budgets = {
            key: max_rounds(*key, verdict)
            for key, verdict in zip(stics, verdicts)
        }
        budget = lambda u, v, delta: budgets[(u, v, delta)]
    else:
        budget = max_rounds
    results = run_rendezvous_batch(
        graph,
        stics,
        algorithm,
        max_rounds=budget,
        oracle_factory=oracle_factory,
    )
    return [
        AtlasEntry(u, v, delta, verdict, result)
        for (u, v, delta), verdict, result in zip(stics, verdicts, results)
    ]
