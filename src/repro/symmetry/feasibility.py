"""Feasibility of space-time initial configurations (Corollary 3.1).

A STIC ``[(u, v), delta]`` is feasible iff

* ``u`` and ``v`` are non-symmetric (any delay works), or
* ``u`` and ``v`` are symmetric and ``delta >= Shrink(u, v)``.

(The degenerate ``u == v`` case is excluded by the model: agents start
at *different* nodes.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.port_graph import PortLabeledGraph
from repro.symmetry.shrink import shrink
from repro.symmetry.views import are_symmetric

__all__ = ["FeasibilityVerdict", "classify_stic", "is_feasible"]


@dataclass(frozen=True)
class FeasibilityVerdict:
    """Outcome of the feasibility characterization for one STIC.

    Attributes
    ----------
    feasible:
        Whether a (possibly dedicated) deterministic algorithm can
        achieve rendezvous for this STIC.
    symmetric:
        Whether the initial positions have equal views.
    shrink:
        ``Shrink(u, v)`` when the positions are symmetric, else ``None``
        (the quantity only enters the characterization in the symmetric
        case).
    reason:
        Human-readable justification quoting the relevant result.
    """

    feasible: bool
    symmetric: bool
    shrink: int | None
    reason: str


def classify_stic(
    graph: PortLabeledGraph, u: int, v: int, delta: int
) -> FeasibilityVerdict:
    """Apply the characterization of Corollary 3.1 to ``[(u, v), delta]``."""
    if delta < 0:
        raise ValueError(f"delay must be non-negative, got {delta}")
    if u == v:
        raise ValueError("the model requires distinct initial nodes")
    if not are_symmetric(graph, u, v):
        return FeasibilityVerdict(
            feasible=True,
            symmetric=False,
            shrink=None,
            reason="non-symmetric initial positions: feasible for every "
            "delay (Proposition 3.1 / [20])",
        )
    s = shrink(graph, u, v)
    if delta >= s:
        return FeasibilityVerdict(
            feasible=True,
            symmetric=True,
            shrink=s,
            reason=f"symmetric positions with delta={delta} >= "
            f"Shrink={s}: feasible (Lemma 3.2)",
        )
    return FeasibilityVerdict(
        feasible=False,
        symmetric=True,
        shrink=s,
        reason=f"symmetric positions with delta={delta} < Shrink={s}: "
        "infeasible (Lemma 3.1)",
    )


def is_feasible(graph: PortLabeledGraph, u: int, v: int, delta: int) -> bool:
    """Shorthand for ``classify_stic(...).feasible``."""
    return classify_stic(graph, u, v, delta).feasible
