"""Feasibility of space-time initial configurations (Corollary 3.1).

A STIC ``[(u, v), delta]`` is feasible iff

* ``u`` and ``v`` are non-symmetric (any delay works), or
* ``u`` and ``v`` are symmetric and ``delta >= Shrink(u, v)``.

(The degenerate ``u == v`` case is excluded by the model: agents start
at *different* nodes.)

Besides the per-STIC characterization, :func:`empirical_feasibility_atlas`
sweeps *every* STIC of a graph up to a delay cap and simulates a given
algorithm on each — in one call to the batched sweep engine
(:func:`repro.sim.batch.run_rendezvous_batch`), so symmetry data and
agent traces are computed once per graph, not once per STIC.

The asynchronous counterpart, :func:`async_feasibility_atlas`, sweeps
(start pair × adversary schedule) cells through
:func:`repro.sim.schedule_adversary.run_schedule_sweep` and classifies
each cell by the strongest meeting notion it achieves: a *node
meeting*, an *edge meeting only* (the agents crossed inside an edge —
the relaxed asynchronous rendezvous of [31]), or *never meets*.  The
Section 5 remark becomes a statement about this atlas: under the
mirror schedule, symmetric pairs never land in the node-meeting class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.batch import TraceCompiler, run_rendezvous_batch
from repro.sim.schedule_adversary import (
    ActivationSchedule,
    AsyncOutcome,
    run_schedule_sweep,
)
from repro.sim.scheduler import RendezvousResult
from repro.symmetry.context import symmetry_context

__all__ = [
    "FeasibilityVerdict",
    "classify_from_symmetry",
    "classify_stic",
    "is_feasible",
    "AtlasEntry",
    "empirical_feasibility_atlas",
    "ASYNC_NODE_MEETING",
    "ASYNC_EDGE_MEETING_ONLY",
    "ASYNC_NEVER_MEETS",
    "AsyncAtlasEntry",
    "async_feasibility_atlas",
]


@dataclass(frozen=True)
class FeasibilityVerdict:
    """Outcome of the feasibility characterization for one STIC.

    Attributes
    ----------
    feasible:
        Whether a (possibly dedicated) deterministic algorithm can
        achieve rendezvous for this STIC.
    symmetric:
        Whether the initial positions have equal views.
    shrink:
        ``Shrink(u, v)`` when the positions are symmetric, else ``None``
        (the quantity only enters the characterization in the symmetric
        case).
    reason:
        Human-readable justification quoting the relevant result.
    """

    feasible: bool
    symmetric: bool
    shrink: int | None
    reason: str


def classify_from_symmetry(
    symmetric: bool, s: int | None, delta: int
) -> FeasibilityVerdict:
    """Corollary 3.1 verdict from precomputed symmetry data.

    Sweeps that already hold view colors and ``Shrink`` values (e.g.
    :func:`repro.core.stic.enumerate_stics`) build their verdicts here
    instead of re-deriving the symmetry per STIC via
    :func:`classify_stic`.
    """
    if not symmetric:
        return FeasibilityVerdict(
            feasible=True,
            symmetric=False,
            shrink=None,
            reason="non-symmetric initial positions: feasible for every "
            "delay (Proposition 3.1 / [20])",
        )
    assert s is not None
    if delta >= s:
        return FeasibilityVerdict(
            feasible=True,
            symmetric=True,
            shrink=s,
            reason=f"symmetric positions with delta={delta} >= "
            f"Shrink={s}: feasible (Lemma 3.2)",
        )
    return FeasibilityVerdict(
        feasible=False,
        symmetric=True,
        shrink=s,
        reason=f"symmetric positions with delta={delta} < Shrink={s}: "
        "infeasible (Lemma 3.1)",
    )


def classify_stic(
    graph: PortLabeledGraph, u: int, v: int, delta: int
) -> FeasibilityVerdict:
    """Apply the characterization of Corollary 3.1 to ``[(u, v), delta]``.

    Served by the per-graph kernel: view colors and all-pairs Shrink
    are computed once per graph, so classifying every STIC of a sweep
    costs one kernel run.
    """
    return symmetry_context(graph).verdict(u, v, delta)


def is_feasible(graph: PortLabeledGraph, u: int, v: int, delta: int) -> bool:
    """Shorthand for ``classify_stic(...).feasible``."""
    return classify_stic(graph, u, v, delta).feasible


@dataclass(frozen=True)
class AtlasEntry:
    """One STIC of an empirical atlas: the Corollary 3.1 verdict next
    to what a concrete algorithm actually did on that STIC."""

    u: int
    v: int
    delta: int
    verdict: FeasibilityVerdict
    result: RendezvousResult

    @property
    def consistent(self) -> bool:
        """Simulation agrees with the characterization: feasible STICs
        met (given an adequate budget), infeasible STICs did not."""
        return self.result.met == self.verdict.feasible


def empirical_feasibility_atlas(
    graph: PortLabeledGraph,
    algorithm: Callable,
    max_delta: int,
    *,
    max_rounds: int | Callable[[int, int, int, FeasibilityVerdict], int],
    oracle_factory: Callable[[int], object] | None = None,
    block_size: int | None = None,
) -> list[AtlasEntry]:
    """Classify and *simulate* every STIC with delay up to ``max_delta``.

    The sweep is :func:`repro.core.stic.enumerate_stics` (symmetry
    colors computed once per graph, ``Shrink`` once per symmetric
    pair); all ``n(n-1)/2 * (max_delta+1)`` STICs then run through one
    batched sweep.  A callable ``max_rounds`` receives
    ``(u, v, delta, verdict)`` — the precomputed verdict spares
    callers re-deriving the symmetry data per STIC; feasible STICs
    should get their algorithm's meeting budget, infeasible ones any
    observation horizon.

    With ``block_size`` the atlas streams: the STIC enumeration runs
    blocked (``Shrink`` via batched per-pair BFS, no dense matrix) and
    the simulation engine processes ``block_size`` start rows' worth of
    STICs per batch, so engine working state stays ``O(block)`` cells.
    The entry list — the caller-visible product — is identical.
    """
    # Local import: repro.core.stic imports this module at load time.
    from repro.core.stic import enumerate_stics

    entries: list[AtlasEntry] = []
    for stics, verdicts in _atlas_batches(
        enumerate_stics(graph, max_delta, block_size=block_size),
        graph.n if block_size is None else block_size,
        graph.n,
        max_delta,
    ):
        budget: int | Callable[[int, int, int], int]
        if callable(max_rounds):
            budgets = {
                key: max_rounds(*key, verdict)
                for key, verdict in zip(stics, verdicts)
            }
            budget = lambda u, v, delta: budgets[(u, v, delta)]
        else:
            budget = max_rounds
        results = run_rendezvous_batch(
            graph,
            stics,
            algorithm,
            max_rounds=budget,
            oracle_factory=oracle_factory,
        )
        entries.extend(
            AtlasEntry(u, v, delta, verdict, result)
            for (u, v, delta), verdict, result in zip(stics, verdicts, results)
        )
    return entries


def _atlas_batches(
    stream: "Iterable[tuple[object, FeasibilityVerdict]]",
    block_rows: int,
    n: int,
    max_delta: int,
):
    """Group a (STIC, verdict) stream into per-row-block batches.

    One batch holds the STICs of ``block_rows`` consecutive ``u`` rows
    (at most ``block_rows * n * (max_delta + 1)`` cells), so the
    streamed atlas never materializes the full cell list.
    """
    cap = max(1, block_rows) * max(n, 1) * (max_delta + 1)
    stics: list[tuple[int, int, int]] = []
    verdicts: list[FeasibilityVerdict] = []
    for stic, verdict in stream:
        stics.append((stic.u, stic.v, stic.delta))  # type: ignore[attr-defined]
        verdicts.append(verdict)
        if len(stics) >= cap:
            yield stics, verdicts
            stics, verdicts = [], []
    if stics:
        yield stics, verdicts


#: Classification constants for the asynchronous atlas, ordered from
#: strongest to weakest meeting notion.
ASYNC_NODE_MEETING = "node-meeting"
ASYNC_EDGE_MEETING_ONLY = "edge-meeting-only"
ASYNC_NEVER_MEETS = "never-meets"


@dataclass(frozen=True)
class AsyncAtlasEntry:
    """One cell of an asynchronous atlas: a start pair, the adversary
    schedule it ran under, and what the algorithm achieved there."""

    u: int
    v: int
    schedule: ActivationSchedule
    symmetric: bool
    outcome: AsyncOutcome

    @property
    def meeting_class(self) -> str:
        """Strongest meeting notion achieved within the event budget."""
        if self.outcome.met:
            return ASYNC_NODE_MEETING
        if self.outcome.edge_meetings > 0:
            return ASYNC_EDGE_MEETING_ONLY
        return ASYNC_NEVER_MEETS


def async_feasibility_atlas(
    graph: PortLabeledGraph,
    algorithm: Callable,
    schedules: Sequence[ActivationSchedule],
    *,
    max_events: int,
    pairs: Iterable[tuple[int, int]] | None = None,
    compiler: TraceCompiler | None = None,
) -> list[AsyncAtlasEntry]:
    """Classify every (pair, schedule) cell of the asynchronous model.

    Sweeps ``pairs`` (default: all unordered pairs of distinct nodes)
    against every adversary in ``schedules`` through one call to the
    batched schedule engine — agent traces are compiled once per start
    node and reused by every schedule, and the view-class partition is
    computed once per graph.  Each cell lands in one of the three
    meeting classes (:data:`ASYNC_NODE_MEETING`,
    :data:`ASYNC_EDGE_MEETING_ONLY`, :data:`ASYNC_NEVER_MEETS`),
    making "edge meetings" first-class outcomes alongside node
    meetings rather than a diagnostic footnote.
    """
    if pairs is None:
        pair_list = [
            (u, v) for u in range(graph.n) for v in range(u + 1, graph.n)
        ]
    else:
        pair_list = [(int(u), int(v)) for u, v in pairs]
    context = symmetry_context(graph)
    colors = context.colors
    cells = [(u, v, s) for (u, v) in pair_list for s in schedules]
    outcomes = run_schedule_sweep(
        graph, cells, algorithm, max_events=max_events, compiler=compiler
    )
    return [
        AsyncAtlasEntry(u, v, s, bool(colors[u] == colors[v]), outcome)
        for (u, v, s), outcome in zip(cells, outcomes)
    ]
