"""Per-graph symmetry kernel: views, distances, and all-pairs Shrink
computed once, in numpy.

The scalar analysis layer re-derives symmetry data per call:
:func:`repro.symmetry.views.view_classes` walks a tuple-dict refinement
loop, and :func:`repro.symmetry.shrink.shrink_witness` runs one
Python-dict BFS over the product graph *per pair*.  Sweeps that touch
every pair of a graph — atlases, ``shrink_matrix``, STIC enumeration —
therefore pay ``O(n^2)`` scalar reconstructions of the same facts.

:class:`SymmetryContext` computes each fact once per graph:

* **view colors** by array-based partition refinement: one
  ``np.unique`` over per-node signature rows per round, renumbered by
  first occurrence so the colors are bit-identical to
  :func:`~repro.symmetry.views.view_classes`;
* **all-pairs distances** by frontier BFS from all sources at once
  (one boolean matrix product per BFS level);
* **all-pairs Shrink** by value iteration on the ``n^2``-state product
  graph: start from the distance matrix and relax
  ``S[x, y] <- min(S[x, y], S[succ(x, p), succ(y, p)])`` with one
  gather per port per sweep until the (unique, monotone) fixpoint —
  every pair is solved simultaneously instead of one BFS per pair.

Derived products (symmetric pairs, per-pair feasibility verdicts,
witness reconstruction) are served from the cached arrays.  The scalar
functions in :mod:`~repro.symmetry.views`, :mod:`~repro.symmetry.shrink`
and :mod:`~repro.symmetry.feasibility` are thin wrappers over this
kernel; their outputs are unchanged (enforced by the differential
suite in ``tests/symmetry/test_context_differential.py``).

Contexts are memoized per graph (keyed by graph equality) in a small
LRU, so repeated scalar-style calls on the same graph hit the kernel's
arrays instead of recomputing.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import TYPE_CHECKING

import numpy as np

from repro.graphs.port_graph import PortLabeledGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (feasibility
    # imports this module at runtime; see verdict()).
    from repro.symmetry.feasibility import FeasibilityVerdict

__all__ = ["SymmetryContext", "symmetry_context"]


def _rank_by_first_occurrence(first_index: np.ndarray) -> np.ndarray:
    """Map sorted-unique class ids to first-occurrence order.

    ``np.unique`` numbers classes in sorted order; the scalar
    canonicalizers number them by first occurrence.  Given the first
    index of each sorted class, return the renumbering that restores
    first-occurrence order.
    """
    order = np.argsort(first_index, kind="stable")
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order), dtype=np.int64)
    return rank


def _canonical_codes(values: np.ndarray) -> np.ndarray:
    """First-occurrence canonical codes of a 1-D integer array."""
    _, first, inverse = np.unique(
        values, return_index=True, return_inverse=True
    )
    return _rank_by_first_occurrence(first)[inverse.reshape(-1)]


def _canonical_codes_rows(rows: np.ndarray) -> np.ndarray:
    """First-occurrence canonical codes of the rows of a 2-D array."""
    _, first, inverse = np.unique(
        rows, axis=0, return_index=True, return_inverse=True
    )
    return _rank_by_first_occurrence(first)[inverse.reshape(-1)]


class SymmetryContext:
    """All symmetry facts of one port-labeled graph, as numpy arrays.

    Construction computes the view-color partition; distances and the
    all-pairs Shrink matrix are computed lazily on first access (the
    color partition alone serves many callers).  Use
    :func:`symmetry_context` to share contexts across call sites.
    """

    __slots__ = ("graph", "_colors", "_distances", "_shrink")

    def __init__(self, graph: PortLabeledGraph) -> None:
        self.graph = graph
        self._colors = self._compute_colors()
        self._colors.setflags(write=False)
        self._distances: np.ndarray | None = None
        self._shrink: np.ndarray | None = None

    # ------------------------------------------------------------------
    # View colors (array-based partition refinement)
    # ------------------------------------------------------------------
    def _compute_colors(self) -> np.ndarray:
        graph = self.graph
        n = graph.n
        succ = graph.succ_node_array
        entry = graph.succ_port_array
        valid = succ >= 0
        safe_succ = np.where(valid, succ, 0)
        # Entry ports are >= 0 wherever valid, so -1 padding encodes the
        # degree into the signature row exactly as tuple length does in
        # the scalar signatures.
        padded_entry = np.where(valid, entry, -1)

        colors = _canonical_codes(graph.degrees)
        rows = np.empty((n, 1 + 2 * succ.shape[1]), dtype=np.int64)
        rows[:, 1::2] = padded_entry
        for _ in range(max(n - 1, 1)):
            rows[:, 0] = colors
            rows[:, 2::2] = np.where(valid, colors[safe_succ], -1)
            new_colors = _canonical_codes_rows(rows)
            if np.array_equal(new_colors, colors):
                break
            colors = new_colors
        return colors

    @property
    def colors(self) -> np.ndarray:
        """Canonical view colors (read-only; same values as
        :func:`~repro.symmetry.views.view_classes`)."""
        return self._colors

    def color_list(self) -> list[int]:
        """Colors as a plain list (the scalar wrappers' return type)."""
        return [int(c) for c in self._colors]

    def are_symmetric(self, u: int, v: int) -> bool:
        """True iff ``u`` and ``v`` have equal views."""
        return bool(self._colors[u] == self._colors[v])

    def symmetric_pairs(self) -> list[tuple[int, int]]:
        """All unordered pairs ``u < v`` of distinct symmetric nodes."""
        colors = self._colors
        same = colors[:, None] == colors[None, :]
        us, vs = np.nonzero(np.triu(same, k=1))
        return [(int(u), int(v)) for u, v in zip(us, vs)]

    def orbits(self) -> list[list[int]]:
        """Nodes grouped by view color, in canonical color order."""
        groups: dict[int, list[int]] = {}
        for v, c in enumerate(self._colors):
            groups.setdefault(int(c), []).append(v)
        return [groups[c] for c in sorted(groups)]

    # ------------------------------------------------------------------
    # Distances (frontier BFS from all sources at once)
    # ------------------------------------------------------------------
    @property
    def distances(self) -> np.ndarray:
        """All-pairs shortest-path distances (``n x n``, computed once).

        The array is shared and marked read-only — mutating it would
        poison the memoized kernel; copy before editing.
        """
        if self._distances is None:
            self._distances = self._compute_distances()
            self._distances.setflags(write=False)
        return self._distances

    def _compute_distances(self) -> np.ndarray:
        graph = self.graph
        n = graph.n
        succ = graph.succ_node_array
        # int64 accumulators: a uint8 matmul would wrap mod 256 and
        # drop nodes whose frontier in-degree is a multiple of 256.
        adjacency = np.zeros((n, n), dtype=np.int64)
        valid = succ >= 0
        rows = np.repeat(np.arange(n), succ.shape[1])[valid.ravel()]
        adjacency[rows, succ[valid]] = 1

        dist = np.full((n, n), -1, dtype=np.int64)
        np.fill_diagonal(dist, 0)
        frontier = np.eye(n, dtype=np.int64)
        level = 0
        while True:
            level += 1
            reached = (frontier @ adjacency) > 0
            new = reached & (dist == -1)
            if not new.any():
                break
            dist[new] = level
            frontier = new.astype(np.int64)
        return dist

    # ------------------------------------------------------------------
    # All-pairs Shrink (value iteration on the product graph)
    # ------------------------------------------------------------------
    @property
    def shrink_all(self) -> np.ndarray:
        """``Shrink(u, v)`` for *every* ordered pair (``n x n``).

        Defined for arbitrary pairs by restricting to ports valid at
        both nodes (the paper's definition on symmetric pairs, where
        degrees agree along the way).  Symmetric by construction;
        0 on the diagonal.  Shared and read-only, like
        :attr:`distances`.
        """
        if self._shrink is None:
            self._shrink = self._compute_shrink()
            self._shrink.setflags(write=False)
        return self._shrink

    def _compute_shrink(self) -> np.ndarray:
        graph = self.graph
        succ = graph.succ_node_array
        values = self.distances.copy()
        port_pairs = []
        for p in range(succ.shape[1]):
            targets = succ[:, p]
            valid = targets >= 0
            if not valid.any():  # pragma: no cover - max_degree is tight
                continue
            port_pairs.append(
                (
                    np.where(valid, targets, 0),
                    valid[:, None] & valid[None, :],
                )
            )

        # Monotone fixpoint: Shrink(x, y) = min(dist(x, y),
        # min_p Shrink(succ(x, p), succ(y, p))).  Each sweep relaxes
        # every product edge once (one gather per port); values only
        # decrease, so convergence is the exact minimum over the
        # reachable set — the same quantity the per-pair BFS computes.
        while True:
            changed = False
            for targets, mask in port_pairs:
                pulled = values[np.ix_(targets, targets)]
                improved = mask & (pulled < values)
                if improved.any():
                    values[improved] = pulled[improved]
                    changed = True
            if not changed:
                break
        return values

    def shrink_value(self, u: int, v: int) -> int:
        """``Shrink(u, v)`` of Definition 3.1 (0 when ``u == v``)."""
        return int(self.shrink_all[u, v])

    def shrink_matrix(self) -> np.ndarray:
        """Shrink for symmetric pairs, ``-1`` for non-symmetric pairs,
        0 on the diagonal — the :func:`repro.symmetry.shrink_matrix`
        contract."""
        colors = self._colors
        symmetric = colors[:, None] == colors[None, :]
        out = np.where(symmetric, self.shrink_all, np.int64(-1))
        np.fill_diagonal(out, 0)
        return out

    def shrink_witness(
        self, u: int, v: int
    ) -> tuple[int, tuple[int, ...], tuple[int, int]]:
        """``Shrink(u, v)`` with a shortest witness sequence.

        Same BFS (and hence the same witness) as the scalar
        :func:`repro.symmetry.shrink.shrink_witness`, fed from the
        cached distance matrix.
        """
        if u == v:
            return 0, (), (u, v)
        graph = self.graph
        dist = self.distances
        succ = graph.succ_node_array
        degrees = graph.degrees

        start = (u, v)
        parent: dict[tuple[int, int], tuple[tuple[int, int], int] | None]
        parent = {start: None}
        best_pair = start
        best = int(dist[u, v])
        queue: deque[tuple[int, int]] = deque([start])
        while queue:
            x, y = queue.popleft()
            limit = int(min(degrees[x], degrees[y]))
            for p in range(limit):
                nxt = (int(succ[x, p]), int(succ[y, p]))
                if nxt in parent:
                    continue
                parent[nxt] = ((x, y), p)
                d = int(dist[nxt[0], nxt[1]])
                if d < best:
                    best = d
                    best_pair = nxt
                    if best == 0:
                        queue.clear()
                        break
                queue.append(nxt)

        alpha: list[int] = []
        cursor: tuple[int, int] | None = best_pair
        while parent[cursor] is not None:  # type: ignore[index]
            prev, port = parent[cursor]  # type: ignore[misc, index]
            alpha.append(port)
            cursor = prev
        alpha.reverse()
        return best, tuple(alpha), best_pair

    # ------------------------------------------------------------------
    # Feasibility (Corollary 3.1)
    # ------------------------------------------------------------------
    def verdict(self, u: int, v: int, delta: int) -> "FeasibilityVerdict":
        """The Corollary 3.1 verdict for STIC ``[(u, v), delta]``."""
        # Local import: repro.symmetry.feasibility wraps this module.
        from repro.symmetry.feasibility import classify_from_symmetry

        if delta < 0:
            raise ValueError(f"delay must be non-negative, got {delta}")
        if u == v:
            raise ValueError("the model requires distinct initial nodes")
        if not self.are_symmetric(u, v):
            return classify_from_symmetry(False, None, delta)
        return classify_from_symmetry(True, self.shrink_value(u, v), delta)


# Contexts are cached per graph *value* (PortLabeledGraph hashes by its
# canonical edge list), so equal graphs constructed independently share
# one kernel.  The LRU bound keeps long-lived processes from pinning
# arrays for every graph they ever touched.
_CONTEXT_CACHE: OrderedDict[PortLabeledGraph, SymmetryContext] = OrderedDict()
_CONTEXT_CACHE_MAX = 64


def symmetry_context(graph: PortLabeledGraph) -> SymmetryContext:
    """The (memoized) :class:`SymmetryContext` of ``graph``."""
    context = _CONTEXT_CACHE.get(graph)
    if context is not None:
        _CONTEXT_CACHE.move_to_end(graph)
        return context
    context = SymmetryContext(graph)
    _CONTEXT_CACHE[graph] = context
    while len(_CONTEXT_CACHE) > _CONTEXT_CACHE_MAX:
        _CONTEXT_CACHE.popitem(last=False)
    return context
