"""Per-graph symmetry kernel: views, distances, and all-pairs Shrink
computed once, in numpy — with a sparse/blocked path for huge graphs.

The scalar analysis layer re-derives symmetry data per call:
:func:`repro.symmetry.views.view_classes` walks a tuple-dict refinement
loop, and :func:`repro.symmetry.shrink.shrink_witness` runs one
Python-dict BFS over the product graph *per pair*.  Sweeps that touch
every pair of a graph — atlases, ``shrink_matrix``, STIC enumeration —
therefore pay ``O(n^2)`` scalar reconstructions of the same facts.

:class:`SymmetryContext` computes each fact once per graph:

* **view colors** by array-based partition refinement: one
  ``np.unique`` over per-node signature rows per round, renumbered by
  first occurrence so the colors are bit-identical to
  :func:`~repro.symmetry.views.view_classes`;
* **distances** by frontier-compressed multi-source BFS over the
  graph's CSR adjacency, computed in *source blocks*
  (:meth:`~SymmetryContext.distances_block`) so working memory is
  ``O(m + block * n)``; the dense :attr:`~SymmetryContext.distances`
  property is a thin blockwise materialization of the same engine;
* **Shrink** two ways, both exact: blocked all-pairs value iteration
  with an active-row worklist (:meth:`~SymmetryContext.shrink_all_into`,
  backing :attr:`~SymmetryContext.shrink_all`), and batched per-pair
  product-graph BFS (:meth:`~SymmetryContext.shrink_pairs`) that never
  allocates anything ``n x n`` — the scale path for graphs where the
  full matrix cannot exist.

Bit-identity across all of these paths is structural, and enforced by
the differential suites (``tests/symmetry/test_context_differential.py``,
``tests/symmetry/test_blocked_differential.py``): BFS levels do not
depend on expansion order, and the Shrink fixpoint — the minimum of
``dist(x, y)`` over pairs reachable in the product graph — is unique
and monotone, so any fair relaxation schedule (dense sweeps, blocked
worklist, per-pair BFS) lands on identical int64 values.

Derived products (symmetric pairs, per-pair feasibility verdicts,
witness reconstruction) are served from the cached arrays.  The scalar
functions in :mod:`~repro.symmetry.views`, :mod:`~repro.symmetry.shrink`
and :mod:`~repro.symmetry.feasibility` are thin wrappers over this
kernel; their outputs are unchanged.

Contexts are memoized per graph (keyed by graph equality) in an LRU
bounded by **approximate retained bytes** (default 256 MiB, see
:func:`set_context_cache_limit`), so one huge dense kernel cannot pin
dozens of others.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import TYPE_CHECKING

import numpy as np

from repro.graphs.csr import repeat_ranges
from repro.graphs.port_graph import PortLabeledGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (feasibility
    # imports this module at runtime; see verdict()).
    from repro.symmetry.feasibility import FeasibilityVerdict

__all__ = [
    "SymmetryContext",
    "symmetry_context",
    "set_context_cache_limit",
    "context_cache_bytes",
    "clear_context_cache",
]

#: Default number of BFS sources / Shrink rows processed per block when
#: materializing dense arrays.  Working memory per block is
#: ``O(block * n)`` int64.
_DEFAULT_BLOCK = 512

#: Default number of (u, v) pairs batched into one product-graph BFS by
#: :meth:`SymmetryContext.shrink_pairs`.
_DEFAULT_PAIR_CHUNK = 32

#: Default cap on product-graph states visited by one
#: :meth:`SymmetryContext.shrink_pairs` chunk (int64 keys; the cap
#: bounds peak working memory at roughly ``3 * 8 * budget`` bytes
#: through the sort/merge steps).
_DEFAULT_STATE_BUDGET = 50_000_000


def _rank_by_first_occurrence(first_index: np.ndarray) -> np.ndarray:
    """Map sorted-unique class ids to first-occurrence order.

    ``np.unique`` numbers classes in sorted order; the scalar
    canonicalizers number them by first occurrence.  Given the first
    index of each sorted class, return the renumbering that restores
    first-occurrence order.
    """
    order = np.argsort(first_index, kind="stable")
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order), dtype=np.int64)
    return rank


def _canonical_codes(values: np.ndarray) -> np.ndarray:
    """First-occurrence canonical codes of a 1-D integer array."""
    _, first, inverse = np.unique(
        values, return_index=True, return_inverse=True
    )
    return _rank_by_first_occurrence(first)[inverse.reshape(-1)]


def _canonical_codes_rows(rows: np.ndarray) -> np.ndarray:
    """First-occurrence canonical codes of the rows of a 2-D array."""
    _, first, inverse = np.unique(
        rows, axis=0, return_index=True, return_inverse=True
    )
    return _rank_by_first_occurrence(first)[inverse.reshape(-1)]


def _in_sorted(sorted_arr: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Membership mask of ``values`` in an ascending int64 array."""
    if sorted_arr.size == 0:
        return np.zeros(len(values), dtype=bool)
    pos = np.searchsorted(sorted_arr, values)
    pos[pos == len(sorted_arr)] = len(sorted_arr) - 1
    return sorted_arr[pos] == values


def _as_index_array(values: object, n: int, what: str) -> np.ndarray:
    """Validate node indices as a 1-D int64 array in ``[0, n)``."""
    arr = np.asarray(values, dtype=np.int64).reshape(-1)
    if arr.size and ((arr < 0).any() or (arr >= n).any()):
        raise ValueError(f"{what} must lie in 0..{n - 1}")
    return arr


class SymmetryContext:
    """All symmetry facts of one port-labeled graph, as numpy arrays.

    Construction computes the view-color partition; distances and the
    all-pairs Shrink matrix are computed lazily on first access (the
    color partition alone serves many callers).  Use
    :func:`symmetry_context` to share contexts across call sites.

    For graphs too large for any dense ``n x n`` array, use the blocked
    API instead of the dense properties: :meth:`distances_block`,
    :meth:`shrink_pairs`, :meth:`shrink_block`,
    :meth:`verdicts_for_pairs`, and :meth:`shrink_all_into` with a
    memory-mapped output.
    """

    __slots__ = ("graph", "_colors", "_distances", "_shrink")

    def __init__(self, graph: PortLabeledGraph) -> None:
        self.graph = graph
        self._colors = self._compute_colors()
        self._colors.setflags(write=False)
        self._distances: np.ndarray | None = None
        self._shrink: np.ndarray | None = None

    # ------------------------------------------------------------------
    # View colors (array-based partition refinement)
    # ------------------------------------------------------------------
    def _compute_colors(self) -> np.ndarray:
        graph = self.graph
        n = graph.n
        succ = graph.succ_node_array
        entry = graph.succ_port_array
        valid = succ >= 0
        safe_succ = np.where(valid, succ, 0)
        # Entry ports are >= 0 wherever valid, so -1 padding encodes the
        # degree into the signature row exactly as tuple length does in
        # the scalar signatures.
        padded_entry = np.where(valid, entry, -1)

        colors = _canonical_codes(graph.degrees)
        rows = np.empty((n, 1 + 2 * succ.shape[1]), dtype=np.int64)
        rows[:, 1::2] = padded_entry
        for _ in range(max(n - 1, 1)):
            rows[:, 0] = colors
            rows[:, 2::2] = np.where(valid, colors[safe_succ], -1)
            new_colors = _canonical_codes_rows(rows)
            if np.array_equal(new_colors, colors):
                break
            colors = new_colors
        return colors

    @property
    def colors(self) -> np.ndarray:
        """Canonical view colors (read-only; same values as
        :func:`~repro.symmetry.views.view_classes`)."""
        return self._colors

    def color_list(self) -> list[int]:
        """Colors as a plain list (the scalar wrappers' return type)."""
        return [int(c) for c in self._colors]

    def are_symmetric(self, u: int, v: int) -> bool:
        """True iff ``u`` and ``v`` have equal views."""
        return bool(self._colors[u] == self._colors[v])

    def _color_groups(self) -> list[np.ndarray]:
        """Nodes grouped by color: canonical color order, members
        ascending.  ``O(n log n)`` — no dense ``n x n`` mask."""
        order = np.argsort(self._colors, kind="stable")
        sorted_colors = self._colors[order]
        cuts = np.flatnonzero(sorted_colors[1:] != sorted_colors[:-1]) + 1
        return np.split(order, cuts)

    def symmetric_pair_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All unordered symmetric pairs as ``(us, vs)`` int64 arrays.

        Same pairs, same (row-major ``u`` then ``v``) order as
        :meth:`symmetric_pairs`, built by color bucketing in
        ``O(n log n + output)`` instead of an ``n x n`` mask.
        """
        groups = [g for g in self._color_groups() if len(g) > 1]
        if not groups:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        us_parts = []
        vs_parts = []
        for members in groups:
            iu, iv = np.triu_indices(len(members), k=1)
            us_parts.append(members[iu])
            vs_parts.append(members[iv])
        us = np.concatenate(us_parts)
        vs = np.concatenate(vs_parts)
        order = np.lexsort((vs, us))
        return us[order], vs[order]

    def symmetric_pairs(self) -> list[tuple[int, int]]:
        """All unordered pairs ``u < v`` of distinct symmetric nodes."""
        us, vs = self.symmetric_pair_arrays()
        return list(zip(us.tolist(), vs.tolist()))

    def orbits(self) -> list[list[int]]:
        """Nodes grouped by view color, in canonical color order."""
        return [group.tolist() for group in self._color_groups()]

    # ------------------------------------------------------------------
    # Distances (blocked frontier-compressed multi-source BFS)
    # ------------------------------------------------------------------
    def _bfs_block(self, sources: np.ndarray) -> np.ndarray:
        """BFS distances from every node of ``sources`` at once.

        Frontier compression: the live frontier is a flat array of
        ``slot * n + node`` keys (slot = position within ``sources``),
        expanded per level with two CSR gathers and deduplicated with
        one ``np.unique``.  Working memory is ``O(block * n)`` for the
        output plus ``O(frontier edges)`` transient — no dense
        adjacency, no matmul.
        """
        graph = self.graph
        n = graph.n
        indptr = graph.csr_indptr
        indices = graph.csr_indices
        sources = np.asarray(sources, dtype=np.int64)
        block = len(sources)
        dist = np.full((block, n), -1, dtype=np.int64)
        slots = np.arange(block, dtype=np.int64)
        dist[slots, sources] = 0
        frontier_slot = slots
        frontier_node = sources
        level = 0
        while frontier_node.size:
            level += 1
            starts = indptr[frontier_node]
            counts = indptr[frontier_node + 1] - starts
            origins = np.repeat(frontier_slot, counts)
            targets = indices[repeat_ranges(starts, counts)]
            fresh = dist[origins, targets] == -1
            origins = origins[fresh]
            targets = targets[fresh]
            if origins.size == 0:
                break
            keys = np.unique(origins * np.int64(n) + targets)
            frontier_slot = keys // n
            frontier_node = keys - frontier_slot * n
            dist[frontier_slot, frontier_node] = level
        return dist

    def distances_block(self, rows: object) -> np.ndarray:
        """BFS distance rows for ``rows`` (fresh ``(len(rows), n)``).

        The blocked entry point: computes only the requested source
        rows, in ``O(m + len(rows) * n)`` memory.  Served as a slice of
        the dense matrix when that is already materialized.
        """
        sources = _as_index_array(rows, self.graph.n, "distance rows")
        if self._distances is not None:
            return np.array(self._distances[sources])
        return self._bfs_block(sources)

    @property
    def distances(self) -> np.ndarray:
        """All-pairs shortest-path distances (``n x n``, computed once).

        A thin materialization of :meth:`distances_block` — the dense
        matrix is filled block of sources by block of sources, so the
        only ``n x n`` allocation is the result itself.  The array is
        shared and marked read-only — mutating it would poison the
        memoized kernel; copy before editing.
        """
        if self._distances is None:
            n = self.graph.n
            dist = np.empty((n, n), dtype=np.int64)
            block = min(n, _DEFAULT_BLOCK)
            for start in range(0, n, block):
                stop = min(start + block, n)
                dist[start:stop] = self._bfs_block(
                    np.arange(start, stop, dtype=np.int64)
                )
            self._distances = dist
            self._distances.setflags(write=False)
        return self._distances

    def _distance_rows(self, rows: np.ndarray) -> np.ndarray:
        """Internal: distance rows, from the cache when present."""
        if self._distances is not None:
            return self._distances[rows]
        return self._bfs_block(rows)

    # ------------------------------------------------------------------
    # All-pairs Shrink (blocked value iteration, active-row worklist)
    # ------------------------------------------------------------------
    @property
    def shrink_all(self) -> np.ndarray:
        """``Shrink(u, v)`` for *every* ordered pair (``n x n``).

        Defined for arbitrary pairs by restricting to ports valid at
        both nodes (the paper's definition on symmetric pairs, where
        degrees agree along the way).  Symmetric by construction;
        0 on the diagonal.  Shared and read-only, like
        :attr:`distances`.  Materialized through
        :meth:`shrink_all_into`.
        """
        if self._shrink is None:
            self._shrink = self.shrink_all_into()
            self._shrink.setflags(write=False)
        return self._shrink

    def shrink_all_into(
        self, out: np.ndarray | None = None, *, block_size: int | None = None
    ) -> np.ndarray:
        """Fill ``out`` with the all-pairs Shrink matrix, blockwise.

        Value iteration on the ``n^2``-state product graph, processed
        in row blocks with an **active-row worklist**: row ``x`` of the
        matrix depends only on rows ``succ(x, p)`` (the graph neighbors
        of ``x``), so after a sweep only the neighbors of rows that
        changed need relaxing again.  Sparse graphs therefore converge
        in near-output time instead of re-sweeping all ``n`` rows until
        global quiescence.

        ``out`` may be any writable int64 ``(n, n)`` array — in
        particular a ``np.lib.format.open_memmap`` result, which keeps
        resident working memory at ``O(m + block * n)`` while the full
        matrix lives on disk.  The fixpoint is unique and monotone, so
        the result is bit-identical to the dense kernel regardless of
        ``block_size`` or sweep order.
        """
        graph = self.graph
        n = graph.n
        if out is None:
            out = np.empty((n, n), dtype=np.int64)
        if out.shape != (n, n) or out.dtype != np.int64:
            raise ValueError(
                f"out must be an int64 array of shape {(n, n)}, "
                f"got {out.dtype} {out.shape}"
            )
        block = min(n, int(block_size) if block_size is not None else _DEFAULT_BLOCK)
        if block <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")

        # Start from distances: Shrink(x, y) = min(dist(x, y),
        # min_p Shrink(succ(x, p), succ(y, p))).
        for start in range(0, n, block):
            stop = min(start + block, n)
            out[start:stop] = self._distance_rows(
                np.arange(start, stop, dtype=np.int64)
            )

        succ = graph.succ_node_array
        valid_cols = succ >= 0  # valid_cols[y, p]: y has a port p
        col_targets = np.where(valid_cols, succ, 0)
        indptr = graph.csr_indptr
        indices = graph.csr_indices
        max_degree = succ.shape[1]

        active = np.ones(n, dtype=bool)
        while True:
            changed = np.zeros(n, dtype=bool)
            for start in range(0, n, block):
                stop = min(start + block, n)
                sel = active[start:stop]
                if not sel.any():
                    continue
                rows = np.flatnonzero(sel).astype(np.int64) + start
                values = np.array(out[rows])
                row_changed = np.zeros(len(rows), dtype=bool)
                for p in range(max_degree):
                    row_targets = succ[rows, p]
                    has_port = row_targets >= 0
                    if not has_port.any():
                        continue
                    # pulled[i, y] = S[succ(rows[i], p), succ(y, p)]
                    pulled = np.asarray(out[row_targets[has_port]])[
                        :, col_targets[:, p]
                    ]
                    sub = values[has_port]
                    improved = valid_cols[:, p][None, :] & (pulled < sub)
                    if improved.any():
                        sub[improved] = pulled[improved]
                        values[has_port] = sub
                        row_changed[has_port] |= improved.any(axis=1)
                if row_changed.any():
                    hit = rows[row_changed]
                    out[hit] = values[row_changed]
                    changed[hit] = True
            hits = np.flatnonzero(changed).astype(np.int64)
            if hits.size == 0:
                break
            # A changed row S[z, :] can only improve rows x with
            # succ(x, p) == z for some p — the graph neighbors of z.
            starts = indptr[hits]
            neighbor_nodes = indices[repeat_ranges(starts, indptr[hits + 1] - starts)]
            active = np.zeros(n, dtype=bool)
            active[neighbor_nodes] = True
        return out

    def shrink_pairs(
        self,
        us: object,
        vs: object,
        *,
        pair_chunk: int | None = None,
        state_budget: int | None = None,
    ) -> np.ndarray:
        """Exact ``Shrink(u, v)`` for each listed pair, no dense arrays.

        Batched BFS over the product graph, ``pair_chunk`` pairs per
        batch, with live states as flat ``slot * n^2 + x * n + y`` keys
        (``n^2`` fits int64 up to n ~ 3e6, far past the target scale).
        Two exactness tricks keep huge graphs cheap:

        * ``Shrink(u, v) == 0`` iff a diagonal state ``(z, z)`` is
          product-reachable, so a pair finishes the moment its frontier
          touches the diagonal — no distance lookups at all;
        * pairs whose reach exhausts without touching the diagonal
          evaluate ``min dist(x, y)`` over their visited states
          *deferred*: states are grouped by left endpoint and distance
          rows fetched blockwise through :meth:`distances_block`.

        ``state_budget`` caps visited product states per batch; graphs
        with giant symmetric reaches (e.g. large rings, where each
        pair's reach is ``Theta(n)`` states and never shrinks to the
        diagonal early) should lower ``pair_chunk`` or raise the
        budget.  Raises :class:`ValueError` when the cap is hit.
        """
        n = self.graph.n
        us_arr = _as_index_array(us, n, "pair endpoints")
        vs_arr = _as_index_array(vs, n, "pair endpoints")
        if us_arr.shape != vs_arr.shape:
            raise ValueError("us and vs must have equal length")
        if self._shrink is not None:
            return np.array(self._shrink[us_arr, vs_arr])
        chunk = pair_chunk if pair_chunk is not None else _DEFAULT_PAIR_CHUNK
        if chunk <= 0:
            raise ValueError(f"pair_chunk must be positive, got {pair_chunk}")
        budget = state_budget if state_budget is not None else _DEFAULT_STATE_BUDGET
        out = np.empty(len(us_arr), dtype=np.int64)
        for start in range(0, len(us_arr), chunk):
            stop = min(start + chunk, len(us_arr))
            out[start:stop] = self._shrink_pairs_chunk(
                us_arr[start:stop], vs_arr[start:stop], budget
            )
        return out

    def _shrink_pairs_chunk(
        self, us: np.ndarray, vs: np.ndarray, state_budget: int
    ) -> np.ndarray:
        graph = self.graph
        n = graph.n
        nn = np.int64(n) * np.int64(n)
        count = len(us)
        degrees = graph.degrees
        succ = graph.succ_node_array

        # n is a strict upper bound on any distance, so it doubles as
        # "no value yet" for the deferred minimum.
        result = np.full(count, n, dtype=np.int64)
        finished = np.zeros(count, dtype=bool)
        diagonal_start = us == vs
        result[diagonal_start] = 0
        finished[diagonal_start] = True

        slots = np.arange(count, dtype=np.int64)
        start_keys = slots * nn + us * np.int64(n) + vs
        visited = np.sort(start_keys)
        frontier = start_keys[~finished]
        total_states = len(visited)
        while frontier.size:
            slot = frontier // nn
            rest = frontier - slot * nn
            x = rest // n
            y = rest - x * n
            limit = np.minimum(degrees[x], degrees[y])
            state_index = np.repeat(
                np.arange(len(frontier), dtype=np.int64), limit
            )
            ports = repeat_ranges(np.zeros(len(frontier), dtype=np.int64), limit)
            next_x = succ[x[state_index], ports]
            next_y = succ[y[state_index], ports]
            keys = np.unique(
                slot[state_index] * nn + next_x * np.int64(n) + next_y
            )
            keys = keys[~_in_sorted(visited, keys)]
            if keys.size == 0:
                break
            total_states += keys.size
            if total_states > state_budget:
                raise ValueError(
                    f"shrink_pairs state budget exceeded "
                    f"({total_states} > {state_budget}); lower pair_chunk "
                    f"or raise state_budget"
                )
            visited = np.sort(np.concatenate([visited, keys]))
            key_slot = keys // nn
            key_rest = keys - key_slot * nn
            key_x = key_rest // n
            key_y = key_rest - key_x * n
            diagonal = key_x == key_y
            if diagonal.any():
                solved = np.unique(key_slot[diagonal])
                result[solved] = 0
                finished[solved] = True
            frontier = keys[~finished[key_slot]]

        pending = ~finished
        if pending.any():
            # Exhausted reaches: min dist over every visited state of
            # the pending slots, distance rows fetched blockwise.
            keep = pending[visited // nn]
            keys = visited[keep]
            key_slot = keys // nn
            key_rest = keys - key_slot * nn
            key_x = key_rest // n
            key_y = key_rest - key_x * n
            order = np.argsort(key_x, kind="stable")
            key_x = key_x[order]
            key_y = key_y[order]
            key_slot = key_slot[order]
            unique_x, first = np.unique(key_x, return_index=True)
            bounds = np.concatenate([first, [len(key_x)]])
            row_block = min(len(unique_x), _DEFAULT_BLOCK)
            for c0 in range(0, len(unique_x), row_block):
                c1 = min(c0 + row_block, len(unique_x))
                rows = unique_x[c0:c1]
                dist_rows = self._distance_rows(rows)
                lo = bounds[c0]
                hi = bounds[c1]
                local = np.searchsorted(rows, key_x[lo:hi])
                np.minimum.at(
                    result, key_slot[lo:hi], dist_rows[local, key_y[lo:hi]]
                )
        return result

    def shrink_block(self, rows: object) -> np.ndarray:
        """Shrink rows ``S[rows, :]`` (fresh ``(len(rows), n)``).

        Served as a slice of :attr:`shrink_all` when that is already
        materialized; otherwise computed via :meth:`shrink_pairs`
        without any dense ``n x n`` allocation.  Intended for a handful
        of rows at large ``n`` — materialize :attr:`shrink_all` (or
        :meth:`shrink_all_into` a memmap) for full sweeps.
        """
        n = self.graph.n
        sources = _as_index_array(rows, n, "shrink rows")
        if self._shrink is not None:
            return np.array(self._shrink[sources])
        targets = np.arange(n, dtype=np.int64)
        us = np.repeat(sources, n)
        vs = np.tile(targets, len(sources))
        return self.shrink_pairs(us, vs).reshape(len(sources), n)

    def shrink_value(self, u: int, v: int) -> int:
        """``Shrink(u, v)`` of Definition 3.1 (0 when ``u == v``)."""
        return int(self.shrink_all[u, v])

    def shrink_matrix(self) -> np.ndarray:
        """Shrink for symmetric pairs, ``-1`` for non-symmetric pairs,
        0 on the diagonal — the :func:`repro.symmetry.shrink_matrix`
        contract.  Fills through the color-bucketed pair arrays: no
        dense boolean mask, no ``np.where`` temporary."""
        n = self.graph.n
        out = np.full((n, n), -1, dtype=np.int64)
        np.fill_diagonal(out, 0)
        us, vs = self.symmetric_pair_arrays()
        if us.size:
            shrink = self.shrink_all
            out[us, vs] = shrink[us, vs]
            out[vs, us] = shrink[vs, us]
        return out

    def shrink_witness(
        self, u: int, v: int
    ) -> tuple[int, tuple[int, ...], tuple[int, int]]:
        """``Shrink(u, v)`` with a shortest witness sequence.

        Same BFS (and hence the same witness) as the scalar
        :func:`repro.symmetry.shrink.shrink_witness`, fed from the
        cached distance matrix.
        """
        if u == v:
            return 0, (), (u, v)
        graph = self.graph
        dist = self.distances
        succ = graph.succ_node_array
        degrees = graph.degrees

        start = (u, v)
        parent: dict[tuple[int, int], tuple[tuple[int, int], int] | None]
        parent = {start: None}
        best_pair = start
        best = int(dist[u, v])
        queue: deque[tuple[int, int]] = deque([start])
        while queue:
            x, y = queue.popleft()
            limit = int(min(degrees[x], degrees[y]))
            for p in range(limit):
                nxt = (int(succ[x, p]), int(succ[y, p]))
                if nxt in parent:
                    continue
                parent[nxt] = ((x, y), p)
                d = int(dist[nxt[0], nxt[1]])
                if d < best:
                    best = d
                    best_pair = nxt
                    if best == 0:
                        queue.clear()
                        break
                queue.append(nxt)

        alpha: list[int] = []
        cursor: tuple[int, int] | None = best_pair
        while parent[cursor] is not None:  # type: ignore[index]
            prev, port = parent[cursor]  # type: ignore[misc, index]
            alpha.append(port)
            cursor = prev
        alpha.reverse()
        return best, tuple(alpha), best_pair

    # ------------------------------------------------------------------
    # Feasibility (Corollary 3.1)
    # ------------------------------------------------------------------
    def verdict(self, u: int, v: int, delta: int) -> "FeasibilityVerdict":
        """The Corollary 3.1 verdict for STIC ``[(u, v), delta]``."""
        # Local import: repro.symmetry.feasibility wraps this module.
        from repro.symmetry.feasibility import classify_from_symmetry

        if delta < 0:
            raise ValueError(f"delay must be non-negative, got {delta}")
        if u == v:
            raise ValueError("the model requires distinct initial nodes")
        if not self.are_symmetric(u, v):
            return classify_from_symmetry(False, None, delta)
        return classify_from_symmetry(True, self.shrink_value(u, v), delta)

    def verdicts_for_pairs(
        self, us: object, vs: object, delta: int
    ) -> "list[FeasibilityVerdict]":
        """Corollary 3.1 verdicts for a batch of pairs, scale-safely.

        Same per-pair results as :meth:`verdict`, but Shrink values are
        fetched through :meth:`shrink_pairs` for the symmetric pairs
        only — non-symmetric pairs never touch the product graph and
        nothing dense is materialized.
        """
        from repro.symmetry.feasibility import classify_from_symmetry

        if delta < 0:
            raise ValueError(f"delay must be non-negative, got {delta}")
        n = self.graph.n
        us_arr = _as_index_array(us, n, "pair endpoints")
        vs_arr = _as_index_array(vs, n, "pair endpoints")
        if us_arr.shape != vs_arr.shape:
            raise ValueError("us and vs must have equal length")
        if (us_arr == vs_arr).any():
            raise ValueError("the model requires distinct initial nodes")
        symmetric = self._colors[us_arr] == self._colors[vs_arr]
        shrinks = np.zeros(len(us_arr), dtype=np.int64)
        if symmetric.any():
            shrinks[symmetric] = self.shrink_pairs(
                us_arr[symmetric], vs_arr[symmetric]
            )
        return [
            classify_from_symmetry(True, int(value), delta)
            if is_symmetric
            else classify_from_symmetry(False, None, delta)
            for is_symmetric, value in zip(symmetric.tolist(), shrinks.tolist())
        ]

    # ------------------------------------------------------------------
    # Cache accounting
    # ------------------------------------------------------------------
    def retained_bytes(self) -> int:
        """Approximate bytes this context pins while cached.

        Sums the kernel's retained numpy buffers (colors plus any
        materialized dense matrices) and a small fixed overhead for the
        Python object graph.  Lazy materialization grows this after
        construction, which is why :func:`symmetry_context` re-enforces
        the cache budget on every call.
        """
        total = _ENTRY_OVERHEAD_BYTES + self._colors.nbytes
        if self._distances is not None:
            total += self._distances.nbytes
        if self._shrink is not None:
            total += self._shrink.nbytes
        return total


# Contexts are cached per graph *value* (PortLabeledGraph hashes by its
# canonical edge list), so equal graphs constructed independently share
# one kernel.  The LRU is bounded by approximate retained *bytes*, not
# entry count: dense kernels are quadratic, so one million-node context
# must evict many small ones (and a flat entry cap would let 64 huge
# kernels pin ~80 GB).  Lazy arrays grow after insertion, so the bound
# is re-enforced on every lookup.
_ENTRY_OVERHEAD_BYTES = 4096
_CONTEXT_CACHE: OrderedDict[PortLabeledGraph, SymmetryContext] = OrderedDict()
_CONTEXT_CACHE_MAX_BYTES = 256 * 1024 * 1024


def set_context_cache_limit(max_bytes: int) -> int:
    """Set the context cache byte budget; returns the previous budget.

    Eviction happens immediately and on every subsequent
    :func:`symmetry_context` call.  The most recently served context is
    always retained, even when it alone exceeds the budget.
    """
    global _CONTEXT_CACHE_MAX_BYTES
    if max_bytes <= 0:
        raise ValueError(f"cache limit must be positive, got {max_bytes}")
    previous = _CONTEXT_CACHE_MAX_BYTES
    _CONTEXT_CACHE_MAX_BYTES = int(max_bytes)
    _evict_to_limit(keep=None)
    return previous


def context_cache_bytes() -> int:
    """Approximate bytes currently retained by the context cache."""
    return sum(context.retained_bytes() for context in _CONTEXT_CACHE.values())


def clear_context_cache() -> None:
    """Drop every cached context (test isolation helper)."""
    _CONTEXT_CACHE.clear()


def _evict_to_limit(keep: SymmetryContext | None) -> None:
    total = context_cache_bytes()
    while total > _CONTEXT_CACHE_MAX_BYTES and _CONTEXT_CACHE:
        victim_graph = None
        victim = None
        for graph, context in _CONTEXT_CACHE.items():
            if context is not keep:
                victim_graph = graph
                victim = context
                break
        if victim_graph is None or victim is None:
            break  # only the just-served context remains
        del _CONTEXT_CACHE[victim_graph]
        total -= victim.retained_bytes()


def symmetry_context(graph: PortLabeledGraph) -> SymmetryContext:
    """The (memoized) :class:`SymmetryContext` of ``graph``."""
    context = _CONTEXT_CACHE.get(graph)
    if context is None:
        context = SymmetryContext(graph)
        _CONTEXT_CACHE[graph] = context
    else:
        _CONTEXT_CACHE.move_to_end(graph)
    _evict_to_limit(keep=context)
    return context
