"""Symmetry-structure analysis: whole-graph Shrink and delay maps.

Tools built on top of the per-pair primitives that answer the
questions a deployment would actually ask of this theory: *how much
delay does this topology need in the worst case?*, *which pairs are
the hard ones?*, *what do the symmetry orbits look like?*.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.graphs.port_graph import PortLabeledGraph
from repro.symmetry.context import symmetry_context

__all__ = [
    "shrink_matrix",
    "symmetry_orbits",
    "DelayProfile",
    "delay_profile",
    "min_universal_delay",
]


def shrink_matrix(
    graph: PortLabeledGraph,
    *,
    block_size: int | None = None,
    memmap_path: str | os.PathLike[str] | None = None,
) -> np.ndarray:
    """Matrix ``S`` with ``S[u, v] = Shrink(u, v)`` for symmetric pairs
    and ``-1`` for non-symmetric pairs (where the notion is moot and
    every delay works anyway).  ``S[v, v] = 0``.

    Default: one read of the kernel's all-pairs Shrink matrix, filled
    through the color-bucketed symmetric-pair arrays (no dense boolean
    mask).  With ``block_size`` and/or ``memmap_path`` the matrix is
    produced *streamed*: rows are written a block at a time and the
    Shrink values of the symmetric pairs come from the kernel's batched
    per-pair product BFS — nothing dense beyond one ``block x n`` slab
    is ever resident, and with ``memmap_path`` the atlas itself lives
    on disk (``np.lib.format.open_memmap``, a standard ``.npy`` file),
    so huge-``n`` atlases never enter RAM at once.  Values are
    bit-identical between the two paths.
    """
    context = symmetry_context(graph)
    if block_size is None and memmap_path is None:
        return context.shrink_matrix()
    n = graph.n
    out: np.ndarray
    if memmap_path is not None:
        out = np.lib.format.open_memmap(
            os.fspath(memmap_path), mode="w+", dtype=np.int64, shape=(n, n)
        )
    else:
        out = np.empty((n, n), dtype=np.int64)
    block = min(n, int(block_size) if block_size is not None else n)
    if block <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")

    # Both orientations of every symmetric pair, sorted by row, so each
    # row block slices its pairs out with two binary searches.
    us, vs = context.symmetric_pair_arrays()
    rows = np.concatenate([us, vs])
    cols = np.concatenate([vs, us])
    values = context.shrink_pairs(rows, cols)
    order = np.argsort(rows, kind="stable")
    rows, cols, values = rows[order], cols[order], values[order]

    diagonal = np.arange(n, dtype=np.int64)
    for start in range(0, n, block):
        stop = min(start + block, n)
        slab = np.full((stop - start, n), -1, dtype=np.int64)
        slab[diagonal[start:stop] - start, diagonal[start:stop]] = 0
        lo, hi = np.searchsorted(rows, (start, stop))
        slab[rows[lo:hi] - start, cols[lo:hi]] = values[lo:hi]
        out[start:stop] = slab
    return out


def symmetry_orbits(graph: PortLabeledGraph) -> list[list[int]]:
    """Nodes grouped by view equality, in canonical color order.

    For vertex-transitive port labelings this is one orbit; each orbit
    of size >= 2 is a set of mutually indistinguishable positions.
    """
    return symmetry_context(graph).orbits()


@dataclass(frozen=True)
class DelayProfile:
    """Worst-case delay requirements of one topology.

    Attributes
    ----------
    max_shrink:
        The largest ``Shrink`` over symmetric pairs — the delay that
        makes *every* STIC of the graph feasible (0 if no symmetric
        pairs exist).
    hardest_pair:
        A pair attaining it (``None`` if no symmetric pairs).
    symmetric_pairs / total_pairs:
        How much of the graph is symmetry-afflicted.
    mean_shrink:
        Average ``Shrink`` over symmetric pairs (0.0 if none).
    """

    max_shrink: int
    hardest_pair: tuple[int, int] | None
    symmetric_pairs: int
    total_pairs: int
    mean_shrink: float


def delay_profile(graph: PortLabeledGraph) -> DelayProfile:
    """Summarize the graph's delay requirements (see :class:`DelayProfile`).

    Computed from the color-bucketed symmetric-pair arrays and the
    batched per-pair Shrink — no dense ``n x n`` matrix, no Python
    pair loop.  ``hardest_pair`` remains the row-major-first pair
    attaining the maximum, as the historical matrix scan returned.
    """
    context = symmetry_context(graph)
    n = graph.n
    us, vs = context.symmetric_pair_arrays()
    total_pairs = n * (n - 1) // 2
    if us.size == 0:
        return DelayProfile(
            max_shrink=0,
            hardest_pair=None,
            symmetric_pairs=0,
            total_pairs=total_pairs,
            mean_shrink=0.0,
        )
    values = context.shrink_pairs(us, vs)
    worst = int(values.max())
    first = int(np.flatnonzero(values == worst)[0])
    return DelayProfile(
        max_shrink=worst,
        hardest_pair=(int(us[first]), int(vs[first])),
        symmetric_pairs=int(us.size),
        total_pairs=total_pairs,
        mean_shrink=float(np.mean(values)),
    )


def min_universal_delay(graph: PortLabeledGraph) -> int:
    """Smallest delay making every STIC of the graph feasible.

    Equals ``max Shrink`` over symmetric pairs (Corollary 3.1):
    non-symmetric pairs need nothing, symmetric pairs need their
    ``Shrink``.
    """
    return delay_profile(graph).max_shrink
