"""Symmetry-structure analysis: whole-graph Shrink and delay maps.

Tools built on top of the per-pair primitives that answer the
questions a deployment would actually ask of this theory: *how much
delay does this topology need in the worst case?*, *which pairs are
the hard ones?*, *what do the symmetry orbits look like?*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.port_graph import PortLabeledGraph
from repro.symmetry.context import symmetry_context

__all__ = [
    "shrink_matrix",
    "symmetry_orbits",
    "DelayProfile",
    "delay_profile",
    "min_universal_delay",
]


def shrink_matrix(graph: PortLabeledGraph) -> np.ndarray:
    """Matrix ``S`` with ``S[u, v] = Shrink(u, v)`` for symmetric pairs
    and ``-1`` for non-symmetric pairs (where the notion is moot and
    every delay works anyway).  ``S[v, v] = 0``.

    One masked read of the kernel's all-pairs Shrink matrix — no
    per-pair BFS.
    """
    return symmetry_context(graph).shrink_matrix()


def symmetry_orbits(graph: PortLabeledGraph) -> list[list[int]]:
    """Nodes grouped by view equality, in canonical color order.

    For vertex-transitive port labelings this is one orbit; each orbit
    of size >= 2 is a set of mutually indistinguishable positions.
    """
    return symmetry_context(graph).orbits()


@dataclass(frozen=True)
class DelayProfile:
    """Worst-case delay requirements of one topology.

    Attributes
    ----------
    max_shrink:
        The largest ``Shrink`` over symmetric pairs — the delay that
        makes *every* STIC of the graph feasible (0 if no symmetric
        pairs exist).
    hardest_pair:
        A pair attaining it (``None`` if no symmetric pairs).
    symmetric_pairs / total_pairs:
        How much of the graph is symmetry-afflicted.
    mean_shrink:
        Average ``Shrink`` over symmetric pairs (0.0 if none).
    """

    max_shrink: int
    hardest_pair: tuple[int, int] | None
    symmetric_pairs: int
    total_pairs: int
    mean_shrink: float


def delay_profile(graph: PortLabeledGraph) -> DelayProfile:
    """Summarize the graph's delay requirements (see :class:`DelayProfile`)."""
    matrix = shrink_matrix(graph)
    n = graph.n
    worst = 0
    hardest: tuple[int, int] | None = None
    values: list[int] = []
    for u in range(n):
        for v in range(u + 1, n):
            s = int(matrix[u, v])
            if s < 0:
                continue
            values.append(s)
            if s > worst:
                worst, hardest = s, (u, v)
    if values and hardest is None:
        hardest = next(
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if matrix[u, v] == worst
        )
    return DelayProfile(
        max_shrink=worst,
        hardest_pair=hardest,
        symmetric_pairs=len(values),
        total_pairs=n * (n - 1) // 2,
        mean_shrink=float(np.mean(values)) if values else 0.0,
    )


def min_universal_delay(graph: PortLabeledGraph) -> int:
    """Smallest delay making every STIC of the graph feasible.

    Equals ``max Shrink`` over symmetric pairs (Corollary 3.1):
    non-symmetric pairs need nothing, symmetric pairs need their
    ``Shrink``.
    """
    return delay_profile(graph).max_shrink
