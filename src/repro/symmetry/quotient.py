"""Quotient graphs and port-preserving automorphisms.

Two companions to the view machinery of Section 2:

* :func:`quotient_graph` — the graph of view classes.  Merging nodes
  with equal views yields the *minimum base* of the graph's universal
  cover (Yamashita–Kameda); anonymous agents are exactly as powerful
  on a graph as on its quotient, which makes the quotient the right
  object for reasoning about what symmetry an adversary can exploit.
* :func:`port_automorphisms` — all port-preserving automorphisms of a
  small graph.  An automorphism mapping ``u`` to ``v`` certifies
  ``V(u) = V(v)`` constructively (the converse does not hold in
  general, which :mod:`tests.symmetry.test_quotient` demonstrates —
  views can coincide without any global automorphism).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.port_graph import PortLabeledGraph
from repro.symmetry.context import symmetry_context

__all__ = ["QuotientGraph", "quotient_graph", "port_automorphisms"]


@dataclass(frozen=True)
class QuotientGraph:
    """The view-class quotient of a port-labeled graph.

    Attributes
    ----------
    classes:
        Number of view classes (quotient nodes ``0..classes-1``).
    color_of:
        Map from original node to its class.
    degree_of:
        Degree of (every member of) each class.
    transitions:
        ``transitions[c][p] = (entry_port, target_class)``: leaving any
        node of class ``c`` by port ``p`` enters a node of the target
        class by ``entry_port``.  Well-defined because equal views agree
        on all outgoing edges — verified during construction.
    """

    classes: int
    color_of: tuple[int, ...]
    degree_of: tuple[int, ...]
    transitions: tuple[tuple[tuple[int, int], ...], ...]

    def is_trivial(self) -> bool:
        """True when the graph has no symmetry (quotient == graph)."""
        return self.classes == len(self.color_of)


def quotient_graph(graph: PortLabeledGraph) -> QuotientGraph:
    """Compute the view-class quotient (see :class:`QuotientGraph`)."""
    colors = symmetry_context(graph).color_list()
    classes = max(colors) + 1
    representative = [-1] * classes
    for v, c in enumerate(colors):
        if representative[c] == -1:
            representative[c] = v

    degree_of = []
    transitions = []
    for c in range(classes):
        rep = representative[c]
        d = graph.degree(rep)
        degree_of.append(d)
        row = tuple(
            (graph.entry_port(rep, p), colors[graph.succ(rep, p)])
            for p in range(d)
        )
        transitions.append(row)

    # Well-definedness check: every member of a class must induce the
    # same transition row (this is exactly view equality at depth 1,
    # so a failure would mean view_classes is broken).
    for v, c in enumerate(colors):
        row = tuple(
            (graph.entry_port(v, p), colors[graph.succ(v, p)])
            for p in range(graph.degree(v))
        )
        if row != transitions[c]:  # pragma: no cover - invariant guard
            raise AssertionError("view classes are not a fibration")

    return QuotientGraph(
        classes=classes,
        color_of=tuple(colors),
        degree_of=tuple(degree_of),
        transitions=tuple(transitions),
    )


def port_automorphisms(graph: PortLabeledGraph) -> list[tuple[int, ...]]:
    """All port-preserving automorphisms (as node permutations).

    A permutation ``phi`` qualifies when for every node ``v`` and port
    ``p``: ``phi(succ(v, p)) = succ(phi(v), p)`` and the entry ports
    agree.  Backtracking search seeded by one image choice: since the
    graph is connected and ports are preserved, the image of a single
    node determines the whole map, so the search is ``O(n)`` images
    times ``O(m)`` verification — fine for the small graphs we reason
    about exhaustively.
    """
    n = graph.n
    colors = symmetry_context(graph).color_list()
    autos: list[tuple[int, ...]] = []
    for image_of_0 in range(n):
        if colors[image_of_0] != colors[0]:
            continue  # automorphisms preserve views
        phi = [-1] * n
        phi[0] = image_of_0
        queue = [0]
        ok = True
        while queue and ok:
            v = queue.pop()
            if graph.degree(v) != graph.degree(phi[v]):
                ok = False
                break
            for p in range(graph.degree(v)):
                w = graph.succ(v, p)
                w_image = graph.succ(phi[v], p)
                if graph.entry_port(v, p) != graph.entry_port(phi[v], p):
                    ok = False
                    break
                if phi[w] == -1:
                    phi[w] = w_image
                    queue.append(w)
                elif phi[w] != w_image:
                    ok = False
                    break
        if ok and sorted(phi) == list(range(n)):
            autos.append(tuple(phi))
    return autos
