"""Views, symmetry, Shrink, and STIC feasibility (Sections 2-3).

The scalar entry points below are thin wrappers over the per-graph
array kernel (:class:`~repro.symmetry.context.SymmetryContext`); sweeps
that touch many pairs of one graph can grab the kernel directly via
:func:`~repro.symmetry.context.symmetry_context`.
"""

from repro.symmetry.context import SymmetryContext, symmetry_context
from repro.symmetry.feasibility import (
    ASYNC_EDGE_MEETING_ONLY,
    ASYNC_NEVER_MEETS,
    ASYNC_NODE_MEETING,
    AsyncAtlasEntry,
    AtlasEntry,
    FeasibilityVerdict,
    async_feasibility_atlas,
    classify_stic,
    empirical_feasibility_atlas,
    is_feasible,
)
from repro.symmetry.shrink import (
    all_pairs_distances,
    shrink,
    shrink_witness,
    shrink_witness_reference,
)
from repro.symmetry.structure import (
    DelayProfile,
    delay_profile,
    min_universal_delay,
    shrink_matrix,
    symmetry_orbits,
)
from repro.symmetry.views import (
    are_symmetric,
    symmetric_pairs,
    truncated_view,
    view_class_of,
    view_classes,
    view_classes_reference,
    view_signature,
)

__all__ = [
    "SymmetryContext",
    "symmetry_context",
    "truncated_view",
    "view_classes",
    "view_classes_reference",
    "view_class_of",
    "are_symmetric",
    "symmetric_pairs",
    "view_signature",
    "shrink",
    "shrink_matrix",
    "symmetry_orbits",
    "DelayProfile",
    "delay_profile",
    "min_universal_delay",
    "shrink_witness",
    "shrink_witness_reference",
    "all_pairs_distances",
    "FeasibilityVerdict",
    "classify_stic",
    "is_feasible",
    "AtlasEntry",
    "empirical_feasibility_atlas",
    "ASYNC_NODE_MEETING",
    "ASYNC_EDGE_MEETING_ONLY",
    "ASYNC_NEVER_MEETS",
    "AsyncAtlasEntry",
    "async_feasibility_atlas",
]
