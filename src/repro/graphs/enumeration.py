"""Exhaustive enumeration of small port-labeled graphs.

The UXS substitution (DESIGN.md §2.1) is certified exhaustively for
tiny sizes: a sequence is accepted as "universal for size n" only if
it covers *every* connected port-labeled graph on ``n`` named nodes
from *every* start node.  This module generates that class — all
connected simple graphs on ``n`` labeled nodes, crossed with all port
assignments — which is tractable for ``n <= 4`` (a few thousand
objects) and also supplies worst-case fodder for property tests.
"""

from __future__ import annotations

from itertools import combinations, permutations, product
from collections.abc import Iterator

from repro.graphs.port_graph import Edge, PortLabeledGraph

__all__ = [
    "connected_edge_sets",
    "port_assignments",
    "enumerate_port_labeled_graphs",
    "count_port_labeled_graphs",
]


def connected_edge_sets(n: int) -> Iterator[tuple[tuple[int, int], ...]]:
    """All connected simple graphs on ``n`` named nodes, as edge sets."""
    if n == 1:
        yield ()
        return
    all_pairs = list(combinations(range(n), 2))
    for mask in range(1 << len(all_pairs)):
        edges = tuple(p for i, p in enumerate(all_pairs) if mask >> i & 1)
        if len(edges) < n - 1:
            continue
        if _connected(n, edges):
            yield edges


def _connected(n: int, edges: tuple[tuple[int, int], ...]) -> bool:
    adj: dict[int, list[int]] = {v: [] for v in range(n)}
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    seen = {0}
    stack = [0]
    while stack:
        for w in adj[stack.pop()]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == n


def port_assignments(
    n: int, edges: tuple[tuple[int, int], ...]
) -> Iterator[tuple[Edge, ...]]:
    """All port labelings of one underlying graph.

    Each node of degree ``d`` permutes ports ``0..d-1`` over its
    incident edges (in edge-list order), independently of other nodes.
    """
    incident: dict[int, list[int]] = {v: [] for v in range(n)}
    for idx, (a, b) in enumerate(edges):
        incident[a].append(idx)
        incident[b].append(idx)
    per_node = [list(permutations(range(len(incident[v])))) for v in range(n)]
    for combo in product(*per_node):
        port_at: list[dict[int, int]] = [dict() for _ in range(n)]
        for v in range(n):
            for slot, edge_idx in enumerate(incident[v]):
                port_at[v][edge_idx] = combo[v][slot]
        yield tuple(
            (a, port_at[a][idx], b, port_at[b][idx])
            for idx, (a, b) in enumerate(edges)
        )


def enumerate_port_labeled_graphs(n: int) -> Iterator[PortLabeledGraph]:
    """Every connected port-labeled graph on ``n`` named nodes.

    Sizes: 1, 1, 8, ~1.7k for n = 1..4 — use only for tiny ``n``.
    """
    if n > 5:
        raise ValueError("exhaustive enumeration is only sane for n <= 5")
    for edges in connected_edge_sets(n):
        for labeled in port_assignments(n, edges):
            yield PortLabeledGraph(n, labeled, validate=False)


def count_port_labeled_graphs(n: int) -> int:
    """Number of objects :func:`enumerate_port_labeled_graphs` yields."""
    return sum(1 for _ in enumerate_port_labeled_graphs(n))
