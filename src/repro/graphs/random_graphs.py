"""Deterministic random port-labeled graph generation for test sweeps.

Random connected graphs with random port permutations exercise the
algorithms on unstructured inputs.  Everything is keyed by an explicit
seed through :class:`repro.util.SplitMix64`, so test failures replay
exactly.
"""

from __future__ import annotations

from repro.graphs.port_graph import Edge, PortLabeledGraph
from repro.util.lcg import SplitMix64, derive_seed

__all__ = [
    "random_connected_graph",
    "random_regular_graph",
    "random_tree",
    "random_port_permutation",
]


def random_tree(n: int, seed: int) -> PortLabeledGraph:
    """Uniformly-ish random labeled tree with random port labels.

    Each node ``i >= 1`` attaches to a uniformly random earlier node
    (a random recursive tree), then ports are randomly permuted at
    every node via :func:`random_port_permutation`.
    """
    if n < 1:
        raise ValueError("need n >= 1")
    rng = SplitMix64(derive_seed("random_tree", n, seed))
    pairs = [(rng.randrange(i), i) for i in range(1, n)]
    return _with_random_ports(n, pairs, rng)


def random_connected_graph(n: int, extra_edges: int, seed: int) -> PortLabeledGraph:
    """Random connected graph: random recursive tree + extra random edges.

    ``extra_edges`` additional distinct non-tree edges are sampled
    uniformly (skipping duplicates); ports are randomly permuted.  The
    returned graph always has exactly ``(n - 1) + min(extra_edges,
    max_extra)`` edges: the rejection loop below handles sparse inputs
    (and replays the seeded stream older callers pinned), and when its
    attempt budget runs out on dense inputs — where almost every draw
    collides with an existing edge — the remaining edges are drawn
    uniformly without replacement from the explicit complement set
    instead of being silently dropped.
    """
    if n < 1:
        raise ValueError("need n >= 1")
    rng = SplitMix64(derive_seed("random_graph", n, extra_edges, seed))
    pairs = [(rng.randrange(i), i) for i in range(1, n)]
    present = {(min(a, b), max(a, b)) for a, b in pairs}
    max_extra = n * (n - 1) // 2 - len(present)
    budget = min(extra_edges, max_extra)
    attempts = 0
    while budget > 0 and attempts < 100 * (budget + 1):
        a = rng.randrange(n)
        b = rng.randrange(n)
        attempts += 1
        if a == b:
            continue
        key = (min(a, b), max(a, b))
        if key in present:
            continue
        present.add(key)
        pairs.append(key)
        budget -= 1
    if budget > 0:
        complement = [
            (a, b)
            for a in range(n)
            for b in range(a + 1, n)
            if (a, b) not in present
        ]
        for _ in range(budget):
            key = complement.pop(rng.randrange(len(complement)))
            present.add(key)
            pairs.append(key)
    return _with_random_ports(n, pairs, rng)


def random_regular_graph(n: int, degree: int, seed: int) -> PortLabeledGraph:
    """Random connected ``degree``-regular graph with random port labels.

    Uses the pairing (configuration) model: ``degree`` stubs per node
    are shuffled and matched; matchings with self-loops, parallel edges,
    or a disconnected result are rejected and redrawn from the same
    seeded stream, so the construction is a deterministic function of
    ``(n, degree, seed)``.  Requires ``1 <= degree < n`` and an even
    ``n * degree``.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    if not 1 <= degree < n:
        raise ValueError(f"need 1 <= degree < n, got degree={degree}, n={n}")
    if (n * degree) % 2:
        raise ValueError(f"n * degree must be even, got n={n}, degree={degree}")
    rng = SplitMix64(derive_seed("random_regular", n, degree, seed))
    stubs = [v for v in range(n) for _ in range(degree)]
    for _ in range(1000):
        # Fisher-Yates over the stub list, then match consecutive stubs.
        for i in range(len(stubs) - 1, 0, -1):
            j = rng.randrange(i + 1)
            stubs[i], stubs[j] = stubs[j], stubs[i]
        pairs = [
            (min(a, b), max(a, b))
            for a, b in zip(stubs[::2], stubs[1::2])
        ]
        if any(a == b for a, b in pairs) or len(set(pairs)) < len(pairs):
            continue
        if _connected(n, pairs):
            return _with_random_ports(n, pairs, rng)
    raise ValueError(
        f"no simple connected {degree}-regular matching found for n={n} "
        f"(seed {seed}); the parameter combination is too constrained"
    )


def _connected(n: int, pairs: list[tuple[int, int]]) -> bool:
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for a, b in pairs:
        adjacency[a].append(b)
        adjacency[b].append(a)
    seen = {0}
    stack = [0]
    while stack:
        for w in adjacency[stack.pop()]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == n


def random_port_permutation(degree: int, rng: SplitMix64) -> list[int]:
    """Fisher-Yates permutation of ``0..degree-1`` from the given stream."""
    perm = list(range(degree))
    for i in range(degree - 1, 0, -1):
        j = rng.randrange(i + 1)
        perm[i], perm[j] = perm[j], perm[i]
    return perm


def _with_random_ports(
    n: int, pairs: list[tuple[int, int]], rng: SplitMix64
) -> PortLabeledGraph:
    degree = [0] * n
    for a, b in pairs:
        degree[a] += 1
        degree[b] += 1
    perms = [random_port_permutation(degree[v], rng) for v in range(n)]
    counter = [0] * n
    edges: list[Edge] = []
    for a, b in pairs:
        pa = perms[a][counter[a]]
        pb = perms[b][counter[b]]
        counter[a] += 1
        counter[b] += 1
        edges.append((a, pa, b, pb))
    return PortLabeledGraph(n, edges)
