"""Deterministic random port-labeled graph generation for test sweeps.

Random connected graphs with random port permutations exercise the
algorithms on unstructured inputs.  Everything is keyed by an explicit
seed through :class:`repro.util.SplitMix64`, so test failures replay
exactly.
"""

from __future__ import annotations

from repro.graphs.port_graph import Edge, PortLabeledGraph
from repro.util.lcg import SplitMix64, derive_seed

__all__ = ["random_connected_graph", "random_tree", "random_port_permutation"]


def random_tree(n: int, seed: int) -> PortLabeledGraph:
    """Uniformly-ish random labeled tree with random port labels.

    Each node ``i >= 1`` attaches to a uniformly random earlier node
    (a random recursive tree), then ports are randomly permuted at
    every node via :func:`random_port_permutation`.
    """
    if n < 1:
        raise ValueError("need n >= 1")
    rng = SplitMix64(derive_seed("random_tree", n, seed))
    pairs = [(rng.randrange(i), i) for i in range(1, n)]
    return _with_random_ports(n, pairs, rng)


def random_connected_graph(n: int, extra_edges: int, seed: int) -> PortLabeledGraph:
    """Random connected graph: random recursive tree + extra random edges.

    ``extra_edges`` additional distinct non-tree edges are sampled
    uniformly (skipping duplicates); ports are randomly permuted.
    """
    if n < 1:
        raise ValueError("need n >= 1")
    rng = SplitMix64(derive_seed("random_graph", n, extra_edges, seed))
    pairs = [(rng.randrange(i), i) for i in range(1, n)]
    present = {(min(a, b), max(a, b)) for a, b in pairs}
    max_extra = n * (n - 1) // 2 - len(present)
    budget = min(extra_edges, max_extra)
    attempts = 0
    while budget > 0 and attempts < 100 * (budget + 1):
        a = rng.randrange(n)
        b = rng.randrange(n)
        attempts += 1
        if a == b:
            continue
        key = (min(a, b), max(a, b))
        if key in present:
            continue
        present.add(key)
        pairs.append(key)
        budget -= 1
    return _with_random_ports(n, pairs, rng)


def random_port_permutation(degree: int, rng: SplitMix64) -> list[int]:
    """Fisher-Yates permutation of ``0..degree-1`` from the given stream."""
    perm = list(range(degree))
    for i in range(degree - 1, 0, -1):
        j = rng.randrange(i + 1)
        perm[i], perm[j] = perm[j], perm[i]
    return perm


def _with_random_ports(
    n: int, pairs: list[tuple[int, int]], rng: SplitMix64
) -> PortLabeledGraph:
    degree = [0] * n
    for a, b in pairs:
        degree[a] += 1
        degree[b] += 1
    perms = [random_port_permutation(degree[v], rng) for v in range(n)]
    counter = [0] * n
    edges: list[Edge] = []
    for a, b in pairs:
        pa = perms[a][counter[a]]
        pb = perms[b][counter[b]]
        counter[a] += 1
        counter[b] += 1
        edges.append((a, pa, b, pb))
    return PortLabeledGraph(n, edges)
