"""Port-labeled anonymous graphs — the navigation substrate of the paper.

The model (Section 1 of the paper): a simple, finite, connected,
undirected graph whose *nodes are unlabeled* but whose edge endpoints
carry local *port numbers*: a node of degree ``d`` numbers its incident
edges ``0 .. d-1``, with **no coherence** required between the two port
numbers of one edge.

Internally nodes are integers ``0 .. n-1``.  These integers are a
simulator convenience only — algorithms in :mod:`repro.core` never see
them; the :class:`repro.sim.agent.Agent` wrapper restricts agent
perception to (degree, entry port), which is exactly what the model
allows.

The hot navigation primitives (``succ``, path application) are backed
by dense numpy arrays so that simulations of millions of rounds stay
cheap, per the profiling-first guidance of the HPC notes.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.graphs.csr import repeat_ranges

__all__ = ["PortLabeledGraph", "Edge"]

#: An undirected port-labeled edge ``(u, port_at_u, v, port_at_v)``.
Edge = tuple[int, int, int, int]


class PortLabeledGraph:
    """A simple connected undirected graph with local port labels.

    Parameters
    ----------
    n:
        Number of nodes; nodes are ``0 .. n-1``.
    edges:
        Iterable of ``(u, p_u, v, p_v)`` tuples meaning the edge
        ``{u, v}`` has port ``p_u`` at ``u`` and port ``p_v`` at ``v``.
    validate:
        When true (default), check the port-labeling axioms: every node
        of degree ``d`` uses ports ``0..d-1`` exactly once, the graph is
        simple, and it is connected.

    Notes
    -----
    Instances are immutable after construction.
    """

    __slots__ = (
        "_n",
        "_edges",
        "_degrees",
        "_succ_node",
        "_succ_port",
        "_max_degree",
        "_csr_cache",
        "_canonical_cache",
        "_hash_cache",
    )

    def __init__(self, n: int, edges: Iterable[Edge], *, validate: bool = True) -> None:
        if n <= 0:
            raise ValueError(f"graph must have at least one node, got n={n}")
        self._n = n
        self._edges = self._coerce_edges(edges)

        # Vectorized happy path (bincount degrees + one fancy-indexed
        # table fill); any axiom violation falls back to the scalar
        # build, which re-detects the problem edge *in input order* and
        # raises the exact per-edge message the scalar path always has.
        tables = self._build_tables_vectorized()
        if tables is None:
            tables = self._build_tables_scalar()
        degrees, succ_node, succ_port = tables

        self._degrees = degrees
        self._succ_node = succ_node
        self._succ_port = succ_port
        self._max_degree = int(degrees.max()) if n > 0 else 0
        self._csr_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._canonical_cache: tuple[Edge, ...] | None = None
        self._hash_cache: int | None = None

        if validate:
            self._validate_simple()
            self._validate_connected()

    @staticmethod
    def _coerce_edges(edges: Iterable[Edge]) -> tuple[Edge, ...]:
        """Normalize ``edges`` to a tuple of int 4-tuples.

        Tries one bulk ``np.asarray`` cast first; irregular input
        (ragged rows, non-numeric entries) drops to the scalar
        conversion, which raises the historical per-edge messages.
        """
        edge_seq = edges if isinstance(edges, (list, tuple)) else list(edges)
        if edge_seq:
            arr: np.ndarray | None
            try:
                arr = np.asarray(edge_seq, dtype=np.int64)
            except (TypeError, ValueError, OverflowError):
                arr = None
            if arr is not None and arr.ndim == 2 and arr.shape[1] == 4:
                return tuple(tuple(row) for row in arr.tolist())  # type: ignore[return-value]
        edge_list = [tuple(int(x) for x in e) for e in edge_seq]
        for e in edge_list:
            if len(e) != 4:
                raise ValueError(f"edge must be (u, p_u, v, p_v), got {e}")
        return tuple(edge_list)  # type: ignore[return-value]

    def _build_tables_vectorized(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Build (degrees, succ_node, succ_port) without Python loops.

        Returns ``None`` when any port-labeling axiom fails — the
        caller then re-runs the scalar build purely for its exact,
        input-ordered error reporting.
        """
        n = self._n
        if not self._edges:
            degrees = np.zeros(n, dtype=np.int64)
            shape = (n, 1)
            return degrees, np.full(shape, -1, np.int64), np.full(shape, -1, np.int64)
        arr = np.asarray(self._edges, dtype=np.int64)
        u, pu, v, pv = arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]
        endpoints = np.concatenate([u, v])
        if (endpoints < 0).any() or (endpoints >= n).any() or (u == v).any():
            return None
        degrees = np.bincount(endpoints, minlength=n).astype(np.int64, copy=False)
        max_degree = int(degrees.max())

        # Both directed half-edges of every undirected edge: the table
        # row is the *from* node, the column its outgoing port.
        rows = endpoints
        ports = np.concatenate([pu, pv])
        targets = np.concatenate([v, u])
        target_ports = np.concatenate([pv, pu])
        if (ports < 0).any() or (ports >= degrees[rows]).any():
            return None
        keys = rows * np.int64(max_degree) + ports
        if len(np.unique(keys)) != len(keys):  # some port assigned twice
            return None

        shape = (n, max(max_degree, 1))
        succ_node = np.full(shape, -1, dtype=np.int64)
        succ_port = np.full(shape, -1, dtype=np.int64)
        succ_node[rows, ports] = targets
        succ_port[rows, ports] = target_ports
        return degrees, succ_node, succ_port

    def _build_tables_scalar(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reference scalar build: detects violations edge by edge, in
        input order, with the messages the constructor has always
        raised.  Only reached when the vectorized build bails."""
        n = self._n
        degrees = np.zeros(n, dtype=np.int64)
        for u, _pu, v, _pv in self._edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge endpoint out of range in {(u, v)}")
            if u == v:
                raise ValueError(f"self-loop at node {u}: the model uses simple graphs")
            degrees[u] += 1
            degrees[v] += 1

        max_degree = int(degrees.max()) if n > 0 else 0
        # succ_node[v, p] = neighbor reached from v via port p (-1 if p >= deg(v)).
        # succ_port[v, p] = the port of that same edge at the neighbor.
        succ_node = np.full((n, max(max_degree, 1)), -1, dtype=np.int64)
        succ_port = np.full((n, max(max_degree, 1)), -1, dtype=np.int64)
        for u, pu, v, pv in self._edges:
            for a, pa, b, pb in ((u, pu, v, pv), (v, pv, u, pu)):
                if not (0 <= pa < degrees[a]):
                    raise ValueError(
                        f"port {pa} at node {a} out of range 0..{int(degrees[a]) - 1}"
                    )
                if succ_node[a, pa] != -1:
                    raise ValueError(f"port {pa} at node {a} assigned twice")
                succ_node[a, pa] = b
                succ_port[a, pa] = pb
        return degrees, succ_node, succ_port

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes (the *size* of the graph, per the paper)."""
        return self._n

    @property
    def edges(self) -> tuple[Edge, ...]:
        """The port-labeled edge list this graph was built from."""
        return self._edges

    @property
    def max_degree(self) -> int:
        """Maximum node degree."""
        return self._max_degree

    @property
    def degrees(self) -> np.ndarray:
        """Read-only vector of node degrees (do not mutate)."""
        return self._degrees

    @property
    def succ_node_array(self) -> np.ndarray:
        """Dense ``(n, max_degree)`` successor-node table (-1 padded)."""
        return self._succ_node

    @property
    def succ_port_array(self) -> np.ndarray:
        """Dense ``(n, max_degree)`` entry-port table (-1 padded)."""
        return self._succ_port

    @property
    def csr_indptr(self) -> np.ndarray:
        """CSR row pointer: neighbors of ``v`` live at
        ``csr_indices[csr_indptr[v]:csr_indptr[v + 1]]`` (read-only)."""
        return self._csr()[0]

    @property
    def csr_indices(self) -> np.ndarray:
        """CSR neighbor array, per-node slices in port order (read-only)."""
        return self._csr()[1]

    def _csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``O(n + m)`` CSR adjacency.

        Built lazily from the dense successor table: dropping the
        ``-1`` padding row-major keeps each node's neighbors in port
        order, so CSR traversals and port-indexed gathers agree on
        neighbor enumeration order.
        """
        if self._csr_cache is None:
            indptr = np.zeros(self._n + 1, dtype=np.int64)
            np.cumsum(self._degrees, out=indptr[1:])
            indices = self._succ_node[self._succ_node >= 0]
            indptr.setflags(write=False)
            indices.setflags(write=False)
            self._csr_cache = (indptr, indices)
        return self._csr_cache

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return int(self._degrees[v])

    def succ(self, v: int, p: int) -> int:
        """Neighbor ``succ(v, p)`` reached from ``v`` via port ``p``.

        This is exactly the paper's ``succ`` (Section 2).
        """
        if not (0 <= p < self._degrees[v]):
            raise ValueError(f"port {p} invalid at node {v} of degree {self.degree(v)}")
        return int(self._succ_node[v, p])

    def entry_port(self, v: int, p: int) -> int:
        """Port at ``succ(v, p)`` by which an agent leaving ``v`` enters it."""
        if not (0 <= p < self._degrees[v]):
            raise ValueError(f"port {p} invalid at node {v} of degree {self.degree(v)}")
        return int(self._succ_port[v, p])

    # ------------------------------------------------------------------
    # Path machinery (Section 2 of the paper)
    # ------------------------------------------------------------------
    def apply_port_sequence(self, x: int, alpha: Sequence[int]) -> int:
        """Return ``alpha(x)``: follow outgoing ports ``alpha`` from ``x``.

        Raises if some port in the sequence is invalid at the node
        reached at that point (the paper only applies sequences where
        this cannot happen, e.g. between symmetric nodes).
        """
        node = x
        for p in alpha:
            node = self.succ(node, p)
        return node

    def walk(self, x: int, alpha: Sequence[int]) -> list[int]:
        """Nodes visited following ``alpha`` from ``x`` (length ``len(alpha)+1``)."""
        nodes = [x]
        for p in alpha:
            nodes.append(self.succ(nodes[-1], p))
        return nodes

    def reverse_ports(self, x: int, alpha: Sequence[int]) -> tuple[int, ...]:
        """Outgoing ports of the *reverse path* of ``alpha`` started at ``x``.

        If following ``alpha`` from ``x`` traverses nodes
        ``x = u_0, ..., u_k`` then the result, applied at ``u_k``, walks
        back ``u_k, ..., u_0`` (the paper's ``reverse path`` of
        Section 2).
        """
        node = x
        back: list[int] = []
        for p in alpha:
            back.append(self.entry_port(node, p))
            node = self.succ(node, p)
        back.reverse()
        return tuple(back)

    # ------------------------------------------------------------------
    # Metrics and export
    # ------------------------------------------------------------------
    def distances_from(self, source: int) -> np.ndarray:
        """BFS distances from ``source`` (vector of length ``n``).

        Runs on the cached CSR adjacency: each level expands the whole
        frontier with two gathers, so the cost is ``O(n + m)`` array
        work with no per-node Python.  Values are bit-identical to
        :meth:`distances_from_reference` (BFS levels do not depend on
        expansion order).
        """
        n = self._n
        given = int(source)
        source = given + n if given < 0 else given
        if not 0 <= source < n:
            raise IndexError(f"source {given} out of range for n={n}")
        indptr, indices = self._csr()
        dist = np.full(n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            starts = indptr[frontier]
            reached = indices[repeat_ranges(starts, indptr[frontier + 1] - starts)]
            reached = reached[dist[reached] == -1]
            if reached.size == 0:
                break
            frontier = np.unique(reached)
            dist[frontier] = level
        return dist

    def distances_from_reference(self, source: int) -> np.ndarray:
        """Retained scalar BFS — the differential baseline for
        :meth:`distances_from` and the blocked symmetry-kernel BFS."""
        dist = np.full(self._n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = [source]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for p in range(int(self._degrees[u])):
                    w = int(self._succ_node[u, p])
                    if dist[w] == -1:
                        dist[w] = dist[u] + 1
                        nxt.append(w)
            frontier = nxt
        return dist

    def distance(self, u: int, v: int) -> int:
        """Shortest-path distance between ``u`` and ``v``."""
        return int(self.distances_from(u)[v])

    def neighbors(self, v: int) -> list[int]:
        """Neighbors of ``v`` in port order."""
        return [int(self._succ_node[v, p]) for p in range(self.degree(v))]

    def to_networkx(self):
        """Export as a :class:`networkx.Graph` with ``port`` edge attrs.

        Edge attribute ``ports`` is a dict ``{u: p_u, v: p_v}``.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        for u, pu, v, pv in self._edges:
            g.add_edge(u, v, ports={u: pu, v: pv})
        return g

    def is_regular(self) -> bool:
        """True when every node has the same degree."""
        return bool((self._degrees == self._degrees[0]).all())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PortLabeledGraph(n={self._n}, m={len(self._edges)})"

    def _canonical_edges(self) -> tuple[Edge, ...]:
        """Edges with the lower-id endpoint first, sorted — the
        orientation-insensitive identity used by ``__eq__``/``__hash__``.

        Memoized: instances are immutable, and the per-graph symmetry
        kernel cache (:func:`repro.symmetry.context.symmetry_context`)
        hashes graphs on every wrapper call.
        """
        if self._canonical_cache is None:
            self._canonical_cache = tuple(
                sorted(
                    (u, pu, v, pv) if u <= v else (v, pv, u, pu)
                    for u, pu, v, pv in self._edges
                )
            )
        return self._canonical_cache

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortLabeledGraph):
            return NotImplemented
        return self._n == other._n and self._canonical_edges() == other._canonical_edges()

    def __hash__(self) -> int:
        if self._hash_cache is None:
            self._hash_cache = hash((self._n, self._canonical_edges()))
        return self._hash_cache

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate_simple(self) -> None:
        seen: set[tuple[int, int]] = set()
        for u, _pu, v, _pv in self._edges:
            key = (min(u, v), max(u, v))
            if key in seen:
                raise ValueError(f"parallel edge {key}: the model uses simple graphs")
            seen.add(key)

    def _validate_connected(self) -> None:
        if self._n == 1:
            return
        if int((self.distances_from(0) == -1).sum()) > 0:
            raise ValueError("graph is not connected")
