"""Abelian Cayley graphs with translation-invariant port labelings.

The paper's rigid examples (oriented rings, oriented tori, hypercubes)
are all members of one family: Cayley graphs of abelian groups
``Z_{m_1} x ... x Z_{m_k}`` whose ports are labeled by the generator
used — the same label at every node.  Translations are then
port-preserving automorphisms, so **every pair of nodes is symmetric**
and, because applying a common port sequence translates both agents by
the same group element, the pair's difference never changes:
``Shrink(u, v) = dist(u, v)`` on the whole family (property-tested in
the suite).  This generator turns that observation into a workload
factory for symmetric-rendezvous experiments.
"""

from __future__ import annotations

from itertools import product

from repro.graphs.port_graph import Edge, PortLabeledGraph

__all__ = ["cayley_abelian", "cayley_node", "cayley_coords"]


def cayley_node(coords: tuple[int, ...], moduli: tuple[int, ...]) -> int:
    """Node id of a coordinate tuple (mixed-radix, first coordinate
    most significant)."""
    idx = 0
    for c, m in zip(coords, moduli):
        idx = idx * m + (c % m)
    return idx


def cayley_coords(node: int, moduli: tuple[int, ...]) -> tuple[int, ...]:
    """Inverse of :func:`cayley_node`."""
    out = []
    for m in reversed(moduli):
        out.append(node % m)
        node //= m
    return tuple(reversed(out))


def cayley_abelian(
    moduli: tuple[int, ...] | list[int],
    generators: list[tuple[int, ...]],
) -> PortLabeledGraph:
    """Cayley graph of ``Z_{m_1} x ... x Z_{m_k}`` over ``generators``.

    The connection set is the symmetric closure of ``generators``.
    Port labeling (translation-invariant by construction):

    * a generator ``g`` with ``g != -g`` contributes two ports at every
      node — ``2i`` (step ``+g``) and ``2i + 1`` (step ``-g``) — paired
      across each edge;
    * an *involution* (``g == -g``, e.g. a hypercube dimension or the
      antipode of an even ring) contributes the single self-paired
      port ``2i``.

    Ports are compacted to ``0..d-1`` preserving that order.  Raises if
    the generators do not connect the group, if a generator is zero, or
    if duplicates/inverse-duplicates would create parallel edges.
    """
    moduli = tuple(int(m) for m in moduli)
    if not moduli or any(m < 2 for m in moduli):
        raise ValueError("need at least one modulus, all >= 2")
    gens = [tuple(int(x) % m for x, m in zip(g, moduli)) for g in generators]
    if any(len(g) != len(moduli) for g in generators):
        raise ValueError("generator arity must match the number of moduli")
    if any(all(x == 0 for x in g) for g in gens):
        raise ValueError("zero generator would create self-loops")

    def neg(g: tuple[int, ...]) -> tuple[int, ...]:
        return tuple((-x) % m for x, m in zip(g, moduli))

    seen: set[tuple[int, ...]] = set()
    for g in gens:
        if g in seen or neg(g) in seen:
            raise ValueError(f"generator {g} duplicates another (or its inverse)")
        seen.add(g)

    # Assign slot ids, then compact.
    slots: list[tuple[tuple[int, ...], int]] = []  # (step, raw slot)
    for i, g in enumerate(gens):
        slots.append((g, 2 * i))
        if g != neg(g):
            slots.append((neg(g), 2 * i + 1))
    slots.sort(key=lambda sg: sg[1])
    port_of_step = {step: port for port, (step, _raw) in enumerate(slots)}

    n = 1
    for m in moduli:
        n *= m

    def add(coords: tuple[int, ...], step: tuple[int, ...]) -> tuple[int, ...]:
        return tuple((c + s) % m for c, s, m in zip(coords, step, moduli))

    edges: list[Edge] = []
    emitted: set[tuple[int, int]] = set()
    for coords in product(*(range(m) for m in moduli)):
        u = cayley_node(coords, moduli)
        for step, port in port_of_step.items():
            w_coords = add(coords, step)
            w = cayley_node(w_coords, moduli)
            key = (min(u, w), max(u, w))
            if key in emitted:
                continue
            emitted.add(key)
            if u == w:
                raise ValueError(f"generator {step} is trivial on the group")
            back = port_of_step[tuple((-s) % m for s, m in zip(step, moduli))]
            edges.append((u, port, w, back))
    graph = PortLabeledGraph(n, edges)
    return graph
