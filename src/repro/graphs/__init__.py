"""Port-labeled anonymous graph substrate (model of Section 1)."""

from repro.graphs.cayley import cayley_abelian, cayley_coords, cayley_node
from repro.graphs.builders import (
    from_adjacency,
    from_edge_pairs,
    from_networkx,
    relabel_ports,
)
from repro.graphs.families import (
    complete_graph,
    hypercube,
    labeled_ring,
    mirror_node,
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    symmetric_tree,
    torus_node,
    two_node_graph,
)
from repro.graphs.port_graph import Edge, PortLabeledGraph
from repro.graphs.random_graphs import (
    random_connected_graph,
    random_regular_graph,
    random_tree,
)

__all__ = [
    "PortLabeledGraph",
    "Edge",
    "from_adjacency",
    "from_networkx",
    "from_edge_pairs",
    "relabel_ports",
    "two_node_graph",
    "path_graph",
    "oriented_ring",
    "labeled_ring",
    "oriented_torus",
    "torus_node",
    "symmetric_tree",
    "mirror_node",
    "hypercube",
    "complete_graph",
    "star_graph",
    "random_connected_graph",
    "random_regular_graph",
    "random_tree",
    "cayley_abelian",
    "cayley_node",
    "cayley_coords",
]
