"""Constructors that turn ordinary graphs into port-labeled graphs.

The paper's model needs every edge endpoint to carry a local port
number.  For structured families (:mod:`repro.graphs.families`) the
labeling is part of the construction; for arbitrary graphs these
helpers assign ports deterministically (in neighbor order) or from an
explicit specification.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.graphs.port_graph import Edge, PortLabeledGraph

__all__ = [
    "from_adjacency",
    "from_networkx",
    "from_edge_pairs",
    "relabel_ports",
]


def from_adjacency(adjacency: Mapping[int, Iterable[int]] | list[list[int]]) -> PortLabeledGraph:
    """Build a port-labeled graph from an adjacency structure.

    Ports at each node are assigned ``0, 1, 2, ...`` following the
    order in which neighbors are listed.  Both directions of an edge
    must be present and consistent.
    """
    if isinstance(adjacency, list):
        adjacency = {i: nbrs for i, nbrs in enumerate(adjacency)}
    n = len(adjacency)
    port_of: dict[tuple[int, int], int] = {}
    for u in range(n):
        nbrs = list(adjacency[u])
        if len(set(nbrs)) != len(nbrs):
            raise ValueError(f"duplicate neighbor in adjacency of node {u}")
        for p, v in enumerate(nbrs):
            port_of[(u, v)] = p
    edges: list[Edge] = []
    for (u, v), pu in port_of.items():
        if u < v:
            if (v, u) not in port_of:
                raise ValueError(f"edge ({u},{v}) missing its reverse direction")
            edges.append((u, pu, v, port_of[(v, u)]))
    return PortLabeledGraph(n, edges)


def from_networkx(graph) -> PortLabeledGraph:
    """Build a port-labeled graph from a :class:`networkx.Graph`.

    Nodes are relabeled to ``0..n-1`` in sorted order.  If an edge has
    a ``ports`` attribute (``{u: p_u, v: p_v}``) it is honored;
    otherwise ports are assigned in sorted-neighbor order.
    """
    nodes = sorted(graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    explicit: dict[tuple[int, int], int] = {}
    implicit_needed = False
    for u, v, data in graph.edges(data=True):
        ports = data.get("ports")
        if ports is None:
            implicit_needed = True
        else:
            explicit[(index[u], index[v])] = ports[u]
            explicit[(index[v], index[u])] = ports[v]
    if implicit_needed and explicit:
        raise ValueError("either all edges or no edges may carry 'ports' attributes")
    if explicit:
        edges = [
            (u, explicit[(u, v)], v, explicit[(v, u)])
            for (u, v) in explicit
            if u < v
        ]
        return PortLabeledGraph(len(nodes), edges)
    adjacency = {
        index[v]: [index[w] for w in sorted(graph.neighbors(v))] for v in nodes
    }
    return from_adjacency(adjacency)


def from_edge_pairs(n: int, pairs: Iterable[tuple[int, int]]) -> PortLabeledGraph:
    """Build from plain edge pairs, assigning ports in edge-list order.

    Each node's ports number its incident edges in the order the edges
    appear in ``pairs``.
    """
    next_port = [0] * n
    edges: list[Edge] = []
    for u, v in pairs:
        edges.append((u, next_port[u], v, next_port[v]))
        next_port[u] += 1
        next_port[v] += 1
    return PortLabeledGraph(n, edges)


def relabel_ports(
    graph: PortLabeledGraph, permutations: Mapping[int, Mapping[int, int]]
) -> PortLabeledGraph:
    """Return a copy with ports at selected nodes permuted.

    ``permutations[v]`` maps old port -> new port at node ``v``.  Used
    by tests and by the random-graph generator to produce distinct
    labelings of the same underlying graph.
    """
    edges: list[Edge] = []
    for u, pu, v, pv in graph.edges:
        new_pu = permutations.get(u, {}).get(pu, pu)
        new_pv = permutations.get(v, {}).get(pv, pv)
        edges.append((u, new_pu, v, new_pv))
    return PortLabeledGraph(graph.n, edges)
