"""CSR (compressed sparse row) helpers shared by the graph hot paths.

The dense ``(n, max_degree)`` successor tables of
:class:`~repro.graphs.port_graph.PortLabeledGraph` are the right shape
for port-indexed gathers (one column per port), but frontier-style
traversals — BFS from one or many sources, neighbor expansion of a
changed-row worklist — want the classic ``indptr``/``indices`` CSR
pair: neighbors of ``v`` are ``indices[indptr[v]:indptr[v + 1]]``, in
port order, with no ``-1`` padding to mask out.  Memory is ``O(n + m)``
instead of ``O(n * max_degree)``, and a whole frontier expands with two
gathers (:func:`repeat_ranges` + one ``indices`` take) instead of a
dense matrix product.

These helpers are dependency-free so both :mod:`repro.graphs` and the
symmetry kernel (:mod:`repro.symmetry.context`) can share them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["repeat_ranges", "expand_frontier"]


def repeat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start + count)`` for each pair.

    The standard vectorized "gather the slice of every frontier node"
    index builder: with CSR ``starts = indptr[nodes]`` and ``counts``
    the node degrees, ``indices[repeat_ranges(starts, counts)]`` is the
    concatenation of every node's neighbor list, in node-then-port
    order.  int64 in, int64 out; empty inputs yield an empty array.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Exclusive prefix sum of counts = where each range begins in the
    # flat output; subtracting it from a global arange recovers the
    # per-range offsets 0..count-1.
    bounds = np.cumsum(counts)
    origins = np.repeat(bounds - counts, counts)
    return np.repeat(np.asarray(starts, dtype=np.int64), counts) + (
        np.arange(total, dtype=np.int64) - origins
    )


def expand_frontier(
    indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Neighbors of every frontier node, with their source positions.

    Returns ``(origins, targets)`` where ``targets`` is the
    concatenation of each node's CSR neighbor list and ``origins[i]``
    is the position *within* ``nodes`` that produced ``targets[i]`` —
    the hook multi-source BFS uses to tag expansions with their BFS
    slot.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    origins = np.repeat(np.arange(len(nodes), dtype=np.int64), counts)
    targets = indices[repeat_ranges(starts, counts)]
    return origins, targets
