"""Structured port-labeled graph families used throughout the paper.

These are the workloads of the worked examples in Section 3 and the
test/benchmark sweeps:

* :func:`two_node_graph` — the delay-3 example of the introduction.
* :func:`oriented_ring` — vertex-transitive ring (ports: 0 =
  clockwise, 1 = counterclockwise); every pair of nodes is symmetric
  and ``Shrink`` equals the ring distance.
* :func:`oriented_torus` — the paper's example where
  ``Shrink(u, v) = dist(u, v)`` for every pair.
* :func:`symmetric_tree` — a central edge with port-preserving
  isomorphic trees on both ends; the paper's example where ``Shrink``
  is always 1 even at large initial distance.
* :func:`hypercube` — dimension-labeled ports, vertex-transitive.
* :func:`complete_graph` — circulant port labeling, vertex-transitive.
* :func:`path_graph`, :func:`star_graph`, :func:`labeled_ring` —
  families with *non-symmetric* positions for AsymmRV workloads.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.graphs.port_graph import Edge, PortLabeledGraph

__all__ = [
    "two_node_graph",
    "path_graph",
    "oriented_ring",
    "labeled_ring",
    "oriented_torus",
    "torus_node",
    "symmetric_tree",
    "mirror_node",
    "hypercube",
    "complete_graph",
    "star_graph",
]


def two_node_graph() -> PortLabeledGraph:
    """The 2-node graph of the introduction's delay example."""
    return PortLabeledGraph(2, [(0, 0, 1, 0)])


def path_graph(n: int) -> PortLabeledGraph:
    """Path ``0 - 1 - ... - n-1``.

    Interior node ``i`` has port 0 toward ``i-1`` and port 1 toward
    ``i+1``; endpoints have the single port 0.  For ``n >= 3`` the two
    endpoints are *non-symmetric* (their views record different entry
    ports at the first interior node), making paths a convenient
    AsymmRV workload.
    """
    if n < 2:
        raise ValueError("path needs at least 2 nodes")
    edges: list[Edge] = []
    for i in range(n - 1):
        pu = 0 if i == 0 else 1
        pv = 0
        edges.append((i, pu, i + 1, pv))
    return PortLabeledGraph(n, edges)


def oriented_ring(n: int) -> PortLabeledGraph:
    """Ring on ``n >= 3`` nodes; port 0 = clockwise, port 1 = counter.

    Vertex-transitive with port-preserving rotations, so *all* pairs of
    nodes are symmetric and ``Shrink(u, v)`` equals the ring distance.
    """
    if n < 3:
        raise ValueError("ring needs at least 3 nodes")
    edges: list[Edge] = [(i, 0, (i + 1) % n, 1) for i in range(n)]
    return PortLabeledGraph(n, edges)


def labeled_ring(port_pattern: Sequence[tuple[int, int]]) -> PortLabeledGraph:
    """Ring with an explicit per-node port pattern.

    ``port_pattern[i] = (p_cw, p_ccw)`` gives node ``i``'s port toward
    its clockwise / counterclockwise neighbor.  Non-uniform patterns
    yield rings with non-symmetric nodes.
    """
    n = len(port_pattern)
    if n < 3:
        raise ValueError("ring needs at least 3 nodes")
    edges: list[Edge] = []
    for i in range(n):
        j = (i + 1) % n
        edges.append((i, port_pattern[i][0], j, port_pattern[j][1]))
    return PortLabeledGraph(n, edges)


def torus_node(row: int, col: int, cols: int) -> int:
    """Node id of cell ``(row, col)`` in an :func:`oriented_torus`."""
    return row * cols + col


def oriented_torus(rows: int, cols: int) -> PortLabeledGraph:
    """Oriented ``rows x cols`` torus (both dimensions >= 3).

    Ports are globally consistent compass directions:
    0 = North, 1 = East, 2 = South, 3 = West, with N-S and E-W paired
    across each edge.  All pairs of nodes are symmetric (translations
    are port-preserving automorphisms) and, as the paper notes,
    ``Shrink(u, v) = dist(u, v)``: applying one port sequence to both
    agents translates them rigidly, so their offset never changes.
    """
    if rows < 3 or cols < 3:
        raise ValueError("torus needs both dimensions >= 3 to stay simple")
    north, east, south, west = 0, 1, 2, 3
    edges: list[Edge] = []
    for r in range(rows):
        for c in range(cols):
            v = torus_node(r, c, cols)
            up = torus_node((r - 1) % rows, c, cols)
            right = torus_node(r, (c + 1) % cols, cols)
            edges.append((v, north, up, south))
            edges.append((v, east, right, west))
    return PortLabeledGraph(rows * cols, edges)


def _subtree_size(arity: int, depth: int) -> int:
    size = 0
    width = 1
    for _ in range(depth + 1):
        size += width
        width *= arity
    return size


def symmetric_tree(arity: int, depth: int) -> PortLabeledGraph:
    """Two port-isomorphic complete ``arity``-ary trees joined at the roots.

    This is the paper's Section 3 example of a *symmetric tree*: a
    central edge whose two endpoints carry port-preserving isomorphic
    trees.  Mirror nodes (see :func:`mirror_node`) are symmetric, and
    ``Shrink`` of any mirror pair is 1 (walk both agents to their
    respective roots; the roots are adjacent via the central edge).

    Layout: nodes ``0 .. s-1`` form the left tree (BFS order, root 0),
    nodes ``s .. 2s-1`` the right tree (root ``s``), where
    ``s = _subtree_size(arity, depth)``.  At each root, port 0 is the
    central edge and ports ``1..arity`` go to children; at internal
    nodes port 0 leads to the parent and ports ``1..arity`` to
    children; leaves have the single port 0 to the parent.
    """
    if arity < 1 or depth < 1:
        raise ValueError("need arity >= 1 and depth >= 1")
    s = _subtree_size(arity, depth)
    edges: list[Edge] = []

    def build(offset: int) -> None:
        # BFS order: children of node with BFS index i are arity*i+1 .. arity*i+arity.
        for i in range(s):
            for c in range(arity):
                child = arity * i + c + 1
                if child >= s:
                    break
                edges.append((offset + i, c + 1, offset + child, 0))

    build(0)
    build(s)
    edges.append((0, 0, s, 0))  # the central edge, port 0 at both roots
    return PortLabeledGraph(2 * s, edges)


def mirror_node(v: int, arity: int, depth: int) -> int:
    """The mirror image of node ``v`` across the central edge of
    :func:`symmetric_tree(arity, depth)`."""
    s = _subtree_size(arity, depth)
    return v + s if v < s else v - s


def hypercube(dim: int) -> PortLabeledGraph:
    """The ``dim``-dimensional hypercube; port ``i`` flips bit ``i``.

    Vertex-transitive with port-preserving automorphisms (XOR
    translations), so all pairs are symmetric; ``Shrink(u, v)`` equals
    the Hamming distance (XOR offset is invariant under translations).
    """
    if dim < 1:
        raise ValueError("hypercube needs dim >= 1")
    n = 1 << dim
    edges: list[Edge] = []
    for v in range(n):
        for i in range(dim):
            w = v ^ (1 << i)
            if v < w:
                edges.append((v, i, w, i))
    return PortLabeledGraph(n, edges)


def complete_graph(n: int) -> PortLabeledGraph:
    """Complete graph with the circulant port labeling.

    Node ``i``'s port ``p`` leads to node ``(i + p + 1) mod n``; the
    same edge has port ``n - 2 - p`` at the other end.  Rotations are
    port-preserving automorphisms, so all pairs are symmetric with
    ``Shrink = 1``.
    """
    if n < 2:
        raise ValueError("complete graph needs n >= 2")
    edges: list[Edge] = []
    for i in range(n):
        for p in range(n - 1):
            j = (i + p + 1) % n
            if i < j:
                q = n - 2 - p
                edges.append((i, p, j, q))
    return PortLabeledGraph(n, edges)


def star_graph(leaves: int) -> PortLabeledGraph:
    """Star: center 0 joined to ``leaves`` leaf nodes ``1..leaves``.

    Leaf ``i`` enters the center by port ``i-1``, so distinct leaves
    have *different* views — a compact non-symmetric workload.
    """
    if leaves < 1:
        raise ValueError("star needs at least 1 leaf")
    edges: list[Edge] = [(0, i, i + 1, 0) for i in range(leaves)]
    return PortLabeledGraph(leaves + 1, edges)
