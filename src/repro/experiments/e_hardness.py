"""EXP-T41 — Theorem 4.1: exponential lower bound on Q̂_h.

The theorem: any algorithm achieving rendezvous for all STICs
``[(r, v), D]``, ``v in Z``, in ``Q̂_h`` (``D = 2k``, ``h = 2D``)
needs time at least ``2^(k-1)``.  Reproduction:

* measure the worst-case meeting time of the natural dedicated
  algorithm (the ``γγ``-excursion word) as ``k`` grows — it is
  ``THETA(k 2^k)``, sandwiching the theorem's ``2^(k-1)`` from above
  with the same exponential base;
* verify the proof's dichotomy (an agent passes the midpoint ``M(v)``
  before meeting) on every successful run at small ``k``;
* verify the counting prerequisites (``|Z| = 2^k`` distinct nodes at
  distance ``D``; midpoints distinct) on concrete scaffolds.

Sharded per size rung ``k`` (the worst-case curve is exponential in
``k``, so the largest rung dominates) plus one proof-mechanism shard.
"""

from __future__ import annotations

from repro.experiments.records import ExperimentRecord
from repro.experiments.scenarios import RunConfig, ScenarioSpec
from repro.hardness.lower_bound import (
    dedicated_word,
    midpoint_dichotomy,
    simulate_word,
    theoretical_bound,
    worst_case_meeting_time,
)
from repro.hardness.qhat import build_qhat
from repro.hardness.zset import z_set

__all__ = ["run", "SCENARIO", "make_shards", "run_shard", "merge"]

SCENARIO = ScenarioSpec(
    exp_id="EXP-T41",
    title="Exponential lower bound on Q-hat (Theorem 4.1)",
    module="repro.experiments.e_hardness",
    shard_axis="size rung k (+ proof-mechanism shard)",
    tiers={
        "smoke": {"k_values": [1, 2, 3, 4], "dichotomy_ks": [1]},
        "fast": {"k_values": [1, 2, 3, 4, 5, 6], "dichotomy_ks": [1, 2]},
        "full": {
            "k_values": [1, 2, 3, 4, 5, 6, 7, 8, 9],
            "dichotomy_ks": [1, 2],
        },
        "stress": {
            "k_values": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
            "dichotomy_ks": [1, 2, 3],
        },
    },
)


def make_shards(config: RunConfig) -> list[dict]:
    shards: list[dict] = [{"kind": "rung", "k": k} for k in config.params["k_values"]]
    shards.append({"kind": "dichotomy", "ks": config.params["dichotomy_ks"]})
    return shards


def run_shard(config: RunConfig, shard: dict) -> dict:
    if shard["kind"] == "rung":
        k = shard["k"]
        measured = worst_case_meeting_time(k)
        bound = theoretical_bound(k)
        return {
            "ok": measured >= bound,
            "row": {
                "k": k,
                "D": 2 * k,
                "size of Z": 2**k,
                "bound 2^(k-1)": bound,
                "measured worst": measured,
                "ratio vs k*2^k": measured / (k * 2**k),
            },
        }

    # Proof-mechanism check on concrete graphs (small k).
    dichotomy_ok = True
    for k in shard["ks"]:
        graph, tree = build_qhat(4 * k)
        word = dedicated_word(k)
        for member in z_set(tree, k):
            outcome = simulate_word(
                graph, word, tree.root, member.node, 2 * k, 4 * len(word)
            )
            if not outcome.met:
                dichotomy_ok = False
                continue
            a_mid, b_mid = midpoint_dichotomy(tree, member, outcome)
            dichotomy_ok = dichotomy_ok and (a_mid or b_mid)
    return {"ok": dichotomy_ok, "row": None}


def merge(config: RunConfig, shard_results: list[dict]) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id=SCENARIO.exp_id,
        title=SCENARIO.title,
        paper_claim=(
            "Any algorithm meeting for all [(r, v), D], v in Z, in "
            "Q-hat_{2D} needs time >= 2^(k-1) where D = 2k; hence "
            "rendezvous time must be exponential in the initial distance "
            "(and in Shrink)."
        ),
        columns=["k", "D", "size of Z", "bound 2^(k-1)", "measured worst", "ratio vs k*2^k"],
    )
    for result in shard_results:
        if result["row"] is not None:
            record.add_row(**result["row"])
    record.passed = all(result["ok"] for result in shard_results)
    k_max = max(config.params["k_values"])
    record.measured_summary = (
        f"worst-case meeting time grows as Theta(k 2^k) for k=1..{k_max} "
        "(always >= the 2^(k-1) bound; the measured/(k 2^k) ratio column is flat), "
        "and the midpoint dichotomy of the proof holds on every concrete run"
    )
    record.notes = (
        "measured curve uses the natural dedicated algorithm; Theorem 4.1 "
        "says no algorithm can be sub-exponential, so the shapes match"
    )
    return record


def run(fast: bool = True) -> ExperimentRecord:
    """Legacy serial entry point (``fast`` maps onto the tier ladder)."""
    config = SCENARIO.config("fast" if fast else "full")
    return merge(config, [run_shard(config, s) for s in make_shards(config)])
