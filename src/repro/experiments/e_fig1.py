"""FIG1 — reproduce Figure 1: the tree ``Q_2`` and the graph ``Q̂_2``.

The figure is a construction, so "reproducing" it means regenerating
the object and checking every property the caption and surrounding
text assert: leaf counts per type, 4-regularity, N-S/E-W port
consistency of every edge, and — the payoff sentence — "the view of
each node of Q̂_h is identical, and hence all pairs of nodes are
symmetric".

Sharded per size rung ``h``: each rung regenerates and checks one
construction independently.
"""

from __future__ import annotations

from repro.experiments.records import ExperimentRecord
from repro.experiments.scenarios import RunConfig, ScenarioSpec
from repro.hardness.qhat import build_qhat
from repro.hardness.render import render_fig1
from repro.hardness.qtree import E, N, PORT_NAMES, S, W, opposite
from repro.symmetry.views import view_classes

__all__ = ["run", "SCENARIO", "make_shards", "run_shard", "merge"]

SCENARIO = ScenarioSpec(
    exp_id="FIG1",
    title="The tree Q_h and the graph Q-hat_h (Figure 1)",
    module="repro.experiments.e_fig1",
    shard_axis="size rung h",
    tiers={
        "smoke": {"h_values": [2]},
        "fast": {"h_values": [2, 3]},
        "full": {"h_values": [2, 3, 4, 5]},
        "stress": {"h_values": [2, 3, 4, 5, 6, 7]},
    },
)

_NS = {N, S}
_EW = {E, W}


def _edge_port_families_ok(graph) -> bool:
    """Every edge must carry N-S or E-W ports at its extremities."""
    for _u, pu, _v, pv in graph.edges:
        if {pu, pv} != _NS and {pu, pv} != _EW:
            return False
        if pv != opposite(pu):
            return False
    return True


def make_shards(config: RunConfig) -> list[dict]:
    return [{"h": h} for h in config.params["h_values"]]


def run_shard(config: RunConfig, shard: dict) -> dict:
    """Regenerate Q-hat_h for one rung and check every asserted property."""
    h = shard["h"]
    graph, tree = build_qhat(h)
    leaves_per_type = {
        PORT_NAMES[t]: len(v) for t, v in tree.leaves_by_type.items()
    }
    per_type = set(leaves_per_type.values())
    classes = len(set(view_classes(graph)))
    regular = graph.is_regular() and graph.max_degree == 4
    ports_ok = _edge_port_families_ok(graph)
    ok = (
        per_type == {3 ** (h - 1)}
        and regular
        and ports_ok
        and classes == 1
    )
    return {
        "ok": ok,
        "row": {
            "h": h,
            "nodes": graph.n,
            "leaves/type": 3 ** (h - 1),
            "regular": regular,
            "ports N-S/E-W": ports_ok,
            "view classes": classes,
        },
    }


def merge(config: RunConfig, shard_results: list[dict]) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id=SCENARIO.exp_id,
        title=SCENARIO.title,
        paper_claim=(
            "Q_h has 4*3^(h-1) leaves, 3^(h-1) per type; Q-hat_h is "
            "4-regular, every edge has N-S or E-W ports, and all of its "
            "nodes have identical views (all pairs symmetric)."
        ),
        columns=[
            "h",
            "nodes",
            "leaves/type",
            "regular",
            "ports N-S/E-W",
            "view classes",
        ],
    )
    for result in shard_results:
        record.add_row(**result["row"])
    record.passed = all(result["ok"] for result in shard_results)
    record.art = render_fig1(2)
    h_values = config.params["h_values"]
    record.measured_summary = (
        f"construction regenerated for h={h_values[0]}..{h_values[-1]}; "
        "every asserted structural property holds, and view refinement "
        "confirms a single symmetry class"
    )
    return record


def run(fast: bool = True) -> ExperimentRecord:
    """Legacy serial entry point (``fast`` maps onto the tier ladder)."""
    config = SCENARIO.config("fast" if fast else "full")
    return merge(config, [run_shard(config, s) for s in make_shards(config)])
