"""Scenario specs: declarative, seed-threaded experiment parameter sets.

This module replaces the old ``run(fast: bool)`` driver protocol.  Each
driver in :mod:`repro.experiments` now declares a :class:`ScenarioSpec`
naming its parameter sets per **scale tier** (``smoke`` < ``fast`` <
``full`` < ``stress``) and its shard axis, and implements three pure
functions over a :class:`RunConfig`:

``make_shards(config) -> list[dict]``
    Split the experiment into independent work units (per graph, per
    size rung, per seed block — whatever the spec's ``shard_axis``
    declares).  Shard payloads are plain JSON values: they are hashed
    into cache keys and shipped to worker processes.

``run_shard(config, shard) -> dict``
    Execute one shard.  Must be a pure function of ``(config, shard)``
    — all randomness derives from ``config.seed`` — and must return a
    plain-JSON dict (it is persisted verbatim by the result store).

``merge(config, shard_results) -> ExperimentRecord``
    Assemble shard results (in shard order) into the final record.
    Serial and parallel executions feed ``merge`` the same list, so
    records are bit-identical regardless of ``--jobs``.

The orchestration layer lives in
:mod:`repro.experiments.orchestrator`; the on-disk cache in
:mod:`repro.experiments.store`.  See docs/orchestration.md for the
full contract.
"""

from __future__ import annotations

import difflib
import importlib
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "TIERS",
    "RunConfig",
    "ScenarioSpec",
    "SCENARIO_MODULES",
    "get_scenario",
    "all_scenarios",
    "tier_for",
    "build_graph",
    "GraphFamily",
    "GRAPH_FAMILIES",
]

#: Scale tiers, smallest to largest.  ``smoke`` exists for CI
#: round-trips, ``fast``/``full`` map onto the legacy ``fast: bool``
#: protocol, ``stress`` is the open-ended heavy-traffic tier.
TIERS = ("smoke", "fast", "full", "stress")


def tier_for(fast: bool) -> str:
    """Map the legacy ``fast: bool`` knob onto a named tier."""
    return "fast" if fast else "full"


@dataclass(frozen=True)
class RunConfig:
    """One resolved (tier, seed, parameters) execution of a scenario."""

    exp_id: str
    tier: str
    seed: int
    params: dict = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return {
            "exp_id": self.exp_id,
            "tier": self.tier,
            "seed": self.seed,
            "params": self.params,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "RunConfig":
        return cls(
            exp_id=payload["exp_id"],
            tier=payload["tier"],
            seed=payload["seed"],
            params=payload["params"],
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one experiment's parameter space.

    Attributes
    ----------
    exp_id / title:
        Registry id and human-readable name.
    module:
        Dotted path of the driver module implementing
        ``make_shards`` / ``run_shard`` / ``merge``.
    shard_axis:
        Human-readable description of the independence axis the driver
        shards along (shown by ``--list``).
    tiers:
        ``tier name -> params dict``.  Params must be plain JSON (they
        enter cache keys verbatim).
    seed:
        Base seed threaded to every shard; override per run via
        ``config(tier, seed=...)``.
    code_version:
        Cache salt — bump whenever the driver's semantics change so
        stale shard results are invalidated.
    """

    exp_id: str
    title: str
    module: str
    shard_axis: str
    tiers: dict[str, dict]
    seed: int = 0
    code_version: int = 1

    def config(self, tier: str = "fast", *, seed: int | None = None) -> RunConfig:
        if tier not in self.tiers:
            raise KeyError(
                f"{self.exp_id}: unknown tier {tier!r}; known: {sorted(self.tiers)}"
            )
        return RunConfig(
            exp_id=self.exp_id,
            tier=tier,
            seed=self.seed if seed is None else seed,
            params=self.tiers[tier],
        )

    def driver(self):
        """Import and return the driver module."""
        return importlib.import_module(self.module)


#: Experiment id -> driver module path.  The specs themselves live on
#: the driver modules (``module.SCENARIO``) so each driver stays the
#: single source of truth for its parameters; this table only names
#: them, keeping imports lazy and cycle-free.
SCENARIO_MODULES: dict[str, str] = {
    "FIG1": "repro.experiments.e_fig1",
    "TAB-SHRINK": "repro.experiments.e_shrink",
    "EXP-L31": "repro.experiments.e_infeasible",
    "EXP-L32": "repro.experiments.e_symm_rv",
    "EXP-T31/P41": "repro.experiments.e_universal",
    "EXP-T41": "repro.experiments.e_hardness",
    "EXP-BASE/LE": "repro.experiments.e_baselines",
    "EXP-OPEN": "repro.experiments.e_open_problem",
    "EXP-ASYNC/RAND": "repro.experiments.e_async_random",
}


def get_scenario(exp_id: str) -> ScenarioSpec:
    """Resolve one experiment id to its driver's :class:`ScenarioSpec`."""
    if exp_id not in SCENARIO_MODULES:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(SCENARIO_MODULES)}"
        )
    spec = importlib.import_module(SCENARIO_MODULES[exp_id]).SCENARIO
    assert spec.exp_id == exp_id, (spec.exp_id, exp_id)
    return spec


def all_scenarios() -> dict[str, ScenarioSpec]:
    """The full registry, in canonical (report) order."""
    return {exp_id: get_scenario(exp_id) for exp_id in SCENARIO_MODULES}


# --------------------------------------------------------------------
# Declarative graph families: shard payloads reference graphs as plain
# JSON specs so they can cross process boundaries and enter cache keys.
# --------------------------------------------------------------------


@dataclass(frozen=True)
class GraphFamily:
    """One entry of the declarative graph-family vocabulary.

    Attributes
    ----------
    name:
        The ``"family"`` key a JSON spec uses to select this builder.
    params:
        Required kwarg names, in builder-signature order.  Every param
        is mandatory: a spec with missing or unexpected keys is
        rejected up front with an error naming this tuple.
    build:
        Builder taking exactly ``params`` as kwargs (plain-JSON values;
        the builder adapts them — e.g. lists back to tuples).
    seeded:
        True when the builder consumes a ``seed`` kwarg, i.e. the
        family is a *distribution* over graphs.  Randomized campaigns
        use this flag to know where to inject their per-cell seeds.
    """

    name: str
    params: tuple[str, ...]
    build: Callable[..., Any]

    @property
    def seeded(self) -> bool:
        return "seed" in self.params


def _family_table() -> dict[str, GraphFamily]:
    from repro.graphs import cayley, families, random_graphs

    entries = [
        GraphFamily("two_node", (), lambda: families.two_node_graph()),
        GraphFamily("oriented_ring", ("n",), lambda n: families.oriented_ring(n)),
        GraphFamily(
            "oriented_torus",
            ("rows", "cols"),
            lambda rows, cols: families.oriented_torus(rows, cols),
        ),
        GraphFamily("hypercube", ("dim",), lambda dim: families.hypercube(dim)),
        GraphFamily(
            "symmetric_tree",
            ("arity", "depth"),
            lambda arity, depth: families.symmetric_tree(arity, depth),
        ),
        GraphFamily("complete", ("n",), lambda n: families.complete_graph(n)),
        GraphFamily("path", ("n",), lambda n: families.path_graph(n)),
        GraphFamily("star", ("leaves",), lambda leaves: families.star_graph(leaves)),
        GraphFamily(
            "labeled_ring",
            ("ports",),
            lambda ports: families.labeled_ring([tuple(p) for p in ports]),
        ),
        GraphFamily(
            "cayley_abelian",
            ("moduli", "generators"),
            lambda moduli, generators: cayley.cayley_abelian(
                tuple(moduli), [tuple(g) for g in generators]
            ),
        ),
        GraphFamily(
            "circulant",
            ("n", "steps"),
            lambda n, steps: cayley.cayley_abelian(
                (n,), [(int(s),) for s in steps]
            ),
        ),
        GraphFamily(
            "random_tree",
            ("n", "seed"),
            lambda n, seed: random_graphs.random_tree(n, seed=seed),
        ),
        GraphFamily(
            "random_connected",
            ("n", "extra_edges", "seed"),
            lambda n, extra_edges, seed: random_graphs.random_connected_graph(
                n, extra_edges, seed=seed
            ),
        ),
        GraphFamily(
            "random_regular",
            ("n", "degree", "seed"),
            lambda n, degree, seed: random_graphs.random_regular_graph(
                n, degree, seed=seed
            ),
        ),
    ]
    return {entry.name: entry for entry in entries}


#: Family name -> :class:`GraphFamily`; the single declarative registry
#: of graph constructions.  Scenario specs *and* the randomized
#: campaign layer (:mod:`repro.campaigns`) both draw from this table,
#: so a family added here is immediately addressable from both.
GRAPH_FAMILIES: dict[str, GraphFamily] = _family_table()


def _family_catalog() -> str:
    return "; ".join(
        f"{name}({', '.join(fam.params)})" for name, fam in sorted(GRAPH_FAMILIES.items())
    )


def build_graph(spec: dict):
    """Build a port-labeled graph from a declarative JSON spec.

    ``{"family": "oriented_torus", "rows": 3, "cols": 3}`` — the
    ``family`` key picks the builder from :data:`GRAPH_FAMILIES`, the
    rest are its kwargs.  Unknown families raise a ``KeyError`` that
    suggests near-miss names and lists every family with its required
    kwargs; wrong kwargs raise a ``TypeError`` naming the expected set.
    """
    kwargs = dict(spec)
    family = kwargs.pop("family", None)
    if family is None:
        raise KeyError(
            f"graph spec {spec!r} is missing the 'family' key; "
            f"known families: {_family_catalog()}"
        )
    entry = GRAPH_FAMILIES.get(family)
    if entry is None:
        close = difflib.get_close_matches(str(family), GRAPH_FAMILIES, n=3)
        hint = f" (did you mean {' or '.join(map(repr, close))}?)" if close else ""
        raise KeyError(
            f"unknown graph family {family!r}{hint}; "
            f"known families: {_family_catalog()}"
        )
    missing = [p for p in entry.params if p not in kwargs]
    unexpected = sorted(k for k in kwargs if k not in entry.params)
    if missing or unexpected:
        raise TypeError(
            f"graph family {family!r} takes exactly "
            f"({', '.join(entry.params)}); "
            f"missing: {missing or 'none'}, unexpected: {unexpected or 'none'}"
        )
    return entry.build(**kwargs)
