"""TAB-SHRINK — the worked Shrink examples of Section 3.

The paper gives two contrasting families right after Definition 3.1:

* oriented torus: every pair symmetric and ``Shrink(u, v) = dist(u, v)``
  (a common port sequence translates both agents rigidly);
* symmetric tree (central edge + port-isomorphic halves): every mirror
  pair has ``Shrink = 1`` however far apart ("Shrink can really shrink
  the initial distance");

plus the introduction's two-node graph where the delay-3 agents meet.
We regenerate all three as a table, adding oriented rings, hypercubes
and circulant complete graphs as further vertex-transitive checks.

Sharded per graph family instance: each shard builds one graph, runs
its checks through one shared :func:`symmetry_context` kernel, and
returns its slice of the table.
"""

from __future__ import annotations

from repro.experiments.records import ExperimentRecord
from repro.experiments.scenarios import RunConfig, ScenarioSpec
from repro.graphs.families import (
    complete_graph,
    hypercube,
    mirror_node,
    oriented_ring,
    oriented_torus,
    symmetric_tree,
    torus_node,
    two_node_graph,
)
from repro.symmetry.context import symmetry_context

__all__ = ["run", "SCENARIO", "make_shards", "run_shard", "merge"]

SCENARIO = ScenarioSpec(
    exp_id="TAB-SHRINK",
    title="Shrink(u, v) on the paper's example families (Section 3)",
    module="repro.experiments.e_shrink",
    shard_axis="graph family instance",
    # v2: torus check rows dedup in insertion order (was set order);
    # stress-tier 7x7 row order changes, so stale caches must miss.
    code_version=2,
    tiers={
        "smoke": {
            "torus_sizes": [[3, 3]],
            "tree_depths": [1],
            "ring_n": 8,
            "cube_dim": 3,
            "complete_n": 5,
        },
        "fast": {
            "torus_sizes": [[3, 3], [4, 4]],
            "tree_depths": [1, 2],
            "ring_n": 8,
            "cube_dim": 3,
            "complete_n": 5,
        },
        "full": {
            "torus_sizes": [[3, 3], [4, 4], [5, 5], [4, 6]],
            "tree_depths": [1, 2, 3],
            "ring_n": 8,
            "cube_dim": 3,
            "complete_n": 5,
        },
        "stress": {
            "torus_sizes": [[3, 3], [4, 4], [5, 5], [4, 6], [6, 6], [7, 7]],
            "tree_depths": [1, 2, 3, 4, 5],
            "ring_n": 16,
            "cube_dim": 4,
            "complete_n": 7,
        },
    },
)


def make_shards(config: RunConfig) -> list[dict]:
    params = config.params
    shards: list[dict] = [{"kind": "two_node"}]
    shards += [
        {"kind": "torus", "rows": rows, "cols": cols}
        for rows, cols in params["torus_sizes"]
    ]
    shards += [{"kind": "tree", "depth": d} for d in params["tree_depths"]]
    shards += [
        {"kind": "ring", "n": params["ring_n"]},
        {"kind": "cube", "dim": params["cube_dim"]},
        {"kind": "complete", "n": params["complete_n"]},
    ]
    return shards


def _checks_for(shard: dict) -> list[tuple[str, object, int, int, int]]:
    """(family label, graph, u, v, expected Shrink) rows of one shard."""
    kind = shard["kind"]
    if kind == "two_node":
        return [("two-node", two_node_graph(), 0, 1, 1)]
    if kind == "torus":
        rows, cols = shard["rows"], shard["cols"]
        torus = oriented_torus(rows, cols)
        checks = []
        # dict.fromkeys, not a set: dedup must preserve insertion order
        # so the table's row order is identical on every interpreter
        # (REPRO105; set order follows the hash layout).
        coords = dict.fromkeys(
            [(0, 1), (1, 1), (rows - 1, cols - 1), (rows // 2, cols // 2)]
        )
        for r, c in coords:
            v = torus_node(r, c, cols)
            if v == 0:
                continue
            checks.append(
                (f"torus {rows}x{cols}", torus, 0, v, torus.distance(0, v))
            )
        return checks
    if kind == "tree":
        depth = shard["depth"]
        tree = symmetric_tree(arity=2, depth=depth)
        return [
            (
                f"mirror tree depth {depth}",
                tree,
                u,
                mirror_node(u, 2, depth),
                1,
            )
            for u in (0, tree.n // 2 - 1)  # root and the deepest left leaf
        ]
    if kind == "ring":
        n = shard["n"]
        ring = oriented_ring(n)
        return [
            (f"oriented ring n={n}", ring, 0, v, ring.distance(0, v))
            for v in (1, n // 2 - 1, n // 2)
        ]
    if kind == "cube":
        dim = shard["dim"]
        cube = hypercube(dim)
        return [
            (f"hypercube d={dim}", cube, 0, v, cube.distance(0, v))
            for v in (1, 3, 2**dim - 1)
        ]
    if kind == "complete":
        n = shard["n"]
        return [(f"complete K{n}", complete_graph(n), 0, v, 1) for v in (1, 2)]
    raise KeyError(f"unknown shard kind {kind!r}")


def run_shard(config: RunConfig, shard: dict) -> dict:
    ok = True
    rows = []
    for family, graph, u, v, expected in _checks_for(shard):
        # One kernel per graph answers every pair of the family's table
        # (colors + all-pairs Shrink computed once, not per check).
        context = symmetry_context(graph)
        symmetric = context.are_symmetric(u, v)
        dist = int(context.distances[u, v])
        value = context.shrink_value(u, v)
        ok = ok and symmetric and value == expected
        rows.append(
            {
                "family": family,
                "pair": f"({u},{v})",
                "symmetric": symmetric,
                "dist": dist,
                "Shrink": value,
                "expected": expected,
            }
        )
    return {"ok": ok, "rows": rows}


def merge(config: RunConfig, shard_results: list[dict]) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id=SCENARIO.exp_id,
        title=SCENARIO.title,
        paper_claim=(
            "On an oriented torus Shrink(u, v) = dist(u, v) for every "
            "(symmetric) pair; on a symmetric tree Shrink of any mirror "
            "pair is 1 at arbitrary distance."
        ),
        columns=["family", "pair", "symmetric", "dist", "Shrink", "expected"],
    )
    for result in shard_results:
        for row in result["rows"]:
            record.add_row(**row)
    record.passed = all(result["ok"] for result in shard_results)
    record.measured_summary = (
        "Shrink computed by product-graph BFS matches the paper's closed "
        "forms on every family: distance-preserving on tori/rings/"
        "hypercubes, collapsing to 1 on mirror trees and cliques"
    )
    return record


def run(fast: bool = True) -> ExperimentRecord:
    """Legacy serial entry point (``fast`` maps onto the tier ladder)."""
    config = SCENARIO.config("fast" if fast else "full")
    return merge(config, [run_shard(config, s) for s in make_shards(config)])
