"""TAB-SHRINK — the worked Shrink examples of Section 3.

The paper gives two contrasting families right after Definition 3.1:

* oriented torus: every pair symmetric and ``Shrink(u, v) = dist(u, v)``
  (a common port sequence translates both agents rigidly);
* symmetric tree (central edge + port-isomorphic halves): every mirror
  pair has ``Shrink = 1`` however far apart ("Shrink can really shrink
  the initial distance");

plus the introduction's two-node graph where the delay-3 agents meet.
We regenerate all three as a table, adding oriented rings, hypercubes
and circulant complete graphs as further vertex-transitive checks.
"""

from __future__ import annotations

from repro.experiments.records import ExperimentRecord
from repro.graphs.families import (
    complete_graph,
    hypercube,
    mirror_node,
    oriented_ring,
    oriented_torus,
    symmetric_tree,
    torus_node,
    two_node_graph,
)
from repro.symmetry.context import symmetry_context

__all__ = ["run"]


def run(fast: bool = True) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id="TAB-SHRINK",
        title="Shrink(u, v) on the paper's example families (Section 3)",
        paper_claim=(
            "On an oriented torus Shrink(u, v) = dist(u, v) for every "
            "(symmetric) pair; on a symmetric tree Shrink of any mirror "
            "pair is 1 at arbitrary distance."
        ),
        columns=["family", "pair", "symmetric", "dist", "Shrink", "expected"],
    )
    ok = True

    def check(family: str, graph, u: int, v: int, expected: int) -> None:
        nonlocal ok
        # One kernel per graph answers every pair of the family's table
        # (colors + all-pairs Shrink computed once, not per check).
        context = symmetry_context(graph)
        symmetric = context.are_symmetric(u, v)
        dist = int(context.distances[u, v])
        value = context.shrink_value(u, v)
        ok = ok and symmetric and value == expected
        record.add_row(
            family=family,
            pair=f"({u},{v})",
            symmetric=symmetric,
            dist=dist,
            Shrink=value,
            expected=expected,
        )

    # Two-node graph (introduction's delay example): Shrink = 1.
    check("two-node", two_node_graph(), 0, 1, 1)

    # Oriented tori: Shrink == distance for a spread of pairs.
    sizes = [(3, 3), (4, 4)] if fast else [(3, 3), (4, 4), (5, 5), (4, 6)]
    for rows, cols in sizes:
        torus = oriented_torus(rows, cols)
        for r, c in {(0, 1), (1, 1), (rows - 1, cols - 1), (rows // 2, cols // 2)}:
            v = torus_node(r, c, cols)
            if v == 0:
                continue
            check(f"torus {rows}x{cols}", torus, 0, v, torus.distance(0, v))

    # Symmetric trees: mirror pairs have Shrink 1 at growing distance.
    depths = (1, 2) if fast else (1, 2, 3)
    for depth in depths:
        tree = symmetric_tree(arity=2, depth=depth)
        for u in (0, tree.n // 2 - 1):  # root and the deepest left leaf
            check(
                f"mirror tree depth {depth}",
                tree,
                u,
                mirror_node(u, 2, depth),
                1,
            )

    # Oriented rings: Shrink == ring distance (rigid rotation argument).
    ring = oriented_ring(8)
    for v in (1, 3, 4):
        check("oriented ring n=8", ring, 0, v, ring.distance(0, v))

    # Hypercube: Shrink == Hamming distance (XOR-translation argument).
    cube = hypercube(3)
    for v in (1, 3, 7):
        check("hypercube d=3", cube, 0, v, cube.distance(0, v))

    # Circulant complete graph: everything at distance 1, Shrink 1.
    kn = complete_graph(5)
    for v in (1, 2):
        check("complete K5", kn, 0, v, 1)

    record.passed = ok
    record.measured_summary = (
        "Shrink computed by product-graph BFS matches the paper's closed "
        "forms on every family: distance-preserving on tori/rings/"
        "hypercubes, collapsing to 1 on mirror trees and cliques"
    )
    return record
