"""EXP-T31 / EXP-P41 — Theorem 3.1, Corollary 3.1, Proposition 4.1.

Algorithm UniversalRV must achieve rendezvous for *every feasible*
STIC with no a priori knowledge: non-symmetric positions at any delay,
symmetric positions at ``delta >= Shrink``.  We sweep mixed workloads
(every STIC class on every family), record meeting times and the
decisive phase index, and compare the totals against Proposition 4.1's
``O(n^4 + delta^2)`` phase count and ``(n + delta)^O(n + delta)``
envelope.

Sharded per STIC case: every workload entry is one independent
feasibility-class probe.
"""

from __future__ import annotations

from repro.core.bounds import universal_time_envelope
from repro.core.pairing import triple
from repro.core.profile import TUNED
from repro.core.universal import rendezvous, universal_round_budget
from repro.experiments.records import ExperimentRecord
from repro.experiments.scenarios import RunConfig, ScenarioSpec, build_graph
from repro.symmetry.feasibility import classify_stic

__all__ = ["run", "SCENARIO", "make_shards", "run_shard", "merge"]

_RING4 = {"family": "oriented_ring", "n": 4}
_RING5 = {"family": "oriented_ring", "n": 5}
_TORUS3 = {"family": "oriented_torus", "rows": 3, "cols": 3}

#: (name, graph spec, u, v, delta) covering every feasibility class.
_FAST_CASES = [
    # Symmetric, delta == Shrink (boundary of feasibility).
    ["two-node", {"family": "two_node"}, 0, 1, 1],
    ["ring n=4", _RING4, 0, 1, 1],
    ["ring n=4 far", _RING4, 0, 2, 2],
    ["torus 3x3", _TORUS3, 0, 1, 1],
    ["mirror tree", {"family": "symmetric_tree", "arity": 1, "depth": 1}, 0, 2, 1],
    ["complete K4", {"family": "complete", "n": 4}, 0, 1, 1],
    # Symmetric, delta > Shrink.
    ["two-node slack", {"family": "two_node"}, 0, 1, 3],
    ["ring n=4 slack", _RING4, 0, 1, 4],
    # Non-symmetric, delta = 0 and > 0.
    ["path P3", {"family": "path", "n": 3}, 0, 2, 0],
    ["path P4", {"family": "path", "n": 4}, 0, 3, 2],
    ["star 3", {"family": "star", "leaves": 3}, 1, 2, 1],
]

_FULL_EXTRA = [
    ["ring n=5", _RING5, 0, 2, 2],
    ["ring n=5 slack", _RING5, 0, 1, 5],
    ["torus 3x3 diag", _TORUS3, 0, 4, 2],
    ["random n=6", {"family": "random_connected", "n": 6, "extra_edges": 3, "seed": 7}, 0, 5, 1],
    # Irregular port pattern: fully rigid ring (all views differ).
    [
        "lab ring",
        {
            "family": "labeled_ring",
            "ports": [[0, 1], [1, 0], [0, 1], [0, 1], [0, 1], [1, 0]],
        },
        0,
        1,
        0,
    ],
]

SCENARIO = ScenarioSpec(
    exp_id="EXP-T31/P41",
    title="UniversalRV on all feasible STIC classes (Thm 3.1, Prop 4.1)",
    module="repro.experiments.e_universal",
    shard_axis="STIC case",
    tiers={
        "smoke": {"cases": [_FAST_CASES[0], _FAST_CASES[1], _FAST_CASES[8]]},
        "fast": {"cases": _FAST_CASES},
        "full": {"cases": _FAST_CASES + _FULL_EXTRA},
        "stress": {
            "cases": _FAST_CASES
            + _FULL_EXTRA
            + [
                ["ring n=6 far", {"family": "oriented_ring", "n": 6}, 0, 3, 3],
                [
                    "torus 4x4",
                    {"family": "oriented_torus", "rows": 4, "cols": 4},
                    0,
                    5,
                    2,
                ],
                [
                    "random n=8",
                    {
                        "family": "random_connected",
                        "n": 8,
                        "extra_edges": 4,
                        "seed": 11,
                    },
                    0,
                    7,
                    1,
                ],
            ]
        },
    },
)


def make_shards(config: RunConfig) -> list[dict]:
    return [
        {"name": name, "graph": graph_spec, "u": u, "v": v, "delta": delta}
        for name, graph_spec, u, v, delta in config.params["cases"]
    ]


def run_shard(config: RunConfig, shard: dict) -> dict:
    graph = build_graph(shard["graph"])
    u, v, delta = shard["u"], shard["v"], shard["delta"]
    verdict = classify_stic(graph, u, v, delta)
    assert verdict.feasible, f"workload case {shard['name']} must be feasible"
    d = verdict.shrink if verdict.symmetric else 1
    budget = universal_round_budget(TUNED, graph.n, d, delta)
    result = rendezvous(graph, u, v, delta, profile=TUNED)
    envelope_ok = (
        result.met
        and result.time_from_later <= universal_time_envelope(graph.n, delta)
    )
    within = result.met and result.time_from_later <= budget
    return {
        "ok": within and envelope_ok,
        "row": {
            "case": shard["name"],
            "n": graph.n,
            "class": "sym" if verdict.symmetric else "nonsym",
            "delta": delta,
            "met": result.met,
            "time": result.time_from_later,
            "budget": budget,
            "phase<=": triple(graph.n, d, delta + 1),
            "envelope ok": envelope_ok,
        },
    }


def merge(config: RunConfig, shard_results: list[dict]) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id=SCENARIO.exp_id,
        title=SCENARIO.title,
        paper_claim=(
            "UniversalRV achieves rendezvous for every feasible STIC with "
            "no a priori knowledge; total time is within the "
            "(n+delta)^O(n+delta) envelope and the decisive phase index is "
            "O(n^4 + delta^2)."
        ),
        columns=[
            "case",
            "n",
            "class",
            "delta",
            "met",
            "time",
            "budget",
            "phase<=",
            "envelope ok",
        ],
    )
    for result in shard_results:
        record.add_row(**result["row"])
    record.passed = all(result["ok"] for result in shard_results)
    record.measured_summary = (
        "UniversalRV met on every feasible STIC (both classes, boundary "
        "delays included) within its computed phase budget and far inside "
        "the Proposition 4.1 envelope"
    )
    record.notes = "tuned profile (certified UXS, hashed labels, oracle views)"
    return record


def run(fast: bool = True) -> ExperimentRecord:
    """Legacy serial entry point (``fast`` maps onto the tier ladder)."""
    config = SCENARIO.config("fast" if fast else "full")
    return merge(config, [run_shard(config, s) for s in make_shards(config)])
