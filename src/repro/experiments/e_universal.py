"""EXP-T31 / EXP-P41 — Theorem 3.1, Corollary 3.1, Proposition 4.1.

Algorithm UniversalRV must achieve rendezvous for *every feasible*
STIC with no a priori knowledge: non-symmetric positions at any delay,
symmetric positions at ``delta >= Shrink``.  We sweep mixed workloads
(every STIC class on every family), record meeting times and the
decisive phase index, and compare the totals against Proposition 4.1's
``O(n^4 + delta^2)`` phase count and ``(n + delta)^O(n + delta)``
envelope.
"""

from __future__ import annotations

from repro.core.bounds import universal_time_envelope
from repro.core.pairing import triple
from repro.core.profile import TUNED
from repro.core.universal import rendezvous, universal_round_budget
from repro.experiments.records import ExperimentRecord
from repro.graphs.families import (
    complete_graph,
    labeled_ring,
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    symmetric_tree,
    torus_node,
    two_node_graph,
)
from repro.graphs.random_graphs import random_connected_graph
from repro.symmetry.feasibility import classify_stic

__all__ = ["run"]


def _workload(fast: bool):
    """(name, graph, u, v, delta) covering every feasibility class."""
    cases = [
        # Symmetric, delta == Shrink (boundary of feasibility).
        ("two-node", two_node_graph(), 0, 1, 1),
        ("ring n=4", oriented_ring(4), 0, 1, 1),
        ("ring n=4 far", oriented_ring(4), 0, 2, 2),
        ("torus 3x3", oriented_torus(3, 3), 0, torus_node(0, 1, 3), 1),
        ("mirror tree", symmetric_tree(1, 1), 0, 2, 1),
        ("complete K4", complete_graph(4), 0, 1, 1),
        # Symmetric, delta > Shrink.
        ("two-node slack", two_node_graph(), 0, 1, 3),
        ("ring n=4 slack", oriented_ring(4), 0, 1, 4),
        # Non-symmetric, delta = 0 and > 0.
        ("path P3", path_graph(3), 0, 2, 0),
        ("path P4", path_graph(4), 0, 3, 2),
        ("star 3", star_graph(3), 1, 2, 1),
    ]
    if not fast:
        cases += [
            ("ring n=5", oriented_ring(5), 0, 2, 2),
            ("ring n=5 slack", oriented_ring(5), 0, 1, 5),
            ("torus 3x3 diag", oriented_torus(3, 3), 0, torus_node(1, 1, 3), 2),
            ("random n=6", random_connected_graph(6, 3, seed=7), 0, 5, 1),
            # Irregular port pattern: fully rigid ring (all views differ).
            ("lab ring", labeled_ring([(0, 1), (1, 0), (0, 1), (0, 1), (0, 1), (1, 0)]), 0, 1, 0),
        ]
    return cases


def run(fast: bool = True) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id="EXP-T31/P41",
        title="UniversalRV on all feasible STIC classes (Thm 3.1, Prop 4.1)",
        paper_claim=(
            "UniversalRV achieves rendezvous for every feasible STIC with "
            "no a priori knowledge; total time is within the "
            "(n+delta)^O(n+delta) envelope and the decisive phase index is "
            "O(n^4 + delta^2)."
        ),
        columns=[
            "case",
            "n",
            "class",
            "delta",
            "met",
            "time",
            "budget",
            "phase<=",
            "envelope ok",
        ],
    )
    ok = True
    for name, graph, u, v, delta in _workload(fast):
        verdict = classify_stic(graph, u, v, delta)
        assert verdict.feasible, f"workload case {name} must be feasible"
        d = verdict.shrink if verdict.symmetric else 1
        budget = universal_round_budget(TUNED, graph.n, d, delta)
        result = rendezvous(graph, u, v, delta, profile=TUNED)
        envelope_ok = (
            result.met
            and result.time_from_later
            <= universal_time_envelope(graph.n, delta)
        )
        within = result.met and result.time_from_later <= budget
        ok = ok and within and envelope_ok
        record.add_row(
            case=name,
            n=graph.n,
            **{
                "class": "sym" if verdict.symmetric else "nonsym",
                "delta": delta,
                "met": result.met,
                "time": result.time_from_later,
                "budget": budget,
                "phase<=": triple(graph.n, d, delta + 1),
                "envelope ok": envelope_ok,
            },
        )
    record.passed = ok
    record.measured_summary = (
        "UniversalRV met on every feasible STIC (both classes, boundary "
        "delays included) within its computed phase budget and far inside "
        "the Proposition 4.1 envelope"
    )
    record.notes = "tuned profile (certified UXS, hashed labels, oracle views)"
    return record
