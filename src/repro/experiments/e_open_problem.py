"""EXP-OPEN — the paper's open problem, probed numerically.

Section 4 ends with: *"Does there exist a universal deterministic
algorithm which guarantees rendezvous for all feasible STICs in time
polynomial in the size of the graph and in the delay?"* — noting that
(a) the SymmRV-free variant *is* polynomial but abandons symmetric
STICs, and (b) the exponential lower bound of Theorem 4.1 only forces
exponentiality in ``Shrink``, not in ``n + delta``.

This experiment makes the gap quantitative under our implementation:
it tabulates the guaranteed meeting budgets of the full UniversalRV
versus the asymmetric-only variant as ``n`` grows, fits the growth
order of each, and verifies the paper's dichotomy — polynomial without
SymmRV, super-polynomial with it (the ``(n-1)^d`` terms of wrong
phases dominate).
"""

from __future__ import annotations

import math

from repro.baselines.asymm_only import asymm_only_round_budget
from repro.core.profile import TUNED
from repro.core.universal import universal_round_budget
from repro.experiments.records import ExperimentRecord

__all__ = ["run"]


def _growth_order(ns: list[int], budgets: list[int]) -> float:
    """Least-squares slope of log(budget) vs log(n): the exponent of a
    polynomial fit (super-polynomial growth shows as a rising slope)."""
    xs = [math.log(n) for n in ns]
    ys = [math.log(b) for b in budgets]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den


def run(fast: bool = True) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id="EXP-OPEN",
        title="The open problem: polynomial universal rendezvous?",
        paper_claim=(
            "Deleting SymmRV yields a variant polynomial in n and delta "
            "(for non-symmetric STICs only); the full universal algorithm "
            "runs in (n+delta)^O(n+delta) and it is open whether "
            "poly(n, delta) is achievable for all feasible STICs."
        ),
        columns=[
            "n",
            "delta",
            "asymm-only budget",
            "universal budget",
            "ratio",
        ],
    )
    ns = [2, 3, 4, 5] if fast else [2, 3, 4, 5, 6, 7]
    delta = 1
    asymm_budgets = []
    universal_budgets = []
    for n in ns:
        a = asymm_only_round_budget(TUNED, n, delta)
        # Worst decisive triple for a symmetric STIC: d can be as large
        # as n - 1 (Shrink is a distance, hence < n).
        u = universal_round_budget(TUNED, n, n - 1, delta)
        asymm_budgets.append(a)
        universal_budgets.append(u)
        record.add_row(
            n=n,
            delta=delta,
            **{
                "asymm-only budget": a,
                "universal budget": u,
                "ratio": u / a,
            },
        )

    asymm_order = _growth_order(ns, asymm_budgets)
    universal_order = _growth_order(ns, universal_budgets)
    # The dichotomy: the asymm-only fit is a low-degree polynomial; the
    # full algorithm's effective exponent is much larger and the ratio
    # diverges with n.
    ratios = [u / a for a, u in zip(asymm_budgets, universal_budgets)]
    record.passed = (
        asymm_order < 8
        and universal_order > asymm_order + 1
        and ratios[-1] > ratios[0]
    )
    record.measured_summary = (
        f"log-log growth order: asymm-only ~ n^{asymm_order:.1f} "
        f"(polynomial), full universal ~ n^{universal_order:.1f} and "
        "diverging — the exponential cost is attributable to the SymmRV "
        "segments exactly as Section 4 argues"
    )
    record.notes = "budgets are the guaranteed worst-case meeting bounds under the tuned profile"
    return record
