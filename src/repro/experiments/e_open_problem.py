"""EXP-OPEN — the paper's open problem, probed numerically.

Section 4 ends with: *"Does there exist a universal deterministic
algorithm which guarantees rendezvous for all feasible STICs in time
polynomial in the size of the graph and in the delay?"* — noting that
(a) the SymmRV-free variant *is* polynomial but abandons symmetric
STICs, and (b) the exponential lower bound of Theorem 4.1 only forces
exponentiality in ``Shrink``, not in ``n + delta``.

This experiment makes the gap quantitative under our implementation:
it tabulates the guaranteed meeting budgets of the full UniversalRV
versus the asymmetric-only variant as ``n`` grows, fits the growth
order of each, and verifies the paper's dichotomy — polynomial without
SymmRV, super-polynomial with it (the ``(n-1)^d`` terms of wrong
phases dominate).

Sharded per size rung ``n``; the log-log growth fits run at merge
time over the assembled ladder.
"""

from __future__ import annotations

import math

from repro.baselines.asymm_only import asymm_only_round_budget
from repro.core.profile import TUNED
from repro.core.universal import universal_round_budget
from repro.experiments.records import ExperimentRecord
from repro.experiments.scenarios import RunConfig, ScenarioSpec

__all__ = ["run", "SCENARIO", "make_shards", "run_shard", "merge"]

SCENARIO = ScenarioSpec(
    exp_id="EXP-OPEN",
    title="The open problem: polynomial universal rendezvous?",
    module="repro.experiments.e_open_problem",
    shard_axis="size rung n",
    tiers={
        "smoke": {"n_values": [2, 3, 4], "delta": 1},
        "fast": {"n_values": [2, 3, 4, 5], "delta": 1},
        "full": {"n_values": [2, 3, 4, 5, 6, 7], "delta": 1},
        "stress": {"n_values": [2, 3, 4, 5, 6, 7, 8, 9, 10], "delta": 1},
    },
)


def _growth_order(ns: list[int], budgets: list[int]) -> float:
    """Least-squares slope of log(budget) vs log(n): the exponent of a
    polynomial fit (super-polynomial growth shows as a rising slope)."""
    xs = [math.log(n) for n in ns]
    ys = [math.log(b) for b in budgets]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den


def make_shards(config: RunConfig) -> list[dict]:
    return [
        {"n": n, "delta": config.params["delta"]}
        for n in config.params["n_values"]
    ]


def run_shard(config: RunConfig, shard: dict) -> dict:
    n, delta = shard["n"], shard["delta"]
    a = asymm_only_round_budget(TUNED, n, delta)
    # Worst decisive triple for a symmetric STIC: d can be as large
    # as n - 1 (Shrink is a distance, hence < n).
    u = universal_round_budget(TUNED, n, n - 1, delta)
    return {
        "n": n,
        "asymm_budget": a,
        "universal_budget": u,
        "row": {
            "n": n,
            "delta": delta,
            "asymm-only budget": a,
            "universal budget": u,
            "ratio": u / a,
        },
    }


def merge(config: RunConfig, shard_results: list[dict]) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id=SCENARIO.exp_id,
        title=SCENARIO.title,
        paper_claim=(
            "Deleting SymmRV yields a variant polynomial in n and delta "
            "(for non-symmetric STICs only); the full universal algorithm "
            "runs in (n+delta)^O(n+delta) and it is open whether "
            "poly(n, delta) is achievable for all feasible STICs."
        ),
        columns=[
            "n",
            "delta",
            "asymm-only budget",
            "universal budget",
            "ratio",
        ],
    )
    ns = []
    asymm_budgets = []
    universal_budgets = []
    for result in shard_results:
        ns.append(result["n"])
        asymm_budgets.append(result["asymm_budget"])
        universal_budgets.append(result["universal_budget"])
        record.add_row(**result["row"])

    asymm_order = _growth_order(ns, asymm_budgets)
    universal_order = _growth_order(ns, universal_budgets)
    # The dichotomy: the asymm-only fit is a low-degree polynomial; the
    # full algorithm's effective exponent is much larger and the ratio
    # diverges with n.
    ratios = [u / a for a, u in zip(asymm_budgets, universal_budgets)]
    record.passed = (
        asymm_order < 8
        and universal_order > asymm_order + 1
        and ratios[-1] > ratios[0]
    )
    record.measured_summary = (
        f"log-log growth order: asymm-only ~ n^{asymm_order:.1f} "
        f"(polynomial), full universal ~ n^{universal_order:.1f} and "
        "diverging — the exponential cost is attributable to the SymmRV "
        "segments exactly as Section 4 argues"
    )
    record.notes = "budgets are the guaranteed worst-case meeting bounds under the tuned profile"
    return record


def run(fast: bool = True) -> ExperimentRecord:
    """Legacy serial entry point (``fast`` maps onto the tier ladder)."""
    config = SCENARIO.config("fast" if fast else "full")
    return merge(config, [run_shard(config, s) for s in make_shards(config)])
