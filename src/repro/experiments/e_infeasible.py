"""EXP-L31 — Lemma 3.1: STICs with ``delta < Shrink`` are infeasible.

A negative result cannot be *demonstrated* by one failing run, so this
experiment layers two kinds of evidence over every STIC with
``delta < Shrink``:

1. run Algorithm UniversalRV for a horizon far past its feasible-case
   meeting budget — no meeting;
2. run an adversarial battery of other deterministic algorithms
   (random oblivious port words, one per seed; both agents execute the
   same word, as the model demands) — no meeting.

(The unit tests additionally verify the proof's mechanism on traces:
with symmetric starts the two agents' perception streams are
identical up to the time shift, so their port decisions coincide.)

Sharded per (STIC, delta) cell — the long-horizon negative runs are
the suite's dominant cost, and every cell is independent.
"""

from __future__ import annotations

from repro.core.profile import TUNED
from repro.core.universal import rendezvous
from repro.experiments.records import ExperimentRecord
from repro.experiments.scenarios import RunConfig, ScenarioSpec, build_graph
from repro.symmetry.shrink import shrink
from repro.util.lcg import SplitMix64, derive_seed

__all__ = ["run", "SCENARIO", "make_shards", "run_shard", "merge"]

_CASES = {
    "two-node": ["two-node", {"family": "two_node"}, 0, 1],
    "ring6": ["ring n=6", {"family": "oriented_ring", "n": 6}, 0, 3],
    "torus3": ["torus 3x3", {"family": "oriented_torus", "rows": 3, "cols": 3}, 0, 4],
    "cube3": ["hypercube d=3", {"family": "hypercube", "dim": 3}, 0, 7],
    "torus4": ["torus 4x4", {"family": "oriented_torus", "rows": 4, "cols": 4}, 0, 10],
    "tree": ["tree mirror", {"family": "symmetric_tree", "arity": 2, "depth": 2}, 1, 8],
}

SCENARIO = ScenarioSpec(
    exp_id="EXP-L31",
    title="Infeasibility below Shrink (Lemma 3.1)",
    module="repro.experiments.e_infeasible",
    shard_axis="(STIC, delta) cell",
    tiers={
        "smoke": {
            "cases": [_CASES["two-node"], _CASES["ring6"]],
            "horizon": 20_000,
            "battery_rounds": 500,
            "battery_seeds": 8,
        },
        "fast": {
            "cases": [
                _CASES["two-node"],
                _CASES["ring6"],
                _CASES["torus3"],
                _CASES["cube3"],
            ],
            "horizon": 150_000,
            "battery_rounds": 2000,
            "battery_seeds": 8,
        },
        "full": {
            "cases": [
                _CASES["two-node"],
                _CASES["ring6"],
                _CASES["torus3"],
                _CASES["cube3"],
                _CASES["torus4"],
                _CASES["tree"],
            ],
            "horizon": 1_000_000,
            "battery_rounds": 20_000,
            "battery_seeds": 8,
        },
        "stress": {
            "cases": [
                _CASES["two-node"],
                _CASES["ring6"],
                _CASES["torus3"],
                _CASES["cube3"],
                _CASES["torus4"],
                _CASES["tree"],
                ["ring n=10", {"family": "oriented_ring", "n": 10}, 0, 5],
                [
                    "torus 5x5",
                    {"family": "oriented_torus", "rows": 5, "cols": 5},
                    0,
                    12,
                ],
            ],
            "horizon": 2_000_000,
            "battery_rounds": 50_000,
            "battery_seeds": 16,
        },
    },
)


def _oblivious_battery(graph, u, v, delta, rounds, seeds) -> bool:
    """Run random deterministic port-words from the STIC; True if any met.

    Each word is one fixed deterministic algorithm (both agents play
    it identically); Lemma 3.1 says none can meet.
    """
    succ = graph.succ_node_array
    degrees = graph.degrees
    for seed in seeds:
        rng = SplitMix64(derive_seed("infeasible-battery", seed))
        word = [rng.randrange(64) for _ in range(rounds)]
        pos_a, pos_b = u, v
        for t in range(rounds):
            if t >= delta and pos_a == pos_b:
                return True
            pos_a = int(succ[pos_a, word[t] % int(degrees[pos_a])])
            if t >= delta:
                pos_b = int(succ[pos_b, word[t - delta] % int(degrees[pos_b])])
    return False


def make_shards(config: RunConfig) -> list[dict]:
    """One shard per ``(case, delta)`` cell, ``delta < Shrink(u, v)``."""
    shards = []
    for name, graph_spec, u, v in config.params["cases"]:
        s = shrink(build_graph(graph_spec), u, v)
        for delta in range(s):
            shards.append(
                {
                    "name": name,
                    "graph": graph_spec,
                    "u": u,
                    "v": v,
                    "shrink": s,
                    "delta": delta,
                }
            )
    return shards


def run_shard(config: RunConfig, shard: dict) -> dict:
    graph = build_graph(shard["graph"])
    u, v, delta = shard["u"], shard["v"], shard["delta"]
    # Horizon policy: a negative result over an infinite horizon cannot
    # be simulated; we run 1-2 orders of magnitude past the meeting
    # times observed for *feasible* STICs on the same graphs (tens to
    # thousands of rounds), which is where Lemma 3.1's lockstep
    # argument predicts no meeting can ever occur.
    result = rendezvous(
        graph, u, v, delta, profile=TUNED, max_rounds=config.params["horizon"]
    )
    battery = _oblivious_battery(
        graph,
        u,
        v,
        delta,
        rounds=config.params["battery_rounds"],
        seeds=range(config.params["battery_seeds"]),
    )
    return {
        "ok": not result.met and not battery,
        "row": {
            "graph": shard["name"],
            "pair": f"({u},{v})",
            "Shrink": shard["shrink"],
            "delta": delta,
            "UniversalRV rounds": result.rounds_executed,
            "met": result.met,
            "battery met": battery,
        },
    }


def merge(config: RunConfig, shard_results: list[dict]) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id=SCENARIO.exp_id,
        title=SCENARIO.title,
        paper_claim=(
            "For symmetric u, v and delta < Shrink(u, v), no deterministic "
            "algorithm achieves rendezvous for the STIC [(u, v), delta]."
        ),
        columns=[
            "graph",
            "pair",
            "Shrink",
            "delta",
            "UniversalRV rounds",
            "met",
            "battery met",
        ],
    )
    for result in shard_results:
        record.add_row(**result["row"])
    record.passed = all(result["ok"] for result in shard_results)
    record.measured_summary = (
        "no algorithm in the battery (UniversalRV + random deterministic "
        "port words) ever met on any STIC with delta < Shrink, over "
        "horizons far beyond every feasible-case meeting time observed"
    )
    record.notes = "negative results checked empirically over finite horizons"
    return record


def run(fast: bool = True) -> ExperimentRecord:
    """Legacy serial entry point (``fast`` maps onto the tier ladder)."""
    config = SCENARIO.config("fast" if fast else "full")
    return merge(config, [run_shard(config, s) for s in make_shards(config)])
