"""EXP-L31 — Lemma 3.1: STICs with ``delta < Shrink`` are infeasible.

A negative result cannot be *demonstrated* by one failing run, so this
experiment layers two kinds of evidence over every STIC with
``delta < Shrink``:

1. run Algorithm UniversalRV for a horizon far past its feasible-case
   meeting budget — no meeting;
2. run an adversarial battery of other deterministic algorithms
   (random oblivious port words, one per seed; both agents execute the
   same word, as the model demands) — no meeting.

(The unit tests additionally verify the proof's mechanism on traces:
with symmetric starts the two agents' perception streams are
identical up to the time shift, so their port decisions coincide.)
"""

from __future__ import annotations

from repro.core.profile import TUNED
from repro.core.universal import rendezvous
from repro.experiments.records import ExperimentRecord
from repro.graphs.families import (
    hypercube,
    oriented_ring,
    oriented_torus,
    symmetric_tree,
    torus_node,
    two_node_graph,
)
from repro.symmetry.shrink import shrink
from repro.util.lcg import SplitMix64, derive_seed

__all__ = ["run"]


def _oblivious_battery(graph, u, v, delta, rounds, seeds) -> bool:
    """Run random deterministic port-words from the STIC; True if any met.

    Each word is one fixed deterministic algorithm (both agents play
    it identically); Lemma 3.1 says none can meet.
    """
    succ = graph.succ_node_array
    degrees = graph.degrees
    for seed in seeds:
        rng = SplitMix64(derive_seed("infeasible-battery", seed))
        word = [rng.randrange(64) for _ in range(rounds)]
        pos_a, pos_b = u, v
        for t in range(rounds):
            if t >= delta and pos_a == pos_b:
                return True
            pos_a = int(succ[pos_a, word[t] % int(degrees[pos_a])])
            if t >= delta:
                pos_b = int(succ[pos_b, word[t - delta] % int(degrees[pos_b])])
    return False


def run(fast: bool = True) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id="EXP-L31",
        title="Infeasibility below Shrink (Lemma 3.1)",
        paper_claim=(
            "For symmetric u, v and delta < Shrink(u, v), no deterministic "
            "algorithm achieves rendezvous for the STIC [(u, v), delta]."
        ),
        columns=[
            "graph",
            "pair",
            "Shrink",
            "delta",
            "UniversalRV rounds",
            "met",
            "battery met",
        ],
    )
    cases = [
        ("two-node", two_node_graph(), 0, 1),
        ("ring n=6", oriented_ring(6), 0, 3),
        ("torus 3x3", oriented_torus(3, 3), 0, torus_node(1, 1, 3)),
        ("hypercube d=3", hypercube(3), 0, 7),
    ]
    if not fast:
        cases.append(("torus 4x4", oriented_torus(4, 4), 0, torus_node(2, 2, 4)))
        cases.append(("tree mirror", symmetric_tree(2, 2), 1, 1 + 7))

    ok = True
    # Horizon policy: a negative result over an infinite horizon cannot
    # be simulated; we run 1-2 orders of magnitude past the meeting
    # times observed for *feasible* STICs on the same graphs (tens to
    # thousands of rounds), which is where Lemma 3.1's lockstep
    # argument predicts no meeting can ever occur.
    horizon = 150_000 if fast else 1_000_000
    for name, graph, u, v in cases:
        s = shrink(graph, u, v)
        for delta in range(s):
            result = rendezvous(
                graph, u, v, delta, profile=TUNED, max_rounds=horizon
            )
            battery = _oblivious_battery(
                graph, u, v, delta, rounds=2000 if fast else 20000, seeds=range(8)
            )
            ok = ok and not result.met and not battery
            record.add_row(
                graph=name,
                pair=f"({u},{v})",
                Shrink=s,
                delta=delta,
                **{
                    "UniversalRV rounds": result.rounds_executed,
                    "met": result.met,
                    "battery met": battery,
                },
            )
    record.passed = ok
    record.measured_summary = (
        "no algorithm in the battery (UniversalRV + random deterministic "
        "port words) ever met on any STIC with delta < Shrink, over "
        "horizons far beyond every feasible-case meeting time observed"
    )
    record.notes = "negative results checked empirically over finite horizons"
    return record
