"""EXP-BASE / EXP-LE — baselines and the leader-election reduction.

Positions the universal deterministic algorithm against:

* randomized random walks (Section 5: "straightforward ... polynomial
  in the size of the graph") — cheap, but needs randomness;
* wait-for-Mommy with a leader oracle (Introduction) — cheap, but
  needs symmetry pre-broken;
* the asymmetric-only variant (Section 4) — polynomial in ``n`` and
  ``delta``, but silent on symmetric STICs.

and demonstrates the Introduction's rendezvous => leader-election
reduction on every successful deterministic run.

Sharded per STIC case: each shard runs one case through every
baseline plus the batched partner sweep.
"""

from __future__ import annotations

from repro.baselines.asymm_only import make_asymm_only_algorithm
from repro.baselines.leader_election import elect_leader
from repro.baselines.random_walk import mean_meeting_time
from repro.baselines.wait_for_mommy import wait_for_mommy
from repro.core.profile import TUNED
from repro.core.universal import (
    UniversalOracle,
    certify_graph,
    certify_labels,
    make_universal_algorithm,
    rendezvous,
    universal_stic_budget,
)
from repro.experiments.records import ExperimentRecord
from repro.experiments.scenarios import RunConfig, ScenarioSpec, build_graph
from repro.sim.batch import run_rendezvous_batch
from repro.sim.scheduler import run_rendezvous
from repro.symmetry.feasibility import classify_stic

__all__ = ["run", "SCENARIO", "make_shards", "run_shard", "merge", "universal_partner_sweep"]

_CASES = {
    "ring6": ["ring n=6 sym", {"family": "oriented_ring", "n": 6}, 0, 3, 3],
    "torus3": [
        "torus 3x3 sym",
        {"family": "oriented_torus", "rows": 3, "cols": 3},
        0,
        1,
        1,
    ],
    "path4": ["path P4 nonsym", {"family": "path", "n": 4}, 0, 3, 1],
    "star": ["star nonsym", {"family": "star", "leaves": 3}, 1, 3, 0],
    "ring8": ["ring n=8 sym", {"family": "oriented_ring", "n": 8}, 0, 4, 4],
    "path5": ["path P5 nonsym", {"family": "path", "n": 5}, 0, 4, 2],
}

_FAST_CASES = [_CASES["ring6"], _CASES["torus3"], _CASES["path4"], _CASES["star"]]

SCENARIO = ScenarioSpec(
    exp_id="EXP-BASE/LE",
    code_version=2,
    title="Baselines vs UniversalRV; leader election from rendezvous",
    module="repro.experiments.e_baselines",
    shard_axis="STIC case (all baselines + partner sweep)",
    tiers={
        "smoke": {"cases": [_CASES["ring6"], _CASES["path4"]], "trials": 5},
        "fast": {"cases": _FAST_CASES, "trials": 10},
        "full": {
            "cases": _FAST_CASES + [_CASES["ring8"], _CASES["path5"]],
            "trials": 40,
        },
        "stress": {
            "cases": _FAST_CASES
            + [
                _CASES["ring8"],
                _CASES["path5"],
                ["ring n=10 sym", {"family": "oriented_ring", "n": 10}, 0, 5, 5],
                [
                    "torus 4x4 sym",
                    {"family": "oriented_torus", "rows": 4, "cols": 4},
                    0,
                    5,
                    2,
                ],
            ],
            "trials": 80,
        },
    },
)


def universal_partner_sweep(graph, u, delta, *, profile=TUNED, certified=False):
    """Batched UniversalRV over every feasible partner of ``u``.

    Runs the STIC family ``{[(u, v), delta] : v != u feasible}`` in one
    :func:`~repro.sim.batch.run_rendezvous_batch` call (oracle-mode
    profiles supply a per-start oracle factory), so agent ``u``'s trace
    is compiled once and shared across the whole sweep.  Returns the
    list of ``(v, result)`` pairs.  ``certified=True`` skips the
    graph-level UXS coverage walk for callers that already certified
    this graph under this profile.
    """
    if not certified:
        certify_graph(graph, profile)  # UXS coverage is pair-independent
    partners = []
    verdicts = {}
    for v in range(graph.n):
        if v == u:
            continue
        verdict = classify_stic(graph, u, v, delta)
        if verdict.feasible:
            certify_labels(graph, u, v, profile)
            partners.append(v)
            verdicts[v] = verdict

    def budget(u_, v_, delta_):
        return universal_stic_budget(profile, graph.n, verdicts[v_], delta_)

    oracle_factory = None
    if profile.view_mode == "oracle":
        oracle_factory = lambda start: UniversalOracle(graph, start, profile)
    results = run_rendezvous_batch(
        graph,
        [(u, v, delta) for v in partners],
        make_universal_algorithm(profile),
        max_rounds=budget,
        oracle_factory=oracle_factory,
    )
    return list(zip(partners, results))


def make_shards(config: RunConfig) -> list[dict]:
    return [
        {
            "name": name,
            "graph": graph_spec,
            "u": u,
            "v": v,
            "delta": delta,
            "trials": config.params["trials"],
        }
        for name, graph_spec, u, v, delta in config.params["cases"]
    ]


def run_shard(config: RunConfig, shard: dict) -> dict:
    graph = build_graph(shard["graph"])
    u, v, delta = shard["u"], shard["v"], shard["delta"]
    verdict = classify_stic(graph, u, v, delta)
    result = rendezvous(graph, u, v, delta, profile=TUNED, record_traces=True)
    ok = result.met

    # Batched sweep: UniversalRV must also meet every other feasible
    # partner of u at this delay (one engine call per case; the
    # rendezvous() above already certified the graph).
    sweep = universal_partner_sweep(graph, u, delta, certified=True)
    ok = ok and all(r.met for _, r in sweep)
    sweep_cell = f"{sum(r.met for _, r in sweep)}/{len(sweep)}"

    rw_mean, rw_fail = mean_meeting_time(
        graph, u, v, delta, trials=shard["trials"], seed=42
    )
    ok = ok and rw_fail == 0

    mommy = wait_for_mommy(graph, u, v, delta, TUNED.uxs(graph.n))
    ok = ok and mommy.met

    if verdict.symmetric:
        asymm_cell = "n/a (sym)"
    else:
        algorithm = make_asymm_only_algorithm(TUNED)
        oracles = (
            UniversalOracle(graph, u, TUNED),
            UniversalOracle(graph, v, TUNED),
        )
        asymm = run_rendezvous(
            graph, u, v, delta, algorithm,
            max_rounds=20_000_000, oracles=oracles,
        )
        ok = ok and asymm.met
        asymm_cell = asymm.time_from_later

    election = elect_leader(result)
    return {
        "ok": ok,
        "row": {
            "case": shard["name"],
            "class": "sym" if verdict.symmetric else "nonsym",
            "UniversalRV": result.time_from_later,
            "partner sweep": sweep_cell,
            "random walk (mean)": round(rw_mean, 1),
            "mommy": mommy.time_from_later,
            "asymm-only": asymm_cell,
            "leader": f"agent{election.leader}/{election.rule}",
        },
    }


def merge(config: RunConfig, shard_results: list[dict]) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id=SCENARIO.exp_id,
        title=SCENARIO.title,
        paper_claim=(
            "Randomized walks meet in poly(n) expected time; with a leader "
            "oracle rendezvous needs one exploration; the asymmetric-only "
            "variant is polynomial but only for non-symmetric STICs; any "
            "successful rendezvous elects a leader."
        ),
        columns=[
            "case",
            "class",
            "UniversalRV",
            "partner sweep",
            "random walk (mean)",
            "mommy",
            "asymm-only",
            "leader",
        ],
    )
    for result in shard_results:
        record.add_row(**result["row"])
    record.passed = all(result["ok"] for result in shard_results)
    record.measured_summary = (
        "every baseline met on every applicable case: the leader-oracle and "
        "randomized baselines need no symmetry-breaking budget, the "
        "asymmetric-only variant meets exactly the non-symmetric cases, a "
        "leader was elected from every successful deterministic trace, and "
        "the batched sweep met every feasible partner of each start"
    )
    return record


def run(fast: bool = True) -> ExperimentRecord:
    """Legacy serial entry point (``fast`` maps onto the tier ladder)."""
    config = SCENARIO.config("fast" if fast else "full")
    return merge(config, [run_shard(config, s) for s in make_shards(config)])
