"""Experiment result records and table rendering (text/Markdown/JSON).

Every experiment driver returns an :class:`ExperimentRecord` — the
paper's claim, the measured rows, and a pass/fail verdict — which the
report generator assembles into EXPERIMENTS.md and the benchmark
harness prints after each run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentRecord", "render_table"]


@dataclass
class ExperimentRecord:
    """One reproduced artifact (a figure, a worked example, a theorem).

    Attributes
    ----------
    exp_id:
        Identifier from the experiment registry (e.g. ``"EXP-T41"``;
        see the scenario index in docs/orchestration.md and the
        per-experiment map in README.md).
    title:
        Human-readable name.
    paper_claim:
        What the paper asserts, quoted or paraphrased.
    columns / rows:
        The regenerated table (rows are dicts keyed by column name).
    measured_summary:
        One-line summary of what was measured.
    passed:
        Whether the measurement agrees with the claim's *shape* (who
        wins, growth rate, feasibility verdicts) — absolute constants
        are not expected to match a theory paper.
    notes:
        Caveats (profile used, substitutions exercised).
    art:
        Optional text-art reproduction of a figure, rendered verbatim.
    """

    exp_id: str
    title: str
    paper_claim: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    measured_summary: str = ""
    passed: bool = False
    notes: str = ""
    art: str = ""

    def add_row(self, **values) -> None:
        """Append a row; values are formatted at render time."""
        self.rows.append(values)

    def to_text(self) -> str:
        """Render the record as a plain-text block."""
        lines = [
            f"== {self.exp_id}: {self.title} ==",
            f"paper:    {self.paper_claim}",
            f"measured: {self.measured_summary}",
            f"verdict:  {'REPRODUCED' if self.passed else 'MISMATCH'}",
        ]
        if self.notes:
            lines.append(f"notes:    {self.notes}")
        lines.append(render_table(self.columns, self.rows))
        if self.art:
            lines.append("")
            lines.append(self.art)
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render the record as a Markdown section for EXPERIMENTS.md."""
        lines = [
            f"### {self.exp_id}: {self.title}",
            "",
            f"**Paper claim.** {self.paper_claim}",
            "",
            f"**Measured.** {self.measured_summary}",
            "",
            f"**Verdict.** {'reproduced' if self.passed else 'MISMATCH'}"
            + (f" — {self.notes}" if self.notes else ""),
            "",
        ]
        if self.rows:
            lines.append("| " + " | ".join(self.columns) + " |")
            lines.append("|" + "---|" * len(self.columns))
            for row in self.rows:
                lines.append(
                    "| "
                    + " | ".join(_fmt(row.get(c, "")) for c in self.columns)
                    + " |"
                )
            lines.append("")
        if self.art:
            lines.append("```text")
            lines.append(self.art)
            lines.append("```")
            lines.append("")
        return "\n".join(lines)


    def to_json_dict(self) -> dict:
        """Machine-readable form (for archiving runs alongside the md).

        Inverse of :meth:`from_json_dict`: the pair round-trips through
        plain JSON, which is what the result store persists.
        """
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "measured_summary": self.measured_summary,
            "passed": self.passed,
            "notes": self.notes,
            "columns": list(self.columns),
            "rows": [dict(r) for r in self.rows],
            "art": self.art,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ExperimentRecord":
        """Rebuild a record from :meth:`to_json_dict` output."""
        return cls(
            exp_id=payload["exp_id"],
            title=payload["title"],
            paper_claim=payload["paper_claim"],
            columns=list(payload["columns"]),
            rows=[dict(r) for r in payload["rows"]],
            measured_summary=payload["measured_summary"],
            passed=payload["passed"],
            notes=payload["notes"],
            art=payload.get("art", ""),
        )


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(columns: list[str], rows: list[dict]) -> str:
    """Fixed-width text table (for terminal output)."""
    widths = {c: len(c) for c in columns}
    rendered = [{c: _fmt(r.get(c, "")) for c in columns} for r in rows]
    for row in rendered:
        for c in columns:
            widths[c] = max(widths[c], len(row[c]))
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    sep = "  ".join("-" * widths[c] for c in columns)
    body = [
        "  ".join(row[c].rjust(widths[c]) for c in columns) for row in rendered
    ]
    return "\n".join([header, sep, *body])
