"""``repro store`` — inspect and maintain the content-addressed cache.

Subcommands::

    repro store status [--cache-dir PATH]
    repro store gc     [--cache-dir PATH] [--max-bytes SIZE]
                       [--max-age-days N] [--dry-run]
    repro store prune  [--cache-dir PATH]

``status`` reports entry count, on-disk footprint, and journaled runs.
``gc`` evicts least-recently-used entries until the store fits the
given bounds (it never runs implicitly — an unbounded cache is the
default, per docs/orchestration.md).  ``prune`` deletes corrupt or
foreign files that ``get`` would reject anyway.

Every entry is a pure function of its key, so eviction is always safe:
the worst case is recomputing an evicted shard on the next run.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.journal import list_runs
from repro.experiments.store import DEFAULT_CACHE_DIR, ResultStore

__all__ = ["main", "parse_size"]

_SIZE_SUFFIXES = {
    "": 1,
    "B": 1,
    "K": 1024,
    "M": 1024**2,
    "G": 1024**3,
    "T": 1024**4,
}


def parse_size(text: str) -> int:
    """Parse a human byte size: ``500M``, ``2G``, ``1048576``, ``1.5G``."""
    raw = text.strip().upper().removesuffix("IB").removesuffix("B")
    suffix = raw[-1:] if raw[-1:] in "KMGT" else ""
    number = raw[: len(raw) - len(suffix)] if suffix else raw
    try:
        value = float(number)
    except ValueError:
        raise ValueError(f"not a size: {text!r} (try 500M, 2G, 1048576)")
    if value < 0:
        raise ValueError(f"size must be non-negative: {text!r}")
    return int(value * _SIZE_SUFFIXES[suffix])


def format_size(n: int) -> str:
    size = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    raise AssertionError("unreachable")


def _entry_bytes(store: ResultStore) -> int:
    return sum(path.stat().st_size for path in store.backend.entry_files())


def _cmd_status(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache_dir)
    keys = store.keys()
    print(f"store: {store.root}")
    print(f"entries: {len(keys)} ({format_size(_entry_bytes(store))})")
    stray = store.backend.stray_files()
    if stray:
        print(f"stray files: {len(stray)} (clean with `repro store prune`)")
    runs = list_runs(store.root)
    if runs:
        print(f"runs: {len(runs)}")
        for run_id in runs:
            print(f"  {run_id}")
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    if args.max_bytes is None and args.max_age_days is None:
        print(
            "nothing to do: give --max-bytes and/or --max-age-days "
            "(gc never runs with no bound)",
            file=sys.stderr,
        )
        return 2
    store = ResultStore(args.cache_dir)
    report = store.gc(
        max_bytes=args.max_bytes,
        max_age_days=args.max_age_days,
        dry_run=args.dry_run,
    )
    verb = "would remove" if report.dry_run else "removed"
    print(
        f"{verb} {len(report.removed)} entries "
        f"({format_size(report.freed_bytes)}); "
        f"kept {report.kept} ({format_size(report.kept_bytes)})"
    )
    return 0


def _cmd_prune(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache_dir)
    removed = store.prune()
    print(f"pruned {len(removed)} invalid file(s) from {store.root}")
    return 0


def _add_cache_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=DEFAULT_CACHE_DIR,
        help=f"result-store location (default {DEFAULT_CACHE_DIR})",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro store", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    status_parser = sub.add_parser(
        "status", help="entry count, footprint, and journaled runs"
    )
    _add_cache_dir(status_parser)
    status_parser.set_defaults(func=_cmd_status)

    gc_parser = sub.add_parser(
        "gc", help="evict least-recently-used entries to fit bounds"
    )
    _add_cache_dir(gc_parser)
    gc_parser.add_argument(
        "--max-bytes", metavar="SIZE", type=parse_size, default=None,
        help="keep the store under SIZE (e.g. 500M, 2G)",
    )
    gc_parser.add_argument(
        "--max-age-days", metavar="N", type=float, default=None,
        help="evict entries older than N days (vs. the newest entry)",
    )
    gc_parser.add_argument(
        "--dry-run", action="store_true",
        help="report what would be evicted without deleting",
    )
    gc_parser.set_defaults(func=_cmd_gc)

    prune_parser = sub.add_parser(
        "prune", help="delete corrupt/foreign files the store would reject"
    )
    _add_cache_dir(prune_parser)
    prune_parser.set_defaults(func=_cmd_prune)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
