"""Work-queue core: leased shards, bounded retry, poison quarantine.

The middle layer of the execution spine (store backends below, the
``run_suite`` frontend above — docs/orchestration.md).  Planning turns
every missing shard into a :class:`ShardTask`; a :class:`WorkQueue`
then hands tasks to workers under a **lease** discipline instead of
fire-and-forget futures:

* a lease carries a token and (optionally) a deadline + a heartbeat
  file the worker touches while computing; a worker that crashes or
  goes silent has its lease **expired and the shard re-leased** to
  another worker rather than lost with the run;
* failures are retried up to ``QueuePolicy.max_retries`` extra
  attempts; a shard that fails deterministically every time is
  **quarantined** — recorded in the run journal and written out as a
  JSON replay artifact (module + config + shard + error), exactly like
  a campaign failure artifact — and the run *continues* instead of
  dying mid-grid;
* completion is idempotent and first-result-wins: a shard re-leased
  after a timeout may eventually finish twice, but shard results are
  pure functions of ``(config, shard)`` (the REPRO106 lint rule
  enforces this statically), so whichever copy lands first is *the*
  result and the straggler is a no-op.

Merge order never depends on any of this: the plan (journaled as the
``plan`` event) fixes it up front, so a run that limps through three
worker crashes and a resume still merges byte-identically to a clean
serial run.

All timing here uses the monotonic clock (never wall time — the
determinism contract bans it from ``src/``); the clock is injectable
for tests.
"""

from __future__ import annotations

import importlib
import json
import os
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.experiments.journal import RunJournal
from repro.experiments.scenarios import RunConfig
from repro.util.encoding import canonical_json

__all__ = [
    "PENDING",
    "LEASED",
    "COMPLETED",
    "QUARANTINED",
    "DEFAULT_MAX_RETRIES",
    "ShardTask",
    "QueuePolicy",
    "Lease",
    "WorkQueue",
    "execute_shard_task",
    "run_queue",
    "quarantine_artifact_name",
    "load_quarantined_shard",
    "replay_quarantined_shard",
]

#: Task lifecycle states (journal ``status`` values reuse these names).
PENDING = "pending"
LEASED = "leased"
COMPLETED = "completed"
QUARANTINED = "quarantined"

#: Default extra attempts after the first failure; one retry separates
#: "worker died / transient" from "this shard is poison".
DEFAULT_MAX_RETRIES = 1


@dataclass(frozen=True)
class ShardTask:
    """One durable shard descriptor: everything a worker needs.

    ``config`` is the ``RunConfig.to_json_dict()`` payload (plain JSON
    so the task crosses process boundaries and lands in artifacts
    verbatim); ``key`` is the shard's content address in the store.
    """

    plan: int
    index: int
    module: str
    config: dict
    shard: dict
    key: str

    @property
    def uid(self) -> tuple[int, int]:
        return (self.plan, self.index)


@dataclass(frozen=True)
class QueuePolicy:
    """Lease/retry knobs (CLI: ``--max-retries`` / ``--shard-timeout``).

    ``shard_timeout`` is the hard per-shard wall bound: a lease older
    than this is expired and re-issued (counts as a failed attempt, so
    a deterministically-hung shard eventually quarantines).  The
    heartbeat pair detects *crashed* workers faster than the hard
    timeout: workers touch a per-lease file every
    ``heartbeat_interval`` seconds and a lease whose heartbeat goes
    stale for ``heartbeat_timeout`` is expired early.  Heartbeats are
    only armed when the queue has a run directory to put them in.
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    shard_timeout: float | None = None
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float | None = None
    poll_interval: float = 0.1


@dataclass
class Lease:
    """One issued lease: the task plus its liveness bookkeeping."""

    task: ShardTask
    token: int
    deadline: float | None = None
    heartbeat_path: Path | None = None
    hb_mtime: float | None = None
    hb_seen: float | None = None


@dataclass
class _TaskState:
    task: ShardTask
    status: str = PENDING
    attempts: int = 0
    token: int = 0
    lease: Lease | None = None
    error: str | None = None
    artifact: Path | None = None


class WorkQueue:
    """Lease-based shard queue with bounded retry and quarantine.

    Single-coordinator, many-worker: the coordinating process owns the
    queue and journal; workers (a local process pool today, remote
    hosts behind the same interface tomorrow) only ever see
    :class:`ShardTask` payloads and heartbeat file paths.
    """

    def __init__(
        self,
        tasks: list[ShardTask],
        *,
        policy: QueuePolicy | None = None,
        journal: RunJournal | None = None,
        run_dir: Path | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy or QueuePolicy()
        self.journal = journal
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.clock = clock
        self._states: dict[tuple[int, int], _TaskState] = {
            task.uid: _TaskState(task) for task in tasks
        }
        self._order = [task.uid for task in tasks]

    # -- introspection -------------------------------------------------

    def counts(self) -> dict[str, int]:
        out = {PENDING: 0, LEASED: 0, COMPLETED: 0, QUARANTINED: 0}
        for state in self._states.values():
            out[state.status] += 1
        return out

    @property
    def done(self) -> bool:
        return all(
            s.status in (COMPLETED, QUARANTINED) for s in self._states.values()
        )

    @property
    def has_pending(self) -> bool:
        return any(s.status == PENDING for s in self._states.values())

    def state_of(self, task: ShardTask) -> tuple[str, int]:
        state = self._states[task.uid]
        return state.status, state.attempts

    def quarantined(self) -> list[tuple[ShardTask, str, Path | None]]:
        """Quarantined tasks with their last error and artifact path."""
        return [
            (s.task, s.error or "", s.artifact)
            for uid in self._order
            if (s := self._states[uid]).status == QUARANTINED
        ]

    # -- lifecycle -----------------------------------------------------

    def mark_quarantined(
        self, task: ShardTask, *, error: str, artifact: Path | None = None
    ) -> None:
        """Pre-quarantine a task (resume honoring a prior run's verdict)."""
        state = self._states[task.uid]
        state.status = QUARANTINED
        state.error = error
        state.artifact = artifact

    def lease(self) -> Lease | None:
        """Issue a lease over the first pending task, in plan order."""
        for uid in self._order:
            state = self._states[uid]
            if state.status != PENDING:
                continue
            state.status = LEASED
            state.attempts += 1
            state.token += 1
            lease = Lease(task=state.task, token=state.token)
            if self.policy.shard_timeout is not None:
                lease.deadline = self.clock() + self.policy.shard_timeout
            if (
                self.run_dir is not None
                and self.policy.heartbeat_timeout is not None
            ):
                hb_dir = self.run_dir / "heartbeats"
                hb_dir.mkdir(parents=True, exist_ok=True)
                lease.heartbeat_path = hb_dir / (
                    f"{state.task.key[:16]}-{state.token}.hb"
                )
                lease.hb_seen = self.clock()
            state.lease = lease
            self._journal(
                {
                    "event": "lease",
                    "key": state.task.key,
                    "attempt": state.attempts,
                }
            )
            return lease
        return None

    def complete(self, task: ShardTask, *, cached: bool = False) -> bool:
        """Mark a task done; idempotent (False if it already was).

        Accepts completions from *expired* leases too — the result of a
        pure shard is the result no matter which lease computed it.
        """
        state = self._states[task.uid]
        if state.status in (COMPLETED, QUARANTINED):
            return False
        state.status = COMPLETED
        state.lease = None
        event: dict = {"event": "complete", "key": task.key}
        if cached:
            event["cached"] = True
        self._journal(event)
        return True

    def fail(self, lease: Lease, error: str) -> str:
        """Record a failed attempt; returns the task's new status.

        Stale leases (superseded by a re-lease, or the task already
        finished) are ignored so a timed-out straggler cannot burn the
        retry budget of the attempt that replaced it.
        """
        state = self._states[lease.task.uid]
        if state.status != LEASED or state.token != lease.token:
            return state.status
        state.error = error
        state.lease = None
        if state.attempts > self.policy.max_retries:
            state.status = QUARANTINED
            state.artifact = self._write_quarantine(state)
            self._journal(
                {
                    "event": "quarantine",
                    "key": state.task.key,
                    "attempts": state.attempts,
                    "error": error,
                    "artifact": state.artifact.name if state.artifact else None,
                }
            )
            return QUARANTINED
        state.status = PENDING
        self._journal(
            {
                "event": "retry",
                "key": state.task.key,
                "attempt": state.attempts,
                "error": error,
            }
        )
        return PENDING

    def expire_stale_leases(self) -> list[Lease]:
        """Expire leases past their deadline or with a dead heartbeat.

        Each expiry is a failed attempt routed through :meth:`fail`, so
        the retry bound (and eventual quarantine) applies to hangs and
        crashes exactly as to raised exceptions.  Returns the expired
        leases (for the executor to drop its future bookkeeping).
        """
        expired: list[Lease] = []
        for uid in self._order:
            state = self._states[uid]
            lease = state.lease
            if state.status != LEASED or lease is None:
                continue
            reason = self._expiry_reason(lease)
            if reason is not None:
                expired.append(lease)
                self.fail(lease, reason)
        return expired

    def _expiry_reason(self, lease: Lease) -> str | None:
        clock_now = self.clock()
        if lease.deadline is not None and clock_now > lease.deadline:
            return (
                f"lease expired: shard exceeded --shard-timeout "
                f"{self.policy.shard_timeout}s"
            )
        if (
            lease.heartbeat_path is not None
            and self.policy.heartbeat_timeout is not None
        ):
            try:
                mtime: float | None = lease.heartbeat_path.stat().st_mtime
            except OSError:
                mtime = None
            if mtime is not None and mtime != lease.hb_mtime:
                # The file advanced since we last looked: worker alive.
                lease.hb_mtime = mtime
                lease.hb_seen = clock_now
            elif (
                lease.hb_seen is not None
                and clock_now - lease.hb_seen > self.policy.heartbeat_timeout
            ):
                return (
                    "lease expired: worker heartbeat silent for "
                    f"{self.policy.heartbeat_timeout}s (crashed or wedged)"
                )
        return None

    # -- quarantine artifacts -----------------------------------------

    def _write_quarantine(self, state: _TaskState) -> Path | None:
        if self.run_dir is None:
            return None
        qdir = self.run_dir / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        path = qdir / quarantine_artifact_name(state.task)
        artifact = {
            "kind": "quarantined-shard",
            "exp_id": state.task.config.get("exp_id"),
            "tier": state.task.config.get("tier"),
            "seed": state.task.config.get("seed"),
            "module": state.task.module,
            "config": state.task.config,
            "shard": state.task.shard,
            "key": state.task.key,
            "attempts": state.attempts,
            "error": state.error,
        }
        fd, tmp = tempfile.mkstemp(dir=qdir, prefix=".shard-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(canonical_json(artifact) + "\n")
            os.replace(tmp, path)
        except BaseException:  # pragma: no cover - disk full etc.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def _journal(self, event: dict) -> None:
        if self.journal is not None:
            self.journal.append(event)


def quarantine_artifact_name(task: ShardTask) -> str:
    """Stable artifact filename for one shard (content-addressed)."""
    return f"shard-{task.key[:16]}.json"


def load_quarantined_shard(path: str | os.PathLike) -> dict:
    """Read and validate a quarantined-shard artifact file."""
    with open(path) as fh:
        artifact = json.load(fh)
    required = ("module", "config", "shard")
    if not isinstance(artifact, dict) or any(
        field_name not in artifact for field_name in required
    ):
        raise ValueError(
            f"{path}: not a quarantined-shard artifact "
            f"(required fields: {list(required)})"
        )
    return artifact


def replay_quarantined_shard(path: str | os.PathLike) -> dict:
    """Re-execute the exact shard a quarantine artifact describes.

    Raises whatever the shard raises — that traceback is the triage
    payload — and returns the shard result if the failure no longer
    reproduces.
    """
    artifact = load_quarantined_shard(path)
    result, _seconds = execute_shard_task(
        artifact["module"], artifact["config"], artifact["shard"]
    )
    return result


# -- worker side -------------------------------------------------------


def _beat(path: str, interval: float, stop: threading.Event) -> None:
    while not stop.wait(interval):
        try:
            Path(path).touch()
        except OSError:  # pragma: no cover - run dir vanished
            return


def execute_shard_task(
    module: str,
    config_dict: dict,
    shard: dict,
    heartbeat_path: str | None = None,
    heartbeat_interval: float = 1.0,
) -> tuple[dict, float]:
    """Worker entry point (top-level so it pickles across processes).

    Returns ``(result, seconds)`` with the execution time measured in
    the worker itself, so parallel runs attribute time correctly.
    While the shard computes, a daemon thread touches
    ``heartbeat_path`` every ``heartbeat_interval`` seconds — the
    queue's liveness signal.
    """
    stop: threading.Event | None = None
    if heartbeat_path is not None:
        Path(heartbeat_path).touch()
        stop = threading.Event()
        threading.Thread(
            target=_beat,
            args=(heartbeat_path, heartbeat_interval, stop),
            daemon=True,
        ).start()
    try:
        driver = importlib.import_module(module)
        t0 = time.perf_counter()
        result = driver.run_shard(RunConfig.from_json_dict(config_dict), shard)
        return result, time.perf_counter() - t0
    finally:
        if stop is not None:
            stop.set()


# -- coordinator loop --------------------------------------------------


def run_queue(
    queue: WorkQueue,
    *,
    jobs: int,
    on_result: Callable[[ShardTask, dict, float], None],
) -> None:
    """Drain the queue: lease, execute, retry, quarantine, until done.

    ``on_result`` fires exactly once per completed task (first result
    wins) in completion order; merge determinism comes from the plan,
    not from this callback's ordering.  With ``jobs <= 1`` shards run
    in-process (no pool, so hard timeouts cannot preempt a hung shard
    — they still bound *retries* of failing ones); with ``jobs > 1``
    a worker pool executes leases, is rebuilt if a worker crash breaks
    it, and expired leases are re-issued to surviving workers.
    """
    if jobs <= 1:
        _run_serial(queue, on_result)
    else:
        _run_pooled(queue, jobs, on_result)


def _run_serial(
    queue: WorkQueue, on_result: Callable[[ShardTask, dict, float], None]
) -> None:
    while True:
        lease = queue.lease()
        if lease is None:
            return
        task = lease.task
        try:
            result, seconds = execute_shard_task(
                task.module, task.config, task.shard
            )
        except Exception as exc:
            queue.fail(lease, f"{type(exc).__name__}: {exc}")
            continue
        if queue.complete(task):
            on_result(task, result, seconds)


def _run_pooled(
    queue: WorkQueue,
    jobs: int,
    on_result: Callable[[ShardTask, dict, float], None],
) -> None:
    pool = ProcessPoolExecutor(max_workers=jobs)
    in_flight: dict[Future, Lease] = {}
    try:
        while True:
            # Expired leases are re-issued below; their straggler
            # futures stay mapped — a late success still completes the
            # task idempotently.
            queue.expire_stale_leases()
            while len(in_flight) < jobs:
                lease = queue.lease()
                if lease is None:
                    break
                future = pool.submit(
                    execute_shard_task,
                    lease.task.module,
                    lease.task.config,
                    lease.task.shard,
                    str(lease.heartbeat_path)
                    if lease.heartbeat_path is not None
                    else None,
                    queue.policy.heartbeat_interval,
                )
                in_flight[future] = lease
            if not in_flight:
                return
            done, _ = wait(
                in_flight,
                timeout=queue.policy.poll_interval,
                return_when=FIRST_COMPLETED,
            )
            broken = False
            for future in done:
                lease = in_flight.pop(future)
                try:
                    result, seconds = future.result()
                except BrokenProcessPool:
                    queue.fail(lease, "worker process died (pool broke)")
                    broken = True
                except Exception as exc:
                    queue.fail(lease, f"{type(exc).__name__}: {exc}")
                else:
                    if queue.complete(lease.task):
                        on_result(lease.task, result, seconds)
            if broken:
                # Every in-flight future of a broken pool is lost:
                # fail their leases (bounded, so a shard that *kills*
                # its worker deterministically still quarantines) and
                # start a fresh pool for the re-issued leases.
                for future, lease in list(in_flight.items()):
                    queue.fail(lease, "worker process died (pool broke)")
                in_flight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=jobs)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
