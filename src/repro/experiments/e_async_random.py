"""EXP-ASYNC / EXP-RAND — the two Section 5 remarks, quantified.

1. *Asynchrony*: "time cannot be used to break symmetry" — swept as an
   asynchronous atlas per graph family: every symmetric pair runs
   against the mirror adversary plus a battery of seeded random and
   benign schedules through the batched schedule engine
   (:func:`repro.symmetry.async_feasibility_atlas`).  The mirror
   schedule never yields a node meeting (edge crossings only), while
   the *same* algorithm on the *same* pairs reaches node meetings as
   soon as the adversary's schedule itself breaks the symmetry — time
   is powerless, asymmetry (spatial or scheduled) is everything.
2. *Randomization*: "two random walks meet with high probability in
   time polynomial in the size of the graph" — empirical mean meeting
   times on rings, with a log-log growth fit confirming a low-degree
   polynomial.

The whole experiment is a pure function of its ``seed``: adversary
schedules and random-walk coin streams all derive from it via
:func:`repro.util.lcg.derive_seed` (determinism is regression-tested),
so shards recompute bit-identically on any worker process.

Sharded per probe unit: one shard per graph family (async atlas), one
for the benign non-symmetric probes, one per random-walk size rung;
the growth fit runs at merge time.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.baselines.random_walk import mean_meeting_time
from repro.core import make_universal_algorithm
from repro.core.profile import tuned_profile
from repro.experiments.records import ExperimentRecord
from repro.experiments.scenarios import RunConfig, ScenarioSpec, build_graph
from repro.sim.schedule_adversary import (
    EagerSchedule,
    MirrorSchedule,
    RandomSchedule,
    run_schedule_sweep,
)
from repro.symmetry.feasibility import (
    ASYNC_EDGE_MEETING_ONLY,
    ASYNC_NEVER_MEETS,
    ASYNC_NODE_MEETING,
    async_feasibility_atlas,
)
from repro.symmetry.views import symmetric_pairs
from repro.util.lcg import derive_seed

__all__ = ["run", "SCENARIO", "make_shards", "run_shard", "merge"]

#: Default experiment seed; the spec threads it to every shard, and
#: ``run(seed=...)`` / the orchestrator's ``seed`` option reroot every
#: derived stream (adversary schedules, random-walk coins) in one place.
DEFAULT_SEED = 1905

_FAMILIES = {
    "ring6": ["ring n=6", {"family": "oriented_ring", "n": 6}],
    "ring8": ["ring n=8", {"family": "oriented_ring", "n": 8}],
    "torus3": ["torus 3x3", {"family": "oriented_torus", "rows": 3, "cols": 3}],
    "ring12": ["ring n=12", {"family": "oriented_ring", "n": 12}],
    "torus4": ["torus 4x4", {"family": "oriented_torus", "rows": 4, "cols": 4}],
}

_FAST_FAMILIES = [_FAMILIES["ring6"], _FAMILIES["ring8"], _FAMILIES["torus3"]]

_NONSYM_CASES = [
    ["path P3 ends", {"family": "path", "n": 3}, 0, 2],
    ["path P4 (0,2)", {"family": "path", "n": 4}, 0, 2],
    ["star leaves", {"family": "star", "leaves": 3}, 1, 3],
]

SCENARIO = ScenarioSpec(
    exp_id="EXP-ASYNC/RAND",
    code_version=2,
    title="Section 5 remarks: asynchrony kills time; randomness is cheap",
    module="repro.experiments.e_async_random",
    shard_axis="probe unit (family atlas / benign probes / walk rung)",
    seed=DEFAULT_SEED,
    tiers={
        "smoke": {
            "families": [_FAMILIES["ring6"]],
            "events": 800,
            "adversary_seeds": 4,
            "nonsym_cases": _NONSYM_CASES,
            "walk_sizes": [6, 10],
            "walk_trials": 8,
        },
        "fast": {
            "families": _FAST_FAMILIES,
            "events": 2000,
            "adversary_seeds": 6,
            "nonsym_cases": _NONSYM_CASES,
            "walk_sizes": [6, 10, 14],
            "walk_trials": 15,
        },
        "full": {
            "families": _FAST_FAMILIES
            + [_FAMILIES["ring12"], _FAMILIES["torus4"]],
            "events": 20000,
            "adversary_seeds": 16,
            "nonsym_cases": _NONSYM_CASES,
            "walk_sizes": [6, 10, 14, 20, 26],
            "walk_trials": 60,
        },
        "stress": {
            "families": _FAST_FAMILIES
            + [
                _FAMILIES["ring12"],
                _FAMILIES["torus4"],
                ["ring n=16", {"family": "oriented_ring", "n": 16}],
                [
                    "torus 5x5",
                    {"family": "oriented_torus", "rows": 5, "cols": 5},
                ],
            ],
            "events": 50000,
            "adversary_seeds": 32,
            "nonsym_cases": _NONSYM_CASES,
            "walk_sizes": [6, 10, 14, 20, 26, 34, 44],
            "walk_trials": 100,
        },
    },
)


def _fit_order(sizes: list[int], times: list[float]) -> float:
    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(t, 1e-9)) for t in times]
    mx, my = sum(xs) / len(xs), sum(ys) / len(ys)
    return sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sum(
        (x - mx) ** 2 for x in xs
    )


def _probe_algorithm():
    return make_universal_algorithm(
        tuned_profile(view_mode="faithful", name="async-probe")
    )


def _schedules(seed: int, adversary_seeds: int):
    """The adversary battery — a pure function of the experiment seed."""
    return [MirrorSchedule(), EagerSchedule()] + [
        RandomSchedule(derive_seed("async-adversary", seed, i))
        for i in range(adversary_seeds)
    ]


def make_shards(config: RunConfig) -> list[dict]:
    params = config.params
    shards: list[dict] = [
        {"kind": "family", "name": name, "graph": graph_spec}
        for name, graph_spec in params["families"]
    ]
    shards.append({"kind": "nonsym", "cases": params["nonsym_cases"]})
    shards += [{"kind": "randwalk", "n": n} for n in params["walk_sizes"]]
    return shards


def run_shard(config: RunConfig, shard: dict) -> dict:
    kind = shard["kind"]

    if kind == "family":
        # Asynchronous atlas over one family's symmetric pairs, against
        # the mirror adversary and the seeded battery, in one batched
        # sweep.
        g = build_graph(shard["graph"])
        name = shard["name"]
        events = config.params["events"]
        schedules = _schedules(config.seed, config.params["adversary_seeds"])
        pairs = symmetric_pairs(g)
        atlas = async_feasibility_atlas(
            g, _probe_algorithm(), schedules, max_events=events, pairs=pairs
        )
        mirror_cells = [e for e in atlas if e.schedule.name == "mirror"]
        other_cells = [e for e in atlas if e.schedule.name != "mirror"]
        mirror_nodes = sum(
            e.meeting_class == ASYNC_NODE_MEETING for e in mirror_cells
        )
        mirror_kinds = Counter(e.meeting_class for e in mirror_cells)
        rescued = sum(
            e.meeting_class == ASYNC_NODE_MEETING for e in other_cells
        )
        # The complementary half of the claim must actually hold: some
        # asymmetric schedule rescues a node meeting on every family.
        return {
            "ok": mirror_nodes == 0 and rescued > 0,
            "rows": [
                {
                    "probe": "async/mirror (symmetric pairs)",
                    "instance": f"{name}: {len(mirror_cells)} pairs",
                    "outcome": (
                        f"0 node meetings in {events} events "
                        f"({mirror_kinds[ASYNC_EDGE_MEETING_ONLY]} edge-meeting-only, "
                        f"{mirror_kinds[ASYNC_NEVER_MEETS]} never-meet)"
                    ),
                },
                {
                    "probe": "async/asymmetric schedules",
                    "instance": (
                        f"{name}: {len(pairs)} pairs x "
                        f"{len(schedules) - 1} schedules"
                    ),
                    "outcome": (
                        f"{rescued}/{len(other_cells)} cells reach a node "
                        "meeting once the schedule itself is asymmetric"
                    ),
                },
            ],
        }

    if kind == "nonsym":
        # Benign scheduler on non-symmetric positions.
        algorithm = _probe_algorithm()
        eager = EagerSchedule()
        ok = True
        rows = []
        for name, graph_spec, u, v in shard["cases"]:
            g = build_graph(graph_spec)
            out = run_schedule_sweep(
                g, [(u, v, eager)], algorithm, max_events=500_000
            )[0]
            ok = ok and out.met
            rows.append(
                {
                    "probe": "async/eager (non-symmetric)",
                    "instance": name,
                    "outcome": (
                        f"met at node {out.meeting_node} "
                        f"after {out.events} events"
                    ),
                }
            )
        return {"ok": ok, "rows": rows}

    if kind == "randwalk":
        n = shard["n"]
        g = build_graph({"family": "oriented_ring", "n": n})
        mean, failures = mean_meeting_time(
            g,
            0,
            n // 2,
            0,
            trials=config.params["walk_trials"],
            seed=derive_seed("async-randwalk", config.seed, n),
        )
        return {
            "ok": failures == 0,
            "n": n,
            "mean": mean,
            "rows": [
                {
                    "probe": "randomized walks",
                    "instance": f"ring n={n}, antipodal",
                    "outcome": f"mean meeting time {mean:.0f} rounds",
                }
            ],
        }

    raise KeyError(f"unknown shard kind {kind!r}")


def merge(config: RunConfig, shard_results: list[dict]) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id=SCENARIO.exp_id,
        title=SCENARIO.title,
        paper_claim=(
            "Asynchronously, only space can break symmetry (the adversary "
            "owns the clock); with randomization, two walks meet w.h.p. in "
            "time polynomial in n."
        ),
        columns=["probe", "instance", "outcome"],
    )
    ok = True
    sizes = []
    means = []
    for result in shard_results:
        ok = ok and result["ok"]
        for row in result["rows"]:
            record.add_row(**row)
        if "mean" in result:
            sizes.append(result["n"])
            means.append(result["mean"])

    order = _fit_order(sizes, means)
    ok = ok and order < 4.0
    record.add_row(
        probe="randomized walks",
        instance="log-log fit over sizes",
        outcome=f"~ n^{order:.1f} (polynomial, as [39] predicts)",
    )

    record.passed = ok
    record.measured_summary = (
        "mirror adversary blocks every node meeting across all symmetric "
        "pairs of every family (edge crossings only) while asymmetric "
        "schedules and non-symmetric starts still meet; randomized walks "
        f"meet in ~n^{order:.1f} expected rounds (seed={config.seed})"
    )
    return record


def run(fast: bool = True, *, seed: int = DEFAULT_SEED) -> ExperimentRecord:
    """Legacy serial entry point (``fast`` maps onto the tier ladder)."""
    config = SCENARIO.config("fast" if fast else "full", seed=seed)
    return merge(config, [run_shard(config, s) for s in make_shards(config)])
