"""EXP-ASYNC / EXP-RAND — the two Section 5 remarks, quantified.

1. *Asynchrony*: "time cannot be used to break symmetry" — under the
   mirror adversary, the algorithms that win synchronously at
   ``delta >= Shrink`` never achieve a node meeting from symmetric
   positions, while non-symmetric positions still meet under a benign
   scheduler (space keeps working).
2. *Randomization*: "two random walks meet with high probability in
   time polynomial in the size of the graph" — empirical mean meeting
   times on rings and tori, with a log-log growth fit confirming a
   low-degree polynomial.
"""

from __future__ import annotations

import math

from repro.baselines.random_walk import mean_meeting_time
from repro.core import make_universal_algorithm
from repro.core.profile import tuned_profile
from repro.experiments.records import ExperimentRecord
from repro.graphs.families import (
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    torus_node,
)
from repro.sim.async_adversary import eager_adversary_run, mirror_adversary_run

__all__ = ["run"]


def _fit_order(sizes: list[int], times: list[float]) -> float:
    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(t, 1e-9)) for t in times]
    mx, my = sum(xs) / len(xs), sum(ys) / len(ys)
    return sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sum(
        (x - mx) ** 2 for x in xs
    )


def run(fast: bool = True) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id="EXP-ASYNC/RAND",
        title="Section 5 remarks: asynchrony kills time; randomness is cheap",
        paper_claim=(
            "Asynchronously, only space can break symmetry (the adversary "
            "owns the clock); with randomization, two walks meet w.h.p. in "
            "time polynomial in n."
        ),
        columns=["probe", "instance", "outcome"],
    )
    ok = True
    algorithm = make_universal_algorithm(
        tuned_profile(view_mode="faithful", name="async-probe")
    )

    # --- asynchronous mirror adversary on symmetric positions ---------
    sym_cases = [
        ("ring n=6 (0,3)", oriented_ring(6), 0, 3),
        ("torus 3x3 (0,(1,1))", oriented_torus(3, 3), 0, torus_node(1, 1, 3)),
    ]
    events = 2000 if fast else 20000
    for name, g, u, v in sym_cases:
        out = mirror_adversary_run(g, u, v, algorithm, max_events=events)
        ok = ok and not out.met
        record.add_row(
            probe="async/mirror (symmetric)",
            instance=name,
            outcome=f"no node meeting in {events} events "
            f"({out.edge_meetings} edge crossings)",
        )

    # --- asynchronous benign scheduler on non-symmetric positions -----
    nonsym_cases = [
        ("path P3 ends", path_graph(3), 0, 2),
        ("star leaves", star_graph(3), 1, 3),
    ]
    for name, g, u, v in nonsym_cases:
        out = eager_adversary_run(g, u, v, algorithm, max_events=500_000)
        ok = ok and out.met
        record.add_row(
            probe="async/eager (non-symmetric)",
            instance=name,
            outcome=f"met at node {out.meeting_node} after {out.events} events",
        )

    # --- randomized scaling -------------------------------------------
    sizes = [6, 10, 14] if fast else [6, 10, 14, 20, 26]
    trials = 15 if fast else 60
    means = []
    for n in sizes:
        g = oriented_ring(n)
        mean, failures = mean_meeting_time(
            g, 0, n // 2, 0, trials=trials, seed=99
        )
        ok = ok and failures == 0
        means.append(mean)
        record.add_row(
            probe="randomized walks",
            instance=f"ring n={n}, antipodal",
            outcome=f"mean meeting time {mean:.0f} rounds",
        )
    order = _fit_order(sizes, means)
    ok = ok and order < 4.0
    record.add_row(
        probe="randomized walks",
        instance="log-log fit over sizes",
        outcome=f"~ n^{order:.1f} (polynomial, as [39] predicts)",
    )

    record.passed = ok
    record.measured_summary = (
        "mirror adversary blocks every node meeting from symmetric starts "
        "while space-based meetings survive benign asynchrony; randomized "
        f"walks meet in ~n^{order:.1f} expected rounds"
    )
    return record
