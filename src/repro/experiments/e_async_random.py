"""EXP-ASYNC / EXP-RAND — the two Section 5 remarks, quantified.

1. *Asynchrony*: "time cannot be used to break symmetry" — swept as an
   asynchronous atlas per graph family: every symmetric pair runs
   against the mirror adversary plus a battery of seeded random and
   benign schedules through the batched schedule engine
   (:func:`repro.symmetry.async_feasibility_atlas`).  The mirror
   schedule never yields a node meeting (edge crossings only), while
   the *same* algorithm on the *same* pairs reaches node meetings as
   soon as the adversary's schedule itself breaks the symmetry — time
   is powerless, asymmetry (spatial or scheduled) is everything.
2. *Randomization*: "two random walks meet with high probability in
   time polynomial in the size of the graph" — empirical mean meeting
   times on rings, with a log-log growth fit confirming a low-degree
   polynomial.

The whole experiment is a pure function of its ``seed``: adversary
schedules and random-walk coin streams all derive from it via
:func:`repro.util.lcg.derive_seed` (determinism is regression-tested).
"""

from __future__ import annotations

import math
from collections import Counter

from repro.baselines.random_walk import mean_meeting_time
from repro.core import make_universal_algorithm
from repro.core.profile import tuned_profile
from repro.experiments.records import ExperimentRecord
from repro.graphs.families import (
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
)
from repro.sim.schedule_adversary import (
    EagerSchedule,
    MirrorSchedule,
    RandomSchedule,
    run_schedule_sweep,
)
from repro.symmetry.feasibility import (
    ASYNC_EDGE_MEETING_ONLY,
    ASYNC_NEVER_MEETS,
    ASYNC_NODE_MEETING,
    async_feasibility_atlas,
)
from repro.symmetry.views import symmetric_pairs
from repro.util.lcg import derive_seed

__all__ = ["run"]

#: Default experiment seed; ``run(seed=...)`` reroots every derived
#: stream (adversary schedules, random-walk coins) in one place.
DEFAULT_SEED = 1905


def _fit_order(sizes: list[int], times: list[float]) -> float:
    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(t, 1e-9)) for t in times]
    mx, my = sum(xs) / len(xs), sum(ys) / len(ys)
    return sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sum(
        (x - mx) ** 2 for x in xs
    )


def run(fast: bool = True, *, seed: int = DEFAULT_SEED) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id="EXP-ASYNC/RAND",
        title="Section 5 remarks: asynchrony kills time; randomness is cheap",
        paper_claim=(
            "Asynchronously, only space can break symmetry (the adversary "
            "owns the clock); with randomization, two walks meet w.h.p. in "
            "time polynomial in n."
        ),
        columns=["probe", "instance", "outcome"],
    )
    ok = True
    algorithm = make_universal_algorithm(
        tuned_profile(view_mode="faithful", name="async-probe")
    )

    # --- asynchronous atlas over symmetric pairs ----------------------
    # Every symmetric pair of each family, against the mirror adversary
    # and a battery of seeded random schedules, in one batched sweep
    # per family.
    families = [
        ("ring n=6", oriented_ring(6)),
        ("ring n=8", oriented_ring(8)),
        ("torus 3x3", oriented_torus(3, 3)),
    ]
    if not fast:
        families.append(("ring n=12", oriented_ring(12)))
        families.append(("torus 4x4", oriented_torus(4, 4)))
    events = 2000 if fast else 20000
    adversary_seeds = 6 if fast else 16
    schedules = [MirrorSchedule(), EagerSchedule()] + [
        RandomSchedule(derive_seed("async-adversary", seed, i))
        for i in range(adversary_seeds)
    ]
    for name, g in families:
        pairs = symmetric_pairs(g)
        atlas = async_feasibility_atlas(
            g, algorithm, schedules, max_events=events, pairs=pairs
        )
        mirror_cells = [e for e in atlas if e.schedule.name == "mirror"]
        other_cells = [e for e in atlas if e.schedule.name != "mirror"]
        mirror_nodes = sum(
            e.meeting_class == ASYNC_NODE_MEETING for e in mirror_cells
        )
        ok = ok and mirror_nodes == 0
        mirror_kinds = Counter(e.meeting_class for e in mirror_cells)
        record.add_row(
            probe="async/mirror (symmetric pairs)",
            instance=f"{name}: {len(mirror_cells)} pairs",
            outcome=(
                f"0 node meetings in {events} events "
                f"({mirror_kinds[ASYNC_EDGE_MEETING_ONLY]} edge-meeting-only, "
                f"{mirror_kinds[ASYNC_NEVER_MEETS]} never-meet)"
            ),
        )
        rescued = sum(
            e.meeting_class == ASYNC_NODE_MEETING for e in other_cells
        )
        # The complementary half of the claim must actually hold: some
        # asymmetric schedule rescues a node meeting on every family.
        ok = ok and rescued > 0
        record.add_row(
            probe="async/asymmetric schedules",
            instance=(
                f"{name}: {len(pairs)} pairs x "
                f"{len(schedules) - 1} schedules"
            ),
            outcome=(
                f"{rescued}/{len(other_cells)} cells reach a node meeting "
                "once the schedule itself is asymmetric"
            ),
        )

    # --- benign scheduler on non-symmetric positions ------------------
    nonsym_cases = [
        ("path P3 ends", path_graph(3), 0, 2),
        ("path P4 (0,2)", path_graph(4), 0, 2),
        ("star leaves", star_graph(3), 1, 3),
    ]
    eager = EagerSchedule()
    for name, g, u, v in nonsym_cases:
        out = run_schedule_sweep(
            g, [(u, v, eager)], algorithm, max_events=500_000
        )[0]
        ok = ok and out.met
        record.add_row(
            probe="async/eager (non-symmetric)",
            instance=name,
            outcome=f"met at node {out.meeting_node} after {out.events} events",
        )

    # --- randomized scaling -------------------------------------------
    sizes = [6, 10, 14] if fast else [6, 10, 14, 20, 26]
    trials = 15 if fast else 60
    means = []
    for n in sizes:
        g = oriented_ring(n)
        mean, failures = mean_meeting_time(
            g,
            0,
            n // 2,
            0,
            trials=trials,
            seed=derive_seed("async-randwalk", seed, n),
        )
        ok = ok and failures == 0
        means.append(mean)
        record.add_row(
            probe="randomized walks",
            instance=f"ring n={n}, antipodal",
            outcome=f"mean meeting time {mean:.0f} rounds",
        )
    order = _fit_order(sizes, means)
    ok = ok and order < 4.0
    record.add_row(
        probe="randomized walks",
        instance="log-log fit over sizes",
        outcome=f"~ n^{order:.1f} (polynomial, as [39] predicts)",
    )

    record.passed = ok
    record.measured_summary = (
        "mirror adversary blocks every node meeting across all symmetric "
        "pairs of every family (edge crossings only) while asymmetric "
        "schedules and non-symmetric starts still meet; randomized walks "
        f"meet in ~n^{order:.1f} expected rounds (seed={seed})"
    )
    return record
