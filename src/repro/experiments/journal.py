"""Checkpointed run state: the append-only run journal.

A **run** is one invocation of the orchestrator over a planned set of
shards.  Its journal is a file of canonical-JSON lines (one event per
line, flushed and fsynced as written) under the cache directory::

    <cache-dir>/runs/<run-id>/journal.jsonl     the event log
    <cache-dir>/runs/<run-id>/quarantine/       poison-shard artifacts

Events (``{"event": ..., ...}``):

``plan``
    Run header: run id, tier, seed, and — per experiment — the exp id
    and every planned shard key *in merge order*.  This is the durable
    shard descriptor set: merge order comes from this plan, never from
    completion order, which is what makes a killed-and-resumed run
    byte-identical to an uninterrupted one.
``resume``
    A later invocation re-attached to the run.
``lease`` / ``retry`` / ``complete`` / ``quarantine``
    Per-shard lifecycle, keyed by the shard's content address.

The journal is **crash-tolerant by construction**: appends are single
lines, so the only possible corruption from a SIGKILL is a truncated
final line, which :func:`replay_journal` detects and drops.  Replay
folds the event stream into a :class:`RunState` — the per-key status
a resumed run (or ``repro campaign status``) starts from.

Run ids are *content-derived* (:func:`derive_run_id`): the SHA-256 of
the planned key set.  The same selection, tier, and seed always maps
to the same run id, so ``--resume`` without an explicit id re-attaches
to exactly the run the same command line started earlier.

Nothing here reads a wall clock or OS entropy — the journal is a pure
function of the planned work and the execution events, per the repo's
determinism contract (docs/static_analysis.md).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from repro.util.encoding import canonical_json

__all__ = [
    "JOURNAL_NAME",
    "QUARANTINE_DIR",
    "RUNS_DIR",
    "derive_run_id",
    "run_dir",
    "list_runs",
    "RunJournal",
    "RunState",
    "replay_journal",
]

#: File names inside ``<cache-dir>/runs/<run-id>/``.
JOURNAL_NAME = "journal.jsonl"
QUARANTINE_DIR = "quarantine"

#: Sub-directory of the cache root holding all run state.
RUNS_DIR = "runs"

#: Journal format version, recorded in the ``plan`` event.
JOURNAL_VERSION = 1


def derive_run_id(plan: list[tuple[str, list[str]]], tier: str, seed: Any) -> str:
    """Content-derived run id over the planned ``(exp_id, keys)`` sets.

    Shard keys already hash the config, params, shard payloads, and
    code versions, so two invocations get the same run id exactly when
    they would execute the same work — which is precisely when
    ``--resume`` should re-attach.
    """
    payload = {
        "experiments": [{"exp_id": e, "keys": ks} for e, ks in plan],
        "tier": tier,
        "seed": seed,
    }
    digest = hashlib.sha256(canonical_json(payload).encode()).hexdigest()
    return f"run-{digest[:12]}"


def run_dir(cache_root: str | os.PathLike, run_id: str) -> Path:
    """Directory holding one run's journal and quarantine artifacts."""
    return Path(cache_root) / RUNS_DIR / run_id


def list_runs(cache_root: str | os.PathLike) -> list[str]:
    """Run ids with a journal under ``cache_root``, sorted."""
    base = Path(cache_root) / RUNS_DIR
    if not base.is_dir():
        return []
    return sorted(
        p.name for p in base.iterdir() if (p / JOURNAL_NAME).is_file()
    )


class RunJournal:
    """Append-only event log of one run (crash-safe line appends).

    Opened in append mode; every :meth:`append` writes exactly one
    canonical-JSON line and fsyncs it, so a SIGKILL can lose at most
    the line being written — never reorder or corrupt earlier ones.
    """

    def __init__(self, path: str | os.PathLike, *, fresh: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] = open(self.path, "w" if fresh else "a")

    def append(self, event: dict) -> None:
        self._fh.write(canonical_json(event) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - double close
            pass

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass
class RunState:
    """Folded journal state: what a resume (or a status query) sees."""

    run_id: str = ""
    tier: str = ""
    seed: Any = None
    #: exp_id -> planned shard keys, in merge order.
    planned: dict[str, list[str]] = field(default_factory=dict)
    #: shard key -> "leased" | "completed" | "quarantined".
    status: dict[str, str] = field(default_factory=dict)
    #: shard key -> execution attempts observed so far.
    attempts: dict[str, int] = field(default_factory=dict)
    #: shard key -> quarantine artifact filename (within quarantine/).
    artifacts: dict[str, str] = field(default_factory=dict)
    #: shard key -> last recorded error string.
    errors: dict[str, str] = field(default_factory=dict)
    #: number of ``resume`` events seen.
    resumes: int = 0
    #: True when the final line was truncated (dropped during replay).
    truncated_tail: bool = False

    def keys_with(self, status: str) -> list[str]:
        return sorted(k for k, s in self.status.items() if s == status)

    def counts(self) -> dict[str, int]:
        planned = sum(len(ks) for ks in self.planned.values())
        completed = sum(1 for s in self.status.values() if s == "completed")
        leased = sum(1 for s in self.status.values() if s == "leased")
        quarantined = sum(
            1 for s in self.status.values() if s == "quarantined"
        )
        return {
            "planned": planned,
            "completed": completed,
            "leased": leased,
            "quarantined": quarantined,
            "pending": max(planned - completed - leased - quarantined, 0),
        }


def _fold(state: RunState, event: dict) -> None:
    kind = event.get("event")
    key = event.get("key")
    if kind == "plan":
        state.run_id = event.get("run_id", state.run_id)
        state.tier = event.get("tier", state.tier)
        state.seed = event.get("seed", state.seed)
        state.planned = {
            exp["exp_id"]: list(exp["keys"])
            for exp in event.get("experiments", [])
        }
    elif kind == "resume":
        state.resumes += 1
    elif kind == "lease" and isinstance(key, str):
        # A lease over a completed shard never happens; over a
        # quarantined one only via an explicit retry (fresh run).
        if state.status.get(key) != "completed":
            state.status[key] = "leased"
        state.attempts[key] = max(
            state.attempts.get(key, 0), int(event.get("attempt", 1))
        )
    elif kind == "retry" and isinstance(key, str):
        if state.status.get(key) == "leased":
            del state.status[key]  # back to pending
        if "error" in event:
            state.errors[key] = str(event["error"])
    elif kind == "complete" and isinstance(key, str):
        state.status[key] = "completed"
    elif kind == "quarantine" and isinstance(key, str):
        state.status[key] = "quarantined"
        state.attempts[key] = max(
            state.attempts.get(key, 0), int(event.get("attempts", 1))
        )
        if "artifact" in event:
            state.artifacts[key] = str(event["artifact"])
        if "error" in event:
            state.errors[key] = str(event["error"])


def replay_journal(path: str | os.PathLike) -> RunState:
    """Fold a journal file into a :class:`RunState`.

    Tolerates exactly the corruption a SIGKILL can produce: a
    truncated (unparseable) **final** line is dropped and flagged via
    ``truncated_tail``.  An unparseable line *before* the end means
    the file was damaged by something other than an append-crash and
    raises ``ValueError`` rather than silently skipping events.
    """
    state = RunState()
    with open(path) as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # trailing newline of a cleanly-written file
    for index, line in enumerate(lines):
        try:
            event = json_roundtrip_line(line)
        except ValueError:
            if index == len(lines) - 1:
                state.truncated_tail = True
                break
            raise ValueError(
                f"{path}: corrupt journal line {index + 1} "
                "(not the final line, so not an append-crash artifact)"
            )
        _fold(state, event)
    return state


def json_roundtrip_line(line: str) -> dict:
    """Parse one journal line, requiring a JSON object."""
    try:
        event = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(str(exc)) from exc
    if not isinstance(event, dict):
        raise ValueError(f"journal line is not an object: {line[:80]!r}")
    return event

