"""Content-addressed result store for experiment shards.

Every shard of every experiment is cached on disk under a key that is
the SHA-256 of the canonical JSON of everything that determines its
result::

    {exp_id, tier, seed, params, shard, salt}

where ``salt`` combines the store's format version with the driver's
``code_version`` (bumped whenever a driver's semantics change).  A
cache hit therefore guarantees the stored payload is what the shard
would recompute; any change to the spec, the seed, the shard payload,
or the driver version changes the key and transparently invalidates
the entry.  Interrupted runs resume for free: completed shards are
already on disk, only missing ones recompute.

Entries are plain JSON files (``<root>/<key[:2]>/<key>.json``) written
atomically, so a store survives crashes and can be inspected, diffed,
or garbage-collected with ordinary shell tools.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.experiments.scenarios import RunConfig

__all__ = [
    "STORE_VERSION",
    "DEFAULT_CACHE_DIR",
    "canonical_json",
    "shard_key",
    "ResultStore",
]

#: Format version; participates in every key, so bumping it invalidates
#: the whole store at once.
STORE_VERSION = 1

#: Default on-disk location (relative to the invoking directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def canonical_json(obj) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def json_roundtrip(obj):
    """Normalize a payload to what a store read would return.

    The orchestrator passes every shard result through this even when
    caching is off, so merged records are bit-identical between cold,
    warm, and cache-disabled runs.
    """
    return json.loads(canonical_json(obj))


def shard_key(config: RunConfig, shard: dict, code_version: int) -> str:
    """Content address of one shard result."""
    payload = {
        "exp_id": config.exp_id,
        "tier": config.tier,
        "seed": config.seed,
        "params": config.params,
        "shard": shard,
        "salt": f"{STORE_VERSION}:{code_version}",
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


class ResultStore:
    """Content-addressed JSON-on-disk cache of shard results."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Return the stored data payload, or None (missing/corrupt)."""
        entry = self._load_entry(self.path_for(key), key)
        return None if entry is None else entry["data"]

    @staticmethod
    def _load_entry(path: Path, key: str) -> dict | None:
        """Parse and validate one entry file against its claimed key."""
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("key") != key
            or "data" not in entry
        ):
            return None
        return entry

    def put(self, key: str, data: dict, meta: dict | None = None) -> None:
        """Atomically persist one shard result."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "meta": meta or {}, "data": data}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(entry, sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> list[str]:
        """Keys of every *valid* entry, sorted.

        An on-disk ``*.json`` file only counts when :meth:`get` would
        serve it: it parses, carries its own key, matches its filename
        and bucket directory, and has a data payload.  Corrupt or
        foreign files therefore no longer inflate ``--shard-status``
        style occupancy reports; :meth:`prune` deletes them.
        """
        return sorted(key for key, _path in self._valid_entries())

    def _valid_entries(self) -> list[tuple[str, Path]]:
        if not self.root.is_dir():
            return []
        out = []
        for path in self.root.glob("??/*.json"):
            key = path.stem
            if path == self.path_for(key) and self._load_entry(path, key):
                out.append((key, path))
        return out

    def prune(self) -> list[Path]:
        """Delete files :meth:`get` would reject; returns what was removed.

        Covers corrupt/truncated entries, foreign ``*.json`` files
        (wrong name or misfiled bucket), and stale ``*.tmp`` files left
        behind by interrupted atomic writes.  Valid entries are
        untouched, so a prune never costs recomputation.
        """
        if not self.root.is_dir():
            return []
        removed: list[Path] = []
        for path in self.root.glob("??/*.json"):
            key = path.stem
            if path != self.path_for(key) or self._load_entry(path, key) is None:
                removed.append(path)
        removed.extend(self.root.glob("??/.*.tmp"))
        for path in removed:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing deleter
                pass
        return sorted(removed)

    def __len__(self) -> int:
        return len(self.keys())
