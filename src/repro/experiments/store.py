"""Content-addressed result store for experiment shards.

Every shard of every experiment is cached under a key that is the
SHA-256 of the canonical JSON of everything that determines its
result::

    {exp_id, tier, seed, params, shard, salt}

where ``salt`` combines the store's format version with the driver's
``code_version`` (bumped whenever a driver's semantics change).  A
cache hit therefore guarantees the stored payload is what the shard
would recompute; any change to the spec, the seed, the shard payload,
or the driver version changes the key and transparently invalidates
the entry.  Interrupted runs resume for free: completed shards are
already on disk, only missing ones recompute.

How bytes reach disk is delegated to a pluggable **backend**
(:class:`StoreBackend`):

* :class:`LocalDirBackend` (default) — plain JSON files
  (``<root>/<key[:2]>/<key>.json``) written atomically, so a store
  survives crashes and can be inspected, diffed, or garbage-collected
  with ordinary shell tools;
* :class:`SharedDirBackend` — the same layout hardened for many
  concurrent writer *processes* (the work-queue's pooled workers, or
  several campaign runs sharing one cache): entries are write-once
  (first writer wins, so concurrent writers never replace a file a
  reader has open) and fsynced for crash durability.  Reads stay
  lock-free in both backends.

Register additional backends (a remote/object-store backend is the
roadmap's item-3 target) with :func:`register_store_backend`.

``canonical_json`` / ``json_roundtrip`` historically lived here and
are re-exported; their home is :mod:`repro.util.encoding`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Protocol, runtime_checkable

from repro.experiments.scenarios import RunConfig
from repro.util.encoding import canonical_json, json_roundtrip

__all__ = [
    "STORE_VERSION",
    "DEFAULT_CACHE_DIR",
    "canonical_json",
    "json_roundtrip",
    "shard_key",
    "StoreBackend",
    "LocalDirBackend",
    "SharedDirBackend",
    "STORE_BACKENDS",
    "register_store_backend",
    "GcReport",
    "ResultStore",
]

#: Format version; participates in every key, so bumping it invalidates
#: the whole store at once.
STORE_VERSION = 1

#: Default on-disk location (relative to the invoking directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def shard_key(config: RunConfig, shard: dict, code_version: int) -> str:
    """Content address of one shard result."""
    payload = {
        "exp_id": config.exp_id,
        "tier": config.tier,
        "seed": config.seed,
        "params": config.params,
        "shard": shard,
        "salt": f"{STORE_VERSION}:{code_version}",
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@runtime_checkable
class StoreBackend(Protocol):
    """How entry text reaches and leaves durable storage.

    Backends deal in raw entry *text* addressed by key; parsing,
    validation against the claimed key, and canonical-JSON semantics
    stay in :class:`ResultStore`, so every backend inherits them
    bit-identically.
    """

    root: Path

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (for reports/diagnostics)."""
        ...

    def read(self, key: str) -> str | None:
        """Entry text for ``key``, or None if absent/unreadable."""
        ...

    def write(self, key: str, text: str) -> None:
        """Durably persist entry text under ``key``."""
        ...

    def delete(self, path: Path) -> bool:
        """Remove one file; False if it was already gone."""
        ...

    def entry_files(self) -> list[Path]:
        """Every candidate entry file (``??/*.json``), sorted."""
        ...

    def stray_files(self) -> list[Path]:
        """Leftover temp files from interrupted writes, sorted."""
        ...


class LocalDirBackend:
    """Atomic-file JSON backend — the default local cache layout."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def read(self, key: str) -> str | None:
        try:
            return self.path_for(key).read_text()
        except OSError:
            return None

    def write(self, key: str, text: str) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
                self._flush(fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _flush(self, fh) -> None:  # SharedDirBackend adds fsync
        pass

    def delete(self, path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:  # pragma: no cover - racing deleter
            return False

    def entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def stray_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/.*.tmp"))


class SharedDirBackend(LocalDirBackend):
    """Multi-process variant: write-once entries, fsynced, lock-free reads.

    Designed for many pooled worker processes (or several campaign
    runs) sharing one cache directory:

    * **write-once** — if a parseable entry already claims the key,
      the write is skipped instead of replacing the file, so two
      workers that raced on the same shard never swap a file out from
      under a concurrent reader (results are pure functions of the
      key, so both texts are byte-identical anyway; corrupt leftovers
      *are* replaced);
    * **fsync on write** — an entry that a worker reported as cached
      survives the host crashing right after, which is what the run
      journal's zero-recompute resume accounting relies on.

    Reads are the same lock-free single ``read_text`` as the local
    backend; atomic ``os.replace`` guarantees a reader never observes
    a half-written entry in either backend.
    """

    def write(self, key: str, text: str) -> None:
        existing = self.read(key)
        if existing is not None:
            try:
                entry = json.loads(existing)
                if isinstance(entry, dict) and entry.get("key") == key:
                    return  # first writer won; keep readers undisturbed
            except json.JSONDecodeError:
                pass  # corrupt: fall through and repair in place
        super().write(key, text)

    def _flush(self, fh) -> None:
        fh.flush()
        os.fsync(fh.fileno())


#: Backend name -> factory taking the store root.  ``--store-backend``
#: style knobs and :class:`ResultStore` both resolve through this, so a
#: registered remote backend is immediately addressable everywhere.
STORE_BACKENDS: dict[str, Callable[[str | os.PathLike], StoreBackend]] = {
    "local": LocalDirBackend,
    "shared": SharedDirBackend,
}


def register_store_backend(
    name: str, factory: Callable[[str | os.PathLike], StoreBackend]
) -> None:
    """Add a store backend (e.g. a remote/object-store implementation)."""
    STORE_BACKENDS[name] = factory


@dataclass(frozen=True)
class GcReport:
    """What one :meth:`ResultStore.gc` pass did (or would do)."""

    removed: list[str] = field(default_factory=list)
    freed_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0
    dry_run: bool = False


class ResultStore:
    """Content-addressed JSON-on-disk cache of shard results."""

    def __init__(
        self,
        root: str | os.PathLike = DEFAULT_CACHE_DIR,
        backend: str | StoreBackend = "local",
    ):
        if isinstance(backend, str):
            if backend not in STORE_BACKENDS:
                raise KeyError(
                    f"unknown store backend {backend!r}; "
                    f"known: {sorted(STORE_BACKENDS)}"
                )
            backend = STORE_BACKENDS[backend](root)
        self.backend = backend
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.backend.path_for(key)

    def get(self, key: str) -> dict | None:
        """Return the stored data payload, or None (missing/corrupt)."""
        entry = self._parse_entry(self.backend.read(key), key)
        return None if entry is None else entry["data"]

    @staticmethod
    def _parse_entry(text: str | None, key: str) -> dict | None:
        """Parse and validate one entry's text against its claimed key."""
        if text is None:
            return None
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("key") != key
            or "data" not in entry
        ):
            return None
        return entry

    def put(self, key: str, data: dict, meta: dict | None = None) -> None:
        """Durably persist one shard result (atomicity per backend)."""
        entry = {"key": key, "meta": meta or {}, "data": data}
        self.backend.write(key, json.dumps(entry, sort_keys=True))

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> list[str]:
        """Keys of every *valid* entry, sorted.

        An on-disk ``*.json`` file only counts when :meth:`get` would
        serve it: it parses, carries its own key, matches its filename
        and bucket directory, and has a data payload.  Corrupt or
        foreign files therefore no longer inflate ``--shard-status``
        style occupancy reports; :meth:`prune` deletes them.
        """
        return sorted(key for key, _path in self._valid_entries())

    def _valid_entries(self) -> list[tuple[str, Path]]:
        out = []
        for path in self.backend.entry_files():
            key = path.stem
            if path != self.backend.path_for(key):
                continue
            try:
                text: str | None = path.read_text()
            except OSError:
                text = None
            if self._parse_entry(text, key):
                out.append((key, path))
        return out

    def prune(self) -> list[Path]:
        """Delete files :meth:`get` would reject; returns what was removed.

        Covers corrupt/truncated entries, foreign ``*.json`` files
        (wrong name or misfiled bucket), and stale ``*.tmp`` files left
        behind by interrupted atomic writes.  Valid entries are
        untouched, so a prune never costs recomputation.
        """
        removed: list[Path] = []
        for path in self.backend.entry_files():
            key = path.stem
            try:
                text: str | None = path.read_text()
            except OSError:
                text = None
            if path != self.backend.path_for(key) or self._parse_entry(
                text, key
            ) is None:
                removed.append(path)
        removed.extend(self.backend.stray_files())
        for path in removed:
            self.backend.delete(path)
        return sorted(removed)

    def gc(
        self,
        *,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
        dry_run: bool = False,
    ) -> GcReport:
        """Age/size-bounded garbage collection (LRU by mtime); default off.

        With ``max_age_days``, entries whose mtime is more than that
        many days behind ``now`` are removed.  With ``max_bytes``, the
        **oldest** entries are then evicted until the surviving valid
        entries fit the budget.  Both bounds may be combined; with
        neither, the pass is a no-op (a long-lived cache never
        self-destructs by accident).

        ``now`` defaults to the *newest entry's mtime* — ages are
        measured relative to the most recent write, not the wall clock,
        so a gc pass is a pure function of the directory state
        (replayable in tests, immune to clock skew on shared storage).
        Pass an explicit ``now`` (e.g. from the CLI) for calendar-time
        policies.  ``dry_run`` reports what would be removed without
        deleting.  Corrupt/foreign files are :meth:`prune`'s job, not
        gc's.
        """
        entries = []
        for key, path in self._valid_entries():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - racing deleter
                continue
            entries.append((key, path, stat.st_size, stat.st_mtime))
        if not entries or (max_bytes is None and max_age_days is None):
            total = sum(size for _, _, size, _ in entries)
            return GcReport(kept=len(entries), kept_bytes=total, dry_run=dry_run)

        if now is None:
            now = max(mtime for _, _, _, mtime in entries)
        # Oldest first; path tie-break keeps eviction order deterministic.
        entries.sort(key=lambda e: (e[3], str(e[1])))
        doomed: list[tuple[str, Path, int, float]] = []
        if max_age_days is not None:
            cutoff = now - max_age_days * 86400.0
            while entries and entries[0][3] < cutoff:
                doomed.append(entries.pop(0))
        if max_bytes is not None:
            kept_bytes = sum(size for _, _, size, _ in entries)
            while entries and kept_bytes > max_bytes:
                victim = entries.pop(0)
                kept_bytes -= victim[2]
                doomed.append(victim)
        if not dry_run:
            for _key, path, _size, _mtime in doomed:
                self.backend.delete(path)
        return GcReport(
            removed=sorted(key for key, _, _, _ in doomed),
            freed_bytes=sum(size for _, _, size, _ in doomed),
            kept=len(entries),
            kept_bytes=sum(size for _, _, size, _ in entries),
            dry_run=dry_run,
        )

    def __len__(self) -> int:
        return len(self.keys())
