"""EXP-L32 — Lemma 3.2 / 3.3: dedicated SymmRV with known parameters.

For symmetric positions with ``delta >= d = Shrink(u, v)`` and known
``(n, d, delta)``, Procedure SymmRV must achieve rendezvous within
``T(n, d, delta)`` rounds (Lemma 3.3).  We sweep the example families,
run the dedicated procedure, and compare the measured meeting time
against the bound — also exposing the bound's ``(n-1)^d`` exponential
term by sweeping ``d`` on tori (where ``d = dist`` can be driven up).
"""

from __future__ import annotations

from repro.core.bounds import symm_rv_time_bound
from repro.core.symm_rv import make_symm_rv_algorithm
from repro.core.uxs import is_uxs_for_graph
from repro.core.profile import TUNED
from repro.experiments.records import ExperimentRecord
from repro.graphs.families import (
    complete_graph,
    hypercube,
    mirror_node,
    oriented_ring,
    oriented_torus,
    symmetric_tree,
    torus_node,
    two_node_graph,
)
from repro.sim.scheduler import run_rendezvous
from repro.symmetry.shrink import shrink

__all__ = ["run", "dedicated_symm_rv"]


def dedicated_symm_rv(graph, u, v, delta, *, uxs=None, extra_delta=0):
    """Run dedicated ``SymmRV(n, Shrink, delta)`` on one symmetric STIC.

    Returns ``(result, d, bound)``.  ``extra_delta`` lets callers run
    with a delay exceeding Shrink (the procedure is told the true
    delay, as Section 3.1 assumes).
    """
    n = graph.n
    d = shrink(graph, u, v)
    if uxs is None:
        uxs = TUNED.uxs(n)
    if not is_uxs_for_graph(graph, uxs):
        raise AssertionError("exploration sequence does not cover this graph")
    delta = max(delta, d) + extra_delta
    bound = symm_rv_time_bound(n, d, delta, len(uxs))
    algorithm = make_symm_rv_algorithm(n, d, delta, uxs=uxs)
    result = run_rendezvous(
        graph, u, v, delta, algorithm, max_rounds=2 * bound + delta + 10
    )
    return result, d, bound


def run(fast: bool = True) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id="EXP-L32",
        title="SymmRV with known parameters (Lemmas 3.2 and 3.3)",
        paper_claim=(
            "From symmetric positions with delta >= Shrink(u, v) and known "
            "(n, d, delta), SymmRV achieves rendezvous within "
            "T(n, d, delta) = [(d+delta)(n-1)^d](M+2) + 2(M+1) rounds."
        ),
        columns=["graph", "pair", "d=Shrink", "delta", "met", "time", "T bound"],
    )
    cases = [
        ("two-node", two_node_graph(), 0, 1, 0),
        ("ring n=5", oriented_ring(5), 0, 2, 0),
        ("ring n=6", oriented_ring(6), 0, 3, 1),
        ("torus 3x3", oriented_torus(3, 3), 0, torus_node(1, 1, 3), 0),
        ("mirror tree", symmetric_tree(2, 2), 0, mirror_node(0, 2, 2), 2),
        ("complete K4", complete_graph(4), 0, 2, 0),
    ]
    if not fast:
        cases += [
            ("torus 4x4", oriented_torus(4, 4), 0, torus_node(2, 2, 4), 0),
            ("hypercube d=3", hypercube(3), 0, 7, 0),
            ("ring n=8", oriented_ring(8), 0, 4, 2),
        ]

    ok = True
    for name, graph, u, v, extra in cases:
        result, d, bound = dedicated_symm_rv(graph, u, v, 0, extra_delta=extra)
        met_in_bound = result.met and result.time_from_later <= bound
        ok = ok and met_in_bound
        record.add_row(
            graph=name,
            pair=f"({u},{v})",
            **{
                "d=Shrink": d,
                "delta": d + extra,
                "met": result.met,
                "time": result.time_from_later,
                "T bound": bound,
            },
        )
    record.passed = ok
    record.measured_summary = (
        "dedicated SymmRV met on every symmetric STIC with delta >= Shrink, "
        "always within the Lemma 3.3 bound"
    )
    record.notes = "tuned UXS (coverage certified per graph); bound uses its length"
    return record
