"""EXP-L32 — Lemma 3.2 / 3.3: dedicated SymmRV with known parameters.

For symmetric positions with ``delta >= d = Shrink(u, v)`` and known
``(n, d, delta)``, Procedure SymmRV must achieve rendezvous within
``T(n, d, delta)`` rounds (Lemma 3.3).  We sweep *every* symmetric
pair of each example family — grouped by ``d = Shrink`` so one
dedicated algorithm serves a whole group — run each group through the
batched sweep engine (:func:`repro.sim.batch.run_rendezvous_batch`),
and compare the worst measured meeting time against the bound, which
exposes the bound's ``(n-1)^d`` exponential term as ``d`` grows.
"""

from __future__ import annotations

from repro.core.bounds import symm_rv_time_bound
from repro.core.symm_rv import make_symm_rv_algorithm
from repro.core.uxs import is_uxs_for_graph
from repro.core.profile import TUNED
from repro.experiments.records import ExperimentRecord
from repro.graphs.families import (
    complete_graph,
    hypercube,
    oriented_ring,
    oriented_torus,
    symmetric_tree,
    two_node_graph,
)
from repro.sim.batch import run_rendezvous_batch
from repro.sim.scheduler import run_rendezvous
from repro.symmetry.shrink import shrink
from repro.symmetry.views import symmetric_pairs

__all__ = ["run", "dedicated_symm_rv", "sweep_symmetric_pairs"]


def dedicated_symm_rv(graph, u, v, delta, *, uxs=None, extra_delta=0):
    """Run dedicated ``SymmRV(n, Shrink, delta)`` on one symmetric STIC.

    Returns ``(result, d, bound)``.  ``extra_delta`` lets callers run
    with a delay exceeding Shrink (the procedure is told the true
    delay, as Section 3.1 assumes).
    """
    n = graph.n
    d = shrink(graph, u, v)
    if uxs is None:
        uxs = TUNED.uxs(n)
    if not is_uxs_for_graph(graph, uxs):
        raise AssertionError("exploration sequence does not cover this graph")
    delta = max(delta, d) + extra_delta
    bound = symm_rv_time_bound(n, d, delta, len(uxs))
    algorithm = make_symm_rv_algorithm(n, d, delta, uxs=uxs)
    result = run_rendezvous(
        graph, u, v, delta, algorithm, max_rounds=2 * bound + delta + 10
    )
    return result, d, bound


def sweep_symmetric_pairs(graph, *, extra_delta=0, uxs=None):
    """Batched Lemma 3.2 sweep over every symmetric pair of ``graph``.

    Pairs are grouped by ``d = Shrink(u, v)``; each group shares one
    dedicated ``SymmRV(n, d, d + extra_delta)`` algorithm, so a single
    :func:`~repro.sim.batch.run_rendezvous_batch` call simulates the
    whole group.  Yields ``(d, delta, pairs, results, bound)`` per
    group in increasing ``d``.
    """
    n = graph.n
    if uxs is None:
        uxs = TUNED.uxs(n)
    if not is_uxs_for_graph(graph, uxs):
        raise AssertionError("exploration sequence does not cover this graph")
    groups: dict[int, list[tuple[int, int]]] = {}
    for u, v in symmetric_pairs(graph):
        groups.setdefault(shrink(graph, u, v), []).append((u, v))
    for d in sorted(groups):
        pairs = groups[d]
        delta = d + extra_delta
        bound = symm_rv_time_bound(n, d, delta, len(uxs))
        algorithm = make_symm_rv_algorithm(n, d, delta, uxs=uxs)
        results = run_rendezvous_batch(
            graph,
            [(u, v, delta) for u, v in pairs],
            algorithm,
            max_rounds=2 * bound + delta + 10,
        )
        yield d, delta, pairs, results, bound


def run(fast: bool = True) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id="EXP-L32",
        title="SymmRV with known parameters (Lemmas 3.2 and 3.3)",
        paper_claim=(
            "From symmetric positions with delta >= Shrink(u, v) and known "
            "(n, d, delta), SymmRV achieves rendezvous within "
            "T(n, d, delta) = [(d+delta)(n-1)^d](M+2) + 2(M+1) rounds."
        ),
        columns=[
            "graph",
            "d=Shrink",
            "delta",
            "pairs",
            "met",
            "worst time",
            "T bound",
        ],
    )
    cases = [
        ("two-node", two_node_graph(), 0),
        ("ring n=5", oriented_ring(5), 0),
        ("ring n=6", oriented_ring(6), 1),
        ("torus 3x3", oriented_torus(3, 3), 0),
        ("mirror tree", symmetric_tree(2, 2), 2),
        ("complete K4", complete_graph(4), 0),
    ]
    if not fast:
        cases += [
            ("torus 4x4", oriented_torus(4, 4), 0),
            ("hypercube d=3", hypercube(3), 0),
            ("ring n=8", oriented_ring(8), 2),
        ]

    ok = True
    for name, graph, extra in cases:
        for d, delta, pairs, results, bound in sweep_symmetric_pairs(
            graph, extra_delta=extra
        ):
            met_in_bound = all(
                r.met and r.time_from_later <= bound for r in results
            )
            ok = ok and met_in_bound
            worst = max(
                (r.time_from_later for r in results if r.met), default=None
            )
            record.add_row(
                graph=name,
                pairs=len(pairs),
                met=met_in_bound,
                **{
                    "d=Shrink": d,
                    "delta": delta,
                    "worst time": worst,
                    "T bound": bound,
                },
            )
    record.passed = ok
    record.measured_summary = (
        "dedicated SymmRV met on every symmetric pair of every family with "
        "delta >= Shrink, always within the Lemma 3.3 bound (full orbit "
        "sweep, batched per Shrink group)"
    )
    record.notes = "tuned UXS (coverage certified per graph); bound uses its length"
    return record
