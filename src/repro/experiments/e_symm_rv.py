"""EXP-L32 — Lemma 3.2 / 3.3: dedicated SymmRV with known parameters.

For symmetric positions with ``delta >= d = Shrink(u, v)`` and known
``(n, d, delta)``, Procedure SymmRV must achieve rendezvous within
``T(n, d, delta)`` rounds (Lemma 3.3).  We sweep *every* symmetric
pair of each example family — grouped by ``d = Shrink`` so one
dedicated algorithm serves a whole group — run each group through the
batched sweep engine (:func:`repro.sim.batch.run_rendezvous_batch`),
and compare the worst measured meeting time against the bound, which
exposes the bound's ``(n-1)^d`` exponential term as ``d`` grows.

Sharded per graph family: each shard sweeps one family's full
symmetric-pair orbit.
"""

from __future__ import annotations

from repro.core.bounds import symm_rv_time_bound
from repro.core.symm_rv import make_symm_rv_algorithm
from repro.core.uxs import is_uxs_for_graph
from repro.core.profile import TUNED
from repro.experiments.records import ExperimentRecord
from repro.experiments.scenarios import RunConfig, ScenarioSpec, build_graph
from repro.sim.batch import run_rendezvous_batch
from repro.sim.scheduler import run_rendezvous
from repro.symmetry.shrink import shrink
from repro.symmetry.views import symmetric_pairs

__all__ = [
    "run",
    "SCENARIO",
    "make_shards",
    "run_shard",
    "merge",
    "dedicated_symm_rv",
    "sweep_symmetric_pairs",
]

_CASES = {
    "two-node": ["two-node", {"family": "two_node"}, 0],
    "ring5": ["ring n=5", {"family": "oriented_ring", "n": 5}, 0],
    "ring6": ["ring n=6", {"family": "oriented_ring", "n": 6}, 1],
    "torus3": ["torus 3x3", {"family": "oriented_torus", "rows": 3, "cols": 3}, 0],
    "tree": ["mirror tree", {"family": "symmetric_tree", "arity": 2, "depth": 2}, 2],
    "k4": ["complete K4", {"family": "complete", "n": 4}, 0],
    "torus4": ["torus 4x4", {"family": "oriented_torus", "rows": 4, "cols": 4}, 0],
    "cube3": ["hypercube d=3", {"family": "hypercube", "dim": 3}, 0],
    "ring8": ["ring n=8", {"family": "oriented_ring", "n": 8}, 2],
}

_FAST_CASES = [
    _CASES["two-node"],
    _CASES["ring5"],
    _CASES["ring6"],
    _CASES["torus3"],
    _CASES["tree"],
    _CASES["k4"],
]

SCENARIO = ScenarioSpec(
    exp_id="EXP-L32",
    code_version=2,
    title="SymmRV with known parameters (Lemmas 3.2 and 3.3)",
    module="repro.experiments.e_symm_rv",
    shard_axis="graph family (full symmetric-pair orbit)",
    tiers={
        "smoke": {"cases": [_CASES["two-node"], _CASES["ring5"], _CASES["k4"]]},
        "fast": {"cases": _FAST_CASES},
        "full": {
            "cases": _FAST_CASES
            + [_CASES["torus4"], _CASES["cube3"], _CASES["ring8"]]
        },
        "stress": {
            "cases": _FAST_CASES
            + [
                _CASES["torus4"],
                _CASES["cube3"],
                _CASES["ring8"],
                ["ring n=10", {"family": "oriented_ring", "n": 10}, 1],
                [
                    "torus 4x5",
                    {"family": "oriented_torus", "rows": 4, "cols": 5},
                    0,
                ],
            ]
        },
    },
)


def dedicated_symm_rv(graph, u, v, delta, *, uxs=None, extra_delta=0):
    """Run dedicated ``SymmRV(n, Shrink, delta)`` on one symmetric STIC.

    Returns ``(result, d, bound)``.  ``extra_delta`` lets callers run
    with a delay exceeding Shrink (the procedure is told the true
    delay, as Section 3.1 assumes).
    """
    n = graph.n
    d = shrink(graph, u, v)
    if uxs is None:
        uxs = TUNED.uxs(n)
    if not is_uxs_for_graph(graph, uxs):
        raise AssertionError("exploration sequence does not cover this graph")
    delta = max(delta, d) + extra_delta
    bound = symm_rv_time_bound(n, d, delta, len(uxs))
    algorithm = make_symm_rv_algorithm(n, d, delta, uxs=uxs)
    result = run_rendezvous(
        graph, u, v, delta, algorithm, max_rounds=2 * bound + delta + 10
    )
    return result, d, bound


def sweep_symmetric_pairs(graph, *, extra_delta=0, uxs=None):
    """Batched Lemma 3.2 sweep over every symmetric pair of ``graph``.

    Pairs are grouped by ``d = Shrink(u, v)``; each group shares one
    dedicated ``SymmRV(n, d, d + extra_delta)`` algorithm, so a single
    :func:`~repro.sim.batch.run_rendezvous_batch` call simulates the
    whole group.  Yields ``(d, delta, pairs, results, bound)`` per
    group in increasing ``d``.
    """
    n = graph.n
    if uxs is None:
        uxs = TUNED.uxs(n)
    if not is_uxs_for_graph(graph, uxs):
        raise AssertionError("exploration sequence does not cover this graph")
    groups: dict[int, list[tuple[int, int]]] = {}
    for u, v in symmetric_pairs(graph):
        groups.setdefault(shrink(graph, u, v), []).append((u, v))
    for d in sorted(groups):
        pairs = groups[d]
        delta = d + extra_delta
        bound = symm_rv_time_bound(n, d, delta, len(uxs))
        algorithm = make_symm_rv_algorithm(n, d, delta, uxs=uxs)
        results = run_rendezvous_batch(
            graph,
            [(u, v, delta) for u, v in pairs],
            algorithm,
            max_rounds=2 * bound + delta + 10,
        )
        yield d, delta, pairs, results, bound


def make_shards(config: RunConfig) -> list[dict]:
    return [
        {"name": name, "graph": graph_spec, "extra_delta": extra}
        for name, graph_spec, extra in config.params["cases"]
    ]


def run_shard(config: RunConfig, shard: dict) -> dict:
    graph = build_graph(shard["graph"])
    ok = True
    rows = []
    for d, delta, pairs, results, bound in sweep_symmetric_pairs(
        graph, extra_delta=shard["extra_delta"]
    ):
        met_in_bound = all(
            r.met and r.time_from_later <= bound for r in results
        )
        ok = ok and met_in_bound
        worst = max(
            (r.time_from_later for r in results if r.met), default=None
        )
        rows.append(
            {
                "graph": shard["name"],
                "d=Shrink": d,
                "delta": delta,
                "pairs": len(pairs),
                "met": met_in_bound,
                "worst time": worst,
                "T bound": bound,
            }
        )
    return {"ok": ok, "rows": rows}


def merge(config: RunConfig, shard_results: list[dict]) -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id=SCENARIO.exp_id,
        title=SCENARIO.title,
        paper_claim=(
            "From symmetric positions with delta >= Shrink(u, v) and known "
            "(n, d, delta), SymmRV achieves rendezvous within "
            "T(n, d, delta) = [(d+delta)(n-1)^d](M+2) + 2(M+1) rounds."
        ),
        columns=[
            "graph",
            "d=Shrink",
            "delta",
            "pairs",
            "met",
            "worst time",
            "T bound",
        ],
    )
    for result in shard_results:
        for row in result["rows"]:
            record.add_row(**row)
    record.passed = all(result["ok"] for result in shard_results)
    record.measured_summary = (
        "dedicated SymmRV met on every symmetric pair of every family with "
        "delta >= Shrink, always within the Lemma 3.3 bound (full orbit "
        "sweep, batched per Shrink group)"
    )
    record.notes = "tuned UXS (coverage certified per graph); bound uses its length"
    return record


def run(fast: bool = True) -> ExperimentRecord:
    """Legacy serial entry point (``fast`` maps onto the tier ladder)."""
    config = SCENARIO.config("fast" if fast else "full")
    return merge(config, [run_shard(config, s) for s in make_shards(config)])
