"""Experiment drivers regenerating every artifact of the paper.

See DESIGN.md §3 for the per-experiment index.  Each module exposes a
``run(fast: bool) -> ExperimentRecord``; the registry lives in
:mod:`repro.experiments.runner`.
"""

from repro.experiments.records import ExperimentRecord, render_table

__all__ = ["ExperimentRecord", "render_table"]
