"""Experiment drivers regenerating every artifact of the paper.

Each driver module declares a
:class:`~repro.experiments.scenarios.ScenarioSpec` (its ``SCENARIO``)
with named scale tiers and implements the sharded protocol
``make_shards`` / ``run_shard`` / ``merge`` consumed by
:mod:`repro.experiments.orchestrator`; the legacy
``run(fast: bool) -> ExperimentRecord`` entry points remain as thin
serial wrappers.  The registry lives in
:mod:`repro.experiments.scenarios`; the CLI in
:mod:`repro.experiments.runner`.  See docs/orchestration.md for the
per-experiment index and the sharding/caching model.
"""

from repro.experiments.records import ExperimentRecord, render_table

__all__ = ["ExperimentRecord", "render_table"]
