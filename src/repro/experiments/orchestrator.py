"""Parallel sharded experiment runner.

Splits each selected experiment into the independent shards its
:class:`~repro.experiments.scenarios.ScenarioSpec` declares, executes
missing shards — serially or across a ``ProcessPoolExecutor`` — and
merges the results into :class:`ExperimentRecord`s.

Determinism guarantees (pinned by tests/experiments/test_orchestrator.py):

* shard results are pure functions of ``(config, shard)``; all
  randomness derives from ``config.seed``;
* shards merge **in shard order**, never completion order, so a
  ``--jobs N`` run is bit-identical to ``--jobs 1``;
* every shard result is normalized through a canonical-JSON round
  trip before merging, so warm-cache, cold, and cache-disabled runs
  also agree byte-for-byte.

With a :class:`~repro.experiments.store.ResultStore` attached, shards
hit the content-addressed cache first and only invalidated (spec,
seed, or driver-version changed) shards recompute; interrupted runs
resume from whatever shards already landed on disk.
"""

from __future__ import annotations

import importlib
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass

from repro.experiments.records import ExperimentRecord
from repro.experiments.scenarios import (
    SCENARIO_MODULES,
    RunConfig,
    ScenarioSpec,
    get_scenario,
)
from repro.experiments.store import ResultStore, json_roundtrip, shard_key

__all__ = [
    "ShardOutcome",
    "ExperimentRun",
    "validate_experiment_ids",
    "resolve_specs",
    "plan_shards",
    "run_experiment",
    "run_suite",
]


@dataclass(frozen=True)
class ShardOutcome:
    """One executed (or cache-served) shard.

    ``seconds`` is the shard's own execution time as measured in the
    worker that ran it (0.0 for cache hits), so it is meaningful for
    finding slow shards even under ``--jobs N``.  ``result`` is the
    shard's normalized payload — what ``merge`` consumed — so callers
    that need per-shard detail beyond the merged record (the campaign
    CLI extracting replay artifacts, say) get it without a cache read.
    """

    index: int
    shard: dict
    key: str
    cached: bool
    seconds: float
    result: dict | None = None


@dataclass(frozen=True)
class ExperimentRun:
    """A merged experiment: the record plus its execution ledger.

    ``seconds`` is the compute time attributed to *this* experiment —
    the sum of its shards' execution times plus its merge — not wall
    clock, so it is comparable across serial, parallel, and
    warm-cache runs (cached shards contribute 0).
    """

    record: ExperimentRecord
    config: RunConfig
    shards: list[ShardOutcome]
    seconds: float

    @property
    def shards_cached(self) -> int:
        return sum(outcome.cached for outcome in self.shards)

    @property
    def shards_computed(self) -> int:
        return len(self.shards) - self.shards_cached


def validate_experiment_ids(ids: list[str] | None) -> list[str]:
    """Resolve the selection, rejecting *every* unknown id up front.

    Validation happens before any shard executes, so a typo in the last
    requested id cannot burn the minutes of the ids before it.
    """
    if ids is None:
        return list(SCENARIO_MODULES)
    unknown = [exp_id for exp_id in ids if exp_id not in SCENARIO_MODULES]
    if unknown:
        raise KeyError(
            f"unknown experiment{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(repr(e) for e in unknown)}; "
            f"known: {sorted(SCENARIO_MODULES)}"
        )
    return list(ids)


def resolve_specs(
    selection: list[str | ScenarioSpec] | None,
) -> list[ScenarioSpec]:
    """Resolve a mixed selection of registry ids and literal specs.

    Strings go through the experiment registry (every unknown id is
    rejected before anything executes); :class:`ScenarioSpec` instances
    pass through as-is, which is how off-registry scenarios — the
    randomized campaigns of :mod:`repro.campaigns` — ride the same
    sharded/cached execution path as the registered experiments.
    """
    if selection is None:
        return [get_scenario(exp_id) for exp_id in SCENARIO_MODULES]
    ids = [item for item in selection if isinstance(item, str)]
    validate_experiment_ids(ids)
    return [
        item if isinstance(item, ScenarioSpec) else get_scenario(item)
        for item in selection
    ]


def plan_shards(spec: ScenarioSpec, config: RunConfig) -> list[dict]:
    """The spec's shard list for one config (delegates to the driver)."""
    return spec.driver().make_shards(config)


def _execute_shard(module: str, config_dict: dict, shard: dict) -> tuple[dict, float]:
    """Worker entry point (top-level so it pickles across processes).

    Returns ``(result, seconds)`` with the execution time measured in
    the worker itself, so parallel runs attribute time correctly.
    """
    driver = importlib.import_module(module)
    t0 = time.perf_counter()
    result = driver.run_shard(RunConfig.from_json_dict(config_dict), shard)
    return result, time.perf_counter() - t0


@dataclass
class _Plan:
    spec: ScenarioSpec
    config: RunConfig
    shards: list[dict]
    keys: list[str]
    data: list[dict | None]  # cache hits pre-filled, None = must compute


def _make_plan(
    spec: ScenarioSpec,
    *,
    tier: str,
    seed: int | None,
    store: ResultStore | None,
) -> _Plan:
    config = spec.config(tier, seed=seed)
    shards = plan_shards(spec, config)
    keys = [shard_key(config, shard, spec.code_version) for shard in shards]
    data = [store.get(key) if store is not None else None for key in keys]
    return _Plan(spec, config, shards, keys, data)


def _finish_plan(plan: _Plan, durations: list[float]) -> ExperimentRun:
    t0 = time.perf_counter()
    record = plan.spec.driver().merge(plan.config, plan.data)
    merge_seconds = time.perf_counter() - t0
    outcomes = [
        ShardOutcome(
            index=i,
            shard=shard,
            key=key,
            cached=duration < 0,
            seconds=max(duration, 0.0),
            result=result,
        )
        for i, (shard, key, duration, result) in enumerate(
            zip(plan.shards, plan.keys, durations, plan.data)
        )
    ]
    return ExperimentRun(
        record=record,
        config=plan.config,
        shards=outcomes,
        seconds=sum(o.seconds for o in outcomes) + merge_seconds,
    )


def run_suite(
    ids: list[str | ScenarioSpec] | None = None,
    *,
    tier: str = "fast",
    seed: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[ExperimentRun]:
    """Run a selection of experiments, sharded and optionally parallel.

    The selection mixes registry ids with literal
    :class:`ScenarioSpec` objects (see :func:`resolve_specs`).  All
    experiments' missing shards share one process pool, so a wide
    selection saturates ``--jobs`` workers even when individual
    experiments have few shards.  Results come back in selection order
    with shard order preserved inside each experiment.
    """
    plans = [
        _make_plan(spec, tier=tier, seed=seed, store=store)
        for spec in resolve_specs(ids)
    ]

    # (plan index, shard index) of every cache miss, in deterministic order.
    missing = [
        (p, s)
        for p, plan in enumerate(plans)
        for s, payload in enumerate(plan.data)
        if payload is None
    ]
    durations: list[list[float]] = [[-1.0] * len(plan.shards) for plan in plans]

    def record_result(p: int, s: int, result: dict, seconds: float) -> None:
        plan = plans[p]
        # Normalize through canonical JSON so cold == warm byte-for-byte.
        result = json_roundtrip(result)
        plan.data[s] = result
        durations[p][s] = seconds
        if store is not None:
            store.put(
                plan.keys[s],
                result,
                meta={
                    "exp_id": plan.config.exp_id,
                    "tier": plan.config.tier,
                    "seed": plan.config.seed,
                    "shard": plan.shards[s],
                    "code_version": plan.spec.code_version,
                    "seconds": round(seconds, 4),
                },
            )

    if jobs > 1 and len(missing) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(
                    _execute_shard,
                    plans[p].spec.module,
                    plans[p].config.to_json_dict(),
                    plans[p].shards[s],
                ): (p, s)
                for p, s in missing
            }
            # Persist each shard as it lands (not in submission order):
            # an interrupted run keeps everything that finished before
            # the interrupt, so the resume recomputes only the rest.
            # Merging stays deterministic — results land by index.
            for future in as_completed(futures):
                p, s = futures[future]
                result, seconds = future.result()
                record_result(p, s, result, seconds)
    else:
        for p, s in missing:
            plan = plans[p]
            result, seconds = _execute_shard(
                plan.spec.module, plan.config.to_json_dict(), plan.shards[s]
            )
            record_result(p, s, result, seconds)

    return [_finish_plan(plan, durations[p]) for p, plan in enumerate(plans)]


def run_experiment(
    spec_or_id: str | ScenarioSpec,
    *,
    tier: str = "fast",
    seed: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> ExperimentRun:
    """Run one experiment through the sharded pipeline."""
    (run,) = run_suite(
        [spec_or_id], tier=tier, seed=seed, jobs=jobs, store=store
    )
    return run


def shard_status(
    ids: list[str | ScenarioSpec] | None,
    *,
    tier: str,
    seed: int | None,
    store: ResultStore,
) -> list[tuple[str, int, int]]:
    """Per-experiment ``(exp_id, cached, total)`` cache occupancy."""
    rows = []
    for spec in resolve_specs(ids):
        plan = _make_plan(spec, tier=tier, seed=seed, store=store)
        cached = sum(payload is not None for payload in plan.data)
        rows.append((spec.exp_id, cached, len(plan.shards)))
    return rows
