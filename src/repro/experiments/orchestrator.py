"""Experiment frontend over the checkpointed work-queue service.

``run_suite``/``run_experiment`` keep their PR-4 public API — plan the
selected experiments' shards, execute the missing ones, merge in plan
order — but execution now rides the three-layer spine
(docs/orchestration.md):

* :mod:`repro.experiments.queue` — shards become leased tasks with
  per-shard timeout, heartbeat liveness, bounded retry, and poison-
  shard **quarantine** (a deterministically-failing shard is recorded
  as a JSON replay artifact and the run continues);
* :mod:`repro.experiments.journal` — every run with a store gets an
  append-only canonical-JSON **run journal** under
  ``<cache-dir>/runs/<run-id>/``; ``resume=True`` re-attaches to it,
  recomputing nothing that completed before a kill;
* :mod:`repro.experiments.store` — completed shard results live in
  the content-addressed :class:`ResultStore` behind a pluggable
  backend.

Determinism guarantees (pinned by tests/experiments/):

* shard results are pure functions of ``(config, shard)``; all
  randomness derives from ``config.seed``;
* shards merge **in plan order**, never completion order, so
  ``--jobs N``, kill/resume, and retried-lease runs are all
  bit-identical to a serial run;
* every shard result is normalized through a canonical-JSON round
  trip before merging, so warm-cache, cold, and cache-disabled runs
  also agree byte-for-byte.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.journal import (
    JOURNAL_NAME,
    RunJournal,
    RunState,
    derive_run_id,
    replay_journal,
    run_dir,
)
from repro.experiments.queue import (
    DEFAULT_MAX_RETRIES,
    QueuePolicy,
    ShardTask,
    WorkQueue,
    run_queue,
)
from repro.experiments.records import ExperimentRecord
from repro.experiments.scenarios import (
    SCENARIO_MODULES,
    RunConfig,
    ScenarioSpec,
    get_scenario,
)
from repro.experiments.store import ResultStore, json_roundtrip, shard_key

__all__ = [
    "ShardOutcome",
    "ExperimentRun",
    "validate_experiment_ids",
    "resolve_specs",
    "plan_shards",
    "run_experiment",
    "run_suite",
    "shard_status",
    "journal_status",
]


@dataclass(frozen=True)
class ShardOutcome:
    """One executed, cache-served, or quarantined shard.

    ``seconds`` is the shard's own execution time as measured in the
    worker that ran it (0.0 for cache hits), so it is meaningful for
    finding slow shards even under ``--jobs N``.  ``result`` is the
    shard's normalized payload — what ``merge`` consumed — so callers
    that need per-shard detail beyond the merged record (the campaign
    CLI extracting replay artifacts, say) get it without a cache read.
    Quarantined shards carry ``result=None`` plus the error and the
    replay-artifact path.
    """

    index: int
    shard: dict
    key: str
    cached: bool
    seconds: float
    result: dict | None = None
    quarantined: bool = False
    attempts: int = 0
    error: str | None = None
    artifact: str | None = None


@dataclass(frozen=True)
class ExperimentRun:
    """A merged experiment: the record plus its execution ledger.

    ``seconds`` is the compute time attributed to *this* experiment —
    the sum of its shards' execution times plus its merge — not wall
    clock, so it is comparable across serial, parallel, and
    warm-cache runs (cached shards contribute 0).  ``run_id`` names
    the journaled run this experiment executed under (None without a
    store).
    """

    record: ExperimentRecord
    config: RunConfig
    shards: list[ShardOutcome]
    seconds: float
    run_id: str | None = None

    @property
    def shards_cached(self) -> int:
        return sum(outcome.cached for outcome in self.shards)

    @property
    def shards_quarantined(self) -> int:
        return sum(outcome.quarantined for outcome in self.shards)

    @property
    def shards_computed(self) -> int:
        return len(self.shards) - self.shards_cached - self.shards_quarantined


def validate_experiment_ids(ids: list[str] | None) -> list[str]:
    """Resolve the selection, rejecting *every* unknown id up front.

    Validation happens before any shard executes, so a typo in the last
    requested id cannot burn the minutes of the ids before it.
    """
    if ids is None:
        return list(SCENARIO_MODULES)
    unknown = [exp_id for exp_id in ids if exp_id not in SCENARIO_MODULES]
    if unknown:
        raise KeyError(
            f"unknown experiment{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(repr(e) for e in unknown)}; "
            f"known: {sorted(SCENARIO_MODULES)}"
        )
    return list(ids)


def resolve_specs(
    selection: list[str | ScenarioSpec] | None,
) -> list[ScenarioSpec]:
    """Resolve a mixed selection of registry ids and literal specs.

    Strings go through the experiment registry (every unknown id is
    rejected before anything executes); :class:`ScenarioSpec` instances
    pass through as-is, which is how off-registry scenarios — the
    randomized campaigns of :mod:`repro.campaigns` — ride the same
    sharded/cached execution path as the registered experiments.
    """
    if selection is None:
        return [get_scenario(exp_id) for exp_id in SCENARIO_MODULES]
    ids = [item for item in selection if isinstance(item, str)]
    validate_experiment_ids(ids)
    return [
        item if isinstance(item, ScenarioSpec) else get_scenario(item)
        for item in selection
    ]


def plan_shards(spec: ScenarioSpec, config: RunConfig) -> list[dict]:
    """The spec's shard list for one config (delegates to the driver)."""
    return spec.driver().make_shards(config)


@dataclass
class _Plan:
    spec: ScenarioSpec
    config: RunConfig
    shards: list[dict]
    keys: list[str]
    data: list[dict | None]  # cache hits pre-filled, None = must compute


def _make_plan(
    spec: ScenarioSpec,
    *,
    tier: str,
    seed: int | None,
    store: ResultStore | None,
) -> _Plan:
    config = spec.config(tier, seed=seed)
    shards = plan_shards(spec, config)
    keys = [shard_key(config, shard, spec.code_version) for shard in shards]
    data = [store.get(key) if store is not None else None for key in keys]
    return _Plan(spec, config, shards, keys, data)


def _quarantined_record(
    plan: _Plan, lost: list[ShardOutcome]
) -> ExperimentRecord:
    """Placeholder record for an experiment with poisoned shards.

    The run as a whole keeps going (and other experiments merge
    normally); this record carries the triage pointers instead of a
    merged table, and ``passed=False`` makes the exit status honest.
    """
    record = ExperimentRecord(
        exp_id=plan.config.exp_id,
        title=plan.spec.title,
        paper_claim="(not evaluated: shards quarantined)",
        columns=["shard", "attempts", "error"],
        measured_summary=(
            f"{len(lost)}/{len(plan.shards)} shards quarantined after "
            "exhausting retries; merged record unavailable"
        ),
        passed=False,
        notes=(
            "replay each artifact with `python -m repro --replay-shard "
            "<artifact.json>`; fix the driver (or environment) and "
            "re-run without --resume to retry quarantined shards"
        ),
    )
    for outcome in lost:
        record.add_row(
            shard=outcome.key[:16],
            attempts=outcome.attempts,
            error=(outcome.error or "")[:120],
        )
    return record


def _finish_plan(
    plan: _Plan,
    durations: list[float],
    quarantine: dict[int, ShardOutcome],
    run_id: str | None,
) -> ExperimentRun:
    outcomes = []
    for i, (shard, key, duration, result) in enumerate(
        zip(plan.shards, plan.keys, durations, plan.data)
    ):
        if i in quarantine:
            outcomes.append(quarantine[i])
            continue
        outcomes.append(
            ShardOutcome(
                index=i,
                shard=shard,
                key=key,
                cached=duration < 0,
                seconds=max(duration, 0.0),
                result=result,
            )
        )
    lost = [o for o in outcomes if o.quarantined]
    if lost:
        record = _quarantined_record(plan, lost)
        merge_seconds = 0.0
    else:
        t0 = time.perf_counter()
        record = plan.spec.driver().merge(plan.config, plan.data)
        merge_seconds = time.perf_counter() - t0
    return ExperimentRun(
        record=record,
        config=plan.config,
        shards=outcomes,
        seconds=sum(o.seconds for o in outcomes) + merge_seconds,
        run_id=run_id,
    )


def run_suite(
    ids: list[str | ScenarioSpec] | None = None,
    *,
    tier: str = "fast",
    seed: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    shard_timeout: float | None = None,
    policy: QueuePolicy | None = None,
    run_id: str | None = None,
    resume: bool = False,
) -> list[ExperimentRun]:
    """Run a selection of experiments through the work-queue service.

    The selection mixes registry ids with literal
    :class:`ScenarioSpec` objects (see :func:`resolve_specs`).  All
    experiments' missing shards share one leased work queue, so a wide
    selection saturates ``--jobs`` workers even when individual
    experiments have few shards.  Results come back in selection order
    with shard order preserved inside each experiment.

    With a ``store``, the run is **journaled** under
    ``<cache-dir>/runs/<run-id>/`` (``run_id`` defaults to a content
    hash of the planned work, so the same invocation always maps to
    the same journal).  ``resume=True`` re-attaches to that journal:
    completed shards are served from the store (zero recomputation),
    previously quarantined shards stay quarantined, and only the rest
    execute.  ``max_retries``/``shard_timeout`` (or a full
    :class:`QueuePolicy`) tune the lease discipline.
    """
    plans = [
        _make_plan(spec, tier=tier, seed=seed, store=store)
        for spec in resolve_specs(ids)
    ]
    queue_policy = policy or QueuePolicy(
        max_retries=max_retries, shard_timeout=shard_timeout
    )

    rid: str | None = None
    journal: RunJournal | None = None
    rdir: Path | None = None
    prior: RunState | None = None
    if store is not None:
        rid = run_id or derive_run_id(
            [(plan.config.exp_id, plan.keys) for plan in plans], tier, seed
        )
        rdir = run_dir(store.root, rid)
        journal_path = rdir / JOURNAL_NAME
        if resume and journal_path.is_file():
            prior = replay_journal(journal_path)
        journal = RunJournal(journal_path, fresh=prior is None)

    try:
        return _run_planned(
            plans,
            jobs=jobs,
            store=store,
            policy=queue_policy,
            rid=rid,
            rdir=rdir,
            journal=journal,
            prior=prior,
        )
    finally:
        if journal is not None:
            journal.close()


def _run_planned(
    plans: list[_Plan],
    *,
    jobs: int,
    store: ResultStore | None,
    policy: QueuePolicy,
    rid: str | None,
    rdir: Path | None,
    journal: RunJournal | None,
    prior: RunState | None,
) -> list[ExperimentRun]:
    if journal is not None:
        if prior is None:
            journal.append(
                {
                    "event": "plan",
                    "run_id": rid,
                    "version": 1,
                    "tier": plans[0].config.tier if plans else "",
                    "seed": plans[0].config.seed if plans else None,
                    "experiments": [
                        {"exp_id": plan.config.exp_id, "keys": plan.keys}
                        for plan in plans
                    ],
                }
            )
        else:
            journal.append({"event": "resume", "run_id": rid})

    # Journal cache hits the journal has not seen complete yet, so a
    # resumed/warm run's ledger still accounts for every shard.
    tasks: list[ShardTask] = []
    pre_quarantined: list[tuple[ShardTask, str, str | None]] = []
    for p, plan in enumerate(plans):
        for s, payload in enumerate(plan.data):
            key = plan.keys[s]
            if payload is not None:
                if journal is not None and (
                    prior is None or prior.status.get(key) != "completed"
                ):
                    journal.append(
                        {"event": "complete", "key": key, "cached": True}
                    )
                continue
            task = ShardTask(
                plan=p,
                index=s,
                module=plan.spec.module,
                config=plan.config.to_json_dict(),
                shard=plan.shards[s],
                key=key,
            )
            if prior is not None and prior.status.get(key) == "quarantined":
                pre_quarantined.append(
                    (
                        task,
                        prior.errors.get(key, "quarantined in prior run"),
                        prior.artifacts.get(key),
                    )
                )
            else:
                tasks.append(task)

    queue = WorkQueue(
        tasks,
        policy=policy,
        journal=journal,
        run_dir=rdir,
    )
    durations: list[list[float]] = [[-1.0] * len(plan.shards) for plan in plans]

    def on_result(task: ShardTask, result: dict, seconds: float) -> None:
        plan = plans[task.plan]
        # Normalize through canonical JSON so cold == warm byte-for-byte.
        result = json_roundtrip(result)
        plan.data[task.index] = result
        durations[task.plan][task.index] = seconds
        if store is not None:
            # Persist each shard as it lands (not in plan order): an
            # interrupted run keeps everything that finished before
            # the interrupt, so the resume recomputes only the rest.
            # Merging stays deterministic — results land by index.
            store.put(
                task.key,
                result,
                meta={
                    "exp_id": plan.config.exp_id,
                    "tier": plan.config.tier,
                    "seed": plan.config.seed,
                    "shard": plan.shards[task.index],
                    "code_version": plan.spec.code_version,
                    "seconds": round(seconds, 4),
                },
            )

    run_queue(queue, jobs=jobs, on_result=on_result)

    quarantine: dict[int, dict[int, ShardOutcome]] = {
        p: {} for p in range(len(plans))
    }
    for task, error, artifact in queue.quarantined():
        _status, attempts = queue.state_of(task)
        quarantine[task.plan][task.index] = ShardOutcome(
            index=task.index,
            shard=task.shard,
            key=task.key,
            cached=False,
            seconds=0.0,
            result=None,
            quarantined=True,
            attempts=attempts,
            error=error,
            artifact=str(artifact) if artifact is not None else None,
        )
    for task, error, artifact in pre_quarantined:
        quarantine[task.plan][task.index] = ShardOutcome(
            index=task.index,
            shard=task.shard,
            key=task.key,
            cached=False,
            seconds=0.0,
            result=None,
            quarantined=True,
            attempts=0,
            error=error,
            artifact=artifact,
        )
        if journal is not None:
            # Re-record so a journal replay of *this* invocation still
            # shows the shard quarantined.
            journal.append(
                {
                    "event": "quarantine",
                    "key": task.key,
                    "attempts": 0,
                    "error": error,
                    "artifact": artifact,
                }
            )

    return [
        _finish_plan(plan, durations[p], quarantine[p], rid)
        for p, plan in enumerate(plans)
    ]


def run_experiment(
    spec_or_id: str | ScenarioSpec,
    *,
    tier: str = "fast",
    seed: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    shard_timeout: float | None = None,
    run_id: str | None = None,
    resume: bool = False,
) -> ExperimentRun:
    """Run one experiment through the work-queue pipeline."""
    (run,) = run_suite(
        [spec_or_id],
        tier=tier,
        seed=seed,
        jobs=jobs,
        store=store,
        max_retries=max_retries,
        shard_timeout=shard_timeout,
        run_id=run_id,
        resume=resume,
    )
    return run


def shard_status(
    ids: list[str | ScenarioSpec] | None,
    *,
    tier: str,
    seed: int | None,
    store: ResultStore,
) -> list[tuple[str, int, int]]:
    """Per-experiment ``(exp_id, cached, total)`` cache occupancy."""
    rows = []
    for spec in resolve_specs(ids):
        plan = _make_plan(spec, tier=tier, seed=seed, store=store)
        cached = sum(payload is not None for payload in plan.data)
        rows.append((spec.exp_id, cached, len(plan.shards)))
    return rows


def journal_status(
    store: ResultStore, run_id: str
) -> tuple[RunState, list[tuple[str, dict[str, int]]]]:
    """A journaled run's progress, live or post-mortem.

    Reuses the :func:`shard_status` idea — planned keys checked
    against the store — but sourced from the run journal, so it works
    for killed runs, literal (off-registry) campaign specs, and runs
    still executing in another process.  Returns the folded
    :class:`RunState` plus per-experiment count rows
    ``{planned, completed, cached, leased, quarantined, pending}``
    (``cached`` is live store occupancy; ``completed`` is what the
    journal recorded).
    """
    journal_path = run_dir(store.root, run_id) / JOURNAL_NAME
    if not journal_path.is_file():
        raise FileNotFoundError(
            f"no journal for run {run_id!r} under {store.root}/runs"
        )
    state = replay_journal(journal_path)
    rows: list[tuple[str, dict[str, int]]] = []
    for exp_id, keys in state.planned.items():
        counts = {
            "planned": len(keys),
            "completed": 0,
            "cached": 0,
            "leased": 0,
            "quarantined": 0,
        }
        for key in keys:
            status = state.status.get(key)
            if status == "completed":
                counts["completed"] += 1
            elif status == "leased":
                counts["leased"] += 1
            elif status == "quarantined":
                counts["quarantined"] += 1
            if store.get(key) is not None:
                counts["cached"] += 1
        counts["pending"] = (
            counts["planned"]
            - counts["completed"]
            - counts["leased"]
            - counts["quarantined"]
        )
        rows.append((exp_id, counts))
    return state, rows
