"""The graph ``Q̂_h`` of Section 4 (Fig. 1, right).

``Q̂_h`` keeps the nodes and edges of ``Q_h`` and adds edges between
leaves so that every node has degree 4 and every edge carries ``N-S``
or ``E-W`` ports at its extremities:

* pairing edges ``N_i - S_i`` (port S at ``N_i``, N at ``S_i``) and
  ``E_i - W_i`` (port W at ``E_i``, E at ``W_i``);
* four alternating cycles over the leaves (N/S and E/W families, two
  cycles each) providing the remaining two ports of every leaf.

The resulting graph is 4-regular, and *every* pair of nodes is
symmetric (all views are identical) — the paper's canvas for the
exponential lower bound of Theorem 4.1.  Requires ``h >= 2`` (for
``h = 1`` the cycles would degenerate into self-loops).
"""

from __future__ import annotations

from repro.graphs.port_graph import Edge, PortLabeledGraph
from repro.hardness.qtree import E, N, PORT_NAMES, QTree, S, W, build_qtree

__all__ = ["build_qhat", "qhat_size"]


def qhat_size(h: int) -> int:
    """Number of nodes of ``Q̂_h`` (same node set as ``Q_h``)."""
    return 1 + 4 * (3**h - 1) // 2


def _alternating_cycle(
    first: list[int], second: list[int], low_port: int, high_port: int
) -> list[Edge]:
    """One of the four leaf cycles.

    Visits ``first[0], second[1], first[2], second[3], ...`` and closes
    with ``first[-1] - first[0]``; every edge carries ``low_port`` at
    its lower-index endpoint and ``high_port`` at the higher-index one
    (e.g. E/W for the N-S family, N/S for the E-W family).  Requires
    odd length (``x = 3^(h-1)`` is always odd).
    """
    x = len(first)
    assert x == len(second) and x % 2 == 1 and x >= 3
    ring = [first[j] if j % 2 == 0 else second[j] for j in range(x)]
    edges: list[Edge] = []
    for j in range(x - 1):
        edges.append((ring[j], low_port, ring[j + 1], high_port))
    edges.append((ring[x - 1], low_port, ring[0], high_port))
    return edges


def build_qhat(h: int) -> tuple[PortLabeledGraph, QTree]:
    """Construct ``Q̂_h`` (``h >= 2``); returns ``(graph, scaffold)``.

    The scaffold ``Q_h`` is returned alongside because Section 4's
    arguments (the set ``Z``, the midpoints ``M(v)``) are phrased over
    the tree structure.
    """
    if h < 2:
        raise ValueError(f"Q-hat needs h >= 2, got {h}")
    tree = build_qtree(h)
    edges: list[Edge] = []

    # Tree edges, with their letter ports.
    for v in range(1, tree.n):
        parent, port_at_parent, port_at_v = tree.parent[v]
        edges.append((parent, port_at_parent, v, port_at_v))

    n_leaves = tree.leaves_by_type[N]
    s_leaves = tree.leaves_by_type[S]
    e_leaves = tree.leaves_by_type[E]
    w_leaves = tree.leaves_by_type[W]
    x = len(n_leaves)
    assert x == 3 ** (h - 1)

    # Pairing edges N_i - S_i and E_i - W_i.
    for i in range(x):
        edges.append((n_leaves[i], S, s_leaves[i], N))
        edges.append((e_leaves[i], W, w_leaves[i], E))

    # The four alternating leaf cycles (paper's bullet list, in order):
    # N1-S2-N3-...-Nx-N1 and S1-N2-S3-...-Sx-S1 use ports E/W;
    # E1-W2-E3-...-Ex-E1 and W1-E2-W3-...-Wx-W1 use ports N/S.
    edges += _alternating_cycle(n_leaves, s_leaves, E, W)
    edges += _alternating_cycle(s_leaves, n_leaves, E, W)
    edges += _alternating_cycle(e_leaves, w_leaves, N, S)
    edges += _alternating_cycle(w_leaves, e_leaves, N, S)

    graph = PortLabeledGraph(tree.n, edges)
    assert graph.is_regular() and graph.max_degree == 4, "Q-hat must be 4-regular"
    return graph, tree


def port_name(port: int) -> str:
    """Human-readable name of a ``Q̂_h`` port (N/E/S/W)."""
    return PORT_NAMES[port]
