"""The tree ``Q_h`` of Section 4 (Fig. 1, left).

``Q_h`` is the construction scaffold for the hard graph ``Q̂_h``: a
rooted tree of height ``h`` in which every non-leaf node has degree 4
with ports labeled by the cardinal directions N, S, E, W, every edge
carries either ``N-S`` or ``E-W`` ports at its extremities, and all
leaves sit at distance exactly ``h`` from the root.

``Q_h`` itself is *not* a legal port-labeled graph of the model (its
leaves have degree 1 but carry a letter port), so this module exposes
it as an explicit data structure; :mod:`repro.hardness.qhat` adds the
leaf cycles that make every node degree 4 and produces a legal
:class:`~repro.graphs.port_graph.PortLabeledGraph`.

Ports are represented by the integers ``N=0, E=1, S=2, W=3`` (the
paper's letters, in compass order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["N", "E", "S", "W", "PORT_NAMES", "opposite", "QTree", "build_qtree"]

N, E, S, W = 0, 1, 2, 3
PORT_NAMES = ("N", "E", "S", "W")
_OPPOSITE = {N: S, S: N, E: W, W: E}


def opposite(port: int) -> int:
    """The partner port across an edge (``N-S`` and ``E-W`` pairing)."""
    return _OPPOSITE[port]


@dataclass
class QTree:
    """The tree ``Q_h`` with letter-port annotations.

    Attributes
    ----------
    h:
        Height; all leaves are at distance ``h`` from the root.
    root:
        Node id of the root (always 0).
    n:
        Number of nodes.
    parent:
        ``parent[v] = (parent_node, port_at_parent, port_at_v)``;
        ``None`` for the root.
    children:
        ``children[v][port] = child`` for each child edge, keyed by the
        port at ``v``.
    depth:
        Distance from the root.
    leaf_type:
        For leaves only: the single letter port (``N/E/S/W`` int); the
        paper's "A-type" classification.
    leaves_by_type:
        Leaves of each type in deterministic (DFS) order — the
        ordering ``A_1 ... A_x`` used when wiring the cycles of
        ``Q̂_h``.
    """

    h: int
    root: int = 0
    n: int = 0
    parent: list = field(default_factory=list)
    children: list = field(default_factory=list)
    depth: list = field(default_factory=list)
    leaf_type: dict = field(default_factory=dict)
    leaves_by_type: dict = field(default_factory=dict)

    def is_leaf(self, v: int) -> bool:
        return not self.children[v]

    def follow(self, v: int, ports: list[int] | tuple[int, ...]) -> int:
        """Follow outgoing letter ports from ``v`` through the tree."""
        node = v
        for p in ports:
            if p in self.children[node]:
                node = self.children[node][p]
                continue
            par = self.parent[node]
            if par is not None and par[2] == p:
                node = par[0]
                continue
            raise ValueError(f"port {PORT_NAMES[p]} not available at node {node}")
        return node


def build_qtree(h: int) -> QTree:
    """Construct ``Q_h`` (``h >= 1``) iteratively (BFS).

    The root has children through all four ports; an internal node
    reached through port ``p`` at its parent carries the parent edge
    on port ``opposite(p)`` and children on the remaining three ports;
    nodes at depth ``h`` are leaves whose single port is
    ``opposite(p)``.  Leaf counts: ``4 * 3^(h-1)`` total, ``3^(h-1)``
    of each type.
    """
    if h < 1:
        raise ValueError(f"Q_h needs h >= 1, got {h}")
    tree = QTree(h=h)
    tree.parent.append(None)
    tree.children.append({})
    tree.depth.append(0)
    tree.n = 1
    tree.leaves_by_type = {p: [] for p in (N, E, S, W)}

    # frontier entries: (node, port_at_node_toward_parent or None)
    frontier: list[tuple[int, int | None]] = [(0, None)]
    for depth in range(1, h + 1):
        next_frontier: list[tuple[int, int | None]] = []
        for node, up_port in frontier:
            out_ports = [p for p in (N, E, S, W) if p != up_port]
            for p in out_ports:
                child = tree.n
                child_up = opposite(p)
                tree.parent.append((node, p, child_up))
                tree.children.append({})
                tree.depth.append(depth)
                tree.children[node][p] = child
                tree.n += 1
                if depth == h:
                    tree.leaf_type[child] = child_up
                    tree.leaves_by_type[child_up].append(child)
                else:
                    next_frontier.append((child, child_up))
        frontier = next_frontier
    return tree
