"""Theorem 4.1 — the exponential lower bound, reproduced executably.

The theorem: any algorithm achieving rendezvous for every STIC
``[(r, v), D]`` in ``Q̂_h`` (``D = 2k``, ``h = 2D``, ``v in Z``) needs
time at least ``2^(k-1)``.

Because ``Q̂_h`` is 4-regular, anonymous, and N-S/E-W port-consistent,
*every* deterministic algorithm on it degenerates to an oblivious word
over ``{stay, N, E, S, W}`` — conditionals have nothing to condition
on.  That makes the theorem directly machine-checkable at small scale
and measurable at large scale:

* :func:`dedicated_word` constructs the natural *optimal-shape*
  algorithm for the ``Z`` family (enumerate ``γ·γ`` excursions with
  backtracking); its worst-case meeting time is ``THETA(k 2^k)``,
  exhibiting the exponential growth the theorem forces.
* :func:`simulate_word` / :func:`simulate_word_symbolic` run an
  oblivious word from a STIC — on the concrete graph, or symbolically
  on the infinite-ish tree (positions as reduced root paths, valid
  while walks stay inside ``Q_h``, which the lower-bound argument
  itself guarantees for horizons below the leaf distance).
* :func:`midpoint_dichotomy` checks the proof's pivot on concrete
  runs: before meeting, (at least) one of the agents passes through
  the midpoint ``M(v)``.
* :func:`theoretical_bound` is the paper's ``2^(k-1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.port_graph import PortLabeledGraph
from repro.hardness.qtree import QTree, opposite
from repro.hardness.zset import ZMember, z_paths

__all__ = [
    "STAY",
    "dedicated_word",
    "simulate_word",
    "simulate_word_symbolic",
    "OblivousOutcome",
    "theoretical_bound",
    "midpoint_dichotomy",
    "worst_case_meeting_time",
]

#: The "stay put" letter of an oblivious algorithm word.
STAY = -1


def theoretical_bound(k: int) -> int:
    """The paper's lower bound ``2^(k-1)`` on rendezvous time."""
    return 2 ** (k - 1)


def dedicated_word(k: int) -> tuple[int, ...]:
    """The natural dedicated algorithm for the family ``{[(r, v), 2k]}``.

    For each ``γ in {N, E}^k`` in lex order: walk ``γ·γ`` (out to the
    candidate ``v``), then walk back reversing with opposite letters.
    Each block has ``4k`` letters and starts/ends at the agent's home.

    Alignment argument (mirrors Lemma 3.2's): with delay ``D = 2k``,
    when the earlier agent's block for the true ``γ*`` reaches
    ``v = γ*γ*(r)`` at block offset ``2k``, the later agent — exactly
    half a block behind — is at offset 0 of a block, i.e. sitting at
    its home ``v``.  Rendezvous is therefore achieved for every
    ``v in Z`` within ``4k * 2^k`` rounds, while Theorem 4.1 shows no
    algorithm can beat ``2^(k-1)``.
    """
    word: list[int] = []
    for path in z_paths(k):
        word.extend(path)
        word.extend(opposite(p) for p in reversed(path))
    return tuple(word)


@dataclass(frozen=True)
class OblivousOutcome:
    """Result of running an oblivious word from one STIC."""

    met: bool
    meeting_time: int | None  # global round
    time_from_later: int | None
    visited_a: tuple[int, ...]  # positions per round (node or path key)
    visited_b: tuple[int, ...]


def _letters_at(word: tuple[int, ...], t: int) -> int:
    """Word letter executed at local time ``t`` (word repeats forever)."""
    return word[t % len(word)]


def simulate_word(
    graph: PortLabeledGraph,
    word: tuple[int, ...],
    u: int,
    v: int,
    delta: int,
    max_rounds: int,
) -> OblivousOutcome:
    """Run the same oblivious word from ``u`` (round 0) and ``v``
    (round ``delta``) on a concrete 4-regular graph."""
    pos_a, pos_b = u, v
    hist_a, hist_b = [u], [v]
    for t in range(max_rounds):
        if t >= delta and pos_a == pos_b:
            return OblivousOutcome(True, t, t - delta, tuple(hist_a), tuple(hist_b))
        la = _letters_at(word, t)
        if la != STAY:
            pos_a = graph.succ(pos_a, la)
        if t >= delta:
            lb = _letters_at(word, t - delta)
            if lb != STAY:
                pos_b = graph.succ(pos_b, lb)
        hist_a.append(pos_a)
        hist_b.append(pos_b)
    met = max_rounds >= delta and pos_a == pos_b
    return OblivousOutcome(
        met,
        max_rounds if met else None,
        max_rounds - delta if met else None,
        tuple(hist_a),
        tuple(hist_b),
    )


def _step_path(path: tuple[int, ...], letter: int, h: int) -> tuple[int, ...]:
    """Apply one letter to a reduced root path inside ``Q_h``.

    Valid while the walk stays in the tree: at internal nodes every
    letter is available (parent or child edge); at leaves only the
    parent letter is — violations raise, which is itself a check that
    the workload respects the tree-confinement premise of the proof.
    """
    if letter == STAY:
        return path
    if path and path[-1] == opposite(letter):
        return path[:-1]
    if len(path) >= h:
        raise ValueError(
            "walk tried to leave Q_h through a leaf's cycle port; "
            "symbolic simulation only covers tree-confined horizons"
        )
    return path + (letter,)


def simulate_word_symbolic(
    h: int,
    word: tuple[int, ...],
    start_a: tuple[int, ...],
    start_b: tuple[int, ...],
    delta: int,
    max_rounds: int,
) -> OblivousOutcome:
    """Run an oblivious word on ``Q_h`` *without materializing it*.

    Positions are reduced port paths from the root (node identities in
    a tree), enabling the lower-bound sweeps at heights whose node
    count (``~3^h``) is far beyond what can be built.
    """
    pos_a, pos_b = tuple(start_a), tuple(start_b)
    hist_a, hist_b = [pos_a], [pos_b]
    for t in range(max_rounds):
        if t >= delta and pos_a == pos_b:
            return OblivousOutcome(True, t, t - delta, tuple(hist_a), tuple(hist_b))
        la = _letters_at(word, t)
        pos_a = _step_path(pos_a, la, h)
        if t >= delta:
            lb = _letters_at(word, t - delta)
            pos_b = _step_path(pos_b, lb, h)
        hist_a.append(pos_a)
        hist_b.append(pos_b)
    met = max_rounds >= delta and pos_a == pos_b
    return OblivousOutcome(
        met,
        max_rounds if met else None,
        max_rounds - delta if met else None,
        tuple(hist_a),
        tuple(hist_b),
    )


def worst_case_meeting_time(k: int, *, word: tuple[int, ...] | None = None) -> int:
    """Max over ``v in Z`` of the dedicated word's rendezvous time.

    Measured from the later agent's start, via symbolic simulation on
    ``Q_h`` with ``h = 2D = 4k``.  This is the measured curve that
    EXPERIMENTS.md compares against ``2^(k-1)``.
    """
    if word is None:
        word = dedicated_word(k)
    h = 4 * k
    delta = 2 * k
    horizon = len(word) + 8 * k + delta
    worst = 0
    for path in z_paths(k):
        outcome = simulate_word_symbolic(h, word, (), path, delta, horizon)
        if not outcome.met:
            raise AssertionError(f"dedicated word failed to meet for v={path}")
        worst = max(worst, outcome.time_from_later)  # type: ignore[arg-type]
    return worst


def midpoint_dichotomy(
    tree: QTree,
    member: ZMember,
    outcome: OblivousOutcome,
) -> tuple[bool, bool]:
    """Check the proof's dichotomy on a concrete run.

    Returns ``(a_visited_midpoint, b_visited_midpoint)`` restricted to
    rounds up to the meeting; Theorem 4.1's argument implies at least
    one of them is true for every successful run.
    """
    if not outcome.met:
        raise ValueError("dichotomy is only defined for successful runs")
    cut = outcome.meeting_time + 1
    mid = member.midpoint
    return (
        mid in outcome.visited_a[:cut],
        mid in outcome.visited_b[:cut],
    )
