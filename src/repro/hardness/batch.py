"""Vectorized oblivious-word simulation over many STICs at once.

The Theorem 4.1 sweeps run the *same* word from the root against every
``v in Z`` — a classic batch workload.  Per the profiling-first HPC
guidance, the scalar loop in :mod:`repro.hardness.lower_bound` is kept
as the readable reference, and this module provides a numpy
implementation that advances all later-agent positions simultaneously
(one gather per round), typically one to two orders of magnitude
faster on the 13k-node ``Q̂_8``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.graphs.port_graph import PortLabeledGraph
from repro.hardness.lower_bound import STAY

__all__ = ["simulate_word_batch"]


def simulate_word_batch(
    graph: PortLabeledGraph,
    word: tuple[int, ...],
    u: int,
    starts: Sequence[int] | np.ndarray,
    delta: int,
    max_rounds: int,
) -> list[int | None]:
    """Meeting times for STICs ``[(u, v), delta]`` for all ``v`` in
    ``starts`` (any integer sequence, ndarrays included), under one
    shared oblivious word (repeated forever).

    Returns one global meeting round (or ``None``) per start, identical
    to running :func:`repro.hardness.lower_bound.simulate_word` per
    start — property-tested against it.
    """
    if len(starts) == 0:  # truthiness would reject ndarray inputs
        return []
    succ = graph.succ_node_array
    n_words = len(word)
    pos_a = u  # scalar: the earlier agent is shared across the batch
    # Explicit copy: np.asarray would alias an int64 ndarray argument,
    # and the in-place `pos_b[live] = ...` updates below would then
    # silently corrupt the caller's array.
    pos_b = np.array(starts, dtype=np.int64, copy=True)
    met = np.full(len(starts), -1, dtype=np.int64)

    for t in range(max_rounds):
        if t >= delta:
            hit = (met < 0) & (pos_b == pos_a)
            met[hit] = t
            if (met >= 0).all():
                break
        la = word[t % n_words]
        if la != STAY:
            pos_a = int(succ[pos_a, la])
        if t >= delta:
            lb = word[(t - delta) % n_words]
            if lb != STAY:
                live = met < 0
                pos_b[live] = succ[pos_b[live], lb]
    else:
        # final boundary check, matching the scalar semantics
        if max_rounds >= delta:
            hit = (met < 0) & (pos_b == pos_a)
            met[hit] = max_rounds
    return [int(m) if m >= 0 else None for m in met]
