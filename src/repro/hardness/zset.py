"""The set ``Z`` and the midpoints ``M(v)`` of Section 4.

For even ``D = 2k`` and ``h = 2D``, a node ``v`` of ``Q̂_h`` belongs
to ``Z`` when ``v = (γ·γ)(r)`` for some ``γ in {N, E}^k`` (``·`` is
concatenation, ``r`` the root).  ``|Z| = 2^k``, every ``v in Z`` is at
distance ``D`` from ``r``, and ``M(v) = γ(r)`` is the *midpoint* the
lower-bound argument revolves around.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.hardness.qtree import E, N, QTree

__all__ = ["ZMember", "z_set", "z_paths"]


@dataclass(frozen=True)
class ZMember:
    """One element of ``Z``: the node, its ``γ``, and its midpoint."""

    node: int
    gamma: tuple[int, ...]
    midpoint: int

    @property
    def path_from_root(self) -> tuple[int, ...]:
        """The defining port word ``γ·γ``."""
        return self.gamma + self.gamma


def z_paths(k: int) -> list[tuple[int, ...]]:
    """All defining words ``γ·γ`` with ``γ in {N, E}^k`` (lex order)."""
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    return [g + g for g in (tuple(c) for c in product((N, E), repeat=k))]


def z_set(tree: QTree, k: int) -> list[ZMember]:
    """Materialize ``Z`` on a concrete ``Q_h`` scaffold (``h >= 2k``).

    Verifies the paper's counting claims: ``2^k`` distinct nodes, each
    at depth ``D = 2k``.
    """
    if tree.h < 2 * k:
        raise ValueError(f"need h >= 2k, got h={tree.h}, k={k}")
    members = []
    for gamma in product((N, E), repeat=k):
        gamma = tuple(gamma)
        mid = tree.follow(tree.root, gamma)
        node = tree.follow(mid, gamma)
        members.append(ZMember(node=node, gamma=gamma, midpoint=mid))
    nodes = {m.node for m in members}
    if len(nodes) != 2**k:
        raise AssertionError("Z members are not distinct")
    for m in members:
        if tree.depth[m.node] != 2 * k:
            raise AssertionError("Z member not at distance D from the root")
    return members
