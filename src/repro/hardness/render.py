"""Text rendering of the Fig. 1 construction.

Reproduces the *figure itself* (not just its properties): an indented
drawing of the tree ``Q_h`` with letter ports, plus the lists of added
leaf edges of ``Q̂_h`` (pairing edges and the four alternating
cycles), matching the layout described in Section 4's bullet list.
"""

from __future__ import annotations

from repro.hardness.qtree import PORT_NAMES, QTree, build_qtree
from repro.hardness.qhat import build_qhat

__all__ = ["render_qtree", "render_qhat_extras", "render_fig1"]


def render_qtree(tree: QTree, *, max_nodes: int = 200) -> str:
    """Indented drawing of ``Q_h``; children labeled by outgoing port."""
    lines: list[str] = [f"Q_{tree.h} (root r, {tree.n} nodes)"]
    count = 0

    def walk(v: int, prefix: str, label: str) -> None:
        nonlocal count
        if count >= max_nodes:
            return
        count += 1
        kind = "leaf" if tree.is_leaf(v) else "node"
        suffix = ""
        if tree.is_leaf(v):
            suffix = f"  [{PORT_NAMES[tree.leaf_type[v]]}-type]"
        lines.append(f"{prefix}{label}{kind} {v}{suffix}")
        for port in sorted(tree.children[v]):
            walk(
                tree.children[v][port],
                prefix + "    ",
                f"--{PORT_NAMES[port]}--> ",
            )

    walk(tree.root, "", "")
    if count >= max_nodes:
        lines.append(f"... ({tree.n - count} more nodes elided)")
    return "\n".join(lines)


def render_qhat_extras(h: int) -> str:
    """The edges Q̂_h adds between the leaves of Q_h, grouped as in the
    paper's bullet list (Fig. 1, right)."""
    graph, tree = build_qhat(h)
    tree_edge_count = tree.n - 1
    extras = graph.edges[tree_edge_count:]
    x = 3 ** (h - 1)
    pairing = extras[: 2 * x]
    cycles = extras[2 * x :]
    lines = [f"Q-hat_{h}: {len(extras)} added leaf edges"]
    lines.append("pairing edges (N_i-S_i with ports S/N; E_i-W_i with W/E):")
    for u, pu, v, pv in pairing:
        lines.append(
            f"  {u} --{PORT_NAMES[pu]}/{PORT_NAMES[pv]}-- {v}"
        )
    lines.append("alternating leaf cycles (4 cycles of length x = %d):" % x)
    for i in range(4):
        cycle = cycles[i * x : (i + 1) * x]
        path = " - ".join(str(e[0]) for e in cycle) + f" - {cycle[0][0]}"
        ports = f"{PORT_NAMES[cycle[0][1]]}/{PORT_NAMES[cycle[0][3]]}"
        lines.append(f"  cycle {i + 1} (ports {ports}): {path}")
    return "\n".join(lines)


def render_fig1(h: int = 2) -> str:
    """The complete Figure 1 analogue as text."""
    tree = build_qtree(h)
    return render_qtree(tree) + "\n\n" + render_qhat_extras(h)
