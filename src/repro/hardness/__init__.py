"""Section 4: the hard instance Q_h / Q-hat_h and Theorem 4.1."""

from repro.hardness.batch import simulate_word_batch
from repro.hardness.lower_bound import (
    STAY,
    OblivousOutcome,
    dedicated_word,
    midpoint_dichotomy,
    simulate_word,
    simulate_word_symbolic,
    theoretical_bound,
    worst_case_meeting_time,
)
from repro.hardness.qhat import build_qhat, qhat_size
from repro.hardness.qtree import E, N, PORT_NAMES, S, W, QTree, build_qtree, opposite
from repro.hardness.zset import ZMember, z_paths, z_set

__all__ = [
    "N", "E", "S", "W", "PORT_NAMES", "opposite",
    "QTree", "build_qtree", "build_qhat", "qhat_size",
    "ZMember", "z_set", "z_paths",
    "STAY", "dedicated_word", "simulate_word", "simulate_word_symbolic",
    "OblivousOutcome", "theoretical_bound", "midpoint_dichotomy",
    "worst_case_meeting_time",
    "simulate_word_batch",
]
