"""Adaptive trace deepening: the engines' shared outer loop.

Both frontends follow the same strategy — *compile shallow, solve,
deepen geometrically* — so cells that resolve early never pay for the
deepest cell's horizon.  :func:`resolve_adaptive` is that loop with
the engine-specific parts factored into one callback:

``step(pending, horizon)`` receives the indices still undecided and
the current compile horizon; it compiles whatever traces those cells
need, attempts to resolve each, and returns ``{index: outcome}`` for
the cells it decided (omitting an index keeps it pending).  Raising
propagates — error binding is the resolvers' job, not this loop's.

With ``cap`` set (the synchronous engine: budgets bound every useful
horizon) the horizon is clamped to it and exhausting it with cells
still pending is an engine invariant violation.  With ``cap=None``
(the asynchronous engine: waits inflate local clocks without bound)
the horizon grows until the callback's own fuel accounting raises.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

__all__ = ["resolve_adaptive"]


def resolve_adaptive(
    count: int,
    step: Callable[[Sequence[int], int], Mapping[int, Any]],
    *,
    initial_horizon: int = 1024,
    growth: int = 4,
    cap: int | None = None,
) -> list[Any]:
    """Resolve ``count`` cells by repeatedly deepening the horizon.

    Parameters
    ----------
    count:
        Number of cells; the result list has this length, in index
        order.
    step:
        ``(pending indices, horizon) -> {index: outcome}`` for the
        cells decided at this horizon.
    initial_horizon:
        First compile depth (clamped to at least 1, and to ``cap``).
    growth:
        Geometric factor applied between rounds.
    cap:
        Largest horizon worth compiling to, or ``None`` for unbounded
        growth (the callback must then guarantee termination, e.g. by
        fuel accounting).
    """
    if growth < 2:
        raise ValueError(f"growth must be >= 2, got {growth}")
    results: list[Any] = [None] * count
    pending = list(range(count))
    horizon = max(initial_horizon, 1)
    if cap is not None:
        horizon = min(cap, horizon)
    while pending:
        decided = step(pending, horizon)
        pending = [i for i in pending if i not in decided]
        for i, outcome in decided.items():
            results[i] = outcome
        if pending:
            if cap is not None:
                if horizon >= cap:  # pragma: no cover - defensive
                    raise AssertionError(
                        "batch horizon exhausted with cells pending"
                    )
                horizon = min(cap, horizon * growth)
            else:
                horizon *= growth
    return results
