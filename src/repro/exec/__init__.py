"""The unified vectorized execution core (see docs/execution_core.md).

Three engines used to reimplement the same machinery — the batched
STIC sweep (:mod:`repro.sim.batch`), the schedule-adversary sweep
(:mod:`repro.sim.schedule_adversary`), and the UXS coverage engine
(:mod:`repro.core.uxs_engine`).  This package is the single shared
implementation they are now thin frontends over:

* :mod:`repro.exec.backend` — the :class:`ArrayBackend` protocol and
  the default :class:`NumpyBackend`; every gather/scan/reduction the
  replay stage performs goes through a backend, so the array engine is
  swappable (numba/GPU-shaped backends slot in without touching the
  engines).
* :mod:`repro.exec.trace` — the trace IR: agent behavior is compiled
  once into :class:`PortTrace` arrays by :class:`TraceCompiler`, with
  unified fuel (``tail_waits``) accounting.
* :mod:`repro.exec.meeting` — meeting detection over compiled traces:
  synchronous node meetings (:func:`solve_sync_meeting`,
  :func:`resolve_sync_cell`) and asynchronous node/edge meetings
  (:func:`resolve_async_cell`), both returning :data:`PENDING` when
  the compiled prefixes are too shallow to decide.
* :mod:`repro.exec.deepen` — :func:`resolve_adaptive`, the shared
  compile-shallow / solve / deepen-geometrically driver.
* :mod:`repro.exec.uxs` — the dart-automaton replay: UXS streams and
  multi-start coverage walks as backend gathers.

Equivalence with the retained scalar references is enforced by the
``tests/exec`` differential harness (``assert_engines_identical``),
golden fast-tier experiment fixtures, and the campaign check library.
"""

from repro.exec.backend import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
)
from repro.exec.deepen import resolve_adaptive
from repro.exec.meeting import (
    PENDING,
    resolve_async_cell,
    resolve_sync_cell,
    solve_sync_meeting,
)
from repro.exec.trace import BadPortChoice, PortTrace, TraceCompiler
from repro.exec.uxs import (
    DartWalkTable,
    apply_uxs_all,
    covered_counts,
    generate_offset_stream,
    is_uxs_for_graph_vectorized,
    splitmix64_block,
)

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "available_backends",
    "default_backend",
    "get_backend",
    "register_backend",
    "resolve_adaptive",
    "PENDING",
    "resolve_async_cell",
    "resolve_sync_cell",
    "solve_sync_meeting",
    "BadPortChoice",
    "PortTrace",
    "TraceCompiler",
    "DartWalkTable",
    "apply_uxs_all",
    "covered_counts",
    "generate_offset_stream",
    "is_uxs_for_graph_vectorized",
    "splitmix64_block",
]
