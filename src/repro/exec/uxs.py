"""The dart-automaton replay: UXS streams and multi-start coverage.

Two scalar hot spots live in :mod:`repro.core.uxs`:

* generating ``Y(n)`` is ``48 n^3 ceil(log2(n+1))`` calls into a Python
  :class:`~repro.util.lcg.SplitMix64`;
* certifying coverage (:func:`~repro.core.uxs.is_uxs_for_graph`) walks
  the full sequence once *per start node*, through per-step
  ``graph.succ`` / ``graph.entry_port`` method calls.

This module replaces both with array programs whose outputs are
bit-identical to the scalar definitions (enforced by
``tests/core/test_uxs_vectorized.py`` and the ``tests/exec``
differential harness):

* :func:`generate_offset_stream` evaluates SplitMix64 on a whole index
  range at once (the generator's state after ``k`` steps is the closed
  form ``seed + k * GAMMA``), then replays the scalar rejection
  sampling by filtering the accepted values *in stream order* — a
  rejection sampler consumes raw words sequentially and emits accepted
  ones in order, so the filtered subsequence IS the scalar output.
* :func:`apply_uxs_all` / :func:`covered_counts` walk the sequence from
  **all start nodes simultaneously**.  The walk state at each step is a
  *dart* (node, entry port); since every node of degree ``d`` uses
  entry ports ``0..d-1``, the dart space has one id per directed edge
  plus the virtual start darts.  A precompiled table maps
  ``(offset value, dart) -> next dart``, so each step of the walk — for
  every start node at once — is a single backend gather.  Coverage
  tracking is batched: darts are recorded into a chunk buffer and
  folded into the per-start visited sets once per chunk, with an early
  exit as soon as every walk has covered the graph (the scalar walk
  keeps stepping long after coverage; see ``covers_from``'s early-exit
  fix).

This is the UXS face of the execution core: like the trace replay in
:mod:`repro.exec.meeting`, the inner loop is nothing but
``backend.take`` gathers through a compiled transition table, so a
device-array backend accelerates both engines at once.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exec.backend import ArrayBackend, default_backend
from repro.graphs.port_graph import PortLabeledGraph

__all__ = [
    "splitmix64_block",
    "generate_offset_stream",
    "DartWalkTable",
    "apply_uxs_all",
    "covered_counts",
    "is_uxs_for_graph_vectorized",
]

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_FULL = 1 << 64


def splitmix64_block(seed: int, start: int, count: int) -> np.ndarray:
    """Outputs ``start .. start+count-1`` of ``SplitMix64(seed)``.

    Output ``i`` (0-based) of the scalar generator mixes the state
    ``seed + (i+1) * GAMMA``; evaluating that closed form over an index
    range vectorizes the whole stream.
    """
    with np.errstate(over="ignore"):
        index = np.arange(start + 1, start + count + 1, dtype=np.uint64)
        z = np.uint64(seed & (_FULL - 1)) + index * _GAMMA
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def generate_offset_stream(seed: int, bound: int, length: int) -> np.ndarray:
    """``length`` draws of ``SplitMix64(seed).randrange(bound)``, vectorized.

    Bit-identical to the scalar loop, including its rejection sampling:
    raw 64-bit words at or above the largest multiple of ``bound`` are
    discarded in stream order, exactly as the scalar sampler does.
    Streams are prefix-stable — the first ``k`` draws do not depend on
    ``length`` — which :func:`repro.core.uxs.minimal_verified_uxs`
    relies on when it scans growing prefixes.
    """
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    limit = _FULL - (_FULL % bound)
    out = np.empty(length, dtype=np.int64)
    filled = 0
    consumed = 0
    while filled < length:
        # Acceptance probability is limit / 2^64 > 1/2; a small slack
        # factor makes a second round rare.
        want = length - filled
        block = splitmix64_block(seed, consumed, want + 16 + want // 8)
        consumed += len(block)
        accepted = block if limit >= _FULL else block[block < np.uint64(limit)]
        take = min(len(accepted), want)
        out[filled : filled + take] = (
            accepted[:take] % np.uint64(bound)
        ).astype(np.int64)
        filled += take
    return out


class DartWalkTable:
    """Precompiled UXS transition tables of one graph.

    A walk's state after any step is the dart ``(node, entry port)``;
    the next dart under offset ``a`` is a pure function of the state,
    so the automaton is the integer table
    ``transitions[a, dart] -> dart`` (darts are encoded as
    ``node * max_degree + entry_port``).  Applying one UXS term to
    every concurrent walk is then a single backend gather.

    The symbol axis is bounded by ``bound = max(2n, 2)`` — the offset
    range of every generated stream.  Offsets only matter modulo the
    local degree, so arbitrarily large terms are legal UXS input
    (the scalar walk reduces them on the fly); for those the walk
    drops to :meth:`step_direct`, which computes the port reduction
    per step instead of indexing the symbol table — table memory
    therefore never scales with the offset *values*.
    """

    __slots__ = (
        "graph",
        "bound",
        "transitions",
        "max_degree",
        "port_step",
        "dart_entry",
        "dart_degree",
        "backend",
    )

    def __init__(
        self,
        graph: PortLabeledGraph,
        bound: int,
        *,
        backend: ArrayBackend | None = None,
    ) -> None:
        xp = backend if backend is not None else default_backend()
        n = graph.n
        succ = graph.succ_node_array
        entry = graph.succ_port_array
        md = succ.shape[1]
        degrees = graph.degrees

        node_of = np.repeat(np.arange(n), md)
        port_of = np.tile(np.arange(md), n)
        deg_of = degrees[node_of]
        valid = port_of < deg_of
        # Invalid darts are never reached; park them on port 0 so the
        # table build stays total.
        safe_deg = np.maximum(deg_of, 1)
        offsets = np.arange(bound, dtype=np.int64)[:, None]
        ports = (port_of[None, :] + offsets) % safe_deg[None, :]
        flat_succ = succ.reshape(-1)
        flat_entry = entry.reshape(-1)
        source = node_of[None, :] * md + ports
        table = flat_succ[source] * md + flat_entry[source]
        table[:, ~valid] = 0
        self.graph = graph
        self.bound = bound
        self.max_degree = md
        self.backend = xp
        self.transitions = xp.asarray(np.ascontiguousarray(table))
        # Port-indexed transition (out-port darts share the encoding
        # space): port_step[v * md + p] = successor dart of leaving v
        # by port p.  Backbone of the out-of-range fallback.
        self.port_step = xp.asarray(
            np.where(flat_succ >= 0, flat_succ * md + flat_entry, 0)
        )
        self.dart_entry = xp.asarray(port_of)
        self.dart_degree = xp.asarray(safe_deg)

    def start_darts(self) -> np.ndarray:
        """Initial darts after the fixed first step ``succ(u, 0)``."""
        graph = self.graph
        succ = graph.succ_node_array
        entry = graph.succ_port_array
        return self.backend.asarray(
            succ[:, 0] * self.max_degree + entry[:, 0]
        )

    def step_direct(
        self, darts: np.ndarray, offset: int, out: np.ndarray
    ) -> None:
        """One walk step for an offset outside the symbol table:
        reduce the offset modulo each lane's degree explicitly."""
        xp = self.backend
        entry = xp.take(self.dart_entry, darts)
        ports = (entry + offset) % xp.take(self.dart_degree, darts)
        xp.take(self.port_step, darts - entry + ports, out=out)


def _as_offsets(seq: Sequence[int]) -> np.ndarray:
    offsets = np.asarray(seq, dtype=np.int64)
    if offsets.ndim != 1:
        raise ValueError("UXS must be a flat sequence of offsets")
    if len(offsets) and int(offsets.min()) < 0:
        raise ValueError("UXS offsets must be non-negative")
    return offsets


def apply_uxs_all(
    graph: PortLabeledGraph,
    seq: Sequence[int],
    *,
    backend: ArrayBackend | None = None,
) -> np.ndarray:
    """Applications of ``seq`` from **every** start node at once.

    Returns an ``(n, len(seq) + 2)`` node matrix whose row ``u`` equals
    ``apply_uxs(graph, u, seq)`` (for single-node graphs: shape
    ``(1, 1)``, matching the scalar walk that cannot leave the node).
    """
    xp = backend if backend is not None else default_backend()
    n = graph.n
    if n == 1:
        return xp.zeros((1, 1), dtype=np.int64)
    offsets = _as_offsets(seq)
    table = DartWalkTable(graph, max(2 * n, 2), backend=xp)
    md = table.max_degree
    steps = len(offsets)
    darts = xp.empty((steps + 1, n), dtype=np.int64)
    darts[0] = table.start_darts()
    transitions = table.transitions
    take = xp.take
    in_table = offsets < table.bound
    for k in range(steps):
        if in_table[k]:
            take(transitions[offsets[k]], darts[k], out=darts[k + 1])
        else:
            table.step_direct(darts[k], int(offsets[k]), darts[k + 1])
    nodes = xp.empty((n, steps + 2), dtype=np.int64)
    nodes[:, 0] = xp.arange(n)
    nodes[:, 1:] = (darts // md).T
    return nodes


def covered_counts(
    graph: PortLabeledGraph,
    seq: Sequence[int],
    *,
    chunk: int = 512,
    stop_when_all_covered: bool = True,
    backend: ArrayBackend | None = None,
    block_size: int | None = None,
) -> np.ndarray:
    """Distinct nodes visited by the application of ``seq`` from each
    start node (vector of length ``n``).

    The multi-start walk advances a block of start lanes in lockstep —
    one gather per UXS term — recording darts into a chunk buffer that
    is folded into the per-start visited sets every ``chunk`` steps.
    With ``stop_when_all_covered`` (the default) a block exits as soon
    as every one of its walks has covered the graph, so certification
    cost is bounded by the graph's actual cover time, not the sequence
    length.  The sequence is consumed chunk by chunk (no up-front
    conversion of a multi-million-term tuple); offsets beyond the
    symbol table's range take the per-step reduction path
    (:meth:`DartWalkTable.step_direct`), so memory never scales with
    the offset values.

    ``block_size`` bounds the per-start state: lanes run in blocks of
    at most that many starts, so peak memory is ``O(block * n)``
    visited bits instead of ``O(n^2)`` — the scale path for huge
    graphs.  The default (one block of all ``n`` starts) matches the
    historical behavior; counts are per-lane independent, hence
    bit-identical for every block split.
    """
    xp = backend if backend is not None else default_backend()
    n = graph.n
    if n == 1:
        return xp.asarray([1], dtype=np.int64)
    if block_size is not None and block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    table = DartWalkTable(graph, max(2 * n, 2), backend=xp)
    block = n if block_size is None else min(int(block_size), n)
    start_darts = table.start_darts()
    counts = xp.empty(n, dtype=np.int64)
    for lane0 in range(0, n, block):
        lane1 = min(lane0 + block, n)
        counts[lane0:lane1] = _covered_counts_lanes(
            table,
            start_darts,
            lane0,
            lane1,
            seq,
            chunk,
            stop_when_all_covered,
            xp,
        )
    return counts


def _covered_counts_lanes(
    table: DartWalkTable,
    start_darts: np.ndarray,
    lane0: int,
    lane1: int,
    seq: Sequence[int],
    chunk: int,
    stop_when_all_covered: bool,
    xp: ArrayBackend,
) -> np.ndarray:
    """Coverage counts for start lanes ``lane0 .. lane1 - 1``."""
    graph = table.graph
    n = graph.n
    md = table.max_degree
    transitions = table.transitions
    take = xp.take
    width = lane1 - lane0

    visited = xp.zeros((width, n), dtype=bool)
    local = xp.arange(width)
    visited[local, xp.arange(lane0, lane1)] = True

    darts = start_darts[lane0:lane1]
    visited[local, darts // md] = True
    if stop_when_all_covered and visited.all():
        return visited.sum(axis=1)

    buffer = xp.empty((chunk, width), dtype=np.int64)
    lane_base = local * n
    visited_flat = visited.reshape(-1)
    position = 0
    total = len(seq)
    while position < total:
        size = min(chunk, total - position)
        offsets = np.asarray(seq[position : position + size], dtype=np.int64)
        if len(offsets) and int(offsets.min()) < 0:
            raise ValueError("UXS offsets must be non-negative")
        previous = darts
        if int(offsets.max()) < table.bound:
            for k in range(size):
                take(transitions[offsets[k]], previous, out=buffer[k])
                previous = buffer[k]
        else:
            in_table = offsets < table.bound
            for k in range(size):
                if in_table[k]:
                    take(transitions[offsets[k]], previous, out=buffer[k])
                else:
                    table.step_direct(previous, int(offsets[k]), buffer[k])
                previous = buffer[k]
        darts = buffer[size - 1].copy()
        position += size
        visited_flat[
            (buffer[:size] // md + lane_base[None, :]).reshape(-1)
        ] = True
        if stop_when_all_covered and visited_flat.all():
            break
    return visited.sum(axis=1)


def is_uxs_for_graph_vectorized(
    graph: PortLabeledGraph,
    seq: Sequence[int],
    *,
    backend: ArrayBackend | None = None,
    block_size: int | None = None,
) -> bool:
    """Certify ``seq`` on one graph: coverage from *every* start node.

    Same answer as the scalar per-start certification, computed as one
    multi-start walk with an early exit on full coverage.  Pass
    ``block_size`` to bound working memory at ``O(block * n)`` on huge
    graphs (see :func:`covered_counts`).
    """
    if graph.n == 1:
        return True
    return bool(
        (
            covered_counts(graph, seq, backend=backend, block_size=block_size)
            == graph.n
        ).all()
    )
