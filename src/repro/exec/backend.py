"""The pluggable array backend behind the execution core.

The engines' replay stage is a small vocabulary of array primitives —
gathers, scans, sorted merges, reductions — applied to int64/bool
vectors.  :class:`ArrayBackend` names exactly that vocabulary;
:class:`NumpyBackend` is the in-process default.  A numba-, JAX- or
GPU-shaped engine implements the same protocol (arrays may then live
on a device) and is selected per call via the engines' ``backend``
parameter, or process-wide through :func:`register_backend` /
:func:`get_backend`.

Backend arrays are *numpy-like*: they support elementwise arithmetic
and comparison operators, boolean-mask and integer ("fancy") indexing,
``.any()`` / ``.all()`` / ``.sum()`` reductions, and ``len()``.  The
protocol only adds the creation/gather/scan entry points the engines
call by name.  Conversions back to host ints (``int(...)`` on a
0-d result) must be cheap for decided cells — the adaptive deepening
loop promotes a handful of scalars per resolved cell.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "Array",
    "ArrayBackend",
    "NumpyBackend",
    "available_backends",
    "default_backend",
    "get_backend",
    "register_backend",
]

#: Alias for "whatever array type the active backend produces".  The
#: default backend produces :class:`numpy.ndarray`; the annotation is
#: deliberately loose so device-array backends type-check unchanged.
Array = Any


@runtime_checkable
class ArrayBackend(Protocol):
    """The array primitives the execution core replays through.

    Implementations must be deterministic: identical inputs produce
    bit-identical outputs, run to run and backend to backend — the
    differential harness (``tests/exec``) holds every registered
    backend to the numpy reference's exact outputs.
    """

    #: Registry name (``"numpy"``, ``"numba"``, ...).
    name: str

    # -- creation / conversion -------------------------------------------
    def asarray(self, values: Any, dtype: Any = None) -> Array:
        """Convert to a backend array (no copy when already one)."""
        ...

    def zeros(self, shape: Any, dtype: Any = None) -> Array: ...

    def empty(self, shape: Any, dtype: Any = None) -> Array: ...

    def full(self, shape: Any, fill: Any, dtype: Any = None) -> Array: ...

    def arange(self, *args: Any, dtype: Any = None) -> Array: ...

    def concatenate(self, parts: Any) -> Array: ...

    # -- gathers / scans --------------------------------------------------
    def take(self, table: Array, indices: Array, out: Array | None = None) -> Array:
        """``table[indices]`` — the replay stage's one hot gather."""
        ...

    def searchsorted(self, sorted_arr: Array, values: Any, side: str = "left") -> Array:
        """Breakpoint lookup into a sorted step-function domain."""
        ...

    def cumsum(self, values: Array, axis: int = 0, out: Array | None = None) -> Array: ...

    def sort(self, values: Array) -> Array:
        """Ascending sort (used to merge trace breakpoints)."""
        ...

    # -- reductions / predicates -----------------------------------------
    def argmax(self, values: Array) -> int:
        """Index of the first maximum (first True for bool input)."""
        ...

    def flatnonzero(self, values: Array) -> Array: ...

    def minimum(self, a: Array, b: Any) -> Array: ...

    def maximum(self, a: Array, b: Any) -> Array: ...


class NumpyBackend:
    """The default, host-memory backend: thin delegation to numpy."""

    name = "numpy"

    def asarray(self, values: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(values, dtype=dtype)

    def zeros(self, shape: Any, dtype: Any = None) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def empty(self, shape: Any, dtype: Any = None) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def full(self, shape: Any, fill: Any, dtype: Any = None) -> np.ndarray:
        return np.full(shape, fill, dtype=dtype)

    def arange(self, *args: Any, dtype: Any = None) -> np.ndarray:
        return np.arange(*args, dtype=dtype)

    def concatenate(self, parts: Any) -> np.ndarray:
        return np.concatenate(parts)

    def take(
        self, table: np.ndarray, indices: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        # ndarray method, not np.take: the free-function route adds two
        # Python frames per gather, visible on the per-cell hot path.
        return table.take(indices, out=out)

    def searchsorted(
        self, sorted_arr: np.ndarray, values: Any, side: str = "left"
    ) -> np.ndarray:
        return np.searchsorted(sorted_arr, values, side=side)  # type: ignore[call-overload, no-any-return]

    def cumsum(
        self, values: np.ndarray, axis: int = 0, out: np.ndarray | None = None
    ) -> np.ndarray:
        return np.cumsum(values, axis=axis, out=out)

    def sort(self, values: np.ndarray) -> np.ndarray:
        return np.sort(values)

    def argmax(self, values: np.ndarray) -> int:
        return int(np.argmax(values))

    def flatnonzero(self, values: np.ndarray) -> np.ndarray:
        return np.flatnonzero(values)

    def minimum(self, a: np.ndarray, b: Any) -> np.ndarray:
        return np.minimum(a, b)

    def maximum(self, a: np.ndarray, b: Any) -> np.ndarray:
        return np.maximum(a, b)


_BACKENDS: dict[str, ArrayBackend] = {"numpy": NumpyBackend()}
_DEFAULT = "numpy"


def register_backend(backend: ArrayBackend) -> None:
    """Register (or replace) a backend under its ``name``."""
    if not backend.name:
        raise ValueError("backend must declare a non-empty name")
    _BACKENDS[backend.name] = backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_BACKENDS)


def get_backend(name: str) -> ArrayBackend:
    """Resolve a registered backend by name."""
    if name not in _BACKENDS:
        raise KeyError(
            f"unknown array backend {name!r}; known: {sorted(_BACKENDS)}"
        )
    return _BACKENDS[name]


def default_backend() -> ArrayBackend:
    """The process-wide default backend (numpy)."""
    return _BACKENDS[_DEFAULT]
