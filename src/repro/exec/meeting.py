"""Meeting detection over compiled port traces.

Both engines ask the same question of the IR — *when do two compiled
trajectories first coincide?* — under two different clocks:

* **Synchronous** (:func:`solve_sync_meeting`, :func:`resolve_sync_cell`):
  global rounds; agent 1 starts ``delta`` rounds late; a meeting is
  the earliest global round ``t`` in ``[delta, limit]`` with
  ``a(t) == b(t - delta)``.  Solved by merging the two traces'
  O(#moves) breakpoints, never by stepping rounds.  (Merging keeps
  duplicates: a repeated breakpoint yields two identical gather rows
  and ``argmax`` still reports the first — the dedupe pass
  ``np.union1d`` would add buys nothing.)
* **Asynchronous** (:func:`resolve_async_cell`): adversary events;
  positions are gathers of each trace's ``nodes`` array through the
  schedule's cumulative activation counts; *edge meetings* are events
  where both agents swap endpoints of one edge.

Each resolver returns its engine's result object, raises exactly as
the scalar reference would (error binding is part of the contract:
agent 0 before agent 1, pull-time before apply-time), or returns the
:data:`PENDING` sentinel when the compiled prefixes are too shallow to
decide — the signal :func:`repro.exec.deepen.resolve_adaptive` uses to
deepen traces.
"""

from __future__ import annotations

import math
from typing import Any, NoReturn

from repro.exec.backend import Array, ArrayBackend, default_backend
from repro.exec.trace import BadPortChoice, PortTrace, raise_for_stic
from repro.sim.scheduler import RendezvousResult, SimulationLimit

__all__ = [
    "PENDING",
    "first_error_event",
    "raise_for_async",
    "resolve_async_cell",
    "resolve_sync_cell",
    "solve_sync_meeting",
]

#: Sentinel: the compiled prefixes are too shallow to decide this cell.
PENDING = object()

#: Memoized ``AsyncOutcome`` class (schedule_adversary is a frontend
#: over this module, so the import must be deferred — but only once:
#: the async resolver runs per cell and an inline import statement in
#: it is measurable on the benchmark grids).
_ASYNC_OUTCOME: Any = None


def _async_outcome_cls() -> Any:
    global _ASYNC_OUTCOME
    if _ASYNC_OUTCOME is None:
        from repro.sim.schedule_adversary import AsyncOutcome

        _ASYNC_OUTCOME = AsyncOutcome
    return _ASYNC_OUTCOME


# ---------------------------------------------------------------------------
# Synchronous (global rounds, delayed start)
# ---------------------------------------------------------------------------


def solve_sync_meeting(
    trace_a: PortTrace,
    trace_b: PortTrace,
    delta: int,
    limit: int,
    backend: ArrayBackend | None = None,
) -> tuple[int, int] | None:
    """Earliest ``(t, node)`` with ``a(t) == b(t - delta)``, for global
    ``t`` in ``[delta, limit]`` inclusive; ``None`` when they never
    coincide there.  Works on trace breakpoints, not rounds."""
    if delta > limit:
        return None
    xp = backend if backend is not None else default_backend()
    ta = trace_a.times
    tb = trace_b.times + delta
    cut_a = int(xp.searchsorted(ta, limit, side="right"))
    cut_b = int(xp.searchsorted(tb, limit, side="right"))
    bp = xp.sort(xp.concatenate((ta[:cut_a], tb[:cut_b])))
    bp = bp[bp >= delta]
    if len(bp) == 0 or bp[0] != delta:
        bp = xp.concatenate(([delta], bp))
    pos_a = trace_a.nodes[xp.searchsorted(ta, bp, side="right") - 1]
    pos_b = trace_b.nodes[
        xp.searchsorted(trace_b.times, bp - delta, side="right") - 1
    ]
    eq = pos_a == pos_b
    if not eq.any():
        return None
    k = xp.argmax(eq)
    return int(bp[k]), int(pos_a[k])


def resolve_sync_cell(
    u: int,
    v: int,
    delta: int,
    max_rounds: int,
    trace_u: PortTrace,
    trace_v: PortTrace,
    raise_on_limit: bool,
    backend: ArrayBackend | None = None,
    solver: Any = None,
) -> Any:  # RendezvousResult, or the PENDING sentinel
    """Resolve one STIC from (possibly truncated) traces.

    Returns a :class:`RendezvousResult`, raises like the scalar
    scheduler would, or returns :data:`PENDING` when the compiled
    horizon is too short to decide.  ``solver`` substitutes the
    meeting solver (``(trace_a, trace_b, delta, limit) -> hit``) —
    the mutation-test seam frontends route their module-level solver
    through.
    """
    limit = min(max_rounds, trace_u.limit, delta + trace_v.limit)
    if solver is None:
        hit = solve_sync_meeting(trace_u, trace_v, delta, int(limit), backend)
    else:
        hit = solver(trace_u, trace_v, delta, int(limit))
    if hit is not None:
        t, node = hit
        return RendezvousResult(
            met=True,
            meeting_node=node,
            meeting_time=t,
            time_from_later=t - delta,
            rounds_executed=t,
            crossings=(),
            traces=None,
        )
    if limit >= max_rounds:
        if raise_on_limit:
            raise SimulationLimit(f"no rendezvous within {max_rounds} rounds")
        return RendezvousResult(
            met=False,
            meeting_node=None,
            meeting_time=None,
            time_from_later=None,
            rounds_executed=max_rounds,
            crossings=(),
            traces=None,
        )
    # No meeting within the compiled region and the budget is not
    # exhausted: either an agent error binds (scalar would raise when
    # pulling that round — agent 0 is pulled first on ties), or the
    # horizon must be deepened.
    err_u = trace_u.limit if trace_u.error is not None else math.inf
    err_v = delta + trace_v.limit if trace_v.error is not None else math.inf
    nearest = min(err_u, err_v)
    if nearest <= limit and nearest < max_rounds:
        if err_u <= err_v:
            raise_for_stic(trace_u.error, 0)
        raise_for_stic(trace_v.error, delta)
    return PENDING


# ---------------------------------------------------------------------------
# Asynchronous (adversary events, collapsed waits)
# ---------------------------------------------------------------------------


def raise_for_async(exc: Exception, node: int) -> NoReturn:
    """Re-raise a compiled agent error as the scalar engine would."""
    if isinstance(exc, BadPortChoice):
        raise ValueError(f"invalid port {exc.port} at node {node}")
    raise exc


def first_error_event(
    cum: Array,
    agent: int,
    trace: PortTrace,
    backend: ArrayBackend | None = None,
) -> float:
    """Event at which the schedule would pull this trace's failing
    decision (the pull after its last compiled move), or ``inf``."""
    if trace.error is None:
        return math.inf
    xp = backend if backend is not None else default_backend()
    pulls = xp.flatnonzero(
        (cum[1:, agent] > cum[:-1, agent]) & (cum[:-1, agent] == trace.moves)
    )
    return int(pulls[0]) if len(pulls) else math.inf


def resolve_async_cell(
    cum: Array,
    budget: int,
    trace_u: PortTrace,
    trace_v: PortTrace,
    backend: ArrayBackend | None = None,
) -> Any:  # AsyncOutcome, or the PENDING sentinel
    """Resolve one (pair, schedule) cell from (possibly truncated)
    traces.

    Returns an ``AsyncOutcome``, raises like the scalar engine would,
    or returns :data:`PENDING` when the compiled prefixes are too
    shallow to decide the cell.  Positions are exact for every event
    whose cumulative activation counts stay within both compiled
    prefixes (a complete trace covers any count: a terminated script
    simply stops moving), so a meeting found inside that region is the
    true earliest one.
    """
    AsyncOutcome = _ASYNC_OUTCOME or _async_outcome_cls()
    xp = backend if backend is not None else default_backend()
    cap_a = budget + 1 if trace_u.complete else trace_u.moves
    cap_b = budget + 1 if trace_v.complete else trace_v.moves
    # Cumulative activation counts are monotone, so "no row exceeds the
    # caps" is decided by the last row alone; the full scan (and its
    # argmax) is only needed once a cap is actually crossed.
    if int(cum[budget, 0]) <= cap_a and int(cum[budget, 1]) <= cap_b:
        e_valid = budget
    else:
        exceed = (cum[:, 0] > cap_a) | (cum[:, 1] > cap_b)
        e_valid = xp.argmax(exceed) - 1
    # Within the validity slice ``cum <= cap`` holds row by row, so the
    # clamp to ``moves`` is an identity unless the script terminated
    # (``cap = budget + 1``) — skip the two array passes otherwise.
    sl = cum[: e_valid + 1]
    ca = xp.minimum(sl[:, 0], trace_u.moves) if trace_u.complete else sl[:, 0]
    cb = xp.minimum(sl[:, 1], trace_v.moves) if trace_v.complete else sl[:, 1]
    pos_a = xp.take(trace_u.nodes, ca)
    pos_b = xp.take(trace_v.nodes, cb)
    eq = pos_a == pos_b
    met = bool(eq.any())
    k = xp.argmax(eq) if met else None

    # An agent error binds when its failing pull would execute before
    # the first node meeting (meetings are checked at the top of each
    # event, so a meeting at the error's own event wins).  Within one
    # event the scalar engine raises pull-time script exceptions (both
    # next_move calls run first) before apply-time invalid-port errors,
    # agent 0 before agent 1 within each kind.
    if trace_u.error is None and trace_v.error is None:
        nearest = None  # fast path: no compiled error to schedule
    else:
        candidates = []
        for agent, trace in ((0, trace_u), (1, trace_v)):
            event = first_error_event(cum, agent, trace, xp)
            if not math.isinf(event):
                kind = 1 if isinstance(trace.error, BadPortChoice) else 0
                candidates.append((event, kind, agent, trace))
        nearest = min(candidates, key=lambda c: c[:3]) if candidates else None

    def crossings_before(stop: int) -> int:
        moved_a = ca[1:] > ca[:-1]
        moved_b = cb[1:] > cb[:-1]
        swap = (
            (pos_a[1:] == pos_b[:-1])
            & (pos_b[1:] == pos_a[:-1])
            & (pos_a[:-1] != pos_b[:-1])
        )
        return int((moved_a & moved_b & swap)[:stop].sum())

    if met and (nearest is None or k <= nearest[0]):
        return AsyncOutcome(True, int(pos_a[k]), k, crossings_before(k))
    if nearest is not None and nearest[0] <= e_valid:
        raise_for_async(nearest[3].error, int(nearest[3].nodes[-1]))
    if not met and e_valid >= budget:
        return AsyncOutcome(False, None, budget, crossings_before(budget))
    return PENDING
