"""The trace IR: agent behavior compiled once into port-trace arrays.

A deterministic agent's choices are a pure function of its *perception
stream* — the same insight that lets :func:`repro.core.uxs.apply_uxs_ports`
precompute a UXS walk.  :class:`TraceCompiler` exploits it for whole
ensembles of start nodes: all requested starts advance in lockstep
through the graph, starts whose perception streams have been identical
so far form one *class* sharing a single live generator, and the
decisions are interned in a trie keyed by ``(degree, entry port)`` so
later compilations replay them with dict lookups instead of agent
code.  Position updates are one successor-table gather per move event
for the whole class; wait blocks advance the clock without touching
positions.

The compiled :class:`PortTrace` is the IR every engine consumes:

* the synchronous STIC sweep reads it as a step function
  *local clock -> node* (``times``/``nodes`` breakpoints);
* the asynchronous schedule sweep reads ``nodes`` alone — waits
  contribute nothing to the async node sequence, so the array *is*
  the agent's traversal sequence;
* ``tail_waits`` is the unified fuel gauge: consecutive wait actions
  since the last move, the quantity both engines' starvation guards
  meter.

Array construction goes through the :class:`~repro.exec.backend.
ArrayBackend` protocol so compiled traces land directly in the space
the replay stage gathers over.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, NoReturn

import numpy as np

from repro.exec.backend import Array, ArrayBackend, default_backend
from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.actions import Action, Move, Perception, Wait, WaitBlock
from repro.sim.agent import AgentScript

__all__ = ["BadPortChoice", "PortTrace", "TraceCompiler", "raise_for_stic"]


class _Stop:
    """Sentinel: the agent script terminated (waits in place forever)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<stop>"


_STOP = _Stop()


class _Raise:
    """Sentinel: the decision at this trie node raises ``exc``."""

    __slots__ = ("exc",)

    def __init__(self, exc: Exception) -> None:
        self.exc = exc


class BadPortChoice(ValueError):
    """Engine-detected invalid move, kept structured so the re-raise
    can quote the *global* round of whichever STIC it binds to (the
    compiled trace only knows the agent's local clock)."""

    def __init__(self, port: int, degree: int, clock: int) -> None:
        super().__init__(
            f"agent chose port {port} at a node of degree {degree} "
            f"(clock {clock})"
        )
        self.port = port
        self.degree = degree
        self.clock = clock


def raise_for_stic(exc: Exception, start_round: int) -> NoReturn:
    """Re-raise a compiled error as the scalar scheduler would for an
    agent that starts at global round ``start_round``."""
    if isinstance(exc, BadPortChoice):
        raise ValueError(
            f"agent chose port {exc.port} at a node of degree {exc.degree} "
            f"(round {exc.clock + start_round})"
        )
    raise exc


class _TrieNode:
    """One interned decision: the action yielded after a perception
    stream, plus the decisions reachable from it keyed by the next
    ``(degree, entry port)`` pair.  The local clock is *not* part of
    the key: it is a deterministic function of the action prefix."""

    __slots__ = ("action", "children")

    def __init__(self, action: Action | _Stop | _Raise) -> None:
        self.action = action
        self.children: dict[tuple[int, int], _TrieNode] = {}


@dataclass(frozen=True)
class PortTrace:
    """Compressed trajectory of one agent from one start node.

    ``times``/``nodes`` encode the step function *local clock -> node*:
    the agent occupies ``nodes[i]`` for clocks in
    ``[times[i], times[i+1])`` (``times[0] == 0``).  Positions are
    defined for clocks up to :attr:`valid_through` inclusive — or for
    every clock when :attr:`complete` (the script terminated).  When
    :attr:`error` is set, the decision at clock ``valid_through``
    raised; positions before it are still exact.

    :attr:`tail_waits` counts the consecutive wait *actions* (``Wait``
    or ``WaitBlock`` yields, regardless of their round spans) at the
    end of the compiled prefix since the last move.  Consumers that
    collapse waits (the asynchronous schedule engine) use it as a fuel
    gauge: a trace that keeps waiting without ever moving again is
    indistinguishable from one that just has not been compiled deep
    enough, except by its action count.
    """

    start: int
    times: Array
    nodes: Array
    valid_through: int
    complete: bool
    error: Exception | None = None
    tail_waits: int = 0

    @property
    def moves(self) -> int:
        """Number of traversals in the compiled prefix."""
        return len(self.nodes) - 1

    @property
    def limit(self) -> float:
        """Largest local clock with a defined position (may be inf)."""
        return math.inf if self.complete else self.valid_through

    def position(self, clock: int) -> int:
        """Node occupied at local ``clock`` (must be within validity)."""
        if clock < 0 or clock > self.limit:
            raise ValueError(f"clock {clock} outside compiled range")
        i = int(np.searchsorted(self.times, clock, side="right")) - 1
        return int(self.nodes[i])


class _Group:
    """A set of start nodes whose perception streams agree so far."""

    __slots__ = (
        "starts",
        "pos",
        "entry",
        "clock",
        "children",
        "percepts",
        "script",
        "move_clocks",
        "poslog",
        "stopped",
        "error",
        "error_clock",
        "tail_waits",
    )

    def __init__(self, starts: np.ndarray, children: dict) -> None:
        self.starts = starts
        self.pos = starts.copy()
        self.entry = np.full(len(starts), -1, dtype=np.int64)
        self.clock = 0
        self.children = children  # current trie level
        self.percepts: list[Perception] = []
        self.script: AgentScript | None = None
        self.move_clocks: list[int] = []
        self.poslog: list[np.ndarray] = []
        self.stopped = False
        self.error: Exception | None = None
        self.error_clock = 0
        self.tail_waits = 0

    def split(self, idx: np.ndarray) -> "_Group":
        sub = _Group.__new__(_Group)
        sub.starts = self.starts[idx]
        sub.pos = self.pos[idx]
        sub.entry = self.entry[idx]
        sub.clock = self.clock
        sub.children = self.children
        sub.percepts = list(self.percepts)
        sub.script = None
        sub.move_clocks = list(self.move_clocks)
        sub.poslog = [arr[idx] for arr in self.poslog]
        sub.stopped = False
        sub.error = None
        sub.error_clock = 0
        sub.tail_waits = self.tail_waits
        return sub


class TraceCompiler:
    """Compiles and caches :class:`PortTrace` objects for one
    ``(graph, algorithm)`` pair; reusable across batch calls — and
    across *engines*: the synchronous STIC sweep and the asynchronous
    schedule sweep read the same compiled traces."""

    def __init__(
        self,
        graph: PortLabeledGraph,
        algorithm: Callable,
        *,
        oracle_factory: Callable[[int], object] | None = None,
        backend: ArrayBackend | None = None,
    ) -> None:
        self._graph = graph
        self._algorithm = algorithm
        self._oracle_factory = oracle_factory
        self._backend = backend if backend is not None else default_backend()
        self._oracles: dict[int, object] = {}
        self._trie: dict[tuple[int, int], _TrieNode] = {}
        self._tries: dict[int, dict] = {}  # per-start roots (oracle mode)
        self._cache: dict[int, PortTrace] = {}
        # Plain-list mirrors of the successor tables: python-int indexing
        # is what the singleton fast path spends its time on.
        self._deg_list: list[int] = graph.degrees.tolist()
        self._succ_list: list[list[int]] = graph.succ_node_array.tolist()
        self._succ_port_list: list[list[int]] = graph.succ_port_array.tolist()

    @property
    def backend(self) -> ArrayBackend:
        """The array backend compiled traces are materialized into."""
        return self._backend

    # -- public -----------------------------------------------------------
    def trace(self, start: int, horizon: int) -> PortTrace:
        """Trace of ``start`` valid through local clock ``horizon``."""
        return self.traces({start: horizon})[start]

    def traces(self, horizons: dict[int, int]) -> dict[int, PortTrace]:
        """Compile (or reuse) traces for many starts at once.

        ``horizons`` maps start node to the local clock through which
        its positions must be defined.  All fresh compilations in one
        call run to the largest requested horizon, in lockstep.
        """
        jobs = [
            s
            for s, h in horizons.items()
            if not self._is_sufficient(self._cache.get(s), h)
        ]
        if jobs:
            horizon = max(horizons[s] for s in jobs)
            starts = sorted(set(jobs))
            if self._oracle_factory is not None:
                # Oracles may depend on the start node, so classes never
                # merge: compile each start alone with a private trie.
                for s in starts:
                    self._run_single(s, horizon, self._tries.setdefault(s, {}))
            elif len(starts) == 1:
                self._run_single(starts[0], horizon, self._trie)
            else:
                group = _Group(np.array(starts, dtype=np.int64), self._trie)
                self._run_group(group, horizon)
        return {s: self._cache[s] for s in horizons}

    # -- internals --------------------------------------------------------
    @staticmethod
    def _is_sufficient(trace: PortTrace | None, horizon: int) -> bool:
        if trace is None:
            return False
        # An errored trace cannot be extended: the failing decision is
        # deterministic, so recompiling would stop at the same clock.
        return (
            trace.complete
            or trace.error is not None
            or trace.valid_through >= horizon
        )

    def _instantiate(self, wake: Perception, start: int) -> AgentScript:
        if self._oracle_factory is None:
            return self._algorithm(wake)
        if start not in self._oracles:
            self._oracles[start] = self._oracle_factory(start)
        return self._algorithm(wake, self._oracles[start])

    def _replay(self, group: _Group, current: Perception) -> AgentScript:
        """Fresh generator positioned to decide on ``current``."""
        wake = group.percepts[0] if group.percepts else current
        script = self._instantiate(wake, int(group.starts[0]))
        if group.percepts:
            # Re-feed the recorded stream; by determinism the actions
            # match the trie, so their values are irrelevant here.
            next(script)
            for percept in group.percepts[1:]:
                script.send(percept)
        return script

    @staticmethod
    def _advance(
        script: AgentScript, percept: Perception, first: bool
    ) -> Action | _Stop | _Raise:
        try:
            action = next(script) if first else script.send(percept)
        except StopIteration:
            return _STOP
        except Exception as exc:  # agent-code failure: deterministic
            return _Raise(exc)
        if isinstance(action, Move):
            if action.port >= percept.degree:
                return _Raise(
                    BadPortChoice(action.port, percept.degree, percept.clock)
                )
            return action
        if isinstance(action, (Wait, WaitBlock)):
            return action
        return _Raise(
            TypeError(f"agent yielded {action!r}; expected Move/Wait/WaitBlock")
        )

    def _replay_keys(
        self, hist: list[tuple[int, int, int]], current: Perception, start: int
    ) -> AgentScript:
        """Fresh generator for the singleton path; perceptions are
        rebuilt from the recorded ``(degree, entry, clock)`` stream."""
        if not hist:
            return self._instantiate(current, start)
        script = self._instantiate(
            Perception(degree=hist[0][0], entry_port=None, clock=0), start
        )
        next(script)
        for d, e, c in hist[1:]:
            script.send(
                Perception(degree=d, entry_port=(None if e < 0 else e), clock=c)
            )
        return script

    def _run_single(self, start: int, horizon: int, children: dict) -> None:
        """Scalar compile of one start node (the oracle-mode path and
        the single-start degenerate case of the ensemble stepper)."""
        deg = self._deg_list
        succ = self._succ_list
        succ_port = self._succ_port_list
        pos, entry, clock = start, -1, 0
        script: AgentScript | None = None
        hist: list[tuple[int, int, int]] = []
        move_clocks: list[int] = []
        move_pos: list[int] = []
        stopped = False
        error: Exception | None = None
        error_clock = 0
        tail_waits = 0
        while clock <= horizon:
            d = deg[pos]
            key = (d, entry)
            node = children.get(key)
            if node is None or script is not None:
                percept = Perception(
                    degree=d, entry_port=(None if entry < 0 else entry), clock=clock
                )
                if node is None:
                    if script is None:
                        script = self._replay_keys(hist, percept, start)
                    action = self._advance(script, percept, first=not hist)
                    node = _TrieNode(action)
                    children[key] = node
                else:
                    self._advance(script, percept, first=not hist)
            hist.append((d, entry, clock))
            children = node.children
            action = node.action
            if action is _STOP:
                stopped = True
                break
            if isinstance(action, _Raise):
                error, error_clock = action.exc, clock
                break
            if isinstance(action, Move):
                move_clocks.append(clock)
                row = action.port
                entry = succ_port[pos][row]
                pos = succ[pos][row]
                move_pos.append(pos)
                clock += 1
                tail_waits = 0
            elif isinstance(action, Wait):
                clock += 1
                tail_waits += 1
            else:
                clock += action.rounds
                tail_waits += 1
        xp = self._backend
        times = xp.zeros(len(move_clocks) + 1, dtype=np.int64)
        if move_clocks:
            times[1:] = xp.asarray(move_clocks, dtype=np.int64) + 1
            nodes = xp.concatenate(
                ([start], xp.asarray(move_pos, dtype=np.int64))
            )
        else:
            nodes = xp.asarray([start], dtype=np.int64)
        self._cache[start] = PortTrace(
            start=start,
            times=times,
            nodes=nodes,
            valid_through=error_clock if error is not None else clock,
            complete=stopped,
            error=error,
            tail_waits=tail_waits,
        )

    def _run_group(self, group: _Group, horizon: int) -> None:
        graph = self._graph
        degrees = graph.degrees
        succ = graph.succ_node_array
        succ_port = graph.succ_port_array
        worklist = [group]
        while worklist:
            g = worklist.pop()
            if g.stopped or g.error is not None or g.clock > horizon:
                self._finalize(g)
                continue
            degs = degrees[g.pos]
            uniform = bool((degs == degs[0]).all()) and bool(
                (g.entry == g.entry[0]).all()
            )
            if uniform:
                parts: list[tuple[int, int, np.ndarray | None]] = [
                    (int(degs[0]), int(g.entry[0]), None)
                ]
            else:
                buckets: dict[tuple[int, int], list[int]] = {}
                for i, (d, e) in enumerate(zip(degs.tolist(), g.entry.tolist())):
                    buckets.setdefault((d, e), []).append(i)
                parts = [
                    (d, e, np.array(idx, dtype=np.int64))
                    for (d, e), idx in buckets.items()
                ]
            script = g.script
            for d, e, idx in parts:
                sub = g if idx is None else g.split(idx)
                percept = Perception(
                    degree=d, entry_port=(None if e < 0 else e), clock=g.clock
                )
                first = not g.percepts
                key = (d, e)
                child = g.children.get(key)
                if child is None:
                    if script is None:
                        script = self._replay(sub, percept)
                        action = self._advance(script, percept, first=first)
                    else:
                        action = self._advance(script, percept, first=first)
                    child = _TrieNode(action)
                    g.children[key] = child
                elif script is not None:
                    # Keep the live generator in sync through interned
                    # decisions so it can extend the trie later.
                    self._advance(script, percept, first=first)
                sub.script, script = script, None  # hand off to this part
                sub.percepts.append(percept)
                sub.children = child.children
                action = child.action
                if action is _STOP:
                    sub.stopped = True
                elif isinstance(action, _Raise):
                    sub.error = action.exc
                    sub.error_clock = g.clock
                elif isinstance(action, Move):
                    sub.entry = succ_port[sub.pos, action.port]
                    sub.pos = succ[sub.pos, action.port]
                    sub.move_clocks.append(g.clock)
                    sub.poslog.append(sub.pos)
                    sub.clock = g.clock + 1
                    sub.tail_waits = 0
                elif isinstance(action, Wait):
                    sub.clock = g.clock + 1
                    sub.tail_waits += 1
                else:  # WaitBlock: fast-forward without position events
                    sub.clock = g.clock + action.rounds
                    sub.tail_waits += 1
                worklist.append(sub)

    def _finalize(self, g: _Group) -> None:
        xp = self._backend
        times = xp.zeros(len(g.move_clocks) + 1, dtype=np.int64)
        if g.move_clocks:
            times[1:] = xp.asarray(g.move_clocks, dtype=np.int64) + 1
            mat = np.array(g.poslog, dtype=np.int64)
        for j, start in enumerate(g.starts.tolist()):
            if g.move_clocks:
                nodes = xp.concatenate(
                    ([start], xp.asarray(mat[:, j], dtype=np.int64))
                )
            else:
                nodes = xp.asarray([start], dtype=np.int64)
            self._cache[start] = PortTrace(
                start=start,
                times=times,
                nodes=nodes,
                valid_through=g.error_clock if g.error is not None else g.clock,
                complete=g.stopped,
                error=g.error,
                tail_waits=g.tail_waits,
            )
