"""Finding records, stable fingerprints, and rendering helpers."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is ``(path, line, col, rule_id)`` so reports are stable
    regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` (clickable in most editors)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def fingerprint(finding: Finding, line_text: str) -> str:
    """Stable identity of a finding for baseline files.

    Hashes the rule, the file, and the *stripped source line* rather
    than the line number, so reformatting elsewhere in the file does
    not churn the baseline.  Collisions (the same violation repeated
    verbatim in one file) intentionally share a fingerprint: baselining
    one baselines all, which errs toward under-suppression never being
    silent.
    """
    payload = f"{finding.rule_id}|{finding.path}|{line_text.strip()}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]
