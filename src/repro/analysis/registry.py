"""Rule records and the registration decorator.

A rule is a generator: ``check(module)`` yields :class:`Finding`
objects for one parsed module.  Rules register themselves at import
time via :func:`register_rule`; :mod:`repro.analysis.rules` imports
every shipped rule module so ``all_rules()`` is complete after
``import repro.analysis``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from repro.analysis.findings import Finding

__all__ = ["Module", "Rule", "RuleCheck", "all_rules", "get_rule", "register_rule"]


@dataclass(frozen=True)
class Module:
    """One parsed source file handed to every rule."""

    path: Path
    #: Normalized (posix, repo-relative when possible) path used in
    #: reports and fingerprints.
    rel: str
    source: str
    lines: tuple[str, ...]
    tree: ast.Module

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0)) + 1
        return Finding(
            path=self.rel, line=line, col=col, rule_id=rule_id, message=message
        )

    def line_text(self, line: int) -> str:
        """Source text of a 1-indexed line ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


RuleCheck = Callable[[Module], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    rule_id: str
    name: str
    summary: str
    #: The historical bug / contract the rule encodes (shown by
    #: ``repro lint --list-rules`` and in docs/static_analysis.md).
    rationale: str
    check: RuleCheck


_REGISTRY: dict[str, Rule] = {}

#: Rule ids the engine reserves for itself (parse errors, suppression
#: hygiene).  They are not suppressible and carry no ``check``.
ENGINE_RULES: dict[str, str] = {
    "REPRO000": "file does not parse (reported so a syntax error can never hide findings)",
    "REPRO100": "suppression hygiene: every disable needs a reason and must match a finding",
}


def register_rule(
    rule_id: str, name: str, summary: str, rationale: str
) -> Callable[[RuleCheck], RuleCheck]:
    """Decorator: register ``check`` under ``rule_id``.

    >>> @register_rule("REPRO999", "demo", "demo rule", "doctest")
    ... def _check(module):
    ...     yield from ()
    >>> all_rules()["REPRO999"].name
    'demo'
    >>> del _REGISTRY["REPRO999"]
    """

    def decorate(check: RuleCheck) -> RuleCheck:
        if rule_id in _REGISTRY or rule_id in ENGINE_RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        _REGISTRY[rule_id] = Rule(
            rule_id=rule_id,
            name=name,
            summary=summary,
            rationale=rationale,
            check=check,
        )
        return check

    return decorate


def all_rules() -> dict[str, Rule]:
    """Registered rules, keyed and iterated in rule-id order."""
    return dict(sorted(_REGISTRY.items()))


def get_rule(rule_id: str) -> Rule:
    """Look up one rule; raises ``KeyError`` with the known ids."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}") from None
