"""REPRO102 — dtype-overflow hazard: no accumulation into small ints.

Encodes the PR 3 bug: the BFS distance kernel in
``repro.symmetry.context`` briefly used a ``uint8`` frontier matrix as
a matmul accumulator — path counts wrapped mod 256 on graphs with
enough 4-cycles and distances came out *shorter* than real, corrupting
Shrink values only at sizes the unit tests never reached.  The fixed
code carries an explicit "int64 accumulators" comment; this rule makes
the lesson mechanical: an integer array narrower than int32 must never
be the target of in-place accumulation (``+=``/``-=``/``*=``/``@=``),
a matmul feedback assignment (``x = x @ a``), or an ``out=`` keyword.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import astutil
from repro.analysis.findings import Finding
from repro.analysis.registry import Module, register_rule

RULE_ID = "REPRO102"

_SMALL_INT_DTYPES = frozenset({"int8", "uint8", "int16", "uint16"})

_ACCUMULATING_OPS = (ast.Add, ast.Sub, ast.Mult, ast.MatMult, ast.LShift, ast.Pow)


def _small_dtype_label(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """'uint8' etc. when the expression denotes a sub-int32 int dtype."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
        return name if name in _SMALL_INT_DTYPES else None
    resolved = astutil.resolve_call(node, aliases)
    if resolved is None:
        return None
    parts = resolved.split(".")
    if parts[0] == "numpy" and parts[-1] in _SMALL_INT_DTYPES:
        return parts[-1]
    return None


def _tracked_arrays(
    func: astutil.FunctionNode, aliases: dict[str, str]
) -> dict[str, str]:
    """Names assigned a small-int-dtype array, mapped to the dtype label."""
    tracked: dict[str, str] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        label = next(
            (
                lbl
                for kw in value.keywords
                if kw.arg == "dtype"
                and (lbl := _small_dtype_label(kw.value, aliases)) is not None
            ),
            None,
        )
        if label is None:
            # x = y.astype(np.uint8) creates a small array too.
            if (
                isinstance(value.func, ast.Attribute)
                and value.func.attr == "astype"
                and value.args
            ):
                label = _small_dtype_label(value.args[0], aliases)
        if label is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                tracked[target.id] = label
    return tracked


def _base_name(node: ast.expr) -> str | None:
    """Underlying name of a target: ``x`` for ``x``, ``x[i]``, ``x[i:j]``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _names_in(node: ast.expr) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _check_function(
    module: Module, func: astutil.FunctionNode, aliases: dict[str, str]
) -> Iterator[Finding]:
    tracked = _tracked_arrays(func, aliases)
    if not tracked:
        return
    for node in ast.walk(func):
        if isinstance(node, ast.AugAssign) and isinstance(
            node.op, _ACCUMULATING_OPS
        ):
            name = _base_name(node.target)
            if name in tracked:
                yield module.finding(
                    RULE_ID,
                    node,
                    f"in-place accumulation into {tracked[name]} array "
                    f"'{name}' can silently wrap (PR 3 uint8 BFS bug class); "
                    "accumulate in int64 and downcast at the end",
                )
        elif isinstance(node, ast.Assign):
            value = node.value
            if isinstance(value, ast.BinOp) and isinstance(
                value.op, ast.MatMult
            ):
                for target in node.targets:
                    name = _base_name(target)
                    if name in tracked and name in _names_in(value):
                        yield module.finding(
                            RULE_ID,
                            node,
                            f"matmul feedback into {tracked[name]} array "
                            f"'{name}' wraps mod 2^{{8,16}} (PR 3 uint8 BFS "
                            "bug class); use an int64 accumulator",
                        )
        elif isinstance(node, ast.Call):
            for kw in node.keywords:
                if (
                    kw.arg == "out"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id in tracked
                ):
                    yield module.finding(
                        RULE_ID,
                        kw.value,
                        f"out= targets {tracked[kw.value.id]} array "
                        f"'{kw.value.id}'; reductions into sub-int32 "
                        "integers wrap silently",
                    )


@register_rule(
    RULE_ID,
    "dtype-overflow",
    "no in-place accumulation, matmul feedback, or out= reductions "
    "into integer arrays narrower than int32",
    "PR 3: a uint8 BFS frontier matmul wrapped mod 256 and shortened "
    "distances; the fix pinned int64 accumulators in "
    "repro/symmetry/context.py",
)
def check(module: Module) -> Iterator[Finding]:
    aliases = astutil.import_aliases(module.tree)
    for func in astutil.walk_functions(module.tree):
        yield from _check_function(module, func, aliases)
