"""REPRO101 — RNG discipline: no ambient randomness, seeds must thread.

The determinism contract says every random choice is a pure function
of an explicit seed (``repro.util.SplitMix64`` + ``derive_seed``), so
any campaign cell replays bit-for-bit from its artifact.  Two patterns
break that silently:

* calls into a *global* RNG — stdlib ``random.<fn>()`` module
  functions or legacy ``numpy.random.<fn>()`` — whose hidden state
  makes results depend on call order and process history; and
* a function that accepts ``seed``/``rng`` but calls a local helper
  that also takes one *without passing it on*, so the helper falls
  back to a default and half the entropy path is unkeyed (the
  "default-seed gap" audited in graphs/ and baselines/).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import astutil
from repro.analysis.findings import Finding
from repro.analysis.registry import Module, register_rule

RULE_ID = "REPRO101"

#: stdlib ``random`` module-level functions (the hidden global Mersenne
#: Twister).  ``random.Random(seed)`` / ``random.SystemRandom`` are
#: class constructors, not listed, and stay legal.
_STDLIB_GLOBAL = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    }
)

#: legacy ``numpy.random`` global-state functions.
_NUMPY_GLOBAL = frozenset(
    {
        "bytes", "choice", "exponential", "normal", "permutation", "rand",
        "randint", "randn", "random", "random_sample", "seed", "shuffle",
        "standard_normal", "uniform",
    }
)

_SEED_PARAMS = ("seed", "rng")


def _global_rng_findings(module: Module, aliases: dict[str, str]) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = astutil.resolve_call(node.func, aliases)
        if resolved is None:
            continue
        parts = resolved.split(".")
        if len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_GLOBAL:
            yield module.finding(
                RULE_ID,
                node,
                f"call to global-state RNG '{resolved}()'; use "
                "repro.util.SplitMix64 with an explicit derive_seed(...) seed",
            )
        elif (
            len(parts) == 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] in _NUMPY_GLOBAL
        ):
            yield module.finding(
                RULE_ID,
                node,
                f"call to legacy numpy global RNG '{resolved}()'; use "
                "repro.util.SplitMix64 (or a seeded Generator) instead",
            )
        elif resolved == "numpy.random.default_rng" and not (
            node.args or node.keywords
        ):
            yield module.finding(
                RULE_ID,
                node,
                "numpy.random.default_rng() without a seed draws OS entropy; "
                "pass an explicit seed",
            )


def _seed_threading_findings(module: Module) -> Iterator[Finding]:
    locals_ = astutil.module_functions(module.tree)
    seeded_locals = {
        name: func
        for name, func in locals_.items()
        if astutil.parameter_names(func) & set(_SEED_PARAMS)
    }
    if not seeded_locals:
        return
    for caller in astutil.walk_functions(module.tree):
        caller_params = astutil.parameter_names(caller) & set(_SEED_PARAMS)
        if not caller_params:
            continue
        for node in ast.walk(caller):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in seeded_locals
                and node.func.id != caller.name
            ):
                continue
            callee = seeded_locals[node.func.id]
            callee_params = astutil.parameter_names(callee) & set(_SEED_PARAMS)
            if any(
                astutil.call_binds_param(node, callee, param)
                for param in callee_params
            ):
                continue
            wanted = "/".join(sorted(callee_params))
            yield module.finding(
                RULE_ID,
                node,
                f"'{caller.name}' takes {'/'.join(sorted(caller_params))} but "
                f"calls '{node.func.id}()' without binding its '{wanted}' "
                "parameter — the callee falls back to an unkeyed default",
            )


@register_rule(
    RULE_ID,
    "rng-discipline",
    "no global-state RNG calls; seed/rng parameters must thread into "
    "every local callee that accepts one",
    "determinism contract: every campaign cell must replay bit-for-bit "
    "from its seed (docs/campaigns.md); default-seed gaps audited in "
    "graphs/random_graphs.py and baselines/ (ISSUE 6)",
)
def check(module: Module) -> Iterator[Finding]:
    aliases = astutil.import_aliases(module.tree)
    yield from _global_rng_findings(module, aliases)
    yield from _seed_threading_findings(module)
