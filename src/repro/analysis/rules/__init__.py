"""The shipped rule catalog.

Importing this package registers every rule with
:mod:`repro.analysis.registry`.  One module per rule; each module's
docstring names the historical bug or determinism-contract clause the
rule encodes (mirrored in docs/static_analysis.md).
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (imports register rules)
    canonical_json,
    dtype_overflow,
    nondeterminism,
    rng_discipline,
    shard_purity,
    view_aliasing,
)

__all__ = [
    "canonical_json",
    "dtype_overflow",
    "nondeterminism",
    "rng_discipline",
    "shard_purity",
    "view_aliasing",
]
