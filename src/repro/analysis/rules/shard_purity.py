"""REPRO106 — shard purity: shard entry points must not leak state.

The orchestrator's contract (docs/orchestration.md) is that
``make_shards``/``run_shard`` results depend only on ``(config,
shard)``: shards execute in arbitrary order across a process pool,
possibly twice (cold + resume), and their results are cached under a
content address that knows nothing about ambient process state.  A
shard that mutates module globals, the environment, or attributes of
imported modules makes results depend on *which worker ran what
before* — irreproducible by construction and invisible to the cache
key.  This rule bans, inside any function named ``run_shard`` or
``make_shards`` (and its nested helpers):

* ``global`` declarations (module-state mutation),
* writes to ``os.environ`` (subscript/del/``update``/``pop``/
  ``setdefault``/``clear``) and ``os.putenv``/``os.unsetenv``,
* assignments to attributes of imported modules (monkeypatching).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import astutil
from repro.analysis.findings import Finding
from repro.analysis.registry import Module, register_rule

RULE_ID = "REPRO106"

_SHARD_FUNCS = frozenset({"run_shard", "make_shards"})

_ENVIRON_METHODS = frozenset({"update", "pop", "setdefault", "clear", "popitem"})


def _environ_target(node: ast.expr, aliases: dict[str, str]) -> bool:
    return astutil.resolve_call(node, aliases) == "os.environ"


def _check_shard_function(
    module: Module,
    func: astutil.FunctionNode,
    aliases: dict[str, str],
    imported_modules: set[str],
) -> Iterator[Finding]:
    where = f"shard entry point '{func.name}'"
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            yield module.finding(
                RULE_ID,
                node,
                f"{where} declares global {', '.join(node.names)}: shard "
                "results must depend only on (config, shard), never on "
                "module state mutated across shards",
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and _environ_target(
                    target.value, aliases
                ):
                    yield module.finding(
                        RULE_ID,
                        target,
                        f"{where} writes os.environ: environment changes "
                        "leak across pooled workers and are invisible to "
                        "the cache key",
                    )
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in imported_modules
                ):
                    yield module.finding(
                        RULE_ID,
                        target,
                        f"{where} assigns attribute "
                        f"'{target.value.id}.{target.attr}' of an imported "
                        "module: monkeypatching leaks across shards",
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and _environ_target(
                    target.value, aliases
                ):
                    yield module.finding(
                        RULE_ID,
                        target,
                        f"{where} deletes an os.environ entry: environment "
                        "changes leak across pooled workers",
                    )
        elif isinstance(node, ast.Call):
            resolved = astutil.resolve_call(node.func, aliases)
            if resolved in ("os.putenv", "os.unsetenv"):
                yield module.finding(
                    RULE_ID,
                    node,
                    f"{where} calls {resolved}(): environment changes leak "
                    "across pooled workers",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _ENVIRON_METHODS
                and _environ_target(node.func.value, aliases)
            ):
                yield module.finding(
                    RULE_ID,
                    node,
                    f"{where} calls os.environ.{node.func.attr}(): "
                    "environment changes leak across pooled workers",
                )


@register_rule(
    RULE_ID,
    "shard-purity",
    "run_shard/make_shards must not mutate module globals, os.environ, "
    "or attributes of imported modules",
    "orchestrator contract: shards run in arbitrary order across a "
    "process pool and are cached by a content address that cannot see "
    "ambient process state (docs/orchestration.md)",
)
def check(module: Module) -> Iterator[Finding]:
    aliases = astutil.import_aliases(module.tree)
    imported = astutil.imported_module_names(module.tree)
    for func in astutil.walk_functions(module.tree):
        if func.name in _SHARD_FUNCS:
            yield from _check_shard_function(module, func, aliases, imported)
