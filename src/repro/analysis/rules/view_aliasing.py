"""REPRO103 — view-aliasing hazard: don't return slices of mutated buffers.

Encodes the PR 1 bug: ``simulate_word_batch`` filled a reused scratch
buffer and returned numpy *views* (slices) of it — the next call
overwrote the caller's "result" in place.  The fix was an explicit
``.copy()`` plus a regression test; this rule makes the pattern
illegal at parse time: a function that subscript-assigns (or
``+=``-mutates) a buffer may not ``return`` a slice of that same
buffer.  Returning ``buf[:k].copy()``, ``np.array(buf[:k])``, or an
integer/fancy-indexed element (those materialize) stays legal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import astutil
from repro.analysis.findings import Finding
from repro.analysis.registry import Module, register_rule

RULE_ID = "REPRO103"

#: ndarray methods that mutate in place when called on a buffer.
_INPLACE_METHODS = frozenset({"fill", "sort", "partition", "put", "resize"})


def _target_base(node: ast.expr) -> str | None:
    """Dotted base of a mutated target: ``buf`` / ``self.buf``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return astutil.dotted_name(node)


def _mutated_buffers(func: astutil.FunctionNode) -> dict[str, int]:
    """Dotted names mutated in place, mapped to the first mutating line."""
    mutated: dict[str, int] = {}

    def note(name: str | None, lineno: int) -> None:
        if name is not None and name not in mutated:
            mutated[name] = lineno

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    note(_target_base(target), node.lineno)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Subscript):
                note(_target_base(node.target), node.lineno)
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _INPLACE_METHODS
            ):
                note(astutil.dotted_name(node.func.value), node.lineno)
    return mutated


def _returned_view_base(node: ast.expr) -> str | None:
    """Dotted base when the expression is a *slice* of a name."""
    if isinstance(node, ast.Subscript) and astutil.slice_in_subscript(node):
        return _target_base(node)
    return None


def _check_function(
    module: Module, func: astutil.FunctionNode
) -> Iterator[Finding]:
    mutated = _mutated_buffers(func)
    if not mutated:
        return
    for node in ast.walk(func):
        if not isinstance(node, (ast.Return, ast.Yield)) or node.value is None:
            continue
        candidates: list[ast.expr] = [node.value]
        if isinstance(node.value, ast.Tuple):
            candidates = list(node.value.elts)
        for expr in candidates:
            base = _returned_view_base(expr)
            if base is None or base not in mutated:
                continue
            verb = "returns" if isinstance(node, ast.Return) else "yields"
            yield module.finding(
                RULE_ID,
                expr,
                f"'{func.name}' {verb} a slice (view) of '{base}', which it "
                f"also mutates (line {mutated[base]}); later writes alias "
                "the caller's result (PR 1 simulate_word_batch bug class) — "
                "return an explicit .copy()",
            )


@register_rule(
    RULE_ID,
    "view-aliasing",
    "a function must not return/yield a slice of a buffer it mutates "
    "in place",
    "PR 1: simulate_word_batch returned views of a reused scratch "
    "buffer; the next call overwrote previously returned results "
    "(fixed with an explicit copy + regression test)",
)
def check(module: Module) -> Iterator[Finding]:
    for func in astutil.walk_functions(module.tree):
        yield from _check_function(module, func)
