"""REPRO104 — canonical JSON: every dump must sort its keys.

Encodes the PR 4–5 lesson: the content-addressed store, the campaign
replay artifacts, and the golden experiment fixtures all rely on JSON
serialization being *canonical* — the cache key is the SHA-256 of the
encoded text, and warm-vs-cold byte-identity is asserted in CI.  A
single ``json.dump(s)`` without ``sort_keys=True`` makes the encoding
depend on dict insertion order, which is exactly the class of
"works today, corrupts the cache after a refactor" bug ``prune()``
had to be taught to clean up.  Prefer routing through
:func:`repro.util.encoding.canonical_json`; where a raw dump is
needed (pretty-printed reports included), it must pass a literal
``sort_keys=True``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import astutil
from repro.analysis.findings import Finding
from repro.analysis.registry import Module, register_rule

RULE_ID = "REPRO104"


@register_rule(
    RULE_ID,
    "canonical-json",
    "every json.dump/json.dumps call must pass a literal sort_keys=True",
    "PRs 4-5: cache keys are SHA-256 of the encoded JSON and CI asserts "
    "cold==warm byte-identity; insertion-ordered dumps break both "
    "(see repro.util.encoding.canonical_json)",
)
def check(module: Module) -> Iterator[Finding]:
    aliases = astutil.import_aliases(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = astutil.resolve_call(node.func, aliases)
        if resolved not in ("json.dump", "json.dumps"):
            continue
        if any(kw.arg is None for kw in node.keywords):
            continue  # **kwargs forwarding: give the benefit of the doubt
        sort_keys = next(
            (kw.value for kw in node.keywords if kw.arg == "sort_keys"), None
        )
        if (
            isinstance(sort_keys, ast.Constant)
            and sort_keys.value is True
        ):
            continue
        problem = (
            "must pass sort_keys=True"
            if sort_keys is None
            else "sort_keys must be the literal True"
        )
        yield module.finding(
            RULE_ID,
            node,
            f"{resolved}() {problem}: serialized output feeds "
            "content-addressed keys and byte-identity checks "
            "(canonical-JSON contract)",
        )
