"""REPRO105 — nondeterminism ban: no wall clocks, OS entropy, set order.

Every engine, store, and campaign path must be a pure function of its
inputs: EXPERIMENTS.md deliberately omits timings so warm and cold
runs are byte-identical, and campaign cells must replay from a seed
alone.  Three ambient-state leaks are banned outright:

* wall-clock reads (``time.time``, ``datetime.now``, …) — measuring
  *elapsed* time for display is fine (``time.perf_counter`` is not
  banned; keep it out of persisted payloads);
* OS entropy (``os.urandom``, ``uuid.uuid4``, ``secrets.*``) — all
  randomness must come from an explicit seed; and
* iterating a ``set`` display / comprehension / ``set(...)`` call —
  set order depends on the interpreter's hash layout, so any output
  it feeds can reorder across Python versions.  Sort it, or use
  ``dict.fromkeys(...)`` for order-preserving dedup.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import astutil
from repro.analysis.findings import Finding
from repro.analysis.registry import Module, register_rule

RULE_ID = "REPRO105"

_BANNED_CALLS: dict[str, str] = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host/clock-dependent id",
    "uuid.uuid4": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.token_urlsafe": "OS entropy",
    "secrets.randbits": "OS entropy",
    "secrets.randbelow": "OS entropy",
    "secrets.choice": "OS entropy",
}


def _is_set_expr(node: ast.expr, aliases: dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return astutil.resolve_call(node.func, aliases) == "set"
    return False


def _iteration_sites(tree: ast.Module) -> Iterator[ast.expr]:
    """Every ``for ... in <expr>`` iterable, loops and comprehensions."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                yield gen.iter


@register_rule(
    RULE_ID,
    "nondeterminism",
    "no wall-clock reads, OS entropy, or iteration over set "
    "expressions in deterministic paths",
    "determinism contract: EXPERIMENTS.md and campaign records must be "
    "byte-identical across runs, machines, and Python versions "
    "(docs/orchestration.md, docs/campaigns.md)",
)
def check(module: Module) -> Iterator[Finding]:
    aliases = astutil.import_aliases(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = astutil.resolve_call(node.func, aliases)
        if resolved in _BANNED_CALLS:
            yield module.finding(
                RULE_ID,
                node,
                f"'{resolved}()' injects {_BANNED_CALLS[resolved]} into a "
                "deterministic path; outputs must be pure functions of "
                "explicit inputs",
            )
    for iterable in _iteration_sites(module.tree):
        if _is_set_expr(iterable, aliases):
            yield module.finding(
                RULE_ID,
                iterable,
                "iterating a set expression: order depends on the hash "
                "layout and can differ across Python versions; wrap in "
                "sorted(...) or dedup with dict.fromkeys(...)",
            )
