"""Shared AST helpers for lint rules.

Rules need three recurring capabilities: resolving what a call *means*
through import aliases (``np.random.randint`` -> ``numpy.random.randint``),
flattening attribute chains into dotted names, and reasoning about how
a call site binds a callee's parameters.  Everything here is pure and
stdlib-only.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "call_binds_param",
    "dotted_name",
    "import_aliases",
    "imported_module_names",
    "module_functions",
    "resolve_call",
    "slice_in_subscript",
    "walk_functions",
]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the fully-qualified names they import.

    ``import numpy as np`` yields ``{"np": "numpy"}``;
    ``from os import environ`` yields ``{"environ": "os.environ"}``.
    Relative imports keep their module part (``from .x import y`` ->
    ``{"y": "x.y"}``) — close enough for dotted-prefix matching.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def dotted_name(node: ast.AST) -> str | None:
    """Flatten ``a.b.c`` chains; None for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Fully-qualified dotted name of an expression, through aliases.

    ``np.random.randint`` with ``{"np": "numpy"}`` resolves to
    ``"numpy.random.randint"``; an unaliased root passes through
    unchanged; lambdas/subscripts resolve to None.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    expanded = aliases.get(root, root)
    return f"{expanded}.{rest}" if rest else expanded


def imported_module_names(tree: ast.Module) -> set[str]:
    """Local names that are bound to *modules* by plain imports."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                names.add(item.asname or item.name.split(".")[0])
    return names


def walk_functions(tree: ast.Module) -> Iterator[FunctionNode]:
    """Every function/method definition in the module, any nesting."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def module_functions(tree: ast.Module) -> dict[str, FunctionNode]:
    """Top-level function definitions by name (callable as ``name(...)``)."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _positional_params(func: FunctionNode) -> list[str]:
    return [a.arg for a in (*func.args.posonlyargs, *func.args.args)]


def parameter_names(func: FunctionNode) -> set[str]:
    """All explicit parameter names (positional, kw-only)."""
    return {
        a.arg
        for a in (*func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs)
    }


def call_binds_param(call: ast.Call, func: FunctionNode, param: str) -> bool:
    """Does this call site bind ``param`` of the resolved callee?

    Counts positional arguments against the callee's positional
    parameter list, accepts an explicit keyword, and gives the benefit
    of the doubt to ``*args`` / ``**kwargs`` forwarding.
    """
    if any(kw.arg is None for kw in call.keywords):  # **kwargs forwarding
        return True
    if any(kw.arg == param for kw in call.keywords):
        return True
    positional = _positional_params(func)
    if param not in positional:
        return False
    index = positional.index(param)
    if any(isinstance(a, ast.Starred) for a in call.args):  # *args forwarding
        return True
    n_positional = len(call.args)
    if positional and positional[0] == "self":
        # Bound-method calls never pass self explicitly; shift by one.
        index -= 1
    return n_positional > index


def slice_in_subscript(node: ast.Subscript) -> bool:
    """True when a subscript contains a slice (``x[:k]``, ``x[a:b, j]``).

    Slices of ndarrays are *views*; integer and fancy indexing are not.
    """
    sl = node.slice
    if isinstance(sl, ast.Slice):
        return True
    if isinstance(sl, ast.Tuple):
        return any(isinstance(elt, ast.Slice) for elt in sl.elts)
    return False
