"""Lint engine: file walking, suppressions, baselines, reports.

The engine is report-only by design (no ``--fix``): every finding is
either fixed at the source, suppressed inline *with a reason*, or
carried in a baseline file during gradual adoption.  All three states
are visible in the report, so CI can gate on "no new findings and no
undocumented suppressions".

Suppression syntax (one source line)::

    risky_call()  # repro-lint: disable=REPRO104 -- md report, order is cosmetic
    risky_call()  # repro-lint: disable -- reason applies to every rule

A suppression without a ``-- reason`` tail, or one that matches no
finding, is itself reported under ``REPRO100`` — suppressions can rot,
and rot must gate exactly like any other violation.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding, fingerprint
from repro.analysis.registry import Module, Rule, all_rules

__all__ = [
    "LintReport",
    "collect_files",
    "lint_paths",
    "load_baseline",
    "parse_module",
    "write_baseline",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable"
    r"(?:=(?P<rules>[A-Za-z0-9_,\s]+?))?"
    r"(?:\s*--\s*(?P<reason>\S.*))?\s*$"
)

#: Engine rule ids (not suppressible, always on).
PARSE_ERROR = "REPRO000"
SUPPRESSION_HYGIENE = "REPRO100"


@dataclass(frozen=True)
class _Suppression:
    line: int
    rules: frozenset[str] | None  # None = all rules
    reason: str | None

    def covers(self, rule_id: str) -> bool:
        return self.rules is None or rule_id in self.rules


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def exit_code(self) -> int:
        """0 clean, 1 when any gating finding exists."""
        return 1 if self.findings else 0

    def to_json_dict(self, *, line_text: dict[Finding, str]) -> dict[str, object]:
        """Canonical machine-readable form (the CI artifact)."""

        def rows(findings: Iterable[Finding]) -> list[dict[str, object]]:
            return [
                {
                    "rule": f.rule_id,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "fingerprint": fingerprint(f, line_text.get(f, "")),
                }
                for f in sorted(findings)
            ]

        return {
            "version": 1,
            "files": self.files,
            "findings": rows(self.findings),
            "suppressed": rows(self.suppressed),
            "baselined": rows(self.baselined),
            "summary": {
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
            },
        }


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files.

    Hidden directories and ``__pycache__`` are skipped.  A named path
    that does not exist raises ``FileNotFoundError`` — a typo'd CI
    invocation must fail loudly, not lint nothing and pass.
    """
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            out.add(path)
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if any(
                    part.startswith(".") or part == "__pycache__"
                    for part in sub.parts
                ):
                    continue
                out.add(sub)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def _relative_path(path: Path) -> str:
    """Repo-relative posix path when possible (stable fingerprints)."""
    resolved = path.resolve()
    for base in (Path.cwd(), *Path.cwd().parents):
        try:
            return resolved.relative_to(base).as_posix()
        except ValueError:
            continue
    return resolved.as_posix()


def parse_module(path: Path) -> Module | Finding:
    """Parse one file; a syntax error becomes a ``REPRO000`` finding."""
    rel = _relative_path(path)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            path=rel,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule_id=PARSE_ERROR,
            message=f"syntax error: {exc.msg}",
        )
    return Module(
        path=path,
        rel=rel,
        source=source,
        lines=tuple(source.splitlines()),
        tree=tree,
    )


def _comment_lines(module: Module) -> dict[int, str]:
    """Real ``#`` comments by line, via tokenize (strings don't count)."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(module.source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except tokenize.TokenizeError:  # pragma: no cover - parse already passed
        pass
    return comments


def _suppressions(module: Module) -> list[_Suppression]:
    out: list[_Suppression] = []
    for lineno, text in sorted(_comment_lines(module).items()):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules_raw = match.group("rules")
        rules = (
            None
            if rules_raw is None
            else frozenset(
                r.strip().upper() for r in rules_raw.split(",") if r.strip()
            )
        )
        out.append(
            _Suppression(line=lineno, rules=rules, reason=match.group("reason"))
        )
    return out


def _select_rules(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> list[Rule]:
    rules = all_rules()
    if select:
        unknown = sorted(set(select) - rules.keys())
        if unknown:
            raise KeyError(f"unknown rule id(s) in --select: {unknown}")
        chosen = [rules[rid] for rid in sorted(set(select))]
    else:
        chosen = list(rules.values())
    if ignore:
        unknown = sorted(set(ignore) - rules.keys())
        if unknown:
            raise KeyError(f"unknown rule id(s) in --ignore: {unknown}")
        chosen = [r for r in chosen if r.rule_id not in set(ignore)]
    return chosen


def lint_paths(
    paths: Sequence[str | Path],
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    baseline: set[str] | None = None,
) -> tuple[LintReport, dict[Finding, str]]:
    """Lint files/dirs; returns the report and each finding's source line.

    The line-text map feeds fingerprinting (baselines, JSON output)
    without re-reading files.
    """
    rules = _select_rules(select, ignore)
    report = LintReport()
    line_text: dict[Finding, str] = {}
    for path in collect_files(paths):
        report.files += 1
        parsed = parse_module(path)
        if isinstance(parsed, Finding):
            report.findings.append(parsed)
            line_text[parsed] = ""
            continue
        module = parsed
        raw: list[Finding] = []
        for rule in rules:
            raw.extend(rule.check(module))
        # Nested functions are visited by both their own walk and their
        # enclosing function's; identical findings collapse to one.
        raw = list(dict.fromkeys(raw))
        suppressions = _suppressions(module)
        used: set[int] = set()
        for finding in raw:
            line_text[finding] = module.line_text(finding.line)
            covering = next(
                (
                    s
                    for s in suppressions
                    if s.line == finding.line and s.covers(finding.rule_id)
                ),
                None,
            )
            if covering is not None:
                used.add(covering.line)
                report.suppressed.append(finding)
            elif baseline and fingerprint(
                finding, line_text[finding]
            ) in baseline:
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
        for sup in suppressions:
            problems = []
            if sup.reason is None:
                problems.append("missing a '-- reason' tail")
            if sup.line not in used:
                problems.append("matches no finding on this line")
            if problems:
                hygiene = Finding(
                    path=module.rel,
                    line=sup.line,
                    col=1,
                    rule_id=SUPPRESSION_HYGIENE,
                    message=f"undocumented suppression: {'; '.join(problems)}",
                )
                report.findings.append(hygiene)
                line_text[hygiene] = module.line_text(sup.line)
    report.findings.sort()
    report.suppressed.sort()
    report.baselined.sort()
    return report, line_text


def load_baseline(path: str | Path) -> set[str]:
    """Read a baseline file (set of finding fingerprints)."""
    payload = json.loads(Path(path).read_text())
    if (
        not isinstance(payload, dict)
        or payload.get("version") != 1
        or not isinstance(payload.get("fingerprints"), list)
    ):
        raise ValueError(f"{path}: not a repro-lint baseline file")
    return {str(fp) for fp in payload["fingerprints"]}


def write_baseline(
    path: str | Path,
    report: LintReport,
    line_text: dict[Finding, str],
) -> int:
    """Persist the current findings as the accepted baseline.

    Returns the number of fingerprints written.  The file is canonical
    JSON (sorted keys, sorted fingerprints) so it diffs cleanly.
    """
    fingerprints = sorted(
        {
            fingerprint(f, line_text.get(f, ""))
            for f in (*report.findings, *report.baselined)
        }
    )
    body = json.dumps(
        {"version": 1, "fingerprints": fingerprints},
        sort_keys=True,
        indent=2,
    )
    Path(path).write_text(body + "\n")
    return len(fingerprints)
