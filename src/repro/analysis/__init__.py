"""Static determinism & dtype-safety lint engine (``repro lint``).

This package turns the repo's hard-won runtime lessons — the PR 1
``simulate_word_batch`` view-aliasing bug, the PR 3 uint8 BFS
accumulator overflow, the PR 4–5 non-canonical / corrupt cache entries
— into *statically enforced* invariants.  A small AST rules engine
(stdlib :mod:`ast` only, no third-party dependencies) walks source
files, runs every registered rule, and reports findings in human or
canonical-JSON form; CI gates on a clean run over ``src/``.

Layout
------
:mod:`repro.analysis.findings`
    The :class:`Finding` record, stable fingerprints, rendering.
:mod:`repro.analysis.registry`
    The :class:`Rule` record and the ``@register_rule`` decorator.
:mod:`repro.analysis.engine`
    File walking, suppression comments, baselines, report assembly.
:mod:`repro.analysis.rules`
    The rule catalog (one module per rule); importing it populates
    the registry.
:mod:`repro.analysis.cli`
    ``repro lint`` argument parsing and output.

See docs/static_analysis.md for the rule catalog, the suppression /
baseline policy, and a guide to writing new rules.
"""

from __future__ import annotations

from repro.analysis.engine import LintReport, lint_paths
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules, register_rule

# Importing the catalog registers every shipped rule.
import repro.analysis.rules  # noqa: F401  (import for side effect)

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "lint_paths",
    "register_rule",
]
