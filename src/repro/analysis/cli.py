"""``repro lint`` — run the determinism/dtype-safety rules engine.

Usage::

    repro lint [PATH ...] [--format {text,json}] [--output FILE]
               [--select IDS] [--ignore IDS]
               [--baseline FILE] [--write-baseline FILE]
               [--list-rules]

Default path is ``src``.  Exit status: 0 clean, 1 when any gating
finding exists (new findings and suppression-hygiene violations both
gate; inline-suppressed-with-reason and baselined findings do not),
2 on usage errors.  ``--format json`` emits the canonical report CI
uploads as an artifact.  See docs/static_analysis.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.engine import (
    LintReport,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.analysis.registry import all_rules

__all__ = ["main"]


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def _print_rules() -> None:
    print(f"{'id':<10} {'name':<18} summary")
    for rule in all_rules().values():
        print(f"{rule.rule_id:<10} {rule.name:<18} {rule.summary}")
        print(f"{'':<10} {'':<18} why: {rule.rationale}")


def _render_text(report: LintReport) -> str:
    lines = [finding.render() for finding in report.findings]
    if report.suppressed:
        lines.append(f"# {len(report.suppressed)} suppressed (with reason):")
        lines.extend(f"#   {f.render()}" for f in report.suppressed)
    if report.baselined:
        lines.append(f"# {len(report.baselined)} baselined (pre-existing):")
        lines.extend(f"#   {f.render()}" for f in report.baselined)
    lines.append(
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined "
        f"in {report.files} file(s)"
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro lint", description=__doc__)
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files/dirs to lint (default src)"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="also write the report to FILE (same format)",
    )
    parser.add_argument(
        "--select", metavar="IDS", help="comma-separated rule ids to run"
    )
    parser.add_argument(
        "--ignore", metavar="IDS", help="comma-separated rule ids to skip"
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="baseline file: listed fingerprints do not gate",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="write current findings as the accepted baseline, then exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    baseline: set[str] | None = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2

    try:
        report, line_text = lint_paths(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
            baseline=baseline,
        )
    except (FileNotFoundError, KeyError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(message, file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(args.write_baseline, report, line_text)
        print(f"wrote {count} fingerprint(s) to {args.write_baseline}")
        return 0

    if args.format == "json":
        rendered = json.dumps(
            report.to_json_dict(line_text=line_text), sort_keys=True, indent=2
        )
    else:
        rendered = _render_text(report)
    print(rendered)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(rendered + "\n")
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
