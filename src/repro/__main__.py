"""``python -m repro`` — run the reproduction's experiment suite.

Delegates to :mod:`repro.experiments.runner`; see
``python -m repro --help`` for options.
"""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
