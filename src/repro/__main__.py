"""``python -m repro`` — run the reproduction's experiment suite.

Delegates to :mod:`repro.experiments.runner` (scenario tiers, parallel
sharded execution, content-addressed caching); see
``python -m repro --help`` for options and docs/orchestration.md for
the orchestration model.
"""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
