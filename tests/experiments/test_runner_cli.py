"""CLI smoke tests for ``python -m repro.experiments.runner`` and the
EXP-ASYNC/RAND determinism guarantee.

The runner's ``--write-md`` path regenerates EXPERIMENTS.md from
scratch; the smoke test exercises the real console entry point in a
subprocess against a tmp path (previously untested).  The determinism
test pins the satellite requirement that the async/random experiment
is a pure function of its seed.
"""

import os
import pathlib
import subprocess
import sys

from repro.experiments import e_async_random

REPO_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def _run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", *args],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=cwd,
        env=env,
    )


def test_write_md_smoke(tmp_path):
    """`runner --write-md` regenerates the results file and exits 0."""
    md = tmp_path / "EXPERIMENTS.md"
    proc = _run_cli(["EXP-ASYNC/RAND", "--write-md", str(md)], tmp_path)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert md.exists()
    text = md.read_text()
    assert text.startswith("# EXPERIMENTS — paper vs. measured")
    assert "EXP-ASYNC/RAND" in text
    assert "reproduced" in text.lower()
    assert f"wrote {md}" in proc.stdout


def test_write_md_and_json_smoke(tmp_path):
    md = tmp_path / "out.md"
    js = tmp_path / "out.json"
    proc = _run_cli(
        ["EXP-ASYNC/RAND", "--write-md", str(md), "--write-json", str(js)],
        tmp_path,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    import json

    payload = json.loads(js.read_text())
    assert payload and payload[0]["exp_id"] == "EXP-ASYNC/RAND"
    assert payload[0]["passed"] is True


def test_unknown_experiment_fails_loudly(tmp_path):
    proc = _run_cli(["NO-SUCH-EXP"], tmp_path)
    assert proc.returncode != 0
    assert "unknown experiment" in (proc.stderr + proc.stdout)


def test_async_random_is_seed_deterministic():
    """EXP-ASYNC/RAND is a pure function of its seed, run to run."""
    first = e_async_random.run(fast=True, seed=123)
    second = e_async_random.run(fast=True, seed=123)
    assert first.to_json_dict() == second.to_json_dict()
    assert first.passed
    other = e_async_random.run(fast=True, seed=321)
    # A different seed reroots the adversary schedules and coin streams;
    # the verdict must hold regardless.
    assert other.passed
    assert other.to_json_dict() != first.to_json_dict()
