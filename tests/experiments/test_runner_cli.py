"""CLI smoke tests for ``python -m repro.experiments.runner`` and the
EXP-ASYNC/RAND determinism guarantee.

The runner's ``--write-md`` path regenerates EXPERIMENTS.md from
scratch; the smoke test exercises the real console entry point in a
subprocess against a tmp path (previously untested).  The determinism
test pins the satellite requirement that the async/random experiment
is a pure function of its seed.
"""

import os
import pathlib
import subprocess
import sys

from repro.experiments import e_async_random

REPO_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def _run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", *args],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=cwd,
        env=env,
    )


def test_write_md_smoke(tmp_path):
    """`runner --write-md` regenerates the results file and exits 0."""
    md = tmp_path / "EXPERIMENTS.md"
    proc = _run_cli(["EXP-ASYNC/RAND", "--write-md", str(md)], tmp_path)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert md.exists()
    text = md.read_text()
    assert text.startswith("# EXPERIMENTS — paper vs. measured")
    assert "EXP-ASYNC/RAND" in text
    assert "reproduced" in text.lower()
    assert f"wrote {md}" in proc.stdout


def test_write_md_and_json_smoke(tmp_path):
    md = tmp_path / "out.md"
    js = tmp_path / "out.json"
    proc = _run_cli(
        ["EXP-ASYNC/RAND", "--write-md", str(md), "--write-json", str(js)],
        tmp_path,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    import json

    payload = json.loads(js.read_text())
    assert payload and payload[0]["exp_id"] == "EXP-ASYNC/RAND"
    assert payload[0]["passed"] is True


def test_unknown_experiment_fails_loudly(tmp_path):
    proc = _run_cli(["NO-SUCH-EXP"], tmp_path)
    assert proc.returncode != 0
    assert "unknown experiment" in (proc.stderr + proc.stdout)


def test_unknown_experiment_rejected_before_any_run(tmp_path):
    """A typo after a valid id fails fast: no table is ever printed."""
    proc = _run_cli(["FIG1", "NO-SUCH-EXP"], tmp_path)
    assert proc.returncode != 0
    assert "unknown experiment" in (proc.stderr + proc.stdout)
    assert "== FIG1" not in proc.stdout


def test_list_scenarios(tmp_path):
    proc = _run_cli(["--list"], tmp_path)
    assert proc.returncode == 0, proc.stderr[-2000:]
    for exp_id in ("FIG1", "EXP-T41", "EXP-ASYNC/RAND"):
        assert exp_id in proc.stdout
    assert "smoke/fast/full/stress" in proc.stdout


def test_smoke_tier_cache_round_trip(tmp_path):
    """Cold run computes, warm run is a pure cache hit, identical md."""
    md = tmp_path / "EXPERIMENTS.md"
    args = [
        "FIG1", "EXP-OPEN",
        "--tier", "smoke", "--jobs", "2",
        "--cache-dir", str(tmp_path / "cache"),
        "--write-md", str(md),
    ]
    cold = _run_cli(args, tmp_path)
    assert cold.returncode == 0, cold.stderr[-2000:]
    assert "recomputed=4 cached=0" in cold.stdout
    first = md.read_bytes()

    warm = _run_cli(args, tmp_path)
    assert warm.returncode == 0, warm.stderr[-2000:]
    assert "recomputed=0 cached=4" in warm.stdout
    assert md.read_bytes() == first

    status = _run_cli(
        [
            "FIG1", "EXP-OPEN",
            "--tier", "smoke",
            "--cache-dir", str(tmp_path / "cache"),
            "--shard-status",
        ],
        tmp_path,
    )
    assert status.returncode == 0, status.stderr[-2000:]
    assert "TOTAL           4/4 shards cached" in status.stdout


def test_no_cache_disables_store(tmp_path):
    args = [
        "FIG1", "--tier", "smoke", "--no-cache",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    for _ in range(2):
        proc = _run_cli(args, tmp_path)
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "recomputed=1 cached=0" in proc.stdout
    assert not (tmp_path / "cache").exists()


def test_bad_jobs_rejected(tmp_path):
    proc = _run_cli(["--jobs", "0"], tmp_path)
    assert proc.returncode != 0
    assert "--jobs" in proc.stderr


def test_full_conflicts_with_tier(tmp_path):
    """--full silently overriding (or being overridden by) --tier would
    regenerate the wrong parameter ranges; the combination must error."""
    proc = _run_cli(["--full", "--tier", "smoke"], tmp_path)
    assert proc.returncode != 0
    assert "--tier full" in proc.stderr


def test_async_random_is_seed_deterministic():
    """EXP-ASYNC/RAND is a pure function of its seed, run to run."""
    first = e_async_random.run(fast=True, seed=123)
    second = e_async_random.run(fast=True, seed=123)
    assert first.to_json_dict() == second.to_json_dict()
    assert first.passed
    other = e_async_random.run(fast=True, seed=321)
    # A different seed reroots the adversary schedules and coin streams;
    # the verdict must hold regardless.
    assert other.passed
    assert other.to_json_dict() != first.to_json_dict()
