"""Golden-output rendering and JSON round-trip tests for records.

``ExperimentRecord`` is the lingua franca of the orchestration layer:
drivers emit it, the runner renders it, and the content-addressed
store persists record/shard payloads as JSON.  These tests pin the
rendered output byte-for-byte and prove the JSON round trip is
lossless — the same round trip the store relies on for shard
serialization.
"""

from repro.experiments.records import ExperimentRecord, render_table
from repro.experiments.store import ResultStore, json_roundtrip


def _sample_record() -> ExperimentRecord:
    record = ExperimentRecord(
        exp_id="EXP-X",
        title="A worked example",
        paper_claim="the claim",
        columns=["case", "time", "ok"],
        measured_summary="both cases in budget",
        passed=True,
        notes="tuned profile",
        art="o--o",
    )
    record.add_row(case="ring", time=12, ok=True)
    record.add_row(case="torus", time=3.14159, ok=False)
    return record


GOLDEN_TEXT = (
    "== EXP-X: A worked example ==\n"
    "paper:    the claim\n"
    "measured: both cases in budget\n"
    "verdict:  REPRODUCED\n"
    "notes:    tuned profile\n"
    "case   time  ok   \n"  # headers are left-justified and padded
    "-----  ----  -----\n"
    " ring    12   True\n"
    "torus  3.14  False\n"
    "\n"
    "o--o"
)

GOLDEN_MARKDOWN = """\
### EXP-X: A worked example

**Paper claim.** the claim

**Measured.** both cases in budget

**Verdict.** reproduced — tuned profile

| case | time | ok |
|---|---|---|
| ring | 12 | True |
| torus | 3.14 | False |

```text
o--o
```
"""


def test_to_text_golden():
    assert _sample_record().to_text() == GOLDEN_TEXT


def test_to_markdown_golden():
    assert _sample_record().to_markdown() == GOLDEN_MARKDOWN


def test_render_table_golden():
    table = render_table(
        ["n", "label"], [{"n": 7, "label": "x"}, {"n": 10000, "label": "yy"}]
    )
    assert table == (
        "n      label\n"
        "-----  -----\n"
        "    7      x\n"
        "10000     yy"
    )


def test_render_table_missing_cells_blank():
    table = render_table(["a", "b"], [{"a": 1}])
    assert table.splitlines()[-1].split() == ["1"]


def test_json_round_trip_is_lossless():
    record = _sample_record()
    rebuilt = ExperimentRecord.from_json_dict(record.to_json_dict())
    assert rebuilt == record
    # ... including through actual JSON text, which is what the store
    # writes to disk (floats survive via repr round-tripping).
    rebuilt = ExperimentRecord.from_json_dict(
        json_roundtrip(record.to_json_dict())
    )
    assert rebuilt == record
    assert rebuilt.to_markdown() == GOLDEN_MARKDOWN


def test_store_reuses_record_serialization(tmp_path):
    """A record archived as a store payload renders identically."""
    store = ResultStore(tmp_path)
    record = _sample_record()
    key = "ee" + "0" * 62
    store.put(key, record.to_json_dict(), meta={"kind": "record"})
    rebuilt = ExperimentRecord.from_json_dict(store.get(key))
    assert rebuilt == record
    assert rebuilt.to_text() == GOLDEN_TEXT
