"""Orchestration-layer tests: differential, determinism, caching.

The load-bearing guarantees of the PR-4 refactor:

* the sharded drivers reproduce the **pre-refactor serial drivers**
  bit-for-bit on the fast tier (golden fixtures captured from the
  old ``run(fast=True)`` code before the rewrite);
* ``--jobs N`` merges are byte-identical to serial merges;
* the content-addressed store turns warm re-runs into zero-recompute
  cache reads, invalidates on any (spec, seed, code-version) change,
  survives corrupt entries, and resumes interrupted runs;
* ``run_all`` validates every requested id *before* executing any.
"""

import json
import pathlib

import pytest

from repro.experiments import e_fig1
from repro.experiments.orchestrator import (
    run_experiment,
    run_suite,
    shard_status,
    validate_experiment_ids,
)
from repro.experiments.runner import run_all, to_markdown
from repro.experiments.scenarios import (
    SCENARIO_MODULES,
    build_graph,
    get_scenario,
)
from repro.experiments.store import ResultStore, shard_key

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Cheap experiments used by the cache/parallel tests (smoke tier).
QUICK = ["FIG1", "TAB-SHRINK", "EXP-OPEN"]


def _slug(exp_id: str) -> str:
    return exp_id.lower().replace("/", "_").replace("-", "_")


@pytest.mark.parametrize(
    "exp_id",
    [
        pytest.param(k, marks=pytest.mark.slow if k == "EXP-L31" else ())
        for k in sorted(SCENARIO_MODULES)
    ],
)
def test_fast_tier_matches_pre_refactor_golden(exp_id):
    """Shard-merged records == the pre-refactor serial drivers (fast)."""
    golden = json.loads((GOLDEN_DIR / f"{_slug(exp_id)}.fast.json").read_text())
    run = run_experiment(exp_id, tier="fast")
    assert run.record.to_json_dict() == golden
    assert run.shards_computed == len(run.shards)  # no store attached


def test_parallel_merge_is_bit_identical_to_serial():
    """jobs=2 and jobs=1 produce byte-identical records and markdown."""
    serial = run_suite(QUICK, tier="smoke", jobs=1)
    parallel = run_suite(QUICK, tier="smoke", jobs=2)
    for s, p in zip(serial, parallel):
        assert s.record == p.record
    md = lambda runs: to_markdown(
        [(r.record, r.seconds) for r in runs], tier="smoke"
    )
    assert md(serial) == md(parallel)


def test_legacy_run_matches_orchestrator():
    """The back-compat run(fast) wrappers reuse the sharded pipeline."""
    assert e_fig1.run(fast=True) == run_experiment("FIG1", tier="fast").record


def test_warm_cache_recomputes_zero_shards(tmp_path):
    store = ResultStore(tmp_path / "cache")
    cold = run_suite(QUICK, tier="smoke", store=store)
    assert all(r.shards_cached == 0 for r in cold)
    warm = run_suite(QUICK, tier="smoke", store=store)
    assert all(r.shards_computed == 0 for r in warm)
    for c, w in zip(cold, warm):
        assert c.record == w.record
    # And cache-off still agrees byte-for-byte.
    uncached = run_suite(QUICK, tier="smoke", store=None)
    for c, u in zip(cold, uncached):
        assert c.record == u.record


def test_interrupted_run_resumes_from_store(tmp_path):
    """Shards that already landed on disk are not recomputed."""
    store = ResultStore(tmp_path / "cache")
    run_experiment("FIG1", tier="smoke", store=store)
    runs = run_suite(["FIG1", "EXP-OPEN"], tier="smoke", store=store)
    assert runs[0].shards_computed == 0  # fully resumed
    assert runs[1].shards_cached == 0  # fresh work still executes
    rows = shard_status(
        ["FIG1", "EXP-OPEN"], tier="smoke", seed=None, store=store
    )
    assert rows == [("FIG1", 1, 1), ("EXP-OPEN", 3, 3)]


def test_cache_key_invalidation_axes():
    """The key covers spec params, tier, seed, shard, and code version."""
    spec = get_scenario("FIG1")
    config = spec.config("smoke")
    shard = {"h": 2}
    base = shard_key(config, shard, spec.code_version)
    assert shard_key(config, shard, spec.code_version) == base
    assert shard_key(config, {"h": 3}, spec.code_version) != base
    assert shard_key(config, shard, spec.code_version + 1) != base
    assert shard_key(spec.config("fast"), shard, spec.code_version) != base
    assert (
        shard_key(spec.config("smoke", seed=99), shard, spec.code_version)
        != base
    )


def test_corrupt_cache_entry_is_recomputed(tmp_path):
    store = ResultStore(tmp_path / "cache")
    first = run_experiment("FIG1", tier="smoke", store=store)
    key = first.shards[0].key
    store.path_for(key).write_text("{not json")
    assert store.get(key) is None
    again = run_experiment("FIG1", tier="smoke", store=store)
    assert again.shards_computed == 1
    assert again.record == first.record
    assert store.get(key) is not None  # repaired in place


def test_corrupt_non_dict_entry_is_a_miss(tmp_path):
    """Valid-JSON-but-not-a-dict entries (`null`, lists) read as misses."""
    store = ResultStore(tmp_path / "cache")
    first = run_experiment("FIG1", tier="smoke", store=store)
    key = first.shards[0].key
    for garbage in ("null", "[]", '"x"', "3"):
        store.path_for(key).write_text(garbage)
        assert store.get(key) is None
    again = run_experiment("FIG1", tier="smoke", store=store)
    assert again.shards_computed == 1
    assert again.record == first.record


def test_seconds_attributed_per_experiment(tmp_path):
    """An experiment's seconds cover its own shards, not the suite's."""
    store = ResultStore(tmp_path / "cache")
    cold = run_suite(QUICK, tier="smoke", store=store)
    for run in cold:
        assert run.seconds == pytest.approx(
            sum(o.seconds for o in run.shards), abs=0.05
        )
        assert all(o.seconds > 0 for o in run.shards)
    warm = run_suite(QUICK, tier="smoke", store=store)
    for run in warm:
        assert all(o.seconds == 0.0 for o in run.shards)  # cache hits


def test_store_survives_mismatched_entry(tmp_path):
    store = ResultStore(tmp_path / "cache")
    store.put("ab" + "0" * 62, {"ok": True})
    assert store.get("ab" + "0" * 62) == {"ok": True}
    # An entry whose body does not match its address is ignored.
    store.path_for("cd" + "0" * 62).parent.mkdir(parents=True, exist_ok=True)
    store.path_for("cd" + "0" * 62).write_text(
        json.dumps({"key": "wrong", "data": {}})
    )
    assert store.get("cd" + "0" * 62) is None
    assert ("ab" + "0" * 62) in store
    assert ("cd" + "0" * 62) not in store


def test_unknown_ids_rejected_before_any_execution(monkeypatch):
    """Regression: a typo'd id must fail up front, not after earlier
    experiments already burned their minutes."""

    def boom(config, shard):
        raise AssertionError("shard executed before validation finished")

    monkeypatch.setattr(e_fig1, "run_shard", boom)
    with pytest.raises(KeyError, match="NOPE"):
        run_all(only=["FIG1", "NOPE"])
    with pytest.raises(KeyError, match="NOPE"):
        run_suite(["FIG1", "NOPE"], tier="smoke")


def test_validate_experiment_ids_lists_all_unknown():
    with pytest.raises(KeyError, match="'NOPE'.*'ALSO-NOPE'|'ALSO-NOPE'.*'NOPE'"):
        validate_experiment_ids(["NOPE", "FIG1", "ALSO-NOPE"])
    assert validate_experiment_ids(None) == list(SCENARIO_MODULES)


def test_seed_threads_through_shards():
    """The orchestrator seed reroots every derived stream."""
    a = run_experiment("EXP-ASYNC/RAND", tier="smoke", seed=123).record
    b = run_experiment("EXP-ASYNC/RAND", tier="smoke", seed=123).record
    c = run_experiment("EXP-ASYNC/RAND", tier="smoke", seed=321).record
    assert a == b
    assert a.passed and c.passed
    assert a != c


def test_every_scenario_declares_all_tiers():
    for exp_id in SCENARIO_MODULES:
        spec = get_scenario(exp_id)
        assert set(spec.tiers) == {"smoke", "fast", "full", "stress"}, exp_id
        for tier in spec.tiers:
            shards = spec.driver().make_shards(spec.config(tier))
            assert shards, (exp_id, tier)
            # Shard payloads must be content-addressable (plain JSON).
            for shard in shards:
                assert json.loads(json.dumps(shard)) == shard


def test_positive_stic_cases_feasible_at_every_tier():
    """Drivers asserting rendezvous must only list feasible STICs —
    at *every* tier, including the ones the test suite never runs."""
    from repro.symmetry.feasibility import classify_stic

    for exp_id in ("EXP-T31/P41", "EXP-BASE/LE"):
        spec = get_scenario(exp_id)
        for tier, params in spec.tiers.items():
            for name, graph_spec, u, v, delta in params["cases"]:
                verdict = classify_stic(build_graph(graph_spec), u, v, delta)
                assert verdict.feasible, (exp_id, tier, name)


def test_build_graph_specs():
    g = build_graph({"family": "oriented_torus", "rows": 3, "cols": 3})
    assert g.n == 9
    with pytest.raises(KeyError, match="unknown graph family"):
        build_graph({"family": "klein_bottle", "n": 4})
