"""Full-parameter sweeps of every experiment driver (slow).

Fast mode keeps CI snappy; these runs exercise the complete parameter
ranges that EXPERIMENTS.md is generated from, so a regression anywhere
in the wide workloads is caught by `pytest -m slow`.
"""

import pytest

from repro.experiments.runner import EXPERIMENTS

# EXP-L31 full mode runs ~1M-round horizons (minutes); exercised by the
# EXPERIMENTS.md regeneration rather than the test suite.
_FULL_SAFE = sorted(k for k in EXPERIMENTS if k != "EXP-L31")


@pytest.mark.slow
@pytest.mark.parametrize("exp_id", _FULL_SAFE)
def test_driver_full_mode(exp_id):
    record = EXPERIMENTS[exp_id](False)
    assert record.passed, record.to_text()
    assert record.rows
