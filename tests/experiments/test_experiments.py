"""Smoke tests for the experiment drivers and the records layer.

Each driver must run in fast mode, pass its own verdict, and produce a
well-formed record.  (The heavy sweeps run from the benchmark harness;
these tests keep the reproduction pipeline itself green.)
"""

import pytest

from repro.experiments.records import ExperimentRecord, render_table
from repro.experiments.runner import EXPERIMENTS, run_all, to_markdown


class TestRecords:
    def test_render_table(self):
        text = render_table(["a", "b"], [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.1}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "2.50" in text

    def test_markdown_shape(self):
        rec = ExperimentRecord(
            exp_id="X",
            title="t",
            paper_claim="c",
            columns=["x"],
            measured_summary="m",
            passed=True,
        )
        rec.add_row(x=1)
        md = rec.to_markdown()
        assert md.startswith("### X: t")
        assert "| x |" in md and "| 1 |" in md

    def test_text_shape(self):
        rec = ExperimentRecord("X", "t", "c", ["x"], measured_summary="m")
        assert "MISMATCH" in rec.to_text()
        rec.passed = True
        assert "REPRODUCED" in rec.to_text()


@pytest.mark.parametrize("exp_id", sorted(k for k in EXPERIMENTS if k != "EXP-L31"))
def test_driver_fast_mode(exp_id):
    record = EXPERIMENTS[exp_id](True)
    assert record.passed, record.to_text()
    assert record.rows, "driver produced no table rows"
    assert record.measured_summary


@pytest.mark.slow
def test_infeasible_driver_fast_mode():
    record = EXPERIMENTS["EXP-L31"](True)
    assert record.passed, record.to_text()


def test_runner_selection_and_markdown():
    results = run_all(fast=True, only=["FIG1", "TAB-SHRINK"])
    assert len(results) == 2
    md = to_markdown(results)
    assert "### FIG1" in md and "### TAB-SHRINK" in md


def test_runner_rejects_unknown():
    with pytest.raises(KeyError):
        run_all(only=["NOPE"])


def test_json_record_shape():
    rec = ExperimentRecord("X", "t", "c", ["x"], measured_summary="m", passed=True)
    rec.add_row(x=3)
    payload = rec.to_json_dict()
    assert payload["exp_id"] == "X" and payload["rows"] == [{"x": 3}]


def test_cli_write_md_and_json(tmp_path):
    from repro.experiments.runner import main

    md = tmp_path / "out.md"
    js = tmp_path / "out.json"
    code = main(
        [
            "FIG1",
            "--cache-dir", str(tmp_path / "cache"),
            "--write-md", str(md),
            "--write-json", str(js),
        ]
    )
    assert code == 0
    assert md.read_text().startswith("# EXPERIMENTS")
    import json

    payload = json.loads(js.read_text())
    assert payload[0]["exp_id"] == "FIG1" and payload[0]["passed"]
