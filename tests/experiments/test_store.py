"""ResultStore validation: keys()/len must agree with get(), prune()
must delete exactly what get() would reject.

Regression context: keys() used to count every ``??/*.json`` file —
corrupt entries, foreign files, misfiled buckets — so occupancy
reports (``--shard-status`` totals) overstated the cache.  Now an
entry only counts when a get() would actually serve it.
"""

import json

from repro.experiments.scenarios import RunConfig
from repro.experiments.store import ResultStore, shard_key


def _populate(store: ResultStore, count: int) -> tuple[list[str], dict]:
    config = RunConfig(exp_id="X", tier="smoke", seed=0, params={})
    payloads = {}
    for i in range(count):
        key = shard_key(config, {"cell": i}, 1)
        store.put(key, {"value": i})
        payloads[key] = {"value": i}
    return sorted(payloads), payloads


class TestKeysValidation:
    def test_valid_entries_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        keys, _ = _populate(store, 4)
        assert store.keys() == keys
        assert len(store) == 4

    def test_missing_root_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "nope")
        assert store.keys() == [] and len(store) == 0

    def test_corrupt_entries_do_not_count(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        keys, _ = _populate(store, 3)
        # Truncated JSON in place of a valid entry.
        store.path_for(keys[0]).write_text("{not json")
        # Valid JSON, wrong shape.
        store.path_for(keys[1]).write_text("[]")
        assert store.keys() == keys[2:]
        assert len(store) == 1

    def test_foreign_files_do_not_count(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        keys, _ = _populate(store, 2)
        bucket = store.path_for(keys[0]).parent
        # A foreign JSON file whose name is no entry key.
        (bucket / "README.json").write_text(json.dumps({"hi": 1}))
        # An entry copied into the wrong bucket directory.
        wrong = store.root / ("zz" if keys[0][:2] != "zz" else "yy")
        wrong.mkdir()
        (wrong / f"{keys[0]}.json").write_text(
            store.path_for(keys[0]).read_text()
        )
        # An entry whose payload claims a different key than its name.
        entry = json.loads(store.path_for(keys[0]).read_text())
        entry["key"] = "0" * 64
        (bucket / ("f" * 64 + ".json")).write_text(json.dumps(entry))
        assert store.keys() == keys
        assert len(store) == 2


class TestPrune:
    def test_prune_deletes_only_invalid(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        keys, payloads = _populate(store, 3)
        store.path_for(keys[0]).write_text("garbage")
        bucket = store.path_for(keys[1]).parent
        (bucket / "foreign.json").write_text("{}")
        (bucket / ".deadbeef-leftover.tmp").write_text("partial write")
        removed = store.prune()
        assert len(removed) == 3
        assert store.keys() == keys[1:]
        assert store.get(keys[1]) == payloads[keys[1]]
        assert store.get(keys[2]) == payloads[keys[2]]
        assert not (bucket / ".deadbeef-leftover.tmp").exists()

    def test_prune_is_idempotent_and_cheap_on_valid_store(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        keys, _ = _populate(store, 4)
        assert store.prune() == []
        assert store.keys() == keys

    def test_prune_missing_root(self, tmp_path):
        assert ResultStore(tmp_path / "nope").prune() == []
