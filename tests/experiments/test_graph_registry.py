"""GRAPH_FAMILIES: the single declarative graph registry.

Scenario specs and the campaign layer both build graphs through this
table, so its error surface (near-miss suggestions, required-kwarg
catalogs) and its metadata (which families are seeded distributions)
are contract, not convenience.
"""

import pytest

from repro.experiments.scenarios import GRAPH_FAMILIES, GraphFamily, build_graph


class TestRegistry:
    def test_every_entry_is_well_formed(self):
        for name, entry in GRAPH_FAMILIES.items():
            assert isinstance(entry, GraphFamily)
            assert entry.name == name
            assert callable(entry.build)

    def test_random_and_cayley_families_registered(self):
        assert {
            "random_tree",
            "random_connected",
            "random_regular",
            "cayley_abelian",
            "circulant",
        } <= set(GRAPH_FAMILIES)

    def test_seeded_flag_tracks_seed_param(self):
        assert GRAPH_FAMILIES["random_tree"].seeded
        assert GRAPH_FAMILIES["random_regular"].seeded
        assert not GRAPH_FAMILIES["oriented_ring"].seeded
        assert not GRAPH_FAMILIES["cayley_abelian"].seeded

    def test_builders_produce_expected_graphs(self):
        ring = build_graph({"family": "circulant", "n": 7, "steps": [1]})
        assert ring.n == 7 and all(ring.degree(v) == 2 for v in range(7))
        torus = build_graph(
            {
                "family": "cayley_abelian",
                "moduli": [3, 3],
                "generators": [[1, 0], [0, 1]],
            }
        )
        assert torus.n == 9 and all(torus.degree(v) == 4 for v in range(9))
        regular = build_graph(
            {"family": "random_regular", "n": 8, "degree": 3, "seed": 2}
        )
        assert all(regular.degree(v) == 3 for v in range(8))


class TestErrors:
    def test_unknown_family_lists_catalog(self):
        with pytest.raises(KeyError) as excinfo:
            build_graph({"family": "klein_bottle", "n": 4})
        message = str(excinfo.value)
        assert "unknown graph family 'klein_bottle'" in message
        assert "oriented_torus(rows, cols)" in message  # kwargs catalog

    def test_near_miss_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'oriented_ring'"):
            build_graph({"family": "oriented_rign", "n": 5})

    def test_missing_family_key(self):
        with pytest.raises(KeyError, match="missing the 'family' key"):
            build_graph({"n": 5})

    def test_missing_kwargs_rejected(self):
        with pytest.raises(TypeError, match=r"missing: \['cols'\]"):
            build_graph({"family": "oriented_torus", "rows": 3})

    def test_unexpected_kwargs_rejected(self):
        with pytest.raises(TypeError, match=r"unexpected: \['m'\]"):
            build_graph({"family": "oriented_ring", "n": 5, "m": 2})
