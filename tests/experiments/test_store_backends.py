"""Pluggable store backends and bounded GC.

The backend seam (``StoreBackend`` protocol) must not change entry
semantics: the same key maps to the same path and the same canonical
bytes under every backend.  ``SharedDirBackend`` adds process-safe
write-once behaviour; ``gc`` evicts LRU by mtime under explicit
bounds and never runs implicitly.
"""

import json
import os

import pytest

from repro.experiments.store import (
    STORE_BACKENDS,
    LocalDirBackend,
    ResultStore,
    SharedDirBackend,
    StoreBackend,
    register_store_backend,
)
from repro.experiments.store_cli import main as store_cli_main
from repro.experiments.store_cli import parse_size


def _fill(store: ResultStore, count: int) -> list[str]:
    keys = []
    for i in range(count):
        key = f"{i:064x}"
        store.put(key, {"value": i})
        keys.append(key)
    return keys


class TestBackendSeam:
    def test_backends_are_protocol_instances(self):
        for cls in STORE_BACKENDS.values():
            assert isinstance(cls("/tmp/x"), StoreBackend)

    def test_registry_and_name_resolution(self, tmp_path):
        store = ResultStore(tmp_path, backend="shared")
        assert isinstance(store.backend, SharedDirBackend)
        with pytest.raises(KeyError, match="unknown store backend"):
            ResultStore(tmp_path, backend="s3")

    def test_register_custom_backend(self, tmp_path):
        class TracingBackend(LocalDirBackend):
            writes = 0

            def write(self, key, text):
                TracingBackend.writes += 1
                super().write(key, text)

        register_store_backend("tracing-test", TracingBackend)
        try:
            store = ResultStore(tmp_path, backend="tracing-test")
            _fill(store, 2)
            assert TracingBackend.writes == 2
        finally:
            del STORE_BACKENDS["tracing-test"]

    def test_backends_write_identical_bytes(self, tmp_path):
        local = ResultStore(tmp_path / "local", backend="local")
        shared = ResultStore(tmp_path / "shared", backend="shared")
        [key_l] = _fill(local, 1)
        [key_s] = _fill(shared, 1)
        assert (
            local.path_for(key_l).read_bytes()
            == shared.path_for(key_s).read_bytes()
        )
        assert local.get(key_l) == shared.get(key_s) == {"value": 0}


class TestSharedDirBackend:
    def test_write_once_first_writer_wins(self, tmp_path):
        store = ResultStore(tmp_path, backend="shared")
        [key] = _fill(store, 1)
        before = store.path_for(key).stat().st_mtime_ns
        # A concurrent writer landing the same key is a no-op: the
        # entry is a pure function of the key, so the bytes agree.
        store.put(key, {"value": 0})
        assert store.path_for(key).stat().st_mtime_ns == before

    def test_corrupt_entry_is_overwritten_not_skipped(self, tmp_path):
        store = ResultStore(tmp_path, backend="shared")
        [key] = _fill(store, 1)
        store.path_for(key).write_text("{truncated")
        store.put(key, {"value": 0})
        assert store.get(key) == {"value": 0}


class TestGc:
    def _age(self, store: ResultStore, key: str, days: float) -> None:
        path = store.path_for(key)
        stamp = path.stat().st_mtime - days * 86400.0
        os.utime(path, (stamp, stamp))

    def test_gc_without_bounds_removes_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        _fill(store, 3)
        report = store.gc()
        assert report.removed == [] and report.kept == 3

    def test_max_bytes_evicts_lru_first(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = _fill(store, 4)
        for i, key in enumerate(keys):
            self._age(store, key, days=len(keys) - i)  # keys[0] oldest
        entry_size = store.path_for(keys[0]).stat().st_size
        report = store.gc(max_bytes=2 * entry_size + 1)
        assert report.removed == sorted(keys[:2])
        assert store.get(keys[0]) is None and store.get(keys[3]) is not None
        assert report.kept == 2 and report.kept_bytes <= 2 * entry_size + 2

    def test_max_age_is_relative_to_newest_entry(self, tmp_path):
        # `now` defaults to the newest mtime, so GC is a pure function
        # of directory state (no wall-clock read — REPRO105).
        store = ResultStore(tmp_path)
        keys = _fill(store, 3)
        self._age(store, keys[0], days=10)
        self._age(store, keys[1], days=4)
        report = store.gc(max_age_days=7)
        assert report.removed == [keys[0]]
        assert sorted(store.keys()) == sorted(keys[1:])

    def test_explicit_now_overrides(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = _fill(store, 2)
        newest = store.path_for(keys[1]).stat().st_mtime
        report = store.gc(max_age_days=1, now=newest + 3 * 86400.0)
        assert sorted(report.removed) == sorted(keys)

    def test_dry_run_deletes_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = _fill(store, 3)
        report = store.gc(max_bytes=0, dry_run=True)
        assert report.dry_run and sorted(report.removed) == sorted(keys)
        assert len(store.keys()) == 3


class TestStoreCli:
    def test_parse_size(self):
        assert parse_size("1048576") == 1024**2
        assert parse_size("500M") == 500 * 1024**2
        assert parse_size("2G") == 2 * 1024**3
        assert parse_size("1.5K") == 1536
        assert parse_size("10KiB") == 10240
        with pytest.raises(ValueError):
            parse_size("lots")
        with pytest.raises(ValueError):
            parse_size("-1M")

    def test_status_gc_prune_round_trip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        store = ResultStore(cache)
        keys = _fill(store, 3)
        (store.path_for(keys[0]).parent / ".junk.tmp").write_text("x")

        assert store_cli_main(["status", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "entries: 3" in out and "stray files: 1" in out

        assert store_cli_main(["prune", "--cache-dir", cache]) == 0
        assert "pruned 1" in capsys.readouterr().out

        assert (
            store_cli_main(
                ["gc", "--cache-dir", cache, "--max-bytes", "0", "--dry-run"]
            )
            == 0
        )
        assert "would remove 3" in capsys.readouterr().out
        assert len(store.keys()) == 3

        assert store_cli_main(["gc", "--cache-dir", cache]) == 2  # no bound
        assert "nothing to do" in capsys.readouterr().err
