"""Work-queue core: leases, retry, quarantine, and the run journal.

These are the unit-level guarantees under the kill/resume integration
test (test_resume.py): leases expire on deadline or dead heartbeat and
count against the retry budget; retry exhaustion quarantines the shard
with a replayable JSON artifact instead of failing the run; stale
leases cannot corrupt the ledger; and journal replay survives exactly
the corruption a SIGKILL can produce (a truncated final line).
"""

import sys
import types

import pytest

from repro.experiments.journal import (
    RunJournal,
    derive_run_id,
    replay_journal,
)
from repro.experiments.queue import (
    COMPLETED,
    PENDING,
    QUARANTINED,
    QueuePolicy,
    ShardTask,
    WorkQueue,
    load_quarantined_shard,
    quarantine_artifact_name,
    replay_quarantined_shard,
    run_queue,
)

FAKE_MODULE = "tests_fake_queue_driver"


def _task(i: int = 0, module: str = FAKE_MODULE) -> ShardTask:
    return ShardTask(
        plan=0,
        index=i,
        module=module,
        config={"exp_id": "X", "tier": "smoke", "seed": 0, "params": {}},
        shard={"cell": i},
        key=f"{i:02d}" + "ab" * 31,
    )


def _install_fake_driver(monkeypatch, run_shard) -> None:
    mod = types.ModuleType(FAKE_MODULE)
    mod.run_shard = run_shard
    monkeypatch.setitem(sys.modules, FAKE_MODULE, mod)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestLeaseDiscipline:
    def test_leases_issue_in_plan_order(self):
        queue = WorkQueue([_task(0), _task(1)])
        assert queue.lease().task.index == 0
        assert queue.lease().task.index == 1
        assert queue.lease() is None  # everything leased

    def test_complete_is_idempotent_first_result_wins(self):
        task = _task()
        queue = WorkQueue([task])
        queue.lease()
        assert queue.complete(task) is True
        assert queue.complete(task) is False
        assert queue.counts()[COMPLETED] == 1

    def test_stale_lease_failure_is_ignored(self):
        # A straggler from a superseded lease must not burn the retry
        # budget of the attempt that replaced it.
        task = _task()
        queue = WorkQueue([task], policy=QueuePolicy(max_retries=0))
        old = queue.lease()
        queue.fail(old, "boom")  # attempt 1 fails -> pending again...
        assert queue.state_of(task)[0] == QUARANTINED  # max_retries=0

        queue2 = WorkQueue([task], policy=QueuePolicy(max_retries=5))
        stale = queue2.lease()
        queue2.fail(stale, "transient")  # back to pending
        fresh = queue2.lease()
        assert fresh.token != stale.token
        # The stale lease reporting again changes nothing.
        queue2.fail(stale, "late straggler")
        assert queue2.state_of(task) == ("leased", 2)
        queue2.complete(task)
        assert queue2.state_of(task)[0] == COMPLETED

    def test_deadline_expiry_counts_as_failed_attempt(self, tmp_path):
        clock = FakeClock()
        task = _task()
        queue = WorkQueue(
            [task],
            policy=QueuePolicy(max_retries=1, shard_timeout=10.0),
            run_dir=tmp_path,
            clock=clock,
        )
        lease = queue.lease()
        assert lease.deadline == clock.now + 10.0
        clock.now += 5.0
        assert queue.expire_stale_leases() == []  # still within deadline
        clock.now += 6.0
        assert queue.expire_stale_leases() == [lease]
        assert queue.state_of(task) == (PENDING, 1)  # re-leasable

        # Second timeout exhausts the budget -> quarantine + artifact.
        lease2 = queue.lease()
        clock.now += 11.0
        queue.expire_stale_leases()
        status, attempts = queue.state_of(task)
        assert (status, attempts) == (QUARANTINED, 2)
        [(qt, error, artifact)] = queue.quarantined()
        assert qt is task and "shard-timeout" in error.replace("--", "-")
        assert artifact is not None and artifact.is_file()
        # And a late result from the expired lease is a no-op.
        assert queue.complete(lease2.task) is False

    def test_heartbeat_expiry_detects_dead_worker(self, tmp_path):
        clock = FakeClock()
        task = _task()
        queue = WorkQueue(
            [task],
            policy=QueuePolicy(max_retries=0, heartbeat_timeout=3.0),
            run_dir=tmp_path,
            clock=clock,
        )
        lease = queue.lease()
        assert lease.heartbeat_path is not None
        lease.heartbeat_path.touch()  # worker came up and beat once
        clock.now += 2.0
        assert queue.expire_stale_leases() == []  # beat observed at +2
        clock.now += 2.5
        assert queue.expire_stale_leases() == []  # mtime unchanged, 2.5 < 3
        clock.now += 1.0
        assert queue.expire_stale_leases() == [lease]  # silent for 3.5s
        assert queue.state_of(task)[0] == QUARANTINED
        [(_, error, _)] = queue.quarantined()
        assert "heartbeat" in error

    def test_heartbeat_advancing_keeps_lease_alive(self, tmp_path):
        clock = FakeClock()
        queue = WorkQueue(
            [_task()],
            policy=QueuePolicy(max_retries=0, heartbeat_timeout=3.0),
            run_dir=tmp_path,
            clock=clock,
        )
        lease = queue.lease()
        for step in range(4):
            lease.heartbeat_path.write_text(str(step))  # mtime advances
            clock.now += 2.9
            assert queue.expire_stale_leases() == []


class TestQuarantineArtifacts:
    def test_retry_exhaustion_writes_replayable_artifact(
        self, tmp_path, monkeypatch
    ):
        calls = []

        def poison(config, shard):
            calls.append(shard)
            raise ValueError(f"deterministic failure on {shard['cell']}")

        _install_fake_driver(monkeypatch, poison)
        task = _task()
        journal = RunJournal(tmp_path / "journal.jsonl", fresh=True)
        queue = WorkQueue(
            [task],
            policy=QueuePolicy(max_retries=2),
            journal=journal,
            run_dir=tmp_path,
        )
        landed = []
        run_queue(queue, jobs=1, on_result=lambda *a: landed.append(a))
        journal.close()

        assert landed == [] and len(calls) == 3  # 1 attempt + 2 retries
        [(_, error, artifact)] = queue.quarantined()
        assert "deterministic failure" in error
        assert artifact.name == quarantine_artifact_name(task)

        payload = load_quarantined_shard(artifact)
        assert payload["kind"] == "quarantined-shard"
        assert payload["module"] == FAKE_MODULE
        assert payload["shard"] == task.shard
        assert payload["attempts"] == 3

        # Replay reproduces the failure from the artifact alone...
        with pytest.raises(ValueError, match="deterministic failure"):
            replay_quarantined_shard(artifact)
        # ...and reports recovery once the driver is fixed.
        _install_fake_driver(monkeypatch, lambda config, shard: {"ok": 1})
        assert replay_quarantined_shard(artifact) == {"ok": 1}

    def test_load_rejects_non_artifacts(self, tmp_path):
        path = tmp_path / "not-artifact.json"
        path.write_text('{"module": "m"}')
        with pytest.raises(ValueError, match="required fields"):
            load_quarantined_shard(path)

    def test_run_continues_past_poisoned_shard(self, tmp_path, monkeypatch):
        def flaky(config, shard):
            if shard["cell"] == 1:
                raise RuntimeError("poison")
            return {"cell": shard["cell"]}

        _install_fake_driver(monkeypatch, flaky)
        tasks = [_task(i) for i in range(3)]
        queue = WorkQueue(
            tasks, policy=QueuePolicy(max_retries=1), run_dir=tmp_path
        )
        landed = {}
        run_queue(
            queue,
            jobs=1,
            on_result=lambda t, r, s: landed.__setitem__(t.index, r),
        )
        assert landed == {0: {"cell": 0}, 2: {"cell": 2}}
        counts = queue.counts()
        assert counts[COMPLETED] == 2 and counts[QUARANTINED] == 1


class TestJournal:
    def _lifecycle(self, path) -> None:
        with RunJournal(path, fresh=True) as journal:
            journal.append(
                {
                    "event": "plan",
                    "run_id": "run-abc",
                    "tier": "smoke",
                    "seed": 0,
                    "experiments": [{"exp_id": "X", "keys": ["k1", "k2"]}],
                }
            )
            journal.append({"event": "lease", "key": "k1", "attempt": 1})
            journal.append({"event": "complete", "key": "k1"})
            journal.append({"event": "lease", "key": "k2", "attempt": 1})

    def test_replay_folds_lifecycle(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self._lifecycle(path)
        state = replay_journal(path)
        assert state.run_id == "run-abc"
        assert state.planned == {"X": ["k1", "k2"]}
        assert state.status == {"k1": "completed", "k2": "leased"}
        assert state.counts() == {
            "planned": 2,
            "completed": 1,
            "leased": 1,
            "quarantined": 0,
            "pending": 0,
        }
        assert not state.truncated_tail

    def test_truncated_final_line_is_dropped(self, tmp_path):
        # The only corruption a SIGKILL mid-append can produce.
        path = tmp_path / "journal.jsonl"
        self._lifecycle(path)
        with open(path, "a") as fh:
            fh.write('{"event": "complete", "key": "k2')  # cut mid-write
        state = replay_journal(path)
        assert state.truncated_tail
        assert state.status == {"k1": "completed", "k2": "leased"}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self._lifecycle(path)
        lines = path.read_text().splitlines()
        lines[1] = "{garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt journal line 2"):
            replay_journal(path)

    def test_retry_returns_key_to_pending(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path, fresh=True) as journal:
            journal.append({"event": "lease", "key": "k1", "attempt": 1})
            journal.append(
                {"event": "retry", "key": "k1", "attempt": 1, "error": "x"}
            )
        state = replay_journal(path)
        assert "k1" not in state.status
        assert state.errors["k1"] == "x"

    def test_quarantine_event_carries_triage_fields(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path, fresh=True) as journal:
            journal.append(
                {
                    "event": "quarantine",
                    "key": "k1",
                    "attempts": 3,
                    "error": "boom",
                    "artifact": "shard-k1.json",
                }
            )
        state = replay_journal(path)
        assert state.status == {"k1": "quarantined"}
        assert state.attempts["k1"] == 3
        assert state.artifacts["k1"] == "shard-k1.json"


class TestDeriveRunId:
    def test_stable_and_content_sensitive(self):
        plan = [("X", ["k1", "k2"]), ("Y", ["k3"])]
        rid = derive_run_id(plan, "smoke", 0)
        assert rid == derive_run_id(plan, "smoke", 0)
        assert rid.startswith("run-") and len(rid) == 16
        assert rid != derive_run_id(plan, "fast", 0)
        assert rid != derive_run_id(plan, "smoke", 1)
        assert rid != derive_run_id([("X", ["k1"])], "smoke", 0)
