"""Kill/resume and quarantine, end to end through ``run_suite``.

The headline guarantee of the checkpointed work queue: a run killed
with SIGKILL mid-flight resumes with **zero recomputation** of the
shards that completed before the kill, and the final merge (and the
written EXPERIMENTS.md) is **byte-identical** to an uninterrupted run.
And a shard that fails deterministically is quarantined with a replay
artifact while the rest of the suite completes normally.
"""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.experiments import e_fig1
from repro.experiments.journal import list_runs, replay_journal, run_dir
from repro.experiments.orchestrator import journal_status, run_suite
from repro.experiments.store import ResultStore

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _repro(*args: str, cache: Path, md: Path) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "--tier",
        "smoke",
        "--cache-dir",
        str(cache),
        "--write-md",
        str(md),
        *args,
    ]


def _summary(stdout: str) -> tuple[int, int, int]:
    match = re.search(
        r"shards: total=(\d+) recomputed=(\d+) cached=(\d+)", stdout
    )
    assert match, f"no shard summary in output:\n{stdout}"
    return tuple(int(g) for g in match.groups())


def test_sigkill_then_resume_zero_recompute_byte_identical(tmp_path):
    cache = tmp_path / "cache"
    md_resumed = tmp_path / "resumed.md"

    # Start the run in its own process group and SIGKILL it as soon as
    # the store holds a first batch of results.  (On a fast machine the
    # run may finish before the kill lands — then this degenerates to
    # the plain warm-resume case, which must hold just as well.)
    proc = subprocess.Popen(
        _repro("--jobs", "2", cache=cache, md=md_resumed),
        env=_env(),
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 120
    store = ResultStore(cache)
    while time.monotonic() < deadline:
        if proc.poll() is not None or len(store.keys()) >= 2:
            break
        time.sleep(0.005)
    if proc.poll() is None:
        os.killpg(proc.pid, signal.SIGKILL)
    proc.wait(timeout=60)

    # Whatever landed before the kill is the resume's starting capital.
    completed_at_kill = len(store.keys())
    [run_id] = list_runs(cache)
    # A SIGKILL mid-append corrupts at most the journal's final line;
    # replay must still parse everything before it.
    state = replay_journal(run_dir(cache, run_id) / "journal.jsonl")
    assert state.run_id == run_id

    result = subprocess.run(
        _repro("--jobs", "2", "--resume", cache=cache, md=md_resumed),
        env=_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    total, recomputed, cached = _summary(result.stdout)
    # Zero recomputation of completed shards: the resume computed
    # exactly the complement of what the killed run finished.
    assert cached == completed_at_kill
    assert recomputed == total - completed_at_kill
    assert f"run id: {run_id}" in result.stdout

    # Byte-identity: an uninterrupted cold run writes the same file.
    md_clean = tmp_path / "clean.md"
    clean = subprocess.run(
        _repro("--jobs", "2", cache=tmp_path / "cache2", md=md_clean),
        env=_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert clean.returncode == 0, clean.stdout + clean.stderr
    assert md_resumed.read_bytes() == md_clean.read_bytes()

    # The journal agrees: every planned shard completed, none leased.
    state, rows = journal_status(store, run_id)
    counts = state.counts()
    assert counts["completed"] == counts["planned"] == total
    assert counts["leased"] == counts["quarantined"] == 0
    assert all(c["cached"] == c["planned"] for _, c in rows)


def test_quarantine_isolates_poison_shard_from_suite(tmp_path, monkeypatch):
    # FIG1's only smoke shard fails deterministically; the suite must
    # quarantine it (with a replayable artifact) and still merge the
    # other experiment normally.
    def poison(config, shard):
        raise RuntimeError("injected poison")

    monkeypatch.setattr(e_fig1, "run_shard", poison)
    store = ResultStore(tmp_path / "cache")
    runs = run_suite(
        ["FIG1", "TAB-SHRINK"], tier="smoke", store=store, max_retries=1
    )

    fig1, shrink = runs
    assert fig1.shards_quarantined == 1 and not fig1.record.passed
    assert "quarantined" in fig1.record.measured_summary
    [outcome] = fig1.shards
    assert outcome.quarantined and outcome.attempts == 2
    assert "injected poison" in outcome.error
    artifact = Path(outcome.artifact)
    assert artifact.is_file()
    assert artifact.parent.name == "quarantine"

    # The healthy experiment is untouched by its neighbour's poison.
    assert shrink.shards_quarantined == 0 and shrink.record.passed

    # Resume honors the quarantine verdict instead of retrying it.
    resumed = run_suite(
        ["FIG1", "TAB-SHRINK"],
        tier="smoke",
        store=store,
        max_retries=1,
        resume=True,
    )
    assert resumed[0].shards_quarantined == 1
    assert resumed[1].shards_cached == len(resumed[1].shards)

    # A fresh (non-resume) run retries the shard; with the driver
    # fixed, it completes and the record recovers.
    monkeypatch.undo()
    retried = run_suite(["FIG1", "TAB-SHRINK"], tier="smoke", store=store)
    assert retried[0].shards_quarantined == 0 and retried[0].record.passed


def test_resume_without_journal_is_a_fresh_run(tmp_path):
    # --resume on a cache that has no journal must not fail; it just
    # runs fresh (and leaves a journal for next time).
    store = ResultStore(tmp_path / "cache")
    runs = run_suite(["FIG1"], tier="smoke", store=store, resume=True)
    assert runs[0].record.passed and runs[0].run_id
    assert list_runs(store.root) == [runs[0].run_id]
