"""Tests for the baseline algorithms and the leader-election reduction."""

import pytest

from repro.baselines import (
    asymm_only_round_budget,
    elect_leader,
    make_asymm_only_algorithm,
    mean_meeting_time,
    random_walk_rendezvous,
    wait_for_mommy,
)
from repro.core import rendezvous
from repro.core.profile import TUNED
from repro.core.universal import UniversalOracle
from repro.graphs import (
    hypercube,
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    two_node_graph,
)
from repro.sim import run_rendezvous


class TestRandomWalk:
    def test_meets_on_ring(self):
        g = oriented_ring(6)
        out = random_walk_rendezvous(g, 0, 3, 0, seed=1, max_rounds=10**5)
        assert out.met

    def test_deterministic_per_seed(self):
        g = oriented_torus(3, 3)
        a = random_walk_rendezvous(g, 0, 4, 1, seed=7, max_rounds=10**5)
        b = random_walk_rendezvous(g, 0, 4, 1, seed=7, max_rounds=10**5)
        assert a == b

    def test_laziness_beats_parity(self):
        # Two-node graph with delta 0: non-lazy walks can never meet
        # (parity), lazy walks must.
        g = two_node_graph()
        lazy = random_walk_rendezvous(g, 0, 1, 0, seed=3, max_rounds=10**4)
        assert lazy.met
        nonlazy = random_walk_rendezvous(
            g, 0, 1, 0, seed=3, max_rounds=10**4, laziness=0.0
        )
        assert not nonlazy.met

    def test_mean_meeting_time_poly(self):
        # Section 5: expected meeting time is polynomial in n; sanity
        # check the mean stays below a generous n^3 multiple.
        g = oriented_ring(8)
        mean, failures = mean_meeting_time(g, 0, 4, 0, trials=30, seed=5)
        assert failures == 0
        assert mean < 8**3

    def test_laziness_validation(self):
        with pytest.raises(ValueError):
            random_walk_rendezvous(
                two_node_graph(), 0, 1, 0, seed=1, max_rounds=10, laziness=1.0
            )

    def test_mean_meeting_time_seed_determinism(self):
        # The LCG seed is threaded through every trial: a sweep is a
        # pure function of its arguments, run to run.
        g = oriented_ring(10)
        first = mean_meeting_time(g, 0, 5, 2, trials=25, seed=77)
        second = mean_meeting_time(g, 0, 5, 2, trials=25, seed=77)
        assert first == second
        assert mean_meeting_time(g, 0, 5, 2, trials=25, seed=78) != first

    def test_mean_meeting_time_requires_seed(self):
        with pytest.raises(TypeError):
            mean_meeting_time(oriented_ring(6), 0, 3, 0, trials=3)


class TestWaitForMommy:
    def test_leader_finds_waiter(self):
        g = oriented_torus(3, 3)
        out = wait_for_mommy(g, 0, 5, 0, TUNED.uxs(9))
        assert out.met
        assert out.leader_steps is not None

    def test_delay_accounting_leader_earlier(self):
        g = oriented_ring(6)
        out = wait_for_mommy(g, 0, 1, 4, TUNED.uxs(6))
        assert out.met
        # leader reaches node 1 quickly but must wait for the waiter to
        # appear: meeting at the waiter's start or later.
        assert out.meeting_time >= 4

    def test_waiter_earlier(self):
        g = oriented_ring(6)
        out = wait_for_mommy(g, 0, 3, 2, TUNED.uxs(6), leader_is_earlier=False)
        assert out.met

    def test_mommy_beats_universal_by_construction(self):
        g = hypercube(3)
        mommy = wait_for_mommy(g, 0, 5, 1, TUNED.uxs(8))
        assert mommy.met
        # With symmetry pre-broken one exploration suffices — bounded by
        # the UXS application length.
        assert mommy.time_from_later <= 2 * (len(TUNED.uxs(8)) + 2)


class TestAsymmOnly:
    def test_meets_nonsymmetric(self):
        g = path_graph(3)
        algorithm = make_asymm_only_algorithm(TUNED)
        oracles = (UniversalOracle(g, 0, TUNED), UniversalOracle(g, 2, TUNED))
        budget = asymm_only_round_budget(TUNED, 3, 1)
        result = run_rendezvous(
            g, 0, 2, 1, algorithm, max_rounds=budget + 2, oracles=oracles
        )
        assert result.met
        assert result.time_from_later <= budget

    def test_never_meets_infeasible_symmetric(self):
        # On an infeasible STIC (delta < Shrink) no algorithm can meet;
        # the variant offers no guarantee on *feasible* symmetric STICs
        # either, but may meet accidentally there, so the hard check is
        # only valid below Shrink.
        g = oriented_ring(4)
        algorithm = make_asymm_only_algorithm(TUNED)
        oracles = (UniversalOracle(g, 0, TUNED), UniversalOracle(g, 2, TUNED))
        result = run_rendezvous(
            g, 0, 2, 1, algorithm, max_rounds=100_000, oracles=oracles
        )
        assert not result.met

    def test_budget_polynomial_growth(self):
        # Section 4: the variant is polynomial in n and delta.  Check
        # the budget grows like a polynomial: doubling n must not
        # square the budget more than ~n^8-ish (crude sanity).
        b4 = asymm_only_round_budget(TUNED, 4, 0)
        b8 = asymm_only_round_budget(TUNED, 8, 0)
        assert b8 / b4 < (8 / 4) ** 10


class TestLeaderElection:
    def test_elects_exactly_one_leader(self):
        result = rendezvous(two_node_graph(), 0, 1, 1, record_traces=True)
        election = elect_leader(result)
        assert election.leader in (0, 1)

    def test_deterministic(self):
        result = rendezvous(path_graph(3), 0, 2, 0, record_traces=True)
        assert elect_leader(result) == elect_leader(result)

    def test_requires_traces(self):
        result = rendezvous(two_node_graph(), 0, 1, 1)
        with pytest.raises(ValueError, match="record_traces"):
            elect_leader(result)

    def test_requires_meeting(self):
        result = rendezvous(
            two_node_graph(), 0, 1, 0, max_rounds=100, record_traces=True
        )
        with pytest.raises(ValueError, match="successful"):
            elect_leader(result)

    def test_across_instances(self):
        for graph, u, v, delta in [
            (path_graph(4), 0, 3, 1),
            (star_graph(3), 1, 3, 0),
            (oriented_ring(4), 0, 1, 1),
        ]:
            result = rendezvous(graph, u, v, delta, record_traces=True)
            assert result.met
            election = elect_leader(result)
            assert election.rule in ("larger-port", "mover", "earlier-start")
