"""Edge cases of the leader-election reduction."""


from repro.baselines.leader_election import Election, elect_leader
from repro.graphs import path_graph, two_node_graph
from repro.sim import Move, run_rendezvous, wait_forever


class TestTieBreakRules:
    def test_earlier_start_rule(self):
        # Meeting exactly at the later agent's wake-up: the later agent
        # has no history at all, so the earlier one leads.
        def algorithm(percept):
            if percept.degree == 1 and percept.clock == 0:
                percept = yield Move(0)
            yield from wait_forever(percept)

        g = path_graph(3)
        result = run_rendezvous(
            g, 0, 1, 5, algorithm, max_rounds=20, record_traces=True
        )
        assert result.met and result.meeting_time == 5
        election = elect_leader(result)
        assert election == Election(leader=0, decided_at=4, rule="earlier-start")

    def test_mover_rule(self):
        # One agent walks into the other's waiting position.
        def algorithm(percept):
            if percept.degree == 2:
                yield from wait_forever(percept)
            percept = yield Move(0)
            yield from wait_forever(percept)

        g = path_graph(3)
        result = run_rendezvous(
            g, 0, 1, 0, algorithm, max_rounds=20, record_traces=True
        )
        assert result.met
        election = elect_leader(result)
        assert election.rule == "mover"
        assert election.leader == 0  # the endpoint agent moved in

    def test_larger_port_rule(self):
        # Both agents move into the meeting node in the same round by
        # different ports: P3 ends both step inward.
        def algorithm(percept):
            percept = yield Move(0)
            yield from wait_forever(percept)

        g = path_graph(3)
        result = run_rendezvous(
            g, 0, 2, 0, algorithm, max_rounds=20, record_traces=True
        )
        assert result.met and result.meeting_node == 1
        election = elect_leader(result)
        assert election.rule == "larger-port"
        # agent 1 entered by port 1 (> port 0): it leads.
        assert election.leader == 1

    def test_election_value_object(self):
        e = Election(leader=1, decided_at=3, rule="mover")
        assert e.leader == 1 and "mover" in repr(e)

    def test_same_round_same_port_impossible(self):
        # Sanity: on the two-node graph with odd delay, the meeting is
        # always decided (never falls through to the impossible case).
        def algorithm(percept):
            while True:
                percept = yield Move(0)

        for delta in (1, 3, 5):
            result = run_rendezvous(
                two_node_graph(), 0, 1, delta, algorithm,
                max_rounds=50, record_traces=True,
            )
            assert result.met
            elect_leader(result)  # must not raise
