"""``repro campaign`` CLI: list/run/replay round trips, artifact
writing on failure, and the runner's subcommand dispatch."""

import json

import pytest

import repro.campaigns.checks as checks_module
import repro.campaigns.cli as cli_module
from repro.campaigns.cli import main as campaign_main
from repro.campaigns.registry import make_campaign
from repro.experiments.runner import main as runner_main

MINI = make_campaign(
    "mini-cli",
    title="CLI-test campaign",
    tiers={
        "smoke": {
            "families": [
                {"family": "oriented_ring", "rungs": [{"n": 5}]},
                {"family": "random_tree", "rungs": [{"n": 6}]},
            ],
            "checks": ["differential/uxs-cover", "statistical/meeting-time"],
            "seeds_per_cell": 1,
            "knobs": {"max_pairs": 3},
        }
    },
)


@pytest.fixture
def mini_registry(monkeypatch):
    registry = {"mini-cli": MINI}
    monkeypatch.setattr(cli_module, "CAMPAIGNS", registry)
    import repro.campaigns.registry as registry_module

    monkeypatch.setattr(registry_module, "CAMPAIGNS", registry)
    return registry


def test_list_prints_campaigns_and_checks(capsys):
    assert campaign_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "core" in out and "random" in out
    assert "differential/stic-sweep" in out
    assert "metamorphic/node-relabel" in out


def test_run_clean_campaign_exits_zero(tmp_path, capsys, mini_registry):
    code = campaign_main(
        [
            "run",
            "mini-cli",
            "--tier",
            "smoke",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--artifacts",
            str(tmp_path / "artifacts"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "failures=0" in out
    assert "CAMPAIGN/mini-cli" in out
    # A clean run writes no artifacts.
    assert not (tmp_path / "artifacts").exists()
    # Warm re-run: pure cache hit.
    code = campaign_main(
        [
            "run",
            "mini-cli",
            "--tier",
            "smoke",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--artifacts",
            str(tmp_path / "artifacts"),
        ]
    )
    assert code == 0
    assert "recomputed=0" in capsys.readouterr().out


def test_run_writes_artifacts_and_replay_reproduces(
    tmp_path, capsys, monkeypatch, mini_registry
):
    artifacts_dir = tmp_path / "artifacts"
    with monkeypatch.context() as patch:
        patch.setattr(
            checks_module, "is_uxs_for_graph_vectorized", lambda graph, seq: True
        )
        code = campaign_main(
            [
                "run",
                "mini-cli",
                "--no-cache",
                "--artifacts",
                str(artifacts_dir),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED cell differential/uxs-cover" in out
        paths = sorted(artifacts_dir.glob("replay-*.json"))
        assert paths
        # Replay while the bug is live: reproduces, exit 1.
        assert campaign_main(["replay", str(paths[0])]) == 1
        assert "FAILED (reproduced)" in capsys.readouterr().out
    # Bug reverted: the artifact no longer fails, exit 0.
    assert campaign_main(["replay", str(paths[0])]) == 0
    assert "no longer reproduces" in capsys.readouterr().out


def test_replay_rejects_bad_artifacts(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert campaign_main(["replay", str(missing)]) == 2
    invalid = tmp_path / "invalid.json"
    invalid.write_text(json.dumps({"check": "differential/uxs-cover"}))
    assert campaign_main(["replay", str(invalid)]) == 2
    err = capsys.readouterr().err
    assert "cannot load artifact" in err


def test_run_unknown_campaign_exits_two(capsys):
    assert campaign_main(["run", "nope"]) == 2
    assert "unknown campaign" in capsys.readouterr().err


def test_runner_dispatches_campaign_subcommand(capsys):
    assert runner_main(["campaign", "list"]) == 0
    out = capsys.readouterr().out
    assert "campaign" in out and "checks" in out


def test_status_shows_completed_ledger(tmp_path, capsys, mini_registry):
    cache = str(tmp_path / "cache")
    code = campaign_main(
        ["run", "mini-cli", "--tier", "smoke", "--cache-dir", cache,
         "--artifacts", str(tmp_path / "artifacts")]
    )
    out = capsys.readouterr().out
    assert code == 0
    run_id = next(
        word for word in out.split() if word.startswith("run-")
    )
    assert campaign_main(["status", run_id, "--cache-dir", cache]) == 0
    status_out = capsys.readouterr().out
    assert f"run {run_id}" in status_out
    assert "CAMPAIGN/mini-cli" in status_out
    assert "0 leased, 0 quarantined, 0 pending" in status_out


def test_status_unknown_run_exits_two(tmp_path, capsys):
    code = campaign_main(
        ["status", "run-doesnotexist", "--cache-dir", str(tmp_path / "c")]
    )
    assert code == 2
    assert "no journal" in capsys.readouterr().err


def test_resume_recomputes_nothing_completed(tmp_path, capsys, mini_registry):
    cache = str(tmp_path / "cache")
    base = ["run", "mini-cli", "--tier", "smoke", "--cache-dir", cache,
            "--artifacts", str(tmp_path / "artifacts")]
    assert campaign_main(base) == 0
    capsys.readouterr()
    # --resume re-attaches to the journaled run: everything completed.
    assert campaign_main(base + ["--resume"]) == 0
    assert "recomputed=0" in capsys.readouterr().out


def test_resume_conflicts_with_no_cache(tmp_path, capsys, mini_registry):
    code = campaign_main(
        ["run", "mini-cli", "--tier", "smoke", "--no-cache", "--resume"]
    )
    assert code == 2
    assert "--resume needs the journal" in capsys.readouterr().err
