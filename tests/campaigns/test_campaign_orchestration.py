"""Campaigns through the real orchestrator: sharding, caching, and the
acceptance envelope (family/check-kind coverage, warm-cache identity,
parallel identity)."""

import pytest

from repro.campaigns.checks import CHECKS
from repro.campaigns.driver import make_shards
from repro.campaigns.registry import CAMPAIGNS, get_campaign, make_campaign
from repro.experiments.orchestrator import run_experiment, run_suite, shard_status
from repro.experiments.scenarios import GRAPH_FAMILIES
from repro.experiments.store import ResultStore

#: A miniature campaign for orchestration tests: real grid mechanics,
#: seconds-scale runtime.
MINI = make_campaign(
    "mini",
    title="orchestration-test campaign",
    tiers={
        "smoke": {
            "families": [
                {"family": "oriented_ring", "rungs": [{"n": 5}]},
                {"family": "random_tree", "rungs": [{"n": 6}]},
            ],
            "checks": [
                "differential/symmetry-kernel",
                "metamorphic/node-relabel",
                "statistical/meeting-time",
            ],
            "seeds_per_cell": 1,
            "knobs": {"max_pairs": 3},
        }
    },
)


class TestRegistry:
    def test_builtin_campaigns_resolve(self):
        for name in CAMPAIGNS:
            spec = get_campaign(name)
            assert spec.exp_id == f"CAMPAIGN/{name}"
            assert spec.module == "repro.campaigns.driver"
        assert get_campaign("CAMPAIGN/core") is CAMPAIGNS["core"]

    def test_unknown_campaign(self):
        with pytest.raises(KeyError, match="unknown campaign"):
            get_campaign("nope")

    def test_smoke_grid_meets_acceptance_envelope(self):
        """The smoke tier must span >= 6 graph families (including
        random and Cayley constructions) and >= 3 check kinds."""
        spec = CAMPAIGNS["core"]
        params = spec.tiers["smoke"]
        families = {fam["family"] for fam in params["families"]}
        assert len(families) >= 6
        assert {"random_tree", "random_connected", "random_regular"} <= families
        assert families & {"cayley_abelian", "circulant"}
        kinds = {CHECKS[c].kind for c in params["checks"]}
        assert kinds >= {"differential", "metamorphic", "statistical"}

    def test_all_grid_families_are_registered(self):
        for spec in CAMPAIGNS.values():
            for params in spec.tiers.values():
                for fam in params["families"]:
                    assert fam["family"] in GRAPH_FAMILIES


class TestOrchestration:
    def test_off_registry_spec_runs_and_caches(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        cold = run_experiment(MINI, tier="smoke", store=store)
        assert cold.record.passed is True
        assert cold.shards_computed == len(cold.shards) == 6
        warm = run_experiment(MINI, tier="smoke", store=store)
        assert warm.shards_computed == 0  # pure cache hit
        assert warm.record == cold.record

    def test_parallel_run_is_bit_identical(self, tmp_path):
        serial = run_experiment(MINI, tier="smoke")
        parallel = run_experiment(MINI, tier="smoke", jobs=2)
        assert parallel.record == serial.record

    def test_mixed_selection_with_registry_ids(self, tmp_path):
        runs = run_suite(["FIG1", MINI], tier="smoke")
        assert [run.config.exp_id for run in runs] == ["FIG1", "CAMPAIGN/mini"]
        assert all(run.record.passed for run in runs)

    def test_shard_results_exposed_on_outcomes(self):
        run = run_experiment(MINI, tier="smoke")
        for outcome in run.shards:
            assert outcome.result is not None
            assert outcome.result["ok"] is True
            assert outcome.result["failures"] == []

    def test_shard_status_accepts_specs(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        rows = shard_status([MINI], tier="smoke", seed=None, store=store)
        assert rows == [("CAMPAIGN/mini", 0, 6)]
        run_experiment(MINI, tier="smoke", store=store)
        rows = shard_status([MINI], tier="smoke", seed=None, store=store)
        assert rows == [("CAMPAIGN/mini", 6, 6)]

    def test_seed_override_invalidates_cache(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        run_experiment(MINI, tier="smoke", store=store)
        reseeded = run_experiment(MINI, tier="smoke", seed=99, store=store)
        assert reseeded.shards_computed == len(reseeded.shards)


@pytest.mark.slow
class TestFullSmokeTier:
    def test_core_smoke_campaign_is_clean(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = CAMPAIGNS["core"]
        cold = run_experiment(spec, tier="smoke", jobs=2, store=store)
        assert cold.record.passed, cold.record.measured_summary
        assert len(cold.shards) == len(make_shards(spec.config("smoke")))
        warm = run_experiment(spec, tier="smoke", jobs=2, store=store)
        assert warm.shards_computed == 0
        assert warm.record == cold.record
