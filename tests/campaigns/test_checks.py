"""The check library on healthy engines: every oracle passes on a
mixed structured/Cayley/random family sample, deterministically."""

import pytest

from repro.campaigns.checks import CHECK_KINDS, CHECKS, run_check

SPECS = [
    {"family": "oriented_ring", "n": 6},
    {"family": "symmetric_tree", "arity": 2, "depth": 2},
    {"family": "circulant", "n": 8, "steps": [1, 3]},
    {"family": "random_tree", "n": 7, "seed": 3},
    {"family": "random_connected", "n": 7, "extra_edges": 3, "seed": 5},
    {"family": "random_regular", "n": 8, "degree": 3, "seed": 2},
]


def test_registry_shape():
    assert set(CHECK_KINDS) == {"differential", "metamorphic", "statistical"}
    assert len(CHECKS) >= 6
    for check_id, check in CHECKS.items():
        assert check.check_id == check_id
        assert check.kind in CHECK_KINDS


@pytest.mark.parametrize("check_id", sorted(CHECKS))
@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s["family"])
def test_check_passes_on_healthy_engines(check_id, spec):
    result = run_check(check_id, spec, seed=11, knobs={})
    assert result.ok, (check_id, spec, result.detail)
    assert result.comparisons > 0  # never a vacuous pass
    assert result.detail is None


def test_checks_are_deterministic():
    spec = {"family": "random_connected", "n": 7, "extra_edges": 3, "seed": 9}
    for check_id in CHECKS:
        a = run_check(check_id, spec, seed=4, knobs={})
        b = run_check(check_id, spec, seed=4, knobs={})
        assert a == b


def test_knobs_bound_the_sampling():
    spec = {"family": "oriented_ring", "n": 6}
    small = run_check("differential/stic-sweep", spec, 0, {"max_pairs": 2})
    large = run_check("differential/stic-sweep", spec, 0, {"max_pairs": 8})
    assert small.summary["stics"] == 2
    assert large.summary["stics"] == 8


def test_unknown_check_rejected():
    with pytest.raises(KeyError, match="unknown check"):
        run_check("differential/nope", {"family": "two_node"}, 0, {})


def test_result_json_shape():
    result = run_check(
        "statistical/meeting-time", {"family": "oriented_ring", "n": 5}, 1, {}
    )
    payload = result.to_json_dict()
    assert payload["ok"] is True
    assert isinstance(payload["summary"], dict)
    assert "met_rate" in payload["summary"]
