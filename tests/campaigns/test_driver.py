"""Campaign driver unit tests: grid expansion, seed threading, spec
resolution, and record merging."""

import pytest

from repro.campaigns.driver import (
    cell_seed,
    make_shards,
    merge,
    resolve_graph_spec,
    run_shard,
)
from repro.experiments.scenarios import RunConfig


def _config(**overrides):
    params = {
        "families": [
            {"family": "oriented_ring", "rungs": [{"n": 5}, {"n": 8}]},
            {"family": "random_tree", "rungs": [{"n": 6}]},
        ],
        "checks": ["differential/symmetry-kernel", "metamorphic/port-relabel"],
        "seeds_per_cell": 2,
        "knobs": {},
    }
    params.update(overrides)
    return RunConfig(exp_id="CAMPAIGN/t", tier="smoke", seed=0, params=params)


class TestMakeShards:
    def test_grid_order_and_shape(self):
        shards = make_shards(_config())
        # (2 + 1 rungs) x 2 checks, family-major, rung-minor, check-last.
        assert len(shards) == 6
        assert shards[0] == {
            "family": "oriented_ring",
            "rung_index": 0,
            "rung": {"n": 5},
            "check": "differential/symmetry-kernel",
        }
        assert [s["family"] for s in shards] == ["oriented_ring"] * 4 + [
            "random_tree"
        ] * 2

    def test_unknown_family_rejected_up_front(self):
        with pytest.raises(KeyError, match="unknown graph family"):
            make_shards(
                _config(families=[{"family": "klein_bottle", "rungs": [{}]}])
            )

    def test_unknown_check_rejected_up_front(self):
        with pytest.raises(KeyError, match="unknown check"):
            make_shards(_config(checks=["differential/nope"]))


class TestSpecResolution:
    def test_seeded_family_gets_injected_seed(self):
        seed = cell_seed("CAMPAIGN/t", "random_tree", {"n": 6}, 0, 1)
        spec = resolve_graph_spec("random_tree", {"n": 6}, seed)
        assert spec == {"family": "random_tree", "n": 6, "seed": seed}

    def test_structured_family_untouched(self):
        spec = resolve_graph_spec("oriented_ring", {"n": 5}, 12345)
        assert spec == {"family": "oriented_ring", "n": 5}

    def test_rung_must_not_pin_seed(self):
        with pytest.raises(ValueError, match="must not pin 'seed'"):
            resolve_graph_spec("random_tree", {"n": 6, "seed": 1}, 2)

    def test_cell_seeds_differ_across_axes(self):
        base = cell_seed("CAMPAIGN/t", "random_tree", {"n": 6}, 0, 0)
        assert base != cell_seed("CAMPAIGN/u", "random_tree", {"n": 6}, 0, 0)
        assert base != cell_seed("CAMPAIGN/t", "random_tree", {"n": 7}, 0, 0)
        assert base != cell_seed("CAMPAIGN/t", "random_tree", {"n": 6}, 1, 0)
        assert base != cell_seed("CAMPAIGN/t", "random_tree", {"n": 6}, 0, 1)


class TestRunShardAndMerge:
    def test_healthy_shard_payload(self):
        config = _config()
        shard = make_shards(config)[0]
        result = run_shard(config, shard)
        assert result["ok"] is True
        assert result["instances"] == 2
        assert result["comparisons"] > 0
        assert result["failures"] == []

    def test_merge_aggregates_and_passes(self):
        config = _config()
        shards = make_shards(config)
        results = [run_shard(config, shard) for shard in shards]
        record = merge(config, results)
        assert record.passed is True
        assert record.exp_id == "CAMPAIGN/t"
        assert len(record.rows) == len(shards)
        assert all(row["verdict"] == "ok" for row in record.rows)
        assert "differential" in record.notes and "metamorphic" in record.notes

    def test_merge_flags_failures(self):
        config = _config()
        shards = make_shards(config)
        results = [run_shard(config, shard) for shard in shards]
        results[0] = dict(
            results[0], ok=False, failures=[{"check": results[0]["check"]}]
        )
        record = merge(config, results)
        assert record.passed is False
        assert record.rows[0]["verdict"] == "FAIL"
