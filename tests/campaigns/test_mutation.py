"""Mutation tests: deliberately broken engines must be *caught* by a
differential check and *shrunk* to a replay artifact that reproduces
the failure exactly — the acceptance contract of the campaign layer.

Each test injects one bug (a lying UXS certifier, an off-by-one batch
meeting solver, a corrupted symmetry-kernel witness), runs a small
two-rung campaign, and asserts: the campaign fails, the larger rung's
failure shrinks to the smallest rung, and the artifact replays to the
same failure while the bug is live — then passes once it is reverted.
"""


import repro.campaigns.checks as checks_module
import repro.sim.batch as batch_module
from repro.campaigns.artifacts import load_artifact, replay_artifact, write_artifact
from repro.campaigns.registry import make_campaign
from repro.experiments.orchestrator import run_experiment
from repro.symmetry.context import SymmetryContext


def _campaign(check_id):
    return make_campaign(
        "mutation-probe",
        title="mutation probe",
        tiers={
            "smoke": {
                "families": [
                    {
                        "family": "random_connected",
                        "rungs": [
                            {"n": 5, "extra_edges": 2},
                            {"n": 8, "extra_edges": 4},
                        ],
                    }
                ],
                "checks": [check_id],
                "seeds_per_cell": 2,
                "knobs": {},
            }
        },
    )


def _failing_artifacts(run):
    return [
        artifact
        for outcome in run.shards
        for artifact in (outcome.result or {}).get("failures", [])
    ]


def _assert_caught_shrunk_and_replayable(check_id, tmp_path, monkeypatch, mutate):
    spec = _campaign(check_id)
    with monkeypatch.context() as patch:
        mutate(patch)
        run = run_experiment(spec, tier="smoke")
        assert run.record.passed is False
        artifacts = _failing_artifacts(run)
        assert len(artifacts) == 2  # both rungs fail independently
        # The larger rung's failure shrank to the smallest rung: its
        # artifact records the shrink origin and a rung-0 graph spec.
        larger = next(a for a in artifacts if "shrunk_from" in a)
        assert larger["shrunk_from"] == {"rung_index": 1, "seed_index": 0}
        assert larger["rung"] == {"n": 5, "extra_edges": 2}
        assert larger["graph_spec"]["n"] == 5
        assert larger["check"] == check_id
        assert larger["detail"]
        # ...and the artifact reproduces the failure while the bug lives.
        path = write_artifact(larger, tmp_path / "artifacts")
        replayed = replay_artifact(load_artifact(path))
        assert replayed.ok is False
        assert replayed.detail == larger["detail"]
    # Bug reverted: the same artifact now passes (the failure is the
    # engine's, not the harness's).
    assert replay_artifact(load_artifact(path)).ok is True


def test_lying_uxs_certifier_is_caught(tmp_path, monkeypatch):
    def mutate(patch):
        patch.setattr(
            checks_module, "is_uxs_for_graph_vectorized", lambda graph, seq: True
        )

    _assert_caught_shrunk_and_replayable(
        "differential/uxs-cover", tmp_path, monkeypatch, mutate
    )


def test_off_by_one_batch_meeting_solver_is_caught(tmp_path, monkeypatch):
    original = batch_module._solve_meeting

    def skewed(trace_a, trace_b, delta, limit):
        hit = original(trace_a, trace_b, delta, limit)
        if hit is None:
            return None
        t, node = hit
        return t + 1, node

    def mutate(patch):
        patch.setattr(batch_module, "_solve_meeting", skewed)

    _assert_caught_shrunk_and_replayable(
        "differential/stic-sweep", tmp_path, monkeypatch, mutate
    )


def test_corrupted_symmetry_witness_is_caught(tmp_path, monkeypatch):
    original = SymmetryContext.shrink_witness

    def corrupted(self, u, v):
        value, alpha, pair = original(self, u, v)
        # Drop the last witness step: the pair claim no longer holds.
        return value, alpha[:-1] if alpha else alpha, pair

    def mutate(patch):
        patch.setattr(SymmetryContext, "shrink_witness", corrupted)

    _assert_caught_shrunk_and_replayable(
        "differential/symmetry-kernel", tmp_path, monkeypatch, mutate
    )


def test_off_by_one_blocked_bfs_is_caught(tmp_path, monkeypatch):
    """An off-by-one in the frontier-compressed multi-source BFS — the
    engine every blocked distance/Shrink path rides on — must be caught
    by the sparse-symmetry differential, shrunk, and replayed."""
    original = SymmetryContext._bfs_block

    def skewed(self, sources):
        dist = original(self, sources)
        dist[dist > 0] += 1  # every non-source level lands one step late
        return dist

    def mutate(patch):
        patch.setattr(SymmetryContext, "_bfs_block", skewed)

    _assert_caught_shrunk_and_replayable(
        "differential/sparse-symmetry", tmp_path, monkeypatch, mutate
    )


def test_crashing_engine_is_caught_not_propagated(tmp_path, monkeypatch):
    """An engine that *raises* instead of answering wrong is still a
    failing verdict: the campaign completes, the cell shrinks, and the
    artifact replays — no traceback escapes to kill the grid."""

    def exploding(graph, seq):
        raise RuntimeError("engine blew up")

    def mutate(patch):
        patch.setattr(checks_module, "is_uxs_for_graph_vectorized", exploding)

    spec = _campaign("differential/uxs-cover")
    with monkeypatch.context() as patch:
        mutate(patch)
        run = run_experiment(spec, tier="smoke")  # must not raise
        assert run.record.passed is False
        artifacts = _failing_artifacts(run)
        assert len(artifacts) == 2
        larger = next(a for a in artifacts if "shrunk_from" in a)
        assert "RuntimeError: engine blew up" in larger["detail"]
        path = write_artifact(larger, tmp_path / "artifacts")
        replayed = replay_artifact(load_artifact(path))
        assert replayed.ok is False
        assert replayed.detail == larger["detail"]
    assert replay_artifact(load_artifact(path)).ok is True


def test_healthy_engines_produce_no_artifacts():
    run = run_experiment(_campaign("differential/uxs-cover"), tier="smoke")
    assert run.record.passed is True
    assert _failing_artifacts(run) == []


def test_skewed_word_batch_is_caught(tmp_path, monkeypatch):
    original = checks_module.simulate_word_batch

    def skewed(graph, word, u, starts, delta, max_rounds):
        return [
            None if m is None else m + 1
            for m in original(graph, word, u, starts, delta, max_rounds)
        ]

    def mutate(patch):
        patch.setattr(checks_module, "simulate_word_batch", skewed)

    _assert_caught_shrunk_and_replayable(
        "differential/hardness-word", tmp_path, monkeypatch, mutate
    )


def test_start_dependent_coverage_miscount_is_caught(tmp_path, monkeypatch):
    """A coverage kernel that miscounts for one start id breaks the
    node-permutation equivariance the metamorphic check asserts."""
    original = checks_module.covered_counts

    def miscounting(graph, seq, **kwargs):
        counts = original(graph, seq, **kwargs).copy()
        if counts[0] > 1:
            counts[0] -= 1
        return counts

    def mutate(patch):
        patch.setattr(checks_module, "covered_counts", miscounting)

    _assert_caught_shrunk_and_replayable(
        "metamorphic/uxs-relabel", tmp_path, monkeypatch, mutate
    )
