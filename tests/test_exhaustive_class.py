"""Exhaustive verification of Corollary 3.1 over a whole graph class.

For *every* connected port-labeled graph on 3 named nodes (14 of
them), every pair of starting nodes, and every delay up to a cap:
UniversalRV meets exactly when the characterization says the STIC is
feasible.  This covers the complete space of tiny instances — no
cherry-picking — and exercises every code path (symmetric boundary,
slack delays, non-symmetric pairs, infeasible pairs).

A sampled version runs over the 2568-member class of 4-node graphs
(marked slow).
"""

import pytest

from repro.core import rendezvous
from repro.core.stic import enumerate_stics
from repro.graphs.enumeration import enumerate_port_labeled_graphs
from repro.util.lcg import SplitMix64

INFEASIBLE_HORIZON = 25_000
MAX_DELTA = 2


@pytest.mark.parametrize("graph_idx", range(14))
def test_corollary31_all_3node_graphs(graph_idx):
    graph = list(enumerate_port_labeled_graphs(3))[graph_idx]
    for stic, verdict in enumerate_stics(graph, MAX_DELTA):
        if verdict.feasible:
            result = rendezvous(graph, stic.u, stic.v, stic.delta)
            assert result.met, (graph.edges, stic, verdict.reason)
        else:
            result = rendezvous(
                graph, stic.u, stic.v, stic.delta, max_rounds=INFEASIBLE_HORIZON
            )
            assert not result.met, (graph.edges, stic, verdict.reason)


@pytest.mark.slow
def test_corollary31_sampled_4node_graphs():
    graphs = list(enumerate_port_labeled_graphs(4))
    rng = SplitMix64(2024)
    sample = [graphs[rng.randrange(len(graphs))] for _ in range(25)]
    for graph in sample:
        for stic, verdict in enumerate_stics(graph, 1):
            if verdict.feasible:
                result = rendezvous(graph, stic.u, stic.v, stic.delta)
                assert result.met, (graph.edges, stic)
            else:
                result = rendezvous(
                    graph, stic.u, stic.v, stic.delta, max_rounds=INFEASIBLE_HORIZON
                )
                assert not result.met, (graph.edges, stic)
