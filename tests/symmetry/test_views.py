"""Unit tests for views and node symmetry."""

import pytest

from repro.graphs import (
    complete_graph,
    hypercube,
    labeled_ring,
    mirror_node,
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    symmetric_tree,
    two_node_graph,
)
from repro.symmetry import (
    are_symmetric,
    symmetric_pairs,
    truncated_view,
    view_classes,
    view_signature,
)


class TestTruncatedView:
    def test_depth_zero_is_degree(self):
        g = path_graph(3)
        assert truncated_view(g, 0, 0) == (1, None)
        assert truncated_view(g, 1, 0) == (2, None)

    def test_depth_one_records_ports(self):
        g = path_graph(3)
        # End 0: single port 0 into node 1, entering by port 0.
        assert truncated_view(g, 0, 1) == (1, ((0, 0, (2, None)),))
        # End 2: enters node 1 by port 1 -> different view.
        assert truncated_view(g, 2, 1) == (1, ((0, 1, (2, None)),))

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            truncated_view(path_graph(3), 0, -1)

    def test_symmetric_nodes_equal_views_all_depths(self):
        g = oriented_ring(5)
        for depth in range(5):
            assert truncated_view(g, 0, depth) == truncated_view(g, 3, depth)

    def test_nonsymmetric_nodes_differ_by_depth_n(self):
        g = path_graph(4)
        n = g.n
        assert truncated_view(g, 0, n - 1) != truncated_view(g, 3, n - 1)


class TestViewClasses:
    def test_vertex_transitive_families_single_class(self):
        for g in (
            oriented_ring(7),
            oriented_torus(3, 4),
            hypercube(3),
            complete_graph(5),
            two_node_graph(),
        ):
            assert len(set(view_classes(g))) == 1, g

    def test_path_classes_mirror(self):
        # P3 with our labeling: middle is its own class; the two ends
        # differ (they enter the middle by different ports).
        g = path_graph(3)
        colors = view_classes(g)
        assert colors[0] != colors[2]
        assert colors[1] not in (colors[0], colors[2])

    def test_star_leaves_nonsymmetric(self):
        g = star_graph(3)
        colors = view_classes(g)
        assert len({colors[1], colors[2], colors[3]}) == 3

    def test_mirror_tree_pairs(self):
        arity, depth = 2, 2
        g = symmetric_tree(arity, depth)
        colors = view_classes(g)
        for v in range(g.n):
            assert colors[v] == colors[mirror_node(v, arity, depth)]

    def test_labeled_ring_can_break_symmetry(self):
        g = labeled_ring([(0, 1), (1, 0), (0, 1), (0, 1)])
        assert len(set(view_classes(g))) > 1

    def test_consistency_with_truncated_views(self):
        # Same class <=> equal truncated views at depth n - 1 (Norris).
        for g in (path_graph(4), star_graph(3), oriented_ring(6)):
            colors = view_classes(g)
            depth = g.n - 1
            for u in range(g.n):
                for v in range(u + 1, g.n):
                    same = truncated_view(g, u, depth) == truncated_view(g, v, depth)
                    assert same == (colors[u] == colors[v]), (g, u, v)


class TestSymmetricPairs:
    def test_ring_all_pairs(self):
        g = oriented_ring(4)
        assert len(symmetric_pairs(g)) == 6  # C(4,2)

    def test_path_no_pairs(self):
        assert symmetric_pairs(path_graph(3)) == []

    def test_are_symmetric_matches_pairs(self):
        g = symmetric_tree(2, 1)
        pairs = set(symmetric_pairs(g))
        for u in range(g.n):
            for v in range(u + 1, g.n):
                assert ((u, v) in pairs) == are_symmetric(g, u, v)


class TestViewSignature:
    def test_equal_iff_views_equal(self):
        g = oriented_ring(6)
        assert view_signature(g, 0, 5) == view_signature(g, 3, 5)
        p = path_graph(3)
        assert view_signature(p, 0, 2) != view_signature(p, 2, 2)

    def test_cross_graph_comparison(self):
        # A node of an oriented 6-ring and one of a 9-ring look the same
        # at depth 2 but not at higher depth... actually oriented rings
        # are locally identical at any depth below the girth difference;
        # check equality at small depth and use tori for inequality.
        a = oriented_ring(6)
        b = oriented_ring(9)
        assert view_signature(a, 0, 2) == view_signature(b, 0, 2)
        t = oriented_torus(3, 3)
        assert view_signature(a, 0, 1) != view_signature(t, 0, 1)
