"""Differential suite: the array kernel against the scalar references.

``SymmetryContext`` must be *bit-identical* to the retained scalar
implementations on every product it serves: canonical view colors
(``view_classes_reference``), all-pairs distances (per-source BFS),
``Shrink`` values (per-pair product-graph BFS), witnesses (same BFS,
same traversal order), symmetric pairs, and Corollary 3.1 verdicts.
Coverage: 200+ seeded random connected graphs of mixed sizes and
degrees, plus the exhaustive class of all port-labeled graphs on
``n <= 4`` nodes.
"""

import numpy as np
import pytest

from repro.graphs.enumeration import enumerate_port_labeled_graphs
from repro.graphs.families import (
    hypercube,
    oriented_ring,
    oriented_torus,
    symmetric_tree,
)
from repro.graphs.random_graphs import random_connected_graph, random_tree
from repro.symmetry.context import SymmetryContext, symmetry_context
from repro.symmetry.feasibility import classify_from_symmetry, classify_stic
from repro.symmetry.shrink import shrink_witness_reference
from repro.symmetry.views import view_classes, view_classes_reference


def random_pool():
    """216 seeded random connected graphs, mixed sizes and degrees."""
    graphs = []
    for n in (2, 3, 5, 6, 8, 10, 13):
        for extra in (0, 1, 3, 6):
            for seed in range(7):
                graphs.append(random_connected_graph(n, extra, seed=seed))
    for n in (4, 9):
        for seed in range(10):
            graphs.append(random_tree(n, seed=seed))
    return graphs


STRUCTURED = [
    oriented_ring(6),
    oriented_ring(9),
    oriented_torus(3, 4),
    oriented_torus(4, 4),
    hypercube(3),
    symmetric_tree(2, 2),
]


def reference_scalar_facts(graph):
    """Colors / pairs / shrink values straight from the retained
    scalar implementations (no kernel involvement)."""
    colors = view_classes_reference(graph)
    pairs = [
        (u, v)
        for u in range(graph.n)
        for v in range(u + 1, graph.n)
        if colors[u] == colors[v]
    ]
    shrink_values = {
        (u, v): shrink_witness_reference(graph, u, v)[0]
        for u in range(graph.n)
        for v in range(u + 1, graph.n)
    }
    return colors, pairs, shrink_values


def assert_context_matches(graph):
    context = SymmetryContext(graph)
    colors, pairs, shrink_values = reference_scalar_facts(graph)

    assert context.color_list() == colors
    assert view_classes(graph) == colors
    assert context.symmetric_pairs() == pairs

    reference_dist = np.stack(
        [graph.distances_from(v) for v in range(graph.n)]
    )
    assert np.array_equal(context.distances, reference_dist)

    for (u, v), s in shrink_values.items():
        assert context.shrink_value(u, v) == s, (graph, u, v)
        assert context.shrink_value(v, u) == s
        reference = shrink_witness_reference(graph, u, v)
        assert context.shrink_witness(u, v) == reference, (graph, u, v)
    for v in range(graph.n):
        assert context.shrink_value(v, v) == 0

    for u, v in pairs[:8] + [p for p in shrink_values if p not in pairs][:8]:
        symmetric = colors[u] == colors[v]
        for delta in (0, 1, shrink_values[(u, v)]):
            expected = classify_from_symmetry(
                symmetric, shrink_values[(u, v)] if symmetric else None, delta
            )
            assert classify_stic(graph, u, v, delta) == expected


@pytest.mark.parametrize("index", range(13))
def test_random_graphs_bit_identical(index):
    """>= 200 random graphs, sharded for parallel-friendly runtimes."""
    pool = random_pool()
    assert len(pool) >= 200
    for graph in pool[index::13]:
        assert_context_matches(graph)


@pytest.mark.parametrize("graph", STRUCTURED, ids=lambda g: repr(g))
def test_structured_families_bit_identical(graph):
    assert_context_matches(graph)


@pytest.mark.parametrize("n", [1, 2, 3])
def test_exhaustive_tiny_classes(n):
    for graph in enumerate_port_labeled_graphs(n):
        assert_context_matches(graph)


def test_exhaustive_n4_class():
    """All 2568 port-labeled graphs on 4 nodes: colors, Shrink, and
    verdicts agree with the scalar references everywhere."""
    count = 0
    for graph in enumerate_port_labeled_graphs(4):
        count += 1
        context = SymmetryContext(graph)
        colors, pairs, shrink_values = reference_scalar_facts(graph)
        assert context.color_list() == colors
        assert context.symmetric_pairs() == pairs
        for (u, v), s in shrink_values.items():
            assert context.shrink_value(u, v) == s
            symmetric = colors[u] == colors[v]
            for delta in (0, s):
                expected = classify_from_symmetry(
                    symmetric, s if symmetric else None, delta
                )
                assert context.verdict(u, v, delta) == expected
    assert count == 2568


def test_witness_is_valid_and_optimal():
    """Witness sequences are applicable at both nodes and realize the
    Shrink value (spot check on structured + random graphs)."""
    graphs = STRUCTURED + [random_connected_graph(8, 3, seed=s) for s in range(4)]
    for graph in graphs:
        context = symmetry_context(graph)
        for u, v in context.symmetric_pairs():
            value, alpha, (x, y) = context.shrink_witness(u, v)
            assert graph.apply_port_sequence(u, alpha) == x
            assert graph.apply_port_sequence(v, alpha) == y
            assert graph.distance(x, y) == value
            assert value == context.shrink_value(u, v)


def test_context_is_memoized_per_graph_value():
    g1 = oriented_ring(7)
    g2 = oriented_ring(7)
    assert symmetry_context(g1) is symmetry_context(g2)
    assert symmetry_context(g1) is not symmetry_context(oriented_ring(8))


def test_cached_arrays_are_read_only():
    """The kernel's shared arrays refuse in-place mutation (a silent
    write would poison every later wrapper call for that graph)."""
    context = symmetry_context(oriented_ring(6))
    with pytest.raises(ValueError):
        context.colors[0] = 99
    with pytest.raises(ValueError):
        context.distances[0, 0] = 99
    with pytest.raises(ValueError):
        context.shrink_all[0, 0] = 99
    # Masked/derived views stay caller-writable.
    context.shrink_matrix()[0, 0] = 99


def test_wide_frontier_distances_no_overflow():
    """Regression: a uint8 BFS accumulator wraps mod 256, so a node
    with 256 frontier in-neighbors was never marked reached."""
    from repro.graphs.port_graph import PortLabeledGraph

    edges = []
    for i in range(256):
        middle = 1 + i
        edges.append((0, i, middle, 0))
        edges.append((middle, 1, 257, i))
    graph = PortLabeledGraph(258, edges)
    context = SymmetryContext(graph)
    assert int(context.distances[0, 257]) == 2
    reference = np.stack(
        [graph.distances_from(v) for v in range(graph.n)]
    )
    assert np.array_equal(context.distances, reference)
