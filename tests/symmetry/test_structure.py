"""Tests for the symmetry-structure analysis extension."""

import numpy as np

from repro.graphs import (
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    symmetric_tree,
)
from repro.symmetry import (
    delay_profile,
    min_universal_delay,
    shrink_matrix,
    symmetry_orbits,
)


class TestShrinkMatrix:
    def test_ring(self):
        g = oriented_ring(5)
        m = shrink_matrix(g)
        assert m.shape == (5, 5)
        assert (np.diag(m) == 0).all()
        assert (m == m.T).all()
        for u in range(5):
            for v in range(5):
                if u != v:
                    assert m[u, v] == g.distance(u, v)

    def test_nonsymmetric_marked(self):
        g = path_graph(4)
        m = shrink_matrix(g)
        assert (m[0, 1:] == -1).all()  # no symmetric partner for an end


class TestOrbits:
    def test_vertex_transitive_single_orbit(self):
        assert symmetry_orbits(oriented_torus(3, 3)) == [list(range(9))]

    def test_star_orbits_are_singletons(self):
        orbits = symmetry_orbits(star_graph(3))
        assert sorted(len(o) for o in orbits) == [1, 1, 1, 1]

    def test_orbits_partition_nodes(self):
        g = symmetric_tree(2, 2)
        orbits = symmetry_orbits(g)
        flat = sorted(v for o in orbits for v in o)
        assert flat == list(range(g.n))
        assert all(len(o) % 2 == 0 for o in orbits)  # mirror pairing


class TestDelayProfile:
    def test_ring_profile(self):
        g = oriented_ring(6)
        profile = delay_profile(g)
        assert profile.max_shrink == 3  # antipodal pair
        assert profile.symmetric_pairs == profile.total_pairs == 15
        assert profile.hardest_pair in {(0, 3), (1, 4), (2, 5)}

    def test_tree_profile(self):
        g = symmetric_tree(2, 2)
        profile = delay_profile(g)
        assert profile.max_shrink == 1  # Shrink collapses on mirror trees
        assert profile.mean_shrink == 1.0

    def test_asymmetric_graph_needs_no_delay(self):
        g = star_graph(4)
        assert min_universal_delay(g) == 0
        profile = delay_profile(g)
        assert profile.symmetric_pairs == 0
        assert profile.hardest_pair is None

    def test_min_universal_delay_makes_everything_feasible(self):
        from repro.symmetry import is_feasible

        for g in (oriented_ring(5), oriented_torus(3, 3), symmetric_tree(2, 1)):
            delay = min_universal_delay(g)
            for u in range(g.n):
                for v in range(u + 1, g.n):
                    assert is_feasible(g, u, v, delay)
