"""Tests for quotient graphs and port-preserving automorphisms."""

from repro.graphs import (
    complete_graph,
    hypercube,
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    symmetric_tree,
    two_node_graph,
)
from repro.symmetry import view_classes
from repro.symmetry.quotient import port_automorphisms, quotient_graph


class TestQuotient:
    def test_vertex_transitive_collapses_to_point(self):
        for g in (oriented_ring(6), oriented_torus(3, 3), hypercube(3)):
            q = quotient_graph(g)
            assert q.classes == 1
            assert q.degree_of[0] == g.degree(0)

    def test_asymmetric_graph_is_its_own_quotient(self):
        g = star_graph(3)
        q = quotient_graph(g)
        assert q.is_trivial()
        assert q.classes == g.n

    def test_mirror_tree_halves(self):
        g = symmetric_tree(2, 1)
        q = quotient_graph(g)
        assert q.classes == g.n // 2  # each node merged with its mirror

    def test_transitions_consistent_with_graph(self):
        g = path_graph(4)
        q = quotient_graph(g)
        for v in range(g.n):
            c = q.color_of[v]
            for p in range(g.degree(v)):
                entry, target = q.transitions[c][p]
                assert entry == g.entry_port(v, p)
                assert target == q.color_of[g.succ(v, p)]


class TestAutomorphisms:
    def test_identity_always_present(self):
        for g in (path_graph(3), star_graph(3), oriented_ring(4)):
            autos = port_automorphisms(g)
            assert tuple(range(g.n)) in autos

    def test_oriented_ring_rotations(self):
        g = oriented_ring(5)
        autos = port_automorphisms(g)
        # exactly the 5 rotations (reflections break port orientation)
        assert len(autos) == 5
        for shift in range(5):
            assert tuple((v + shift) % 5 for v in range(5)) in autos

    def test_hypercube_translations(self):
        g = hypercube(3)
        autos = port_automorphisms(g)
        # XOR translations preserve dimension ports: at least 2^3 maps.
        assert len(autos) >= 8
        for mask in range(8):
            assert tuple(v ^ mask for v in range(8)) in autos

    def test_asymmetric_graph_rigid(self):
        assert port_automorphisms(star_graph(3)) == [tuple(range(4))]

    def test_automorphic_implies_symmetric(self):
        for g in (oriented_torus(3, 3), symmetric_tree(2, 1), complete_graph(4)):
            colors = view_classes(g)
            for phi in port_automorphisms(g):
                for v in range(g.n):
                    assert colors[v] == colors[phi[v]]

    def test_two_node_swap(self):
        autos = port_automorphisms(two_node_graph())
        assert (1, 0) in autos and (0, 1) in autos


class TestAlternatingRing:
    """The alternating-port 6-ring: a transitive instance whose
    symmetry comes from reflections + even rotations (dihedral-ish),
    exercising automorphisms beyond pure rotations."""

    def test_single_view_class(self):
        from repro.graphs import labeled_ring

        g = labeled_ring([(0, 1), (1, 0)] * 3)
        from repro.symmetry import view_classes

        assert len(set(view_classes(g))) == 1

    def test_automorphism_group_is_transitive(self):
        from repro.graphs import labeled_ring

        g = labeled_ring([(0, 1), (1, 0)] * 3)
        autos = port_automorphisms(g)
        assert len(autos) == 6
        images_of_0 = {phi[0] for phi in autos}
        assert images_of_0 == set(range(6))
