"""Differential suite: the sparse/blocked kernel paths vs the dense
kernel and the scalar references.

Every blocked engine must be *bit-identical* to its dense counterpart:
``distances_block`` / the CSR ``distances_from`` BFS vs the scalar
reference BFS, ``shrink_pairs`` / ``shrink_block`` / ``shrink_all_into``
(any block size, including a memory-mapped output) vs the dense
all-pairs matrix, the color-bucketed ``symmetric_pairs``/``orbits`` vs
the dense-mask construction, and the streamed consumers
(``shrink_matrix``, ``enumerate_stics``, ``empirical_feasibility_atlas``,
``covered_counts``) vs their one-shot forms.  Coverage: 200+ seeded
random connected graphs of mixed sizes and degrees, plus the exhaustive
class of all port-labeled graphs on ``n <= 4`` nodes.

The byte-aware context-cache LRU (:func:`set_context_cache_limit`) is
unit-tested here too: eviction accounting, lazy-growth re-enforcement,
and the most-recently-served survivor guarantee.
"""

import numpy as np
import pytest

import repro.symmetry.context as context_module
from repro.core.stic import enumerate_stics
from repro.exec.uxs import covered_counts
from repro.graphs.enumeration import enumerate_port_labeled_graphs
from repro.graphs.families import (
    hypercube,
    oriented_ring,
    oriented_torus,
    symmetric_tree,
)
from repro.graphs.random_graphs import random_connected_graph, random_tree
from repro.symmetry.context import (
    SymmetryContext,
    clear_context_cache,
    context_cache_bytes,
    set_context_cache_limit,
    symmetry_context,
)
from repro.symmetry.feasibility import empirical_feasibility_atlas
from repro.symmetry.structure import shrink_matrix


def random_pool():
    """216+ seeded random connected graphs, mixed sizes and degrees."""
    graphs = []
    for n in (2, 3, 5, 6, 8, 10, 13):
        for extra in (0, 1, 3, 6):
            for seed in range(7):
                graphs.append(random_connected_graph(n, extra, seed=seed))
    for n in (4, 9):
        for seed in range(10):
            graphs.append(random_tree(n, seed=seed))
    return graphs


STRUCTURED = [
    oriented_ring(6),
    oriented_ring(9),
    oriented_torus(3, 4),
    hypercube(3),
    symmetric_tree(2, 2),
]


def reference_distance_matrix(graph):
    """All-pairs distances straight from the retained scalar BFS."""
    return np.stack(
        [graph.distances_from_reference(v) for v in range(graph.n)]
    )


def reference_pairs_and_orbits(colors):
    """Symmetric pairs and orbits via the historical dense-mask path."""
    colors = np.asarray(colors)
    n = len(colors)
    mask = colors[:, None] == colors[None, :]
    iu, iv = np.triu_indices(n, k=1)
    keep = mask[iu, iv]
    pairs = list(zip(iu[keep].tolist(), iv[keep].tolist()))
    orbits = [
        np.flatnonzero(colors == c).tolist()
        for c in range(int(colors.max()) + 1 if n else 0)
    ]
    return pairs, orbits


def assert_blocked_matches(graph):
    """One graph through every blocked engine, against dense + scalar."""
    n = graph.n
    dense = SymmetryContext(graph)
    reference_dist = reference_distance_matrix(graph)
    assert np.array_equal(dense.distances, reference_dist)
    shrink_dense = dense.shrink_all

    # CSR single-source BFS vs the retained scalar BFS.
    for source in range(n):
        assert np.array_equal(
            graph.distances_from(source),
            graph.distances_from_reference(source),
        )

    # Fresh context: nothing dense cached, so every call below runs the
    # blocked engines for real.
    blocked = SymmetryContext(graph)
    rows = np.arange(n, dtype=np.int64)[::-1]  # odd order on purpose
    assert np.array_equal(blocked.distances_block(rows), reference_dist[rows])
    assert np.array_equal(
        blocked.distances_block([n - 1]), reference_dist[[n - 1]]
    )

    # Batched per-pair product BFS over every ordered pair, in a chunk
    # size that forces several batches.
    us = np.repeat(np.arange(n, dtype=np.int64), n)
    vs = np.tile(np.arange(n, dtype=np.int64), n)
    assert np.array_equal(
        blocked.shrink_pairs(us, vs, pair_chunk=5).reshape(n, n),
        shrink_dense,
    )
    assert np.array_equal(
        blocked.shrink_block(rows[: max(1, n // 2)]),
        np.asarray(shrink_dense)[rows[: max(1, n // 2)]],
    )

    # Blocked worklist value iteration, ragged and degenerate blocks.
    for block_size in (1, 3, n, n + 5):
        assert np.array_equal(
            blocked.shrink_all_into(block_size=block_size), shrink_dense
        )

    # Color-bucketed pairs/orbits vs the dense-mask reference.
    pairs, orbits = reference_pairs_and_orbits(dense.colors)
    assert blocked.symmetric_pairs() == pairs
    assert blocked.orbits() == orbits
    pair_us, pair_vs = blocked.symmetric_pair_arrays()
    assert list(zip(pair_us.tolist(), pair_vs.tolist())) == pairs


@pytest.mark.parametrize("index", range(13))
def test_random_graphs_blocked_bit_identical(index):
    """>= 200 random graphs, sharded for parallel-friendly runtimes."""
    pool = random_pool()
    assert len(pool) >= 200
    for graph in pool[index::13]:
        assert_blocked_matches(graph)


@pytest.mark.parametrize("graph", STRUCTURED, ids=lambda g: repr(g))
def test_structured_families_blocked_bit_identical(graph):
    assert_blocked_matches(graph)


@pytest.mark.parametrize("n", [1, 2, 3])
def test_exhaustive_tiny_classes_blocked(n):
    for graph in enumerate_port_labeled_graphs(n):
        assert_blocked_matches(graph)


def test_exhaustive_n4_class_blocked():
    """All 2568 port-labeled graphs on 4 nodes: the blocked engines and
    the dense kernel agree everywhere."""
    count = 0
    for graph in enumerate_port_labeled_graphs(4):
        count += 1
        context = SymmetryContext(graph)
        n = graph.n
        reference_dist = reference_distance_matrix(graph)
        # Blocked calls first (nothing cached), dense afterwards.
        block_dist = context.distances_block(range(n))
        us = np.repeat(np.arange(n, dtype=np.int64), n)
        vs = np.tile(np.arange(n, dtype=np.int64), n)
        pair_values = context.shrink_pairs(us, vs, pair_chunk=3).reshape(n, n)
        iterated = context.shrink_all_into(block_size=2)
        assert np.array_equal(block_dist, reference_dist)
        assert np.array_equal(context.distances, reference_dist)
        assert np.array_equal(pair_values, context.shrink_all)
        assert np.array_equal(iterated, context.shrink_all)
    assert count == 2568


def test_shrink_all_into_memmap(tmp_path):
    """A memory-mapped output array receives the exact dense matrix."""
    for graph in (oriented_ring(9), random_connected_graph(10, 4, seed=3)):
        n = graph.n
        out = np.lib.format.open_memmap(
            tmp_path / f"shrink-{n}.npy",
            mode="w+",
            dtype=np.int64,
            shape=(n, n),
        )
        SymmetryContext(graph).shrink_all_into(out, block_size=4)
        out.flush()
        on_disk = np.load(tmp_path / f"shrink-{n}.npy")
        assert np.array_equal(on_disk, SymmetryContext(graph).shrink_all)


def test_shrink_matrix_streamed_and_memmap(tmp_path):
    for graph in (oriented_ring(8), random_connected_graph(9, 3, seed=1)):
        expected = shrink_matrix(graph)
        assert np.array_equal(shrink_matrix(graph, block_size=3), expected)
        streamed = shrink_matrix(
            graph, block_size=2, memmap_path=tmp_path / f"m{graph.n}.npy"
        )
        assert np.array_equal(streamed, expected)
        assert np.array_equal(np.load(tmp_path / f"m{graph.n}.npy"), expected)


def test_enumerate_stics_streamed_identical():
    for graph in (oriented_ring(6), random_connected_graph(7, 3, seed=2)):
        expected = list(enumerate_stics(graph, 2))
        for block_size in (1, 2, graph.n):
            assert list(
                enumerate_stics(graph, 2, block_size=block_size)
            ) == expected


def test_atlas_streamed_identical():
    from repro.sim.actions import Wait

    def sitter(percept):
        while True:
            percept = yield Wait()

    graph = oriented_ring(6)
    expected = empirical_feasibility_atlas(graph, sitter, 1, max_rounds=20)
    for block_size in (1, 2):
        streamed = empirical_feasibility_atlas(
            graph, sitter, 1, max_rounds=20, block_size=block_size
        )
        assert streamed == expected


def test_atlas_streamed_identical_with_callable_budget():
    from repro.sim.actions import Move

    def mover(percept):
        while True:
            percept = yield Move(0)

    def budget(u, v, delta, verdict):
        return 12 if verdict.feasible else 6

    graph = oriented_ring(5)
    expected = empirical_feasibility_atlas(graph, mover, 1, max_rounds=budget)
    streamed = empirical_feasibility_atlas(
        graph, mover, 1, max_rounds=budget, block_size=2
    )
    assert streamed == expected


def test_covered_counts_block_sizes():
    seq = [0, 1, 0, 2, 1, 0, 3, 1]
    for graph in (oriented_ring(7), random_connected_graph(9, 4, seed=5)):
        expected = covered_counts(graph, seq)
        for block_size in (1, 2, graph.n, graph.n + 3):
            assert np.array_equal(
                covered_counts(graph, seq, block_size=block_size), expected
            )
    with pytest.raises(ValueError, match="block_size must be positive"):
        covered_counts(oriented_ring(5), seq, block_size=0)


def test_blocked_api_validation():
    context = SymmetryContext(oriented_ring(6))
    with pytest.raises(ValueError, match="distance rows must lie in 0..5"):
        context.distances_block([6])
    with pytest.raises(ValueError, match="shrink rows must lie in 0..5"):
        context.shrink_block([-1])
    with pytest.raises(ValueError, match="pair endpoints must lie in 0..5"):
        context.shrink_pairs([0], [17])
    with pytest.raises(ValueError, match="equal length"):
        context.shrink_pairs([0, 1], [2])
    with pytest.raises(ValueError, match="pair_chunk must be positive"):
        context.shrink_pairs([0], [1], pair_chunk=0)
    with pytest.raises(ValueError, match="block_size must be positive"):
        context.shrink_all_into(block_size=0)
    with pytest.raises(ValueError, match="out must be an int64 array"):
        context.shrink_all_into(np.zeros((6, 6), dtype=np.int32))
    with pytest.raises(ValueError, match="block_size must be positive"):
        shrink_matrix(oriented_ring(6), block_size=-1)
    with pytest.raises(ValueError, match="block_size must be positive"):
        list(enumerate_stics(oriented_ring(6), 1, block_size=0))


def test_shrink_pairs_state_budget_is_enforced():
    """Ring pairs have Theta(n) product reach and never hit the
    diagonal early, so a tiny budget must trip the cap — with the
    actionable message, not a silent wrong answer."""
    context = SymmetryContext(oriented_ring(12))
    with pytest.raises(ValueError, match="state budget exceeded"):
        context.shrink_pairs([0], [6], state_budget=2)
    # A sane budget on the same pair still lands the exact value.
    value = context.shrink_pairs([0], [6], state_budget=10_000)
    assert np.array_equal(value, [6])


# ----------------------------------------------------------------------
# Byte-aware context-cache LRU
# ----------------------------------------------------------------------


@pytest.fixture
def isolated_cache():
    previous = set_context_cache_limit(1 << 40)
    clear_context_cache()
    try:
        yield
    finally:
        clear_context_cache()
        set_context_cache_limit(previous)


def _bare_bytes(n):
    """Retained bytes of a freshly built (nothing-dense) context."""
    return context_module._ENTRY_OVERHEAD_BYTES + n * 8


def test_retained_bytes_accounting(isolated_cache):
    graph = oriented_ring(6)
    context = SymmetryContext(graph)
    assert context.retained_bytes() == _bare_bytes(6)
    context.distances
    assert context.retained_bytes() == _bare_bytes(6) + 6 * 6 * 8
    context.shrink_all
    assert context.retained_bytes() == _bare_bytes(6) + 2 * 6 * 6 * 8


def test_cache_bytes_sum_and_clear(isolated_cache):
    assert context_cache_bytes() == 0
    symmetry_context(oriented_ring(6))
    symmetry_context(oriented_ring(7))
    assert context_cache_bytes() == _bare_bytes(6) + _bare_bytes(7)
    clear_context_cache()
    assert context_cache_bytes() == 0


def test_byte_lru_evicts_least_recently_used(isolated_cache):
    set_context_cache_limit(2 * _bare_bytes(8) + 64)
    first = symmetry_context(oriented_ring(6))
    second = symmetry_context(oriented_ring(7))
    # Touch `first` so `second` is now least recently used.
    assert symmetry_context(oriented_ring(6)) is first
    third = symmetry_context(oriented_ring(8))
    assert symmetry_context(oriented_ring(8)) is third
    assert symmetry_context(oriented_ring(6)) is first
    # `second` was evicted: a fresh lookup rebuilds it.
    assert symmetry_context(oriented_ring(7)) is not second


def test_lazy_growth_is_reenforced_on_next_lookup(isolated_cache):
    set_context_cache_limit(2 * _bare_bytes(7) + 64)
    small = symmetry_context(oriented_ring(6))
    grower = symmetry_context(oriented_ring(7))
    assert context_cache_bytes() <= 2 * _bare_bytes(7) + 64
    # Dense materialization grows the entry *after* insertion...
    grower.shrink_all
    assert context_cache_bytes() > 2 * _bare_bytes(7) + 64
    # ...and the next lookup re-enforces the budget, evicting the LRU
    # entry (`small`) while keeping the just-served context.
    assert symmetry_context(oriented_ring(7)) is grower
    assert symmetry_context(oriented_ring(6)) is not small


def test_most_recent_context_survives_tiny_limit(isolated_cache):
    set_context_cache_limit(1)
    first = symmetry_context(oriented_ring(6))
    assert symmetry_context(oriented_ring(6)) is first
    assert len(context_module._CONTEXT_CACHE) == 1
    second = symmetry_context(oriented_ring(7))
    assert len(context_module._CONTEXT_CACHE) == 1
    assert symmetry_context(oriented_ring(7)) is second
    assert symmetry_context(oriented_ring(6)) is not first


def test_set_limit_returns_previous_and_validates(isolated_cache):
    previous = set_context_cache_limit(12345)
    assert previous == 1 << 40
    assert set_context_cache_limit(previous) == 12345
    with pytest.raises(ValueError, match="cache limit must be positive"):
        set_context_cache_limit(0)
