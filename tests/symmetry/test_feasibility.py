"""Tests for the feasibility characterization (Corollary 3.1)."""

import pytest

from repro.graphs import (
    complete_graph,
    mirror_node,
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    symmetric_tree,
    torus_node,
    two_node_graph,
)
from repro.symmetry import classify_stic, is_feasible, shrink


class TestCharacterization:
    def test_nonsymmetric_feasible_for_all_delays(self):
        g = path_graph(4)
        for delta in range(5):
            verdict = classify_stic(g, 0, 3, delta)
            assert verdict.feasible and not verdict.symmetric
            assert verdict.shrink is None

    def test_symmetric_boundary(self):
        g = oriented_torus(3, 3)
        v = torus_node(1, 1, 3)
        s = shrink(g, 0, v)
        assert s == 2
        assert not is_feasible(g, 0, v, s - 1)
        assert is_feasible(g, 0, v, s)
        assert is_feasible(g, 0, v, s + 7)

    def test_two_node_introduction_example(self):
        g = two_node_graph()
        # delay 0: impossible; delay 3: the paper's "meet after 3 rounds".
        assert not is_feasible(g, 0, 1, 0)
        assert is_feasible(g, 0, 1, 3)

    def test_mirror_tree_needs_only_delay_one(self):
        g = symmetric_tree(2, 2)
        leaf = g.n // 2 - 1
        m = mirror_node(leaf, 2, 2)
        assert g.distance(leaf, m) == 5
        assert is_feasible(g, leaf, m, 1)  # Shrink = 1 despite distance 5

    def test_complete_graph(self):
        g = complete_graph(5)
        assert not is_feasible(g, 0, 3, 0)
        assert is_feasible(g, 0, 3, 1)

    def test_reasons_mention_results(self):
        g = two_node_graph()
        assert "Lemma 3.1" in classify_stic(g, 0, 1, 0).reason
        assert "Lemma 3.2" in classify_stic(g, 0, 1, 1).reason
        assert "Proposition 3.1" in classify_stic(path_graph(3), 0, 2, 0).reason

    def test_validation(self):
        g = star_graph(2)
        with pytest.raises(ValueError):
            classify_stic(g, 1, 1, 0)
        with pytest.raises(ValueError):
            classify_stic(g, 0, 1, -2)

    def test_every_ring_pair_boundary(self):
        g = oriented_ring(5)
        for v in range(1, 5):
            s = shrink(g, 0, v)
            assert not is_feasible(g, 0, v, s - 1)
            assert is_feasible(g, 0, v, s)


class TestEmpiricalAtlas:
    """The batched atlas: Corollary 3.1 verdicts checked by simulation."""

    @staticmethod
    def _universal_atlas(graph, max_delta):
        from repro.core import universal_feasibility_atlas

        return universal_feasibility_atlas(
            graph, max_delta, infeasible_horizon=256
        )

    @pytest.mark.parametrize(
        "graph, max_delta",
        [(oriented_ring(5), 3), (path_graph(4), 2), (star_graph(3), 2)],
        ids=["ring5", "path4", "star3"],
    )
    def test_simulation_matches_characterization(self, graph, max_delta):
        entries = self._universal_atlas(graph, max_delta)
        n = graph.n
        assert len(entries) == n * (n - 1) // 2 * (max_delta + 1)
        for entry in entries:
            assert entry.consistent, (entry.u, entry.v, entry.delta)
            assert entry.verdict == classify_stic(
                graph, entry.u, entry.v, entry.delta
            )

    def test_enumeration_order_and_verdicts(self):
        """Atlas verdicts line up with `enumerate_stics` exactly."""
        from repro.core import enumerate_stics

        g = oriented_torus(3, 3)
        entries = self._universal_atlas(g, 1)
        listed = list(enumerate_stics(g, 1))
        assert len(entries) == len(listed)
        for entry, (stic, verdict) in zip(entries, listed):
            assert (entry.u, entry.v, entry.delta) == (stic.u, stic.v, stic.delta)
            assert entry.verdict.feasible == verdict.feasible
            assert entry.verdict.symmetric == verdict.symmetric
            assert entry.verdict.shrink == verdict.shrink

    def test_inconsistent_entry_flagged(self):
        """A waiting algorithm never meets distinct feasible starts, so
        `consistent` must go False — the property is falsifiable."""
        from repro.sim.actions import Wait
        from repro.symmetry import empirical_feasibility_atlas

        def sitter(percept):
            while True:
                percept = yield Wait()

        g = path_graph(3)
        entries = empirical_feasibility_atlas(g, sitter, 1, max_rounds=50)
        assert any(not e.consistent for e in entries)
        for e in entries:
            assert e.consistent == (e.result.met == e.verdict.feasible)
