"""Unit tests for Shrink (Definition 3.1)."""


from repro.graphs import (
    complete_graph,
    hypercube,
    mirror_node,
    oriented_ring,
    oriented_torus,
    star_graph,
    symmetric_tree,
    torus_node,
    two_node_graph,
)
from repro.symmetry import all_pairs_distances, shrink, shrink_witness


class TestShrinkValues:
    def test_same_node_is_zero(self):
        g = oriented_ring(4)
        assert shrink(g, 2, 2) == 0

    def test_two_node(self):
        assert shrink(two_node_graph(), 0, 1) == 1

    def test_oriented_ring_equals_distance(self):
        g = oriented_ring(7)
        for v in range(1, 7):
            assert shrink(g, 0, v) == g.distance(0, v)

    def test_oriented_torus_equals_distance(self):
        # The paper's example: in an oriented torus Shrink(u, v) is the
        # distance between u and v, for any pair.
        g = oriented_torus(3, 4)
        for v in range(1, g.n):
            assert shrink(g, 0, v) == g.distance(0, v)

    def test_symmetric_tree_shrink_is_one(self):
        # The paper's contrast: Shrink of any mirror pair is 1 although
        # the distance can be arbitrarily large.
        for depth in (1, 2, 3):
            g = symmetric_tree(2, depth)
            deep_leaf = g.n // 2 - 1
            m = mirror_node(deep_leaf, 2, depth)
            assert g.distance(deep_leaf, m) == 2 * depth + 1
            assert shrink(g, deep_leaf, m) == 1

    def test_hypercube_equals_hamming(self):
        g = hypercube(3)
        for v in (1, 3, 5, 7):
            assert shrink(g, 0, v) == bin(v).count("1")

    def test_complete_graph_is_one(self):
        g = complete_graph(6)
        for v in range(1, 6):
            assert shrink(g, 0, v) == 1

    def test_nonsymmetric_pair_can_shrink_to_zero(self):
        # Star leaves both reach the center via port 0: the *general*
        # product-BFS reaches a coincident pair (the pairs are
        # non-symmetric, so this does not contradict Lemma 3.1).
        g = star_graph(3)
        assert shrink(g, 1, 2) == 0

    def test_symmetric_distinct_pair_never_zero(self):
        # For symmetric u != v, equal views force equal entry ports
        # along any common sequence, so alpha(u) = alpha(v) would give
        # u = v; Shrink >= 1.
        for g in (oriented_ring(6), oriented_torus(3, 3), hypercube(3)):
            for v in range(1, g.n):
                assert shrink(g, 0, v) >= 1


class TestShrinkWitness:
    def test_witness_realizes_value(self):
        g = symmetric_tree(2, 2)
        u, v = 3, mirror_node(3, 2, 2)
        value, alpha, (x, y) = shrink_witness(g, u, v)
        assert g.apply_port_sequence(u, alpha) == x
        assert g.apply_port_sequence(v, alpha) == y
        assert g.distance(x, y) == value == 1

    def test_witness_is_shortest(self):
        # BFS explores by sequence length, so the returned alpha has
        # minimal length among sequences achieving the minimum: on an
        # oriented torus no sequence changes the distance, so alpha = ().
        g = oriented_torus(3, 3)
        value, alpha, _ = shrink_witness(g, 0, torus_node(1, 1, 3))
        assert alpha == ()
        assert value == g.distance(0, torus_node(1, 1, 3))

    def test_identity_witness(self):
        g = oriented_ring(5)
        assert shrink_witness(g, 1, 1) == (0, (), (1, 1))


class TestAllPairsDistances:
    def test_matches_bfs(self):
        g = symmetric_tree(2, 1)
        dist = all_pairs_distances(g)
        for u in range(g.n):
            for v in range(g.n):
                assert dist[u, v] == g.distance(u, v)
        assert (dist == dist.T).all()
