"""Unit tests for the structured graph families."""

import pytest

from repro.graphs import (
    complete_graph,
    hypercube,
    labeled_ring,
    mirror_node,
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    symmetric_tree,
    torus_node,
    two_node_graph,
)


class TestRingsAndPaths:
    def test_ring_structure(self):
        g = oriented_ring(5)
        assert g.n == 5 and g.is_regular() and g.max_degree == 2
        # port 0 walks clockwise all the way around
        assert g.apply_port_sequence(0, [0] * 5) == 0

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            oriented_ring(2)

    def test_path_ports(self):
        g = path_graph(4)
        assert g.succ(0, 0) == 1
        assert g.succ(1, 0) == 0 and g.succ(1, 1) == 2
        assert g.succ(3, 0) == 2

    def test_path_minimum(self):
        with pytest.raises(ValueError):
            path_graph(1)

    def test_labeled_ring_matches_oriented_when_uniform(self):
        uniform = labeled_ring([(0, 1)] * 5)
        assert uniform == oriented_ring(5)

    def test_labeled_ring_validation(self):
        with pytest.raises(ValueError):
            labeled_ring([(0, 1), (1, 0)])


class TestTorus:
    def test_structure(self):
        g = oriented_torus(3, 4)
        assert g.n == 12 and g.is_regular() and g.max_degree == 4

    def test_compass_consistency(self):
        g = oriented_torus(3, 3)
        north, east, south, west = 0, 1, 2, 3
        v = torus_node(1, 1, 3)
        assert g.succ(v, north) == torus_node(0, 1, 3)
        assert g.succ(v, south) == torus_node(2, 1, 3)
        assert g.succ(v, east) == torus_node(1, 2, 3)
        assert g.succ(v, west) == torus_node(1, 0, 3)
        # N and S are paired across each edge.
        assert g.entry_port(v, north) == south
        assert g.entry_port(v, east) == west

    def test_wraparound(self):
        g = oriented_torus(3, 3)
        assert g.succ(torus_node(0, 0, 3), 0) == torus_node(2, 0, 3)

    def test_minimum_dims(self):
        with pytest.raises(ValueError):
            oriented_torus(2, 3)


class TestSymmetricTree:
    def test_node_count(self):
        # arity 2, depth 2: each half has 1 + 2 + 4 = 7 nodes.
        g = symmetric_tree(2, 2)
        assert g.n == 14

    def test_central_edge(self):
        g = symmetric_tree(2, 2)
        assert g.succ(0, 0) == 7
        assert g.succ(7, 0) == 0

    def test_mirror_node_involution(self):
        for v in range(14):
            assert mirror_node(mirror_node(v, 2, 2), 2, 2) == v

    def test_leaf_degree(self):
        g = symmetric_tree(2, 1)
        assert g.degree(1) == 1 and g.degree(0) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            symmetric_tree(0, 1)


class TestHypercubeAndComplete:
    def test_hypercube_ports_flip_bits(self):
        g = hypercube(3)
        for v in range(8):
            for i in range(3):
                assert g.succ(v, i) == v ^ (1 << i)
                assert g.entry_port(v, i) == i

    def test_hypercube_size(self):
        assert hypercube(4).n == 16

    def test_complete_circulant(self):
        g = complete_graph(5)
        for i in range(5):
            for p in range(4):
                assert g.succ(i, p) == (i + p + 1) % 5

    def test_complete_port_pairing(self):
        g = complete_graph(5)
        # port p at i pairs with port n - 2 - p at the other end
        for p in range(4):
            assert g.entry_port(0, p) == 5 - 2 - p

    def test_star(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert all(g.degree(leaf) == 1 for leaf in range(1, 5))
        assert g.succ(3, 0) == 0 and g.entry_port(3, 0) == 2

    def test_two_node(self):
        assert two_node_graph().n == 2
