"""Tests for random graph generation and exhaustive enumeration."""

import pytest

from repro.graphs import (
    random_connected_graph,
    random_regular_graph,
    random_tree,
)
from repro.graphs.enumeration import (
    connected_edge_sets,
    count_port_labeled_graphs,
    enumerate_port_labeled_graphs,
)
from repro.util.lcg import SplitMix64
from repro.graphs.random_graphs import random_port_permutation


class TestRandomGraphs:
    def test_tree_has_n_minus_one_edges(self):
        g = random_tree(10, seed=3)
        assert g.n == 10 and len(g.edges) == 9

    def test_deterministic_by_seed(self):
        assert random_tree(8, seed=5) == random_tree(8, seed=5)
        assert random_tree(8, seed=5) != random_tree(8, seed=6)

    def test_connected_graph_edge_budget(self):
        g = random_connected_graph(8, extra_edges=4, seed=1)
        assert g.n == 8 and len(g.edges) == 7 + 4

    def test_extra_edges_clamped(self):
        # n=4 has at most 6 edges; asking for more must clamp, not hang.
        g = random_connected_graph(4, extra_edges=100, seed=2)
        assert len(g.edges) == 6

    def test_validates(self):
        # Construction goes through PortLabeledGraph validation; a pass
        # means ports are a permutation at every node and it's connected.
        for seed in range(10):
            random_connected_graph(7, extra_edges=3, seed=seed)

    def test_port_permutation_is_permutation(self):
        rng = SplitMix64(9)
        for d in (1, 2, 5, 9):
            assert sorted(random_port_permutation(d, rng)) == list(range(d))

    def test_dense_inputs_get_exact_edge_counts(self):
        """Regression: the rejection loop used to give up silently on
        dense inputs (n=30 near-complete came back 14 edges short);
        the complement fallback must deliver the exact budget."""
        for n, extra, seed in [
            (30, 500, 0),
            (30, 500, 1),
            (20, 200, 3),
            (12, 100, 7),
            (10, 36, 2),
        ]:
            g = random_connected_graph(n, extra, seed)
            expected = (n - 1) + min(extra, n * (n - 1) // 2 - (n - 1))
            assert len(g.edges) == expected, (n, extra, seed)

    def test_dense_inputs_stay_deterministic(self):
        a = random_connected_graph(30, 500, seed=5)
        assert a == random_connected_graph(30, 500, seed=5)
        assert a != random_connected_graph(30, 500, seed=6)

    def test_sparse_stream_is_pinned(self):
        """The seeded stream of the original rejection-only sampler is
        frozen for sparse inputs: differential suites and replay
        artifacts reference these graphs by (n, extra, seed) alone."""
        assert random_connected_graph(8, 4, seed=1).edges == (
            (0, 3, 1, 0),
            (1, 1, 2, 0),
            (0, 2, 3, 0),
            (1, 3, 4, 0),
            (3, 1, 5, 0),
            (4, 1, 6, 2),
            (0, 1, 7, 0),
            (2, 1, 6, 3),
            (0, 0, 5, 2),
            (5, 1, 6, 1),
            (1, 2, 6, 0),
        )


class TestRandomRegular:
    def test_degrees_and_size(self):
        for n, d, seed in [(6, 3, 0), (8, 3, 5), (10, 4, 2), (5, 2, 7), (9, 2, 3)]:
            g = random_regular_graph(n, d, seed)
            assert g.n == n
            assert all(g.degree(v) == d for v in range(n))
            assert len(g.edges) == n * d // 2

    def test_deterministic_by_seed(self):
        assert random_regular_graph(8, 3, seed=4) == random_regular_graph(8, 3, seed=4)
        assert random_regular_graph(8, 3, seed=4) != random_regular_graph(8, 3, seed=5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3, seed=0)  # odd stub count
        with pytest.raises(ValueError):
            random_regular_graph(4, 4, seed=0)  # degree >= n
        with pytest.raises(ValueError):
            random_regular_graph(4, 0, seed=0)  # degree < 1
        with pytest.raises(ValueError):
            random_regular_graph(1, 1, seed=0)  # n < 2

    def test_validates_simple_and_connected(self):
        # PortLabeledGraph construction validates ports/connectivity;
        # many seeds exercising the retry-until-simple-connected loop.
        for seed in range(12):
            random_regular_graph(8, 3, seed=seed)


class TestEnumeration:
    def test_counts(self):
        # n=3: path (3 labelings of the center-as-each-node x 2 port
        # orders = 6) + triangle (2^3 port orders = 8) = 14.
        assert count_port_labeled_graphs(1) == 1
        assert count_port_labeled_graphs(2) == 1
        assert count_port_labeled_graphs(3) == 14

    def test_connected_edge_sets_n3(self):
        sets = list(connected_edge_sets(3))
        assert len(sets) == 4  # 3 paths + 1 triangle

    def test_all_enumerated_are_valid(self):
        for g in enumerate_port_labeled_graphs(3):
            # Re-validate explicitly (enumeration skips validation for speed).
            g._validate_simple()
            g._validate_connected()

    def test_enumeration_guard(self):
        with pytest.raises(ValueError):
            list(enumerate_port_labeled_graphs(6))

    def test_no_duplicates(self):
        graphs = list(enumerate_port_labeled_graphs(3))
        assert len({hash(g) for g in graphs}) == len(graphs)
