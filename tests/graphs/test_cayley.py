"""Tests for abelian Cayley graphs and their rigidity property."""

import pytest

from repro.graphs import hypercube, oriented_ring
from repro.graphs.cayley import cayley_abelian, cayley_coords, cayley_node
from repro.symmetry import shrink, view_classes


class TestConstruction:
    def test_ring_as_cayley(self):
        g = cayley_abelian((5,), [(1,)])
        assert g == oriented_ring(5)

    def test_hypercube_as_cayley(self):
        # hypercube() numbers ports LSB-first; list generators in the
        # same order (the first coordinate is the most significant).
        g = cayley_abelian((2, 2, 2), [(0, 0, 1), (0, 1, 0), (1, 0, 0)])
        assert g == hypercube(3)

    def test_torus_shape(self):
        g = cayley_abelian((3, 4), [(1, 0), (0, 1)])
        assert g.n == 12 and g.is_regular() and g.max_degree == 4

    def test_involution_port(self):
        # Z_4 with the antipodal generator 2: a single self-paired port.
        g = cayley_abelian((4,), [(1,), (2,)])
        assert g.degree(0) == 3
        two_step = cayley_node((2,), (4,))
        port = next(
            p for p in range(3) if g.succ(0, p) == two_step
        )
        assert g.entry_port(0, port) == port  # self-paired

    def test_coords_roundtrip(self):
        moduli = (3, 4, 2)
        for node in range(24):
            assert cayley_node(cayley_coords(node, moduli), moduli) == node

    def test_validation(self):
        with pytest.raises(ValueError, match="zero generator"):
            cayley_abelian((4,), [(0,)])
        with pytest.raises(ValueError, match="duplicates"):
            cayley_abelian((5,), [(1,), (4,)])  # 4 = -1
        with pytest.raises(ValueError, match=">= 2"):
            cayley_abelian((1,), [(0,)])
        with pytest.raises(ValueError, match="arity"):
            cayley_abelian((4, 4), [(1,)])
        with pytest.raises(ValueError, match="not connected"):
            cayley_abelian((4,), [(2,)])  # 2Z_4 is a proper subgroup


class TestRigidity:
    """The family-wide theorem: vertex-transitive, Shrink = dist."""

    @pytest.mark.parametrize(
        "moduli,gens",
        [
            ((7,), [(1,)]),
            ((6,), [(1,), (3,)]),
            ((3, 3), [(1, 0), (0, 1)]),
            ((4, 3), [(1, 0), (0, 1)]),
            ((2, 2, 2), [(1, 0, 0), (0, 1, 0), (0, 0, 1)]),
            ((9,), [(1,), (2,)]),  # circulant with chords
        ],
        ids=["C7", "C6+antipode", "torus33", "torus43", "cube", "circulant"],
    )
    def test_all_symmetric_and_shrink_is_distance(self, moduli, gens):
        g = cayley_abelian(moduli, gens)
        assert len(set(view_classes(g))) == 1
        for v in range(1, min(g.n, 8)):
            assert shrink(g, 0, v) == g.distance(0, v)
