"""Unit tests for the port-labeled graph substrate."""

import pytest

from repro.graphs import (
    PortLabeledGraph,
    from_adjacency,
    from_edge_pairs,
    from_networkx,
    oriented_ring,
    path_graph,
    relabel_ports,
    two_node_graph,
)


class TestConstruction:
    def test_two_node(self):
        g = two_node_graph()
        assert g.n == 2
        assert g.degree(0) == g.degree(1) == 1
        assert g.succ(0, 0) == 1
        assert g.succ(1, 0) == 0

    def test_entry_ports_are_consistent(self):
        g = oriented_ring(5)
        for v in range(5):
            for p in range(g.degree(v)):
                w = g.succ(v, p)
                q = g.entry_port(v, p)
                assert g.succ(w, q) == v

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            PortLabeledGraph(2, [(0, 0, 0, 1), (0, 2, 1, 0)])

    def test_rejects_duplicate_port(self):
        with pytest.raises(ValueError, match="assigned twice"):
            PortLabeledGraph(3, [(0, 0, 1, 0), (0, 0, 2, 0)])

    def test_rejects_port_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            PortLabeledGraph(2, [(0, 1, 1, 0)])

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError, match="not connected"):
            PortLabeledGraph(4, [(0, 0, 1, 0), (2, 0, 3, 0)])

    def test_rejects_parallel_edges(self):
        with pytest.raises(ValueError, match="parallel edge"):
            PortLabeledGraph(2, [(0, 0, 1, 0), (0, 1, 1, 1)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PortLabeledGraph(0, [])

    def test_malformed_edge_tuple(self):
        with pytest.raises(ValueError, match="edge must be"):
            PortLabeledGraph(2, [(0, 0, 1)])  # type: ignore[list-item]


class TestNavigation:
    def test_apply_port_sequence_ring(self):
        g = oriented_ring(6)
        assert g.apply_port_sequence(0, [0, 0, 0]) == 3
        assert g.apply_port_sequence(0, [1, 1]) == 4
        assert g.apply_port_sequence(2, [0, 1]) == 2

    def test_apply_invalid_port_raises(self):
        g = path_graph(3)
        with pytest.raises(ValueError, match="port"):
            g.apply_port_sequence(0, [1])

    def test_walk_returns_all_nodes(self):
        g = oriented_ring(4)
        assert g.walk(0, [0, 0, 0, 0]) == [0, 1, 2, 3, 0]

    def test_reverse_ports_roundtrip(self):
        g = path_graph(5)
        alpha = (1, 1, 1)  # 0 -> 1 -> 2 -> 3 (via "right" ports)
        end = g.apply_port_sequence(1, alpha)
        back = g.reverse_ports(1, alpha)
        assert g.apply_port_sequence(end, back) == 1

    def test_reverse_ports_empty(self):
        g = path_graph(3)
        assert g.reverse_ports(0, ()) == ()

    def test_distances(self):
        g = path_graph(5)
        assert list(g.distances_from(0)) == [0, 1, 2, 3, 4]
        assert g.distance(1, 4) == 3

    def test_neighbors_in_port_order(self):
        g = oriented_ring(5)
        assert g.neighbors(0) == [1, 4]


class TestExportAndEquality:
    def test_to_networkx_roundtrip(self):
        g = oriented_ring(6)
        nx_graph = g.to_networkx()
        back = from_networkx(nx_graph)
        assert back == g

    def test_equality_ignores_edge_order(self):
        e = [(0, 0, 1, 0), (1, 1, 2, 0)]
        a = PortLabeledGraph(3, e)
        b = PortLabeledGraph(3, list(reversed(e)))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_ports(self):
        a = path_graph(3)
        b = relabel_ports(a, {1: {0: 1, 1: 0}})
        assert a != b

    def test_is_regular(self):
        assert oriented_ring(5).is_regular()
        assert not path_graph(3).is_regular()

    def test_succ_arrays_shapes(self):
        g = path_graph(4)
        assert g.succ_node_array.shape == (4, 2)
        assert g.succ_port_array.shape == (4, 2)
        assert g.succ_node_array[0, 1] == -1  # endpoint has degree 1

    def test_degrees_vector(self):
        g = path_graph(4)
        assert list(g.degrees) == [1, 2, 2, 1]
        assert g.max_degree == 2


class TestBuilders:
    def test_from_adjacency(self):
        g = from_adjacency({0: [1, 2], 1: [0], 2: [0]})
        assert g.n == 3
        assert g.succ(0, 0) == 1
        assert g.succ(0, 1) == 2

    def test_from_adjacency_inconsistent(self):
        with pytest.raises(ValueError, match="reverse"):
            from_adjacency({0: [1], 1: []})

    def test_from_adjacency_duplicate_neighbor(self):
        with pytest.raises(ValueError, match="duplicate"):
            from_adjacency({0: [1, 1], 1: [0, 0]})

    def test_from_edge_pairs_port_order(self):
        g = from_edge_pairs(3, [(0, 1), (1, 2), (2, 0)])
        assert g.succ(0, 0) == 1  # first incident edge of 0
        assert g.succ(0, 1) == 2  # second incident edge of 0

    def test_relabel_ports_preserves_structure(self):
        g = oriented_ring(4)
        flipped = relabel_ports(g, {0: {0: 1, 1: 0}})
        assert flipped.n == g.n
        assert flipped.succ(0, 1) == g.succ(0, 0)

    def test_from_networkx_plain(self):
        import networkx as nx

        g = from_networkx(nx.cycle_graph(5))
        assert g.n == 5
        assert g.is_regular()
