"""Unit tests for the deterministic RNG and encodings."""

import pytest

from repro.util import (
    SplitMix64,
    bits_to_int,
    bytes_to_bits,
    derive_seed,
    double_and_terminate,
    int_to_bits,
    undouble,
)


class TestSplitMix64:
    def test_deterministic(self):
        a = [SplitMix64(7).next_u64() for _ in range(5)]
        b = [SplitMix64(7).next_u64() for _ in range(5)]
        assert a != [SplitMix64(8).next_u64() for _ in range(5)]
        assert a == b

    def test_known_vector(self):
        # SplitMix64 reference: seed 0 produces this first output.
        assert SplitMix64(0).next_u64() == 0xE220A8397B1DCDAF

    def test_randrange_bounds(self):
        rng = SplitMix64(1)
        values = [rng.randrange(10) for _ in range(1000)]
        assert min(values) >= 0 and max(values) <= 9
        assert len(set(values)) == 10  # all residues hit

    def test_randrange_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SplitMix64(1).randrange(0)

    def test_random_unit_interval(self):
        rng = SplitMix64(2)
        xs = [rng.random() for _ in range(100)]
        assert all(0.0 <= x < 1.0 for x in xs)

    def test_derive_seed_stable_and_sensitive(self):
        assert derive_seed("uxs", 5) == derive_seed("uxs", 5)
        assert derive_seed("uxs", 5) != derive_seed("uxs", 6)
        assert derive_seed("uxs", 5) != derive_seed("uxs", "5x")
        assert derive_seed("a", "bc") != derive_seed("ab", "c")


class TestBits:
    def test_int_roundtrip(self):
        for value in (0, 1, 5, 255, 2**20 + 3):
            assert bits_to_int(int_to_bits(value)) == value

    def test_width_padding(self):
        assert int_to_bits(5, width=8) == (0, 0, 0, 0, 0, 1, 0, 1)

    def test_width_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(256, width=8)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(-1)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    def test_bytes_to_bits(self):
        assert bytes_to_bits(b"\x80\x01") == (1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1)


class TestDoubling:
    def test_roundtrip(self):
        for bits in ((), (0,), (1,), (0, 1, 1), (1, 1, 1, 0)):
            assert undouble(double_and_terminate(bits)) == bits

    def test_prefix_free(self):
        codes = [
            double_and_terminate(bits)
            for bits in [(0,), (1,), (0, 0), (0, 1), (1, 0), (1, 1), (0, 1, 0)]
        ]
        for i, a in enumerate(codes):
            for j, b in enumerate(codes):
                if i != j:
                    assert a[: len(b)] != b, (a, b)

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            undouble((0, 0, 0))  # odd-ish / no terminator
        with pytest.raises(ValueError):
            undouble((0, 0, 0, 0))  # missing 01 terminator
        with pytest.raises(ValueError):
            undouble((1, 0, 0, 1))  # bad pair before terminator
