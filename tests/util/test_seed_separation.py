"""Seed-derivation axis separation: the campaign grid must not collide.

Every campaign cell derives its instance seed from
``(label, campaign, family, rung-json, config seed, index)`` through
:func:`repro.util.lcg.derive_seed`.  A collision between two cells
would silently run the same instance twice and skip another entirely,
so this suite pins the separation three ways: the full smoke-tier
grids of every shipped campaign produce pairwise-distinct seeds, a
hypothesis property checks distinct tuples map to distinct seeds, and
the module's doctests pin the exact constants (they are part of the
replay-artifact contract).
"""

import doctest

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.util.lcg
from repro.campaigns.driver import cell_seed, make_shards
from repro.campaigns.registry import CAMPAIGNS
from repro.experiments.store import canonical_json
from repro.util.lcg import derive_seed


def test_lcg_doctests_pin_known_values():
    results = doctest.testmod(repro.util.lcg)
    assert results.failed == 0
    assert results.attempted >= 4  # SplitMix64 + the derive_seed pins


def test_campaign_smoke_grid_seeds_are_distinct():
    """Every (campaign, family, rung, seed-index) cell of every
    smoke-tier grid gets its own stream — including across campaigns
    that share families and rungs."""
    seeds = {}
    for spec in CAMPAIGNS.values():
        config = spec.config("smoke")
        for shard in make_shards(config):
            for index in range(config.params["seeds_per_cell"]):
                axes = (
                    spec.exp_id,
                    shard["family"],
                    canonical_json(shard["rung"]),
                    index,
                )
                seed = cell_seed(
                    spec.exp_id,
                    shard["family"],
                    shard["rung"],
                    config.seed,
                    index,
                )
                if axes in seeds:
                    # Same cell axes (the check axis deliberately does
                    # not enter the seed: every check of one cell sees
                    # the same instance) must agree...
                    assert seeds[axes] == seed
                else:
                    # ...while distinct axes must not collide.
                    assert seed not in set(seeds.values()), axes
                    seeds[axes] = seed
    assert len(set(seeds.values())) == len(seeds)
    assert len(seeds) >= 24  # the smoke grids are genuinely wide


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["campaign-cell", "check", "agent"]),
            st.text(
                alphabet="abcdefghijklmnopqrstuvwxyz_/0123456789",
                min_size=1,
                max_size=12,
            ),
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=2,
        max_size=32,
        unique=True,
    )
)
def test_distinct_tuples_yield_distinct_seeds(tuples):
    seeds = [derive_seed(*parts) for parts in tuples]
    assert len(set(seeds)) == len(seeds)
