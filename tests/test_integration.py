"""Integration tests: the full stack on exhaustive small workloads.

The strongest statement the library can check end-to-end is
Corollary 3.1 itself: for every STIC of a small graph, UniversalRV
meets exactly when the characterization says it can.
"""

import pytest

from repro.core import rendezvous, enumerate_stics
from repro.core.profile import TUNED
from repro.baselines import elect_leader
from repro.graphs import (
    oriented_ring,
    path_graph,
    star_graph,
    two_node_graph,
)
from repro.graphs.random_graphs import random_connected_graph


FEASIBLE_HORIZON = None  # auto budget
INFEASIBLE_HORIZON = 30_000


@pytest.mark.parametrize(
    "graph,max_delta",
    [
        (two_node_graph(), 2),
        (path_graph(3), 1),
        (oriented_ring(3), 1),
        (star_graph(2), 1),
    ],
    ids=["P2", "P3", "C3", "star2"],
)
def test_corollary31_exhaustive(graph, max_delta):
    """UniversalRV meets iff the STIC is feasible — every STIC checked."""
    for stic, verdict in enumerate_stics(graph, max_delta):
        if verdict.feasible:
            result = rendezvous(graph, stic.u, stic.v, stic.delta)
            assert result.met, (stic, verdict.reason)
        else:
            result = rendezvous(
                graph, stic.u, stic.v, stic.delta, max_rounds=INFEASIBLE_HORIZON
            )
            assert not result.met, (stic, verdict.reason)


def test_meeting_produces_leader_everywhere():
    graph = path_graph(3)
    for stic, verdict in enumerate_stics(graph, 1):
        if not verdict.feasible:
            continue
        result = rendezvous(graph, stic.u, stic.v, stic.delta, record_traces=True)
        assert result.met
        election = elect_leader(result)
        assert election.leader in (0, 1)


def test_random_nonsymmetric_instances():
    """Random graphs: every non-symmetric pair must meet at delta 0."""
    for seed in range(3):
        g = random_connected_graph(5, 2, seed=seed)
        for stic, verdict in enumerate_stics(g, 0):
            if verdict.symmetric:
                continue
            result = rendezvous(g, stic.u, stic.v, 0)
            assert result.met, (seed, stic)


def test_time_measured_from_later_agent():
    g = two_node_graph()
    result = rendezvous(g, 0, 1, 3)
    assert result.met
    assert result.meeting_time == result.time_from_later + 3


def test_crossings_recorded_on_infeasible_runs():
    # On the two-node graph with delta 0 the agents repeatedly swap:
    # the trace must show crossings but no meeting.
    g = two_node_graph()
    result = rendezvous(g, 0, 1, 0, max_rounds=5_000)
    assert not result.met
    assert len(result.crossings) > 0


def test_profile_consistency_small():
    """Reference and tuned profiles agree on feasibility outcomes for
    the smallest instance (they differ only in constants)."""
    from repro.core.profile import REFERENCE

    g = path_graph(3)
    tuned = rendezvous(g, 0, 2, 1, profile=TUNED)
    reference = rendezvous(g, 0, 2, 1, profile=REFERENCE, max_rounds=10**7)
    assert tuned.met and reference.met
