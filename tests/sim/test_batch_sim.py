"""The batched multi-STIC engine must agree with the scalar scheduler.

Mirrors ``tests/hardness/test_batch.py``: every observable field of
:class:`RendezvousResult` that batch mode reports (``met``,
``meeting_node``, ``meeting_time``, ``time_from_later``,
``rounds_executed``) must be *identical* to a scalar
:func:`run_rendezvous` loop — on the example families, on random
graphs with random port labelings, for mixed delays, for the
degenerate ``u == v`` configurations, and for agent-code failures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    TUNED,
    UniversalOracle,
    make_symm_rv_algorithm,
    make_universal_algorithm,
    universal_round_budget,
)
from repro.graphs import (
    complete_graph,
    hypercube,
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    symmetric_tree,
)
from repro.graphs.random_graphs import random_connected_graph, random_tree
from repro.sim.actions import Move, Wait, WaitBlock
from repro.sim.batch import PortTrace, TraceCompiler, run_rendezvous_batch
from repro.sim.scheduler import SimulationLimit, run_rendezvous, run_single_agent
from repro.symmetry.shrink import shrink
from repro.symmetry.views import symmetric_pairs
from repro.util.lcg import derive_seed


def make_walker(seed, stop_after=None, raise_at=None, bad_port_at=None):
    """Deterministic pseudo-random agent: every choice is a pure
    function of the perception stream (hash-chained), mixing ``Move``,
    ``Wait`` and ``WaitBlock`` — the adversarial workload for the
    trace compiler's class splitting and wait fast-forwarding."""

    def algorithm(percept):
        state = derive_seed("walker", seed)
        steps = 0
        while True:
            e = -1 if percept.entry_port is None else percept.entry_port
            state = derive_seed("w", state, percept.degree, e)
            if raise_at is not None and steps == raise_at:
                raise RuntimeError(f"boom@{steps} clock={percept.clock}")
            if bad_port_at is not None and steps == bad_port_at:
                percept = yield Move(percept.degree + 3)
                steps += 1
                continue
            if stop_after is not None and steps >= stop_after:
                return
            r = state % 8
            if r < 5:
                action = Move(state % percept.degree)
            elif r < 7:
                action = Wait()
            else:
                action = WaitBlock(1 + state % 7)
            steps += 1
            percept = yield action

    return algorithm


def key(result):
    return (
        result.met,
        result.meeting_node,
        result.meeting_time,
        result.time_from_later,
        result.rounds_executed,
    )


def assert_matches_scalar(graph, stics, algorithm_factory, max_rounds, **kw):
    batch = run_rendezvous_batch(
        graph, stics, algorithm_factory(), max_rounds=max_rounds, **kw
    )
    for (u, v, delta), got in zip(stics, batch):
        oracles = None
        if "oracle_factory" in kw:
            of = kw["oracle_factory"]
            oracles = (of(u), of(v))
        budget = max_rounds(u, v, delta) if callable(max_rounds) else max_rounds
        ref = run_rendezvous(
            graph,
            u,
            v,
            delta,
            algorithm_factory(),
            max_rounds=budget,
            oracles=oracles,
        )
        assert key(got) == key(ref), (u, v, delta)
        assert got.crossings == () and got.traces is None


FAMILIES = [
    oriented_ring(5),
    oriented_ring(6),
    oriented_torus(3, 3),
    path_graph(4),
    star_graph(3),
    symmetric_tree(2, 1),
    complete_graph(4),
    hypercube(3),
]


class TestAgainstScalar:
    @pytest.mark.parametrize("graph", FAMILIES, ids=lambda g: f"n{g.n}")
    @pytest.mark.parametrize("seed", [0, 1])
    def test_families_full_sweep(self, graph, seed):
        """All ordered pairs (including u == v) at mixed delays."""
        stics = [
            (u, v, delta)
            for u in range(graph.n)
            for v in range(graph.n)
            for delta in (0, 1, 5)
        ]
        assert_matches_scalar(graph, stics, lambda: make_walker(seed), 48)

    @given(
        n=st.integers(3, 8),
        extra=st.integers(0, 3),
        gseed=st.integers(0, 5),
        wseed=st.integers(0, 5),
        deltas=st.lists(st.integers(0, 9), min_size=1, max_size=4),
        budget=st.integers(0, 60),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_graphs(self, n, extra, gseed, wseed, deltas, budget):
        graph = random_connected_graph(n, extra, gseed)
        stics = [
            (u, v, delta)
            for delta in deltas
            for u in (0, n // 2)
            for v in range(n)
        ]
        assert_matches_scalar(graph, stics, lambda: make_walker(wseed), budget)

    @given(n=st.integers(2, 8), gseed=st.integers(0, 3), wseed=st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_random_trees_terminating_agent(self, n, gseed, wseed):
        """Scripts that return (StopIteration) wait in place forever."""
        graph = random_tree(n, gseed)
        stics = [
            (u, v, delta)
            for u in range(graph.n)
            for v in range(graph.n)
            for delta in (0, 2)
        ]
        assert_matches_scalar(
            graph, stics, lambda: make_walker(wseed, stop_after=3), 40
        )

    def test_u_equals_v_edge_cases(self):
        graph = oriented_torus(3, 3)
        # delta == 0 from the same node meets instantly at round 0.
        res = run_rendezvous_batch(
            graph, [(4, 4, 0)], make_walker(1), max_rounds=10
        )[0]
        assert (res.met, res.meeting_time, res.meeting_node) == (True, 0, 4)
        # Positive delay from the same node: the earlier agent may have
        # left by the time the later one appears — scalar decides.
        stics = [(u, u, delta) for u in range(graph.n) for delta in (1, 3, 6)]
        assert_matches_scalar(graph, stics, lambda: make_walker(2), 50)

    def test_symm_rv_exact_meetings(self):
        """Dedicated SymmRV: the paper workload, exact on every field."""
        for graph in (oriented_ring(6), oriented_torus(3, 3)):
            uxs = TUNED.uxs(graph.n)
            groups = {}
            for u, v in symmetric_pairs(graph):
                groups.setdefault(shrink(graph, u, v), []).append((u, v))
            for d, pairs in groups.items():
                bound = TUNED.symm_bound(graph.n, d, d)
                algo = make_symm_rv_algorithm(graph.n, d, d, uxs=uxs)
                stics = [(u, v, d) for u, v in pairs]
                assert_matches_scalar(
                    graph, stics, lambda a=algo: a, 2 * bound + d + 10
                )

    def test_universal_oracle_mode(self):
        """UniversalRV with per-start oracles (private decision tries)."""
        graph = oriented_ring(5)
        algo = make_universal_algorithm(TUNED)
        budgets = {}
        for u in range(graph.n):
            for v in range(graph.n):
                for delta in (0, 1, 2):
                    d = max(shrink(graph, u, v), 1) if u != v else 1
                    budgets[(u, v, delta)] = (
                        delta
                        + universal_round_budget(TUNED, graph.n, d, delta)
                        + 1
                    )
        stics = [k for k in budgets if k[2] >= (shrink(graph, *k[:2]) if k[0] != k[1] else 0)]
        assert_matches_scalar(
            graph,
            stics,
            lambda: algo,
            lambda u, v, delta: budgets[(u, v, delta)],
            oracle_factory=lambda s: UniversalOracle(graph, s, TUNED),
        )

    @pytest.mark.parametrize(
        "kw", [{"raise_at": 0}, {"raise_at": 4}, {"bad_port_at": 2}]
    )
    def test_error_parity(self, kw):
        """Agent failures surface iff (and as) the scalar run would
        raise them — including the global-round wording for the later
        agent's invalid moves."""
        graph = oriented_ring(6)
        for u, v, delta in [(0, 3, 0), (0, 3, 2), (2, 2, 5), (1, 4, 9)]:
            for budget in (1, 3, 30):
                try:
                    ref = run_rendezvous(
                        graph, u, v, delta,
                        make_walker(3, **kw), max_rounds=budget,
                    )
                    ref_exc = None
                except Exception as exc:
                    ref, ref_exc = None, (type(exc), str(exc))
                try:
                    got = run_rendezvous_batch(
                        graph, [(u, v, delta)],
                        make_walker(3, **kw), max_rounds=budget,
                    )[0]
                    got_exc = None
                except Exception as exc:
                    got, got_exc = None, (type(exc), str(exc))
                assert ref_exc == got_exc, (u, v, delta, budget)
                if ref is not None:
                    assert key(got) == key(ref)

    def test_raise_on_limit_parity(self):
        graph = path_graph(4)
        walker = lambda: make_walker(0, stop_after=0)  # both agents sit
        with pytest.raises(SimulationLimit):
            run_rendezvous(
                graph, 0, 3, 1, walker(), max_rounds=9, raise_on_limit=True
            )
        with pytest.raises(SimulationLimit, match="within 9 rounds"):
            run_rendezvous_batch(
                graph, [(0, 3, 1)], walker(), max_rounds=9, raise_on_limit=True
            )
        # A meeting STIC is unaffected by the flag.
        res = run_rendezvous_batch(
            graph, [(0, 0, 0)], walker(), max_rounds=9, raise_on_limit=True
        )[0]
        assert res.met

    def test_validation(self):
        graph = path_graph(3)
        with pytest.raises(ValueError, match="non-negative"):
            run_rendezvous_batch(graph, [(0, 1, -1)], make_walker(0), max_rounds=5)
        with pytest.raises(ValueError, match="non-negative"):
            run_rendezvous_batch(graph, [(0, 1, 0)], make_walker(0), max_rounds=-2)

    def test_empty_stics(self):
        graph = path_graph(3)
        assert run_rendezvous_batch(graph, [], make_walker(0), max_rounds=5) == []

    def test_stic_objects_accepted(self):
        from repro.core import STIC

        graph = oriented_ring(5)
        stics = [STIC(0, 2, 1), STIC(1, 3, 2)]
        batch = run_rendezvous_batch(graph, stics, make_walker(4), max_rounds=40)
        for s, got in zip(stics, batch):
            ref = run_rendezvous(
                graph, s.u, s.v, s.delta, make_walker(4), max_rounds=40
            )
            assert key(got) == key(ref)


class TestTraceCompiler:
    def test_reuse_across_calls(self):
        """A shared compiler must not change results — only skip work."""
        graph = oriented_torus(3, 3)
        compiler = TraceCompiler(graph, make_walker(1))
        first = run_rendezvous_batch(
            graph, [(0, 4, 1)], make_walker(1),
            max_rounds=30, compiler=compiler,
        )
        stics = [(0, 4, 1), (2, 6, 0), (4, 4, 3), (8, 1, 2)]
        second = run_rendezvous_batch(
            graph, stics, make_walker(1), max_rounds=300, compiler=compiler
        )
        assert key(first[0]) == key(
            run_rendezvous(graph, 0, 4, 1, make_walker(1), max_rounds=30)
        )
        for (u, v, delta), got in zip(stics, second):
            ref = run_rendezvous(
                graph, u, v, delta, make_walker(1), max_rounds=300
            )
            assert key(got) == key(ref)

    def test_port_trace_step_function(self):
        graph = oriented_ring(6)
        compiler = TraceCompiler(graph, make_walker(7))
        trace = compiler.trace(2, 25)
        assert isinstance(trace, PortTrace)
        positions, _ = run_single_agent(graph, 2, make_walker(7), max_rounds=25)
        for clock in range(26):
            assert trace.position(clock) == positions[clock], clock

    def test_position_outside_range_raises(self):
        graph = oriented_ring(6)
        compiler = TraceCompiler(graph, make_walker(7))
        trace = compiler.trace(0, 10)
        with pytest.raises(ValueError):
            trace.position(-1)
        if not trace.complete:
            with pytest.raises(ValueError):
                trace.position(trace.valid_through + 10**9)

    def test_terminated_trace_is_complete(self):
        graph = path_graph(4)
        compiler = TraceCompiler(graph, make_walker(0, stop_after=2))
        trace = compiler.trace(0, 5)
        assert trace.complete and trace.limit == np.inf
        # Positions defined arbitrarily far: the agent sits forever.
        assert trace.position(10**12) == trace.position(trace.times[-1])
