"""The adversary-schedule subsystem: schedule encodings and the two
Section 5 properties, promoted from one-off probes in
``e_async_random`` into parametrized tests.

* *mirror impossibility*: from symmetric starts, the mirror schedule
  never yields a node meeting — for any algorithm and any event
  budget (the paper's "only space can break symmetry asynchronously").
* *eager possibility*: from non-symmetric starts on the example
  families, the benign alternating schedule always meets.
"""

import numpy as np
import pytest

from repro.core import make_universal_algorithm
from repro.core.profile import tuned_profile
from repro.graphs import (
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    two_node_graph,
)
from repro.sim import Move, Wait
from repro.sim.schedule_adversary import (
    EagerSchedule,
    FixedDelaySchedule,
    MirrorSchedule,
    RandomSchedule,
    RateSkewSchedule,
    WordSchedule,
    run_schedule_adversary,
    run_schedule_sweep,
)
from repro.symmetry import (
    ASYNC_NODE_MEETING,
    async_feasibility_atlas,
    symmetric_pairs,
)
from repro.util.lcg import SplitMix64


def move_forever(percept):
    while True:
        percept = yield Move(0)


def seeded_mover(seed):
    def algorithm(percept):
        rng = SplitMix64(seed)
        while True:
            if rng.randrange(3):
                percept = yield Move(rng.randrange(percept.degree))
            else:
                percept = yield Wait()

    return algorithm


def faithful_universal():
    profile = tuned_profile(view_mode="faithful", name="sched-faithful")
    return make_universal_algorithm(profile)


ALL_SCHEDULES = [
    MirrorSchedule(),
    EagerSchedule(),
    EagerSchedule(1),
    FixedDelaySchedule(0),
    FixedDelaySchedule(4),
    RateSkewSchedule(1, 3),
    RateSkewSchedule(2, 3),
    WordSchedule(("ab", "a", "-", "b")),
    RandomSchedule(17),
]


class TestScheduleEncoding:
    @pytest.mark.parametrize("schedule", ALL_SCHEDULES, ids=lambda s: s.name)
    def test_mask_matches_active(self, schedule):
        """The vectorized mask and the scalar query are one encoding."""
        mask = schedule.mask(64)
        assert mask.shape == (64, 2) and mask.dtype == bool
        for k in range(64):
            assert tuple(mask[k]) == schedule.active(k), (schedule.name, k)

    @pytest.mark.parametrize("schedule", ALL_SCHEDULES, ids=lambda s: s.name)
    def test_cumulative_moves(self, schedule):
        counts = schedule.cumulative_moves(50)
        assert counts.shape == (51, 2)
        assert (counts[0] == 0).all()
        assert (np.diff(counts, axis=0) >= 0).all()
        assert (counts[50] == schedule.mask(50).sum(axis=0)).all()

    def test_random_schedule_reproducible(self):
        a = RandomSchedule(123).mask(200)
        b = RandomSchedule(123).mask(200)
        assert (a == b).all()
        assert not (a == RandomSchedule(124).mask(200)).all()

    def test_random_schedule_interleaved_queries(self):
        """Scalar queries then a deeper mask must agree (cached stream)."""
        s = RandomSchedule(5)
        head = [s.active(k) for k in range(10)]
        mask = s.mask(40)
        assert [tuple(row) for row in mask[:10]] == head

    def test_word_schedule_rejects_bad_symbols(self):
        with pytest.raises(ValueError, match="unknown schedule symbol"):
            WordSchedule(("a", "xyz"))
        with pytest.raises(ValueError, match="non-empty"):
            WordSchedule(())

    def test_word_schedule_rejects_bare_string(self):
        # "ab" as a str would iterate into alternation, not lockstep.
        with pytest.raises(TypeError, match="bare string"):
            WordSchedule("ab")

    def test_validation(self):
        with pytest.raises(ValueError):
            EagerSchedule(2)
        with pytest.raises(ValueError):
            FixedDelaySchedule(-1)
        with pytest.raises(ValueError):
            RateSkewSchedule(0, 1)
        with pytest.raises(ValueError):
            RandomSchedule(1, weights=(0, 0, 0))


SYMMETRIC_FAMILIES = [
    ("P2", two_node_graph()),
    ("ring6", oriented_ring(6)),
    ("ring8", oriented_ring(8)),
    ("torus3x3", oriented_torus(3, 3)),
]


class TestMirrorImpossibility:
    """Mirror schedule never yields a node meeting from symmetric
    starts — any algorithm, any budget."""

    @pytest.mark.parametrize(
        "name,graph", SYMMETRIC_FAMILIES, ids=[n for n, _ in SYMMETRIC_FAMILIES]
    )
    @pytest.mark.parametrize("budget", [50, 500, 3000])
    def test_universal_never_meets(self, name, graph, budget):
        cells = [(u, v, MirrorSchedule()) for u, v in symmetric_pairs(graph)]
        outcomes = run_schedule_sweep(
            graph, cells, faithful_universal(), max_events=budget
        )
        assert not any(out.met for out in outcomes)

    @pytest.mark.parametrize(
        "algorithm_factory",
        [move_forever, seeded_mover(3), seeded_mover(99)],
        ids=["mover", "seeded3", "seeded99"],
    )
    @pytest.mark.parametrize(
        "name,graph", SYMMETRIC_FAMILIES, ids=[n for n, _ in SYMMETRIC_FAMILIES]
    )
    def test_any_algorithm_never_meets(self, algorithm_factory, name, graph):
        cells = [(u, v, MirrorSchedule()) for u, v in symmetric_pairs(graph)]
        outcomes = run_schedule_sweep(
            graph, cells, algorithm_factory, max_events=1000
        )
        assert not any(out.met for out in outcomes)

    def test_atlas_classes_on_symmetric_pairs(self):
        """Atlas view: no mirror cell is ever a node meeting."""
        g = oriented_ring(6)
        atlas = async_feasibility_atlas(
            g,
            faithful_universal(),
            [MirrorSchedule(), RandomSchedule(2)],
            max_events=2000,
            pairs=symmetric_pairs(g),
        )
        for entry in atlas:
            assert entry.symmetric
            if entry.schedule.name == "mirror":
                assert entry.meeting_class != ASYNC_NODE_MEETING


NONSYM_CASES = [
    ("P3-ends", path_graph(3), 0, 2),
    ("P4-inner", path_graph(4), 0, 2),
    ("P5-ends", path_graph(5), 0, 4),
    ("star-leaf-leaf", star_graph(3), 1, 2),
    ("star-center-leaf", star_graph(3), 0, 2),
]


class TestEagerPossibility:
    """Eager schedule always meets from non-symmetric starts on the
    example families: space keeps working when time does not."""

    @pytest.mark.parametrize(
        "name,graph,u,v", NONSYM_CASES, ids=[c[0] for c in NONSYM_CASES]
    )
    def test_universal_meets(self, name, graph, u, v):
        out = run_schedule_adversary(
            graph, u, v, faithful_universal(), EagerSchedule(), max_events=500_000
        )
        assert out.met

    def test_batched_sweep_form(self):
        """Same property through the batched engine, one call."""
        for name, graph, u, v in NONSYM_CASES:
            out = run_schedule_sweep(
                graph,
                [(u, v, EagerSchedule()), (u, v, EagerSchedule(1))],
                faithful_universal(),
                max_events=500_000,
            )
            assert all(o.met for o in out), name


class TestScheduleSemantics:
    def test_fixed_delay_rescues_mover_on_ring(self):
        """In event space a start delay re-creates the synchronous
        resource: delaying the second agent by the start distance makes
        two identical forward-walkers meet."""
        g = oriented_ring(6)
        out = run_schedule_adversary(
            g, 0, 3, move_forever, FixedDelaySchedule(3), max_events=100
        )
        assert out.met and out.events == 3

    def test_mirror_crossings_are_counted(self):
        g = two_node_graph()
        out = run_schedule_adversary(
            g, 0, 1, move_forever, MirrorSchedule(), max_events=100
        )
        assert not out.met and out.edge_meetings == 100

    def test_idle_word_makes_no_progress(self):
        g = oriented_ring(6)
        out = run_schedule_adversary(
            g, 0, 3, move_forever, WordSchedule(("-",)), max_events=250
        )
        assert not out.met and out.events == 250 and out.edge_meetings == 0

    def test_compiler_shared_with_sync_engine(self):
        """One TraceCompiler serves both the synchronous batch engine
        and the async schedule engine (same traces, same algorithm)."""
        from repro.sim.batch import TraceCompiler, run_rendezvous_batch

        g = oriented_ring(8)
        algorithm = seeded_mover(7)
        compiler = TraceCompiler(g, algorithm)
        sync = run_rendezvous_batch(
            g, [(0, 4, 2)], algorithm, max_rounds=200, compiler=compiler
        )
        async_out = run_schedule_sweep(
            g,
            [(0, 4, EagerSchedule())],
            algorithm,
            max_events=200,
            compiler=compiler,
        )
        assert sync[0].met is not None and async_out[0] is not None
