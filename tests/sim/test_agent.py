"""Unit tests for agent-program combinators and traces."""

import pytest

from repro.graphs import oriented_ring, path_graph
from repro.sim import (
    Move,
    Wait,
    WaitBlock,
    follow_ports,
    move_once,
    run_single_agent,
    wait_rounds,
)
from repro.sim.actions import Perception
from repro.sim.trace import AgentTrace, TraceEntry


class TestActions:
    def test_move_validates(self):
        with pytest.raises(ValueError):
            Move(-1)

    def test_waitblock_validates(self):
        with pytest.raises(ValueError):
            WaitBlock(0)

    def test_actions_are_values(self):
        assert Move(2) == Move(2)
        assert Wait() == Wait()
        assert WaitBlock(5) == WaitBlock(5)


class TestSubroutines:
    def test_follow_ports(self):
        g = oriented_ring(5)

        def algorithm(percept):
            percept = yield from follow_ports(percept, [0, 0, 1])
            return percept

        visited, final = run_single_agent(g, 0, algorithm, max_rounds=10)
        assert visited == [0, 1, 2, 1]
        assert final == 1

    def test_move_once_validates_against_degree(self):
        g = path_graph(3)

        def algorithm(percept):
            percept = yield from move_once(percept, 1)  # invalid at an end
            return percept

        with pytest.raises(ValueError, match="degree"):
            run_single_agent(g, 0, algorithm, max_rounds=5)

    def test_wait_rounds_zero_is_noop(self):
        g = path_graph(3)

        def algorithm(percept):
            percept = yield from wait_rounds(percept, 0)
            percept = yield from move_once(percept, 0)
            return percept

        visited, _ = run_single_agent(g, 0, algorithm, max_rounds=5)
        assert visited == [0, 1]

    def test_wait_rounds_negative_raises(self):
        g = path_graph(3)

        def algorithm(percept):
            percept = yield from wait_rounds(percept, -1)
            return percept

        with pytest.raises(ValueError):
            run_single_agent(g, 0, algorithm, max_rounds=5)

    def test_wait_rounds_duration(self):
        g = path_graph(3)

        def algorithm(percept):
            percept = yield from wait_rounds(percept, 7)
            return percept

        visited, _ = run_single_agent(g, 0, algorithm, max_rounds=20)
        assert visited == [0] * 8


class TestTrace:
    def test_port_history_skips_waits(self):
        trace = AgentTrace(start_node=0, start_time=0)
        trace.entries.append(TraceEntry(0, 0, Move(1), 0))
        trace.entries.append(TraceEntry(1, 5, Wait(), None))
        trace.entries.append(TraceEntry(2, 5, Move(0), 2))
        assert trace.port_history() == [(1, 0), (0, 2)]

    def test_nodes_visited(self):
        trace = AgentTrace(start_node=3, start_time=1)
        trace.entries.append(TraceEntry(1, 3, Move(0), 1))
        trace.entries.append(TraceEntry(2, 4, Wait(), None))
        assert trace.nodes_visited() == [3, 4]

    def test_perception_is_frozen(self):
        p = Perception(degree=2, entry_port=None, clock=0)
        with pytest.raises(AttributeError):
            p.degree = 3  # type: ignore[misc]
