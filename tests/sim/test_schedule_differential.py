"""Differential fuzz: the batched schedule engine against the scalar
adversary reference, mirroring ``test_scheduler_differential.py``.

Hundreds of seeded random instances (graph family x start pair x
adversary schedule x event budget) must produce bit-identical
``met`` / ``meeting_node`` / ``events`` (the async meeting time) /
``edge_meetings`` (crossings) under :func:`run_schedule_sweep` and
:func:`run_schedule_adversary`.  Budgets are per-cell (exercising the
callable ``max_events`` path), pairs may coincide (``u == v`` meets at
event 0), and the schedule pool spans every built-in adversary family
including idling words and seeded random activation streams.
"""

import pytest

from repro.graphs import oriented_ring, oriented_torus, path_graph, star_graph
from repro.graphs.random_graphs import random_connected_graph
from repro.sim import Move, Wait, WaitBlock
from repro.sim.schedule_adversary import (
    EagerSchedule,
    FixedDelaySchedule,
    MirrorSchedule,
    RandomSchedule,
    RateSkewSchedule,
    WordSchedule,
    run_schedule_adversary,
    run_schedule_sweep,
)
from repro.util.lcg import SplitMix64, derive_seed

GRAPHS = [
    path_graph(4),
    oriented_ring(5),
    oriented_ring(6),
    oriented_torus(3, 3),
    star_graph(4),
    random_connected_graph(6, 3, seed=4),
    random_connected_graph(7, 3, seed=9),
]

AGENT_SEEDS = (11, 23, 47)
CELLS_PER_RUN = 12


def seeded_agent(seed):
    """A pseudo-random deterministic agent program (moves, waits, and
    wait blocks, including clock-dependent port choices)."""

    def algorithm(percept):
        rng = SplitMix64(seed)
        while True:
            roll = rng.randrange(10)
            if roll < 5:
                percept = yield Move(rng.randrange(percept.degree))
            elif roll < 7:
                percept = yield Wait()
            elif roll < 9:
                percept = yield WaitBlock(rng.randrange(7) + 1)
            else:
                # clock-dependent choice exercises perception delivery
                percept = yield Move(percept.clock % percept.degree)

    return algorithm


def terminating_agent(seed, lifetime):
    """An agent whose script ends after ``lifetime`` actions (the
    done-agent clamp path: activations past the end are no-ops)."""

    def algorithm(percept):
        rng = SplitMix64(seed)
        for _ in range(lifetime):
            if rng.randrange(4):
                percept = yield Move(rng.randrange(percept.degree))
            else:
                percept = yield Wait()

    return algorithm


def schedule_pool(rng):
    return [
        MirrorSchedule(),
        EagerSchedule(),
        EagerSchedule(1),
        FixedDelaySchedule(rng.randrange(9)),
        RateSkewSchedule(1 + rng.randrange(3), 1 + rng.randrange(4)),
        WordSchedule(
            tuple(
                ("a", "b", "ab", "-")[rng.randrange(4)]
                for _ in range(1 + rng.randrange(5))
            )
        ),
        RandomSchedule(rng.randrange(10**6)),
        RandomSchedule(rng.randrange(10**6), weights=(2, 1, 1)),
    ]


def _budget(u, v, schedule):
    """Per-cell event budget, a pure function of the cell (so the
    callable ``max_events`` path is exercised unambiguously)."""
    return derive_seed("sched-diff-budget", u, v, schedule.name) % 501


def _instances():
    """Deterministic fuzz corpus: one batched call per (graph, agent)."""
    for graph_idx, graph in enumerate(GRAPHS):
        for agent_seed in AGENT_SEEDS:
            rng = SplitMix64(derive_seed("sched-diff", graph_idx, agent_seed))
            pool = schedule_pool(rng)
            cells = []
            for _ in range(CELLS_PER_RUN):
                u = rng.randrange(graph.n)
                v = rng.randrange(graph.n)  # u == v allowed: event-0 meeting
                cells.append((u, v, pool[rng.randrange(len(pool))]))
            yield graph_idx, graph, agent_seed, cells


@pytest.mark.parametrize(
    "graph_idx,agent_seed",
    [(g, s) for g in range(len(GRAPHS)) for s in AGENT_SEEDS],
)
def test_batched_matches_scalar(graph_idx, agent_seed):
    for gi, graph, aseed, cells in _instances():
        if gi != graph_idx or aseed != agent_seed:
            continue
        outcomes = run_schedule_sweep(
            graph, cells, seeded_agent(agent_seed), max_events=_budget
        )
        for (u, v, schedule), got in zip(cells, outcomes):
            ref = run_schedule_adversary(
                graph,
                u,
                v,
                seeded_agent(agent_seed),
                schedule,
                max_events=_budget(u, v, schedule),
            )
            assert (
                got.met,
                got.meeting_node,
                got.events,
                got.edge_meetings,
            ) == (ref.met, ref.meeting_node, ref.events, ref.edge_meetings), (
                graph_idx,
                agent_seed,
                (u, v, schedule.name),
            )


def test_corpus_size():
    """The acceptance bar: at least 200 fuzzed instances."""
    total = sum(len(cells) for *_, cells in _instances())
    assert total >= 200, total


def test_terminating_agents_match():
    """Scripts that end mid-run exercise the done-agent clamp."""
    mismatches = 0
    total = 0
    for graph in (oriented_ring(6), path_graph(5)):
        rng = SplitMix64(derive_seed("sched-diff-term", graph.n))
        pool = schedule_pool(rng)
        for lifetime in (0, 1, 5, 17):
            cells = [
                (rng.randrange(graph.n), rng.randrange(graph.n), s)
                for s in pool
            ]
            outcomes = run_schedule_sweep(
                graph,
                cells,
                terminating_agent(3, lifetime),
                max_events=120,
            )
            for (u, v, schedule), got in zip(cells, outcomes):
                ref = run_schedule_adversary(
                    graph,
                    u,
                    v,
                    terminating_agent(3, lifetime),
                    schedule,
                    max_events=120,
                )
                total += 1
                mismatches += (
                    got.met,
                    got.meeting_node,
                    got.events,
                    got.edge_meetings,
                ) != (ref.met, ref.meeting_node, ref.events, ref.edge_meetings)
    assert total >= 60 and mismatches == 0


def test_zero_budget_and_coincident_start():
    g = oriented_ring(5)
    sched = MirrorSchedule()
    got = run_schedule_sweep(g, [(2, 2, sched), (0, 3, sched)],
                             seeded_agent(1), max_events=0)
    ref = [
        run_schedule_adversary(g, 2, 2, seeded_agent(1), sched, max_events=0),
        run_schedule_adversary(g, 0, 3, seeded_agent(1), sched, max_events=0),
    ]
    for a, b in zip(got, ref):
        assert a == b
    assert got[0].met and got[0].events == 0
    assert not got[1].met


def test_invalid_port_error_parity():
    """Engine-detected invalid moves raise the scalar message."""

    def bad(percept):
        yield Move(0)
        while True:
            percept = yield Move(7)

    g = oriented_ring(5)
    with pytest.raises(ValueError) as scalar_exc:
        run_schedule_adversary(g, 0, 2, bad, MirrorSchedule(), max_events=50)
    with pytest.raises(ValueError) as batch_exc:
        run_schedule_sweep(g, [(0, 2, MirrorSchedule())], bad, max_events=50)
    assert str(scalar_exc.value) == str(batch_exc.value)


def test_error_not_reached_is_not_raised():
    """An error beyond the budget (or after a meeting) never binds."""

    def explodes_late(percept):
        for _ in range(10):
            percept = yield Move(0)
        raise RuntimeError("boom")

    g = oriented_ring(6)
    # budget too small to reach the failing decision
    out = run_schedule_sweep(
        g, [(0, 3, MirrorSchedule())], explodes_late, max_events=5
    )[0]
    assert not out.met
    # u == v meets at event 0, before anything is pulled
    out = run_schedule_sweep(
        g, [(1, 1, MirrorSchedule())], explodes_late, max_events=50
    )[0]
    assert out.met and out.events == 0


def test_agent_error_parity():
    def explodes(percept):
        percept = yield Move(0)
        raise RuntimeError("boom")

    g = oriented_ring(6)
    with pytest.raises(RuntimeError, match="boom"):
        run_schedule_adversary(
            g, 0, 3, explodes, EagerSchedule(), max_events=50
        )
    with pytest.raises(RuntimeError, match="boom"):
        run_schedule_sweep(g, [(0, 3, EagerSchedule())], explodes, max_events=50)


def test_straggler_does_not_poison_resolved_cells():
    """Regression: move needs are re-derived from still-pending cells
    each deepening round, so a straggler cell never deepens — or
    fuel-faults — a move-starved trace that only already-resolved
    cells asked about (here: cell (0, 0) resolves at event 0 without
    ever pulling its starving degree-1 agent, while cell (1, 3) keeps
    deepening its healthy degree-2 traces)."""

    def degree_scripted(percept):
        if percept.degree == 1:
            percept = yield Move(0)
            while True:
                percept = yield Wait()
        while True:
            percept = yield Move(percept.clock % percept.degree)

    g = path_graph(5)
    cells = [(0, 0, WordSchedule(("a",))), (1, 3, MirrorSchedule())]
    events = {0: 100_000, 1: 600}
    outs = run_schedule_sweep(
        g,
        cells,
        degree_scripted,
        max_events=lambda u, v, s: events[u],
        fuel=128,
        initial_horizon=8,
    )
    refs = [
        run_schedule_adversary(
            g, u, v, degree_scripted, s, max_events=events[u]
        )
        for u, v, s in cells
    ]
    assert outs == refs
    assert outs[0].met and outs[0].events == 0


def test_pure_waiter_hits_fuel_limit():
    """Wait-forever agents starve the engine like the scalar fuel rule."""

    def waiter(percept):
        while True:
            percept = yield Wait()

    g = oriented_ring(5)
    with pytest.raises(RuntimeError, match="fuel"):
        run_schedule_sweep(
            g, [(0, 2, MirrorSchedule())], waiter, max_events=10, fuel=64
        )
