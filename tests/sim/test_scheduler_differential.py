"""Differential test: the production scheduler (with wait-block
fast-forwarding) against a deliberately naive round-by-round reference.

The naive scheduler expands every WaitBlock into single waits and
advances one global round per iteration — slow but obviously correct.
Random agent programs (seeded mixes of moves, waits, and wait blocks)
must produce byte-identical outcomes under both."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import oriented_ring, oriented_torus, path_graph
from repro.graphs.random_graphs import random_connected_graph
from repro.sim import Move, Wait, WaitBlock, run_rendezvous
from repro.sim.actions import Perception
from repro.util.lcg import SplitMix64


def naive_run(graph, u, v, delta, algorithm, max_rounds):
    """Reference scheduler: no fast-forward, no wait batching."""
    nodes = [u, v]
    starts = [0, delta]
    scripts = [None, None]
    started = [False, False]
    done = [False, False]
    entry = [None, None]
    pending = [0, 0]
    crossings = []

    def percept(i, time):
        return Perception(
            degree=graph.degree(nodes[i]),
            entry_port=entry[i],
            clock=time - starts[i],
        )

    for i in (0, 1):
        if starts[i] == 0:
            scripts[i] = algorithm(percept(i, 0))
    if nodes[0] == nodes[1] and delta == 0:
        return (True, 0, nodes[0], tuple(crossings))

    for time in range(max_rounds):
        moves = [None, None]
        for i in (0, 1):
            if time < starts[i] or done[i]:
                continue
            if pending[i] > 0:
                pending[i] -= 1
                continue
            try:
                if not started[i]:
                    started[i] = True
                    action = next(scripts[i])
                else:
                    action = scripts[i].send(percept(i, time))
            except StopIteration:
                done[i] = True
                continue
            if isinstance(action, Move):
                moves[i] = action
            elif isinstance(action, Wait):
                pass
            elif isinstance(action, WaitBlock):
                pending[i] = action.rounds - 1
        if moves[0] is not None and moves[1] is not None:
            a_to = graph.succ(nodes[0], moves[0].port)
            b_to = graph.succ(nodes[1], moves[1].port)
            if a_to == nodes[1] and b_to == nodes[0] and nodes[0] != nodes[1]:
                crossings.append(time)
        for i in (0, 1):
            if time < starts[i]:
                continue
            if moves[i] is not None:
                entry[i] = graph.entry_port(nodes[i], moves[i].port)
                nodes[i] = graph.succ(nodes[i], moves[i].port)
        next_time = time + 1
        if next_time == delta:
            scripts[1] = algorithm(percept(1, next_time))
        if next_time >= delta and nodes[0] == nodes[1]:
            return (True, next_time, nodes[0], tuple(crossings))
    return (False, None, None, tuple(crossings))


def seeded_agent(seed):
    """A pseudo-random deterministic agent program."""

    def algorithm(percept):
        rng = SplitMix64(seed)
        while True:
            roll = rng.randrange(10)
            if roll < 5:
                percept = yield Move(rng.randrange(percept.degree))
            elif roll < 7:
                percept = yield Wait()
            elif roll < 9:
                percept = yield WaitBlock(rng.randrange(7) + 1)
            else:
                # clock-dependent choice exercises perception delivery
                percept = yield Move(percept.clock % percept.degree)

    return algorithm


GRAPHS = [
    path_graph(4),
    oriented_ring(5),
    oriented_torus(3, 3),
    random_connected_graph(6, 3, seed=4),
]


@given(
    graph_idx=st.integers(0, len(GRAPHS) - 1),
    u=st.integers(0, 3),
    v=st.integers(0, 3),
    delta=st.integers(0, 6),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=120, deadline=None)
def test_production_matches_naive(graph_idx, u, v, delta, seed):
    graph = GRAPHS[graph_idx]
    u %= graph.n
    v %= graph.n
    if u == v:
        v = (v + 1) % graph.n
    algorithm = seeded_agent(seed)
    horizon = 300
    fast = run_rendezvous(graph, u, v, delta, algorithm, max_rounds=horizon)
    slow = naive_run(graph, u, v, delta, seeded_agent(seed), horizon)
    assert (fast.met, fast.meeting_time, fast.meeting_node) == slow[:3]
    assert fast.crossings == slow[3]


def test_pure_waiter_equivalence():
    """All-wait programs exercise the fast-forward path exclusively."""

    def waiter(percept):
        while True:
            percept = yield WaitBlock(13)

    g = oriented_ring(5)
    fast = run_rendezvous(g, 0, 2, 3, waiter, max_rounds=200)
    slow = naive_run(g, 0, 2, 3, waiter, 200)
    assert not fast.met and not slow[0]
    assert fast.rounds_executed == 200
