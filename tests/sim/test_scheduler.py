"""Unit tests for the synchronous two-agent scheduler."""

import pytest

from repro.graphs import oriented_ring, path_graph, two_node_graph
from repro.sim import (
    Move,
    Perception,
    SimulationLimit,
    Wait,
    WaitBlock,
    run_rendezvous,
    run_single_agent,
    wait_forever,
)


def always_move(port=0):
    def algorithm(percept):
        while True:
            percept = yield Move(port)

    return algorithm


def always_wait(percept):
    while True:
        percept = yield Wait()


class TestMeetingSemantics:
    def test_two_node_delay_breaks_symmetry(self):
        # The introduction's example: "move every round" meets with an
        # odd delay on the 2-node graph...
        g = two_node_graph()
        r = run_rendezvous(g, 0, 1, 1, always_move(), max_rounds=100)
        assert r.met and r.meeting_time == 1 and r.time_from_later == 0

    def test_two_node_delay_zero_never_meets_but_crosses(self):
        g = two_node_graph()
        r = run_rendezvous(g, 0, 1, 0, always_move(), max_rounds=50)
        assert not r.met
        # They swap endpoints every round: a crossing per round.
        assert len(r.crossings) == 50

    def test_delay_three_meets(self):
        # Paper: "If identical agents start in this graph with delay 3,
        # executing 'move at each round', they meet 3 rounds after the
        # start of the earlier agent."
        g = two_node_graph()
        r = run_rendezvous(g, 0, 1, 3, always_move(), max_rounds=100)
        assert r.met and r.meeting_time == 3

    def test_even_delay_two_node_never_meets(self):
        g = two_node_graph()
        r = run_rendezvous(g, 0, 1, 2, always_move(), max_rounds=60)
        assert not r.met

    def test_meeting_at_later_agents_wakeup(self):
        # Agent A walks to v and waits; B appears at v at round delta.
        g = path_graph(3)

        def algorithm(percept):
            if percept.degree == 1:  # the endpoint agent walks inward
                percept = yield Move(0)
            yield from wait_forever(percept)

        r = run_rendezvous(g, 0, 1, 5, algorithm, max_rounds=50)
        assert r.met and r.meeting_time == 5 and r.time_from_later == 0

    def test_waiters_never_meet(self):
        g = oriented_ring(4)
        r = run_rendezvous(g, 0, 2, 1, always_wait, max_rounds=1000)
        assert not r.met and r.rounds_executed == 1000

    def test_crossing_is_not_meeting(self):
        g = path_graph(2)
        r = run_rendezvous(g, 0, 1, 0, always_move(), max_rounds=9)
        assert not r.met
        assert r.crossings == tuple(range(9))

    def test_raise_on_limit(self):
        g = oriented_ring(4)
        with pytest.raises(SimulationLimit):
            run_rendezvous(
                g, 0, 2, 0, always_wait, max_rounds=10, raise_on_limit=True
            )


class TestClockAndPerception:
    def test_clocks_are_local(self):
        observed = []

        def algorithm(percept):
            for _ in range(3):
                observed.append(percept.clock)
                percept = yield Wait()

        g = oriented_ring(4)
        run_rendezvous(g, 0, 2, 2, algorithm, max_rounds=10)
        # Both agents see clocks 0,1,2 regardless of delay.
        assert observed == [0, 1, 2, 0, 1, 2]

    def test_entry_port_sticky_across_waits(self):
        seen = []

        def algorithm(percept):
            percept = yield Move(0)
            seen.append(percept.entry_port)
            percept = yield Wait()
            seen.append(percept.entry_port)
            yield from wait_forever(percept)

        g = oriented_ring(5)
        run_rendezvous(g, 0, 2, 0, algorithm, max_rounds=10)
        assert seen[0] == 1  # entered clockwise neighbor via its port 1
        assert seen[1] == 1  # wait does not erase it

    def test_initial_perception(self):
        boxes = []

        def algorithm(percept):
            boxes.append(percept)
            yield from wait_forever(percept)

        g = path_graph(3)
        run_rendezvous(g, 0, 2, 0, algorithm, max_rounds=3)
        assert boxes[0] == Perception(degree=1, entry_port=None, clock=0)

    def test_invalid_port_raises(self):
        g = path_graph(3)
        with pytest.raises(ValueError, match="chose port"):
            run_rendezvous(g, 0, 2, 0, always_move(5), max_rounds=5)


class TestWaitBlockFastForward:
    def test_long_waits_are_cheap_and_exact(self):
        # A billion-round mutual wait must finish instantly and report
        # exact round accounting.
        def algorithm(percept):
            percept = yield WaitBlock(10**9)
            percept = yield Move(0)
            yield from wait_forever(percept)

        g = two_node_graph()
        r = run_rendezvous(g, 0, 1, 1, algorithm, max_rounds=3 * 10**9)
        # A moves at its round 1e9 (global 1e9); B moves at global 1e9+1.
        # A is at node 1 from global 1e9+1 onwards, B moves to node 0...
        # then both wait forever at swapped nodes: the crossing round is
        # the only interaction. Verify accounting only:
        assert r.rounds_executed <= 3 * 10**9
        assert len(r.crossings) in (0, 1)

    def test_fast_forward_stops_at_wakeup(self):
        # The later agent must wake exactly at round delta even if the
        # earlier agent is inside a huge wait block.
        met_at = []

        def algorithm(percept):
            if percept.clock == 0 and percept.degree == 1:
                pass
            percept = yield WaitBlock(10**6)
            yield from wait_forever(percept)

        g = two_node_graph()
        r = run_rendezvous(g, 0, 1, 999, algorithm, max_rounds=10**7)
        assert not r.met  # both wait at their own nodes

    def test_mixed_wait_and_move(self):
        # One agent waits in a block while the other walks into it.
        def algorithm(percept):
            if percept.degree == 2:  # middle starter waits
                yield from wait_forever(percept)
            percept = yield WaitBlock(3)
            percept = yield Move(0)
            yield from wait_forever(percept)

        g = path_graph(3)
        r = run_rendezvous(g, 0, 1, 0, algorithm, max_rounds=100)
        assert r.met and r.meeting_time == 4 and r.meeting_node == 1


class TestSingleAgent:
    def test_visited_counts_rounds(self):
        g = oriented_ring(4)

        def algorithm(percept):
            percept = yield Move(0)
            percept = yield Wait()
            percept = yield Move(0)
            return percept

        visited, final = run_single_agent(g, 0, algorithm, max_rounds=10)
        assert visited == [0, 1, 1, 2]
        assert final == 2

    def test_waitblock_expansion_truncated(self):
        g = oriented_ring(4)

        def algorithm(percept):
            percept = yield WaitBlock(100)
            return percept

        visited, final = run_single_agent(g, 0, algorithm, max_rounds=5)
        assert visited == [0] * 6 and final == 0

    def test_traces_recorded(self):
        g = two_node_graph()
        r = run_rendezvous(
            g, 0, 1, 1, always_move(), max_rounds=10, record_traces=True
        )
        assert r.traces is not None
        trace_a, trace_b = r.traces
        assert trace_a.start_node == 0 and trace_b.start_node == 1
        assert trace_a.entries[0].time == 0
        assert trace_a.port_history()[0] == (0, 0)
