"""Scheduler edge cases: oracle plumbing, extreme delays, validation."""

import pytest

from repro.graphs import oriented_ring, path_graph, two_node_graph
from repro.sim import Move, Wait, run_rendezvous, wait_forever


class TestOraclePlumbing:
    def test_per_agent_oracles_delivered(self):
        received = []

        def algorithm(percept, oracle):
            received.append(oracle)
            yield from wait_forever(percept)

        g = path_graph(3)
        run_rendezvous(
            g, 0, 2, 1, algorithm, max_rounds=10, oracles=("left", "right")
        )
        assert received == ["left", "right"]

    def test_no_oracles_single_arg(self):
        def algorithm(percept):
            yield from wait_forever(percept)

        g = path_graph(3)
        result = run_rendezvous(g, 0, 2, 0, algorithm, max_rounds=5)
        assert not result.met


class TestExtremeDelays:
    def test_delay_beyond_horizon(self):
        def algorithm(percept):
            yield from wait_forever(percept)

        g = two_node_graph()
        result = run_rendezvous(g, 0, 1, 100, algorithm, max_rounds=50)
        assert not result.met and result.rounds_executed == 50

    def test_huge_delay_with_fast_forward(self):
        # Earlier agent waits forever; later agent appears after 10^7
        # rounds on the earlier agent's node: meeting at exactly delta.
        def algorithm(percept):
            if percept.degree == 2:
                percept = yield Move(0)  # middle walks to node 0 and stays
            yield from wait_forever(percept)

        g = path_graph(3)
        delta = 10**7
        result = run_rendezvous(g, 1, 0, delta, algorithm, max_rounds=delta + 10)
        # agent 0 starts at node 1 (degree 2), moves to node 0, waits;
        # agent 1 appears at node 0 at round delta.
        assert result.met and result.meeting_time == delta

    def test_zero_max_rounds(self):
        def algorithm(percept):
            yield from wait_forever(percept)

        g = two_node_graph()
        result = run_rendezvous(g, 0, 1, 0, algorithm, max_rounds=0)
        assert not result.met and result.rounds_executed == 0


class TestValidation:
    def test_negative_delay(self):
        def algorithm(percept):
            yield Wait()

        with pytest.raises(ValueError):
            run_rendezvous(two_node_graph(), 0, 1, -1, algorithm, max_rounds=5)

    def test_bad_action_type(self):
        def algorithm(percept):
            yield "north"  # type: ignore[misc]

        with pytest.raises(TypeError):
            run_rendezvous(two_node_graph(), 0, 1, 0, algorithm, max_rounds=5)

    def test_script_exception_propagates(self):
        def algorithm(percept):
            yield Wait()
            raise RuntimeError("agent crashed")

        with pytest.raises(RuntimeError, match="agent crashed"):
            run_rendezvous(oriented_ring(4), 0, 2, 0, algorithm, max_rounds=5)


class TestFinishedAgents:
    def test_finished_agent_waits_in_place(self):
        # Agent 0's script ends immediately; agent 1 walks into it.
        def algorithm(percept):
            if percept.degree == 1:
                return
            percept = yield Move(0)
            yield from wait_forever(percept)

        g = path_graph(3)
        result = run_rendezvous(g, 0, 1, 0, algorithm, max_rounds=20)
        assert result.met and result.meeting_node == 0
        assert result.meeting_time == 1

    def test_both_finished_fast_forward(self):
        def algorithm(percept):
            return
            yield  # pragma: no cover - makes this a generator

        g = oriented_ring(4)
        result = run_rendezvous(g, 0, 2, 0, algorithm, max_rounds=10**9)
        assert not result.met
        assert result.rounds_executed == 10**9
