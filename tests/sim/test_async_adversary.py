"""Tests for the asynchronous-adversary counterpoint (Section 5)."""

import pytest

from repro.core import make_universal_algorithm
from repro.core.profile import tuned_profile
from repro.graphs import (
    oriented_ring,
    oriented_torus,
    path_graph,
    star_graph,
    two_node_graph,
)
from repro.sim import Move
from repro.sim.async_adversary import eager_adversary_run, mirror_adversary_run


def move_forever(percept):
    while True:
        percept = yield Move(0)


def faithful_universal():
    """UniversalRV in faithful mode (no oracles needed)."""
    profile = tuned_profile(view_mode="faithful", name="async-faithful")
    return make_universal_algorithm(profile)


class TestMirrorAdversary:
    @pytest.mark.parametrize(
        "graph,u,v",
        [
            (two_node_graph(), 0, 1),
            (oriented_ring(6), 0, 3),
            (oriented_torus(3, 3), 0, 4),
        ],
        ids=["P2", "ring6", "torus"],
    )
    def test_symmetric_positions_never_meet(self, graph, u, v):
        # The very algorithm that wins synchronously with delay >= Shrink
        # is powerless when the adversary owns the clock.
        out = mirror_adversary_run(
            graph, u, v, faithful_universal(), max_events=3000
        )
        assert not out.met

    def test_simple_mover_never_meets_but_crosses(self):
        g = two_node_graph()
        out = mirror_adversary_run(g, 0, 1, move_forever, max_events=100)
        assert not out.met
        assert out.edge_meetings == 100  # they swap through the edge forever

    def test_perception_streams_stay_identical(self):
        # The mechanism behind the impossibility: under lockstep, both
        # agents' (degree, entry_port) streams coincide.
        seen: list[list] = [[], []]
        instance = [0]

        def spy_algorithm(percept):
            me = instance[0]
            instance[0] += 1
            while True:
                seen[me].append((percept.degree, percept.entry_port))
                percept = yield Move(0)

        g = oriented_ring(6)
        mirror_adversary_run(g, 0, 3, spy_algorithm, max_events=50)
        assert seen[0] == seen[1]


class TestEagerAdversary:
    @pytest.mark.parametrize(
        "graph,u,v",
        [(path_graph(3), 0, 2), (star_graph(3), 1, 2)],
        ids=["P3", "star"],
    )
    def test_nonsymmetric_positions_meet(self, graph, u, v):
        out = eager_adversary_run(
            graph, u, v, faithful_universal(), max_events=500_000
        )
        assert out.met

    def test_meeting_detected_at_start(self):
        g = path_graph(3)
        out = eager_adversary_run(g, 1, 1, move_forever, max_events=10)
        assert out.met and out.events == 0


class TestModelMechanics:
    def test_waits_are_collapsed(self):
        # An algorithm that waits forever produces no events: the
        # adversary fast-forwards through waits, exposing that waiting
        # buys nothing asynchronously.
        from repro.sim import wait_forever as wf

        def waiter(percept):
            yield from wf(percept)

        g = two_node_graph()
        with pytest.raises(RuntimeError, match="fuel"):
            mirror_adversary_run(g, 0, 1, waiter, max_events=5)

    def test_invalid_move_rejected(self):
        def bad(percept):
            while True:
                percept = yield Move(7)

        with pytest.raises(ValueError):
            mirror_adversary_run(two_node_graph(), 0, 1, bad, max_events=5)
