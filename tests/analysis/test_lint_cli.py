"""``repro lint`` CLI: dispatch, formats, gating exit codes.

Includes the two acceptance-criteria gates from ISSUE 6: the repo's
own ``src/`` tree must lint clean with zero undocumented suppressions,
and the fixture corpus must exit non-zero.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
REPO_SRC = str(REPO_ROOT / "src")
FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _run_cli(args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", "lint", *args],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=cwd,
        env=env,
    )


def test_repo_src_lints_clean():
    """Acceptance gate: `repro lint src/` exits 0, no suppressions."""
    proc = _run_cli(["src"])
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s), 0 suppressed, 0 baselined" in proc.stdout


def test_fixture_corpus_gates_nonzero():
    """Acceptance gate: the known-bad corpus exits non-zero."""
    proc = _run_cli([str(FIXTURES)])
    assert proc.returncode == 1, proc.stdout + proc.stderr
    for rule_id in ("REPRO101", "REPRO102", "REPRO103", "REPRO104",
                    "REPRO105", "REPRO106"):
        assert rule_id in proc.stdout


def test_json_format_and_output_file(tmp_path):
    out = tmp_path / "lint-report.json"
    proc = _run_cli(
        [str(FIXTURES), "--format", "json", "--output", str(out)]
    )
    assert proc.returncode == 1
    payload = json.loads(out.read_text())
    assert payload["version"] == 1
    assert payload["summary"]["findings"] == len(payload["findings"])
    assert payload["findings"], "corpus run must report findings"
    # stdout carries the same canonical JSON document
    assert json.loads(proc.stdout) == payload


def test_list_rules():
    proc = _run_cli(["--list-rules"])
    assert proc.returncode == 0
    for rule_id in ("REPRO101", "REPRO102", "REPRO103", "REPRO104",
                    "REPRO105", "REPRO106"):
        assert rule_id in proc.stdout
    assert "PR 3" in proc.stdout  # rationales name the historical bugs


def test_select_restricts_rules():
    proc = _run_cli([str(FIXTURES), "--select", "repro104"])
    assert proc.returncode == 1
    assert "REPRO104" in proc.stdout
    assert "REPRO105" not in proc.stdout


def test_unknown_rule_is_usage_error():
    proc = _run_cli([str(FIXTURES), "--select", "REPRO999"])
    assert proc.returncode == 2
    assert "unknown rule" in proc.stderr


def test_missing_path_is_usage_error(tmp_path):
    proc = _run_cli([str(tmp_path / "absent")])
    assert proc.returncode == 2
    assert "no such file or directory" in proc.stderr


def test_write_baseline_then_clean(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        "import json\n"
        "def f(payload):\n"
        "    return json.dumps(payload)\n"
    )
    baseline = tmp_path / "baseline.json"
    proc = _run_cli([str(mod), "--write-baseline", str(baseline)])
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "wrote 1 fingerprint(s)" in proc.stdout
    proc = _run_cli([str(mod), "--baseline", str(baseline)])
    assert proc.returncode == 0
    assert "1 baselined" in proc.stdout
