"""REPRO101 good twin: the seed threads into every seeded callee."""

from __future__ import annotations


def random_ports(degree: int, seed: int = 0) -> list[int]:
    order = list(range(degree))
    shift = seed % max(degree, 1)
    return order[shift:] + order[:shift]


def random_instance(n: int, seed: int) -> list[list[int]]:
    return [random_ports(n, seed=seed + v) for v in range(n)]
