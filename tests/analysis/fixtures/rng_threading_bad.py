"""REPRO101 bad: a seed parameter that stops halfway down the stack.

Minimized from the default-seed gap class audited in
graphs/random_graphs.py and baselines/: the public entry point takes a
seed, but the helper it delegates to falls back to its own default, so
half the entropy path ignores the caller's seed.
"""

from __future__ import annotations


def random_ports(degree: int, seed: int = 0) -> list[int]:
    order = list(range(degree))
    shift = seed % max(degree, 1)
    return order[shift:] + order[:shift]


def random_instance(n: int, seed: int) -> list[list[int]]:
    # BUG: seed is accepted but never threaded into random_ports —
    # every caller's seed produces the same port labelling.
    return [random_ports(n) for _ in range(n)]
