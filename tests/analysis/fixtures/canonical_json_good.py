"""REPRO104 good twin: canonical encodings everywhere."""

import hashlib
import json


def cache_key(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def write_entry(path: str, entry: dict) -> None:
    with open(path, "w") as fh:
        json.dump(entry, fh, sort_keys=True, indent=2)


def journal_line(event: dict) -> str:
    # The shared helper at its canonical home satisfies REPRO104 too.
    from repro.util.encoding import canonical_json

    return canonical_json(event) + "\n"
