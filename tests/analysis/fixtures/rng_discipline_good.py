"""REPRO101 good twin: all randomness keyed by explicit seeds."""

import numpy as np

from repro.util.lcg import SplitMix64, derive_seed


def sample_nodes(n: int, seed: int) -> list[int]:
    rng = SplitMix64(derive_seed("sample", n, seed))
    first = rng.randrange(n)
    second = rng.randrange(n - 1)
    return [first, second if second < first else second + 1]


def noisy_weights(n: int, seed: int):
    gen = np.random.default_rng(seed)
    return gen.random(n)
