"""REPRO101 bad: ambient global-state RNG calls (never importable)."""

import random

import numpy as np


def sample_nodes(n: int) -> list[int]:
    # Hidden global Mersenne Twister: result depends on call history.
    chosen = random.sample(range(n), 2)
    random.shuffle(chosen)
    return chosen


def noisy_weights(n: int):
    # Legacy numpy global RNG + unseeded generator.
    base = np.random.rand(n)
    gen = np.random.default_rng()
    return base + gen.random(n)
