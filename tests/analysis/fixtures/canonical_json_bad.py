"""REPRO104 bad: insertion-ordered JSON feeding a content address.

Minimized from the PR 4-5 cache-corruption class: the store's key is
the SHA-256 of the encoded JSON, so two semantically equal payloads
built in different key orders produce different keys (spurious misses)
— or the same key maps to byte-different files, breaking the CI
cold==warm identity check.
"""

import hashlib
import json


def cache_key(payload: dict) -> str:
    # BUG: encoding depends on dict insertion order.
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()


def write_entry(path: str, entry: dict) -> None:
    with open(path, "w") as fh:
        # BUG: sort_keys must be the literal True.
        json.dump(entry, fh, sort_keys=bool(entry))
