"""REPRO103 good twin: materialize before the buffer escapes."""

import numpy as np

_SCRATCH = np.zeros(1024, dtype=np.int64)


def simulate_word(word: list[int], start: int) -> np.ndarray:
    pos = start
    _SCRATCH[0] = pos
    for step, port in enumerate(word, start=1):
        pos = pos + port
        _SCRATCH[step] = pos
    return _SCRATCH[: len(word) + 1].copy()


def fresh_positions(word: list[int], start: int) -> np.ndarray:
    # A fresh per-call buffer returned whole (no slice) is fine too.
    out = np.zeros(len(word) + 1, dtype=np.int64)
    out[0] = start
    for step, port in enumerate(word, start=1):
        out[step] = out[step - 1] + port
    return out
