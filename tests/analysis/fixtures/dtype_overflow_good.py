"""REPRO102 good twin: int64 accumulators, downcast only at the edges."""

import numpy as np


def bfs_distances(adjacency: np.ndarray) -> np.ndarray:
    n = adjacency.shape[0]
    dist = np.full((n, n), -1, dtype=np.int64)
    frontier = np.eye(n, dtype=np.int64)
    for step in range(n):
        newly = (frontier > 0) & (dist < 0)
        dist[newly] = step
        frontier = frontier @ adjacency
    return dist


def tally_visits(visits: np.ndarray, hits: np.ndarray) -> np.ndarray:
    counts = np.zeros(visits.shape, dtype=np.int64)
    counts += hits
    return counts


def compact_flags(reached: np.ndarray) -> np.ndarray:
    # Creating a small array is fine; only accumulation into one is not.
    return (reached > 0).astype(np.uint8)
