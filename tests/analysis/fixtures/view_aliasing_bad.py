"""REPRO103 bad: the PR 1 simulate_word_batch aliasing bug, minimized.

The real bug: repro/hardness/batch.py's word-batch simulator filled a
reused scratch buffer and returned numpy *views* (slices) of it.  The
next call overwrote the buffer in place — and with it every result the
caller was still holding.  The fix was an explicit ``.copy()`` plus a
regression test; this fixture is that bug with the simulation removed.
"""

import numpy as np

_SCRATCH = np.zeros(1024, dtype=np.int64)


def simulate_word(word: list[int], start: int) -> np.ndarray:
    pos = start
    _SCRATCH[0] = pos
    for step, port in enumerate(word, start=1):
        pos = pos + port
        _SCRATCH[step] = pos
    # BUG: a view of the shared scratch buffer escapes; the next call
    # rewrites the caller's "result" in place.
    return _SCRATCH[: len(word) + 1]
