"""REPRO102 bad: the PR 3 uint8 BFS accumulator bug, minimized.

The real bug: repro/symmetry/context.py's all-pairs BFS briefly used
the frontier matrix itself — a uint8 array — as the matmul
accumulator.  Path counts wrap mod 256 on graphs with enough short
cycles, a "reached" entry can wrap back to 0, and distances come out
*shorter* than real, silently corrupting Shrink values.  The fixed
kernel carries int64 accumulators (see the comment at
src/repro/symmetry/context.py:175).
"""

import numpy as np


def bfs_distances(adjacency: np.ndarray) -> np.ndarray:
    n = adjacency.shape[0]
    dist = np.full((n, n), -1, dtype=np.int64)
    frontier = np.eye(n, dtype=np.uint8)  # BUG: sub-int32 accumulator
    for step in range(n):
        newly = (frontier > 0) & (dist < 0)
        dist[newly] = step
        # BUG: matmul feedback wraps mod 256 once path counts grow.
        frontier = frontier @ adjacency
    return dist


def tally_visits(visits: np.ndarray, hits: np.ndarray) -> np.ndarray:
    counts = np.zeros(visits.shape, dtype="uint16")
    counts += hits  # BUG: in-place accumulation into uint16
    np.add(counts, hits, out=counts)  # BUG: out= reduction into uint16
    return counts
