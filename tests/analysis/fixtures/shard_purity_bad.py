"""REPRO106 bad: shard entry points leaking process state.

Shards execute in arbitrary order across a process pool and their
results are cached by a content address that cannot see ambient
process state — any of the mutations below makes a shard's result
depend on which worker ran what before it.
"""

import os

import numpy as np

_CALLS = 0


def make_shards(config: dict) -> list[dict]:
    os.environ["REPRO_TIER"] = str(config["tier"])  # leaks to the pool
    return [{"index": i} for i in range(config["count"])]


def run_shard(config: dict, shard: dict) -> dict:
    global _CALLS  # module state mutated across shards
    _CALLS += 1
    os.environ.update(REPRO_SHARD=str(shard["index"]))
    np.seterr = None  # monkeypatching an imported module
    return {"index": shard["index"], "calls": _CALLS}
