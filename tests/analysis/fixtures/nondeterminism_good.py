"""REPRO105 good twin: pure payloads, ordered iteration."""

import time

from repro.util.lcg import derive_seed


def shard_meta(exp_id: str, seed: int) -> dict:
    return {
        "exp_id": exp_id,
        "run_id": f"{derive_seed('run', exp_id, seed):016x}",
    }


def merged_rows(rows: list[dict]) -> list[str]:
    return sorted({row["id"] for row in rows})


def families() -> list[str]:
    out = []
    for name in ("ring", "torus", "tree"):
        out.append(name)
    return out


def timed(fn):
    # Elapsed-time *measurement* for display is fine: perf_counter is
    # not a banned call, provided timings stay out of persisted data.
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
