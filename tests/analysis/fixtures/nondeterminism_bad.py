"""REPRO105 bad: ambient state leaking into deterministic payloads."""

import os
import time
import uuid
from datetime import datetime


def shard_meta(exp_id: str) -> dict:
    return {
        "exp_id": exp_id,
        "run_id": uuid.uuid4().hex,  # OS entropy in a cached payload
        "started": time.time(),  # wall clock in a cached payload
        "day": datetime.now().isoformat(),
        "nonce": os.urandom(8).hex(),
    }


def merged_rows(rows: list[dict]) -> list[str]:
    # Set order follows the hash layout: output can reorder across
    # interpreters/versions.
    return [row_id for row_id in {row["id"] for row in rows}]


def families() -> list[str]:
    out = []
    for name in {"ring", "torus", "tree"}:
        out.append(name)
    return out
