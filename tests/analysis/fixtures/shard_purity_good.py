"""REPRO106 good twin: shards are pure functions of (config, shard)."""

from __future__ import annotations


def make_shards(config: dict) -> list[dict]:
    return [
        {"index": i, "tier": config["tier"]} for i in range(config["count"])
    ]


def run_shard(config: dict, shard: dict) -> dict:
    rows = [shard["index"] * step for step in range(config["steps"])]
    return {"index": shard["index"], "rows": rows}


def _helper_outside_shards() -> None:
    # Module-level mutation elsewhere is other rules' business; the
    # shard-purity rule scopes to the shard entry points only.
    global _STATE
    _STATE = 1


_STATE = 0
